"""§7.5 — impact of Flicker sessions on the suspended OS's device I/O.

Paper experiment: bulk file copies (CD-ROM → disk → USB) while the
distributed-computing application runs repeatedly; each session averages
8.3 s with the OS running 37 ms in between.  Result: "the kernel did not
report any I/O errors, and integrity checks with md5sum confirmed that the
integrity of all files remained intact."  The caveat (also §7.5): device
transfers should be scheduled around sessions, since a suspension beyond a
device timeout *would* be reported as an error.
"""

import pytest

from benchmarks.conftest import print_table, record
from repro.apps.distributed import BOINCClient, FactoringWorkUnit
from repro.core import FlickerPlatform
from repro.osim.storage import BlockDevice, FileStore

SESSION_TARGET_MS = 8300.0  # the paper's average session length


def run_copy_with_sessions(session_work_ms: float):
    platform = FlickerPlatform(seed=7777)
    kernel = platform.kernel
    machine = platform.machine
    client = BOINCClient(platform)

    cdrom = BlockDevice(machine, "cdrom", bandwidth_mb_s=8)
    disk = BlockDevice(machine, "disk", bandwidth_mb_s=40)
    usb = BlockDevice(machine, "usb", bandwidth_mb_s=12)
    store = FileStore(machine)

    content = machine.rng.fork("avi-file").bytes(2 * 1024 * 1024)
    cdrom.store_file("video.avi", content)
    source_md5 = cdrom.md5sum("video.avi")

    progress_box = {"progress": client.start_unit(
        FactoringWorkUnit(unit_id=1, n=15015, start=2, end=10 ** 9)
    )}
    sessions = {"count": 0}

    def run_session(_copied):
        before = machine.clock.now()
        progress_box["progress"], _ = client.work_slice(
            progress_box["progress"], slice_ms=session_work_ms
        )
        sessions["count"] += 1
        return machine.clock.now() - before

    store.copy(kernel, cdrom, "video.avi", disk, "video.avi", suspension_cb=run_session)
    store.copy(kernel, disk, "video.avi", usb, "video.avi", suspension_cb=run_session)

    return {
        "io_errors": cdrom.io_errors + disk.io_errors + usb.io_errors,
        "md5_intact": usb.md5sum("video.avi") == source_md5,
        "sessions": sessions["count"],
    }


def test_io_integrity_under_paper_length_sessions(benchmark):
    result = benchmark.pedantic(
        lambda: run_copy_with_sessions(SESSION_TARGET_MS - 912.6),
        rounds=1, iterations=1,
    )
    print_table(
        "§7.5: device transfers under repeated 8.3 s Flicker sessions",
        ["Quantity", "Paper", "Measured"],
        [
            ("I/O errors", "0", len(result["io_errors"])),
            ("md5 integrity", "intact", "intact" if result["md5_intact"] else "CORRUPT"),
            ("sessions interleaved", "many", result["sessions"]),
        ],
    )
    record(benchmark, **{k: v for k, v in result.items() if k != "io_errors"})

    assert result["io_errors"] == []
    assert result["md5_intact"]
    assert result["sessions"] >= 16


def test_io_errors_when_sessions_exceed_device_timeout(benchmark):
    """The §7.5 caveat: sessions longer than a device timeout (30 s SCSI
    default) do surface as I/O errors — motivating Flicker-aware drivers."""
    result = benchmark.pedantic(
        lambda: run_copy_with_sessions(45_000.0), rounds=1, iterations=1
    )
    print_table(
        "§7.5 caveat: 45 s sessions vs 30 s device timeout",
        ["Quantity", "Expected", "Measured"],
        [
            ("I/O errors", ">0", len(result["io_errors"])),
            ("md5 integrity", "intact (data still copied)",
             "intact" if result["md5_intact"] else "CORRUPT"),
        ],
    )
    record(benchmark, io_errors=len(result["io_errors"]))
    assert result["io_errors"]
    assert result["md5_intact"]  # errors are timeouts, not corruption
