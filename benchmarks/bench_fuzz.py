"""Fuzzer smoke benchmark: a bounded coverage-guided campaign plus a
full corpus replay.

The same workload is runnable standalone as
``python -m repro.tools.fuzz --smoke``; here the unified runner tracks
throughput and pins the standing invariants: the campaign finds zero
surviving counterexamples and every committed corpus entry replays with
its recorded verdict.

Coverage metrics (edge counts, the report digest) depend on the Python
version's tracing backend (``sys.monitoring`` on 3.12+ vs
``sys.settrace``), so they live in the informational ``wall`` section —
only version-stable facts (execution totals, the zero-counterexample
invariant, corpus replay verdicts) sit in the exact-gated ``virtual``
section.
"""

import time
from pathlib import Path

from benchmarks.conftest import print_table, record
from repro.bench import register
from repro.fuzz import FuzzCampaign, load_corpus

CORPUS_DIR = Path(__file__).resolve().parent.parent / "tests" / "fuzz" / "corpus"


def run_bench(seed=2008, executions=120, workers=1):
    """Registered entry point: campaign invariants + corpus replay."""
    campaign = FuzzCampaign(seed=seed, executions=executions, workers=workers)
    start = time.perf_counter()
    report = campaign.run()
    elapsed = time.perf_counter() - start

    entries = load_corpus(CORPUS_DIR)
    replays = [(entry, entry.replay()[0]) for entry in entries]

    return {
        "virtual": {
            "executions": report["executions"]["total"],
            "counterexamples": report["summary"]["counterexamples"],
            "clean": report["summary"]["clean"],
            "corpus_entries": len(entries),
            "corpus_all_hold": all(holds for _, holds in replays),
        },
        "wall": {
            "executions_per_sec": round(
                report["executions"]["total"] / elapsed, 1) if elapsed else 0.0,
            "coverage_edges": report["coverage"]["edges"],
            "coverage_modules": len(report["coverage"]["modules"]),
            "report_digest": report["coverage"]["digest"],
        },
    }


register(
    "fuzz", run_bench,
    params={"seed": 2008, "executions": 400, "workers": 1},
    quick_params={"seed": 2008, "executions": 120, "workers": 1},
    description="Coverage-guided fuzzer: bounded campaign invariants "
                "(zero counterexamples, corpus replay) + throughput",
)


def test_fuzz_smoke(benchmark):
    campaign = FuzzCampaign(seed=2008, executions=120)
    report = benchmark.pedantic(campaign.run, rounds=1, iterations=1)

    assert report["executions"]["total"] == 120
    assert report["summary"]["counterexamples"] == 0
    assert report["summary"]["clean"]
    # Determinism spot-check: the serialized report is reproducible.
    rerun = FuzzCampaign(seed=2008, executions=120).run()
    assert campaign.report_json(report) == campaign.report_json(rerun)

    by_target = report["executions"]["by_target"]
    print_table(
        "Fuzz campaign executions by target (seed 2008)",
        ("target", "executions"),
        sorted(by_target.items()),
    )
    record(benchmark, executions=report["executions"]["total"],
           rejected=report["executions"]["rejected"],
           coverage_edges=report["coverage"]["edges"])
