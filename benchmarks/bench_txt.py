"""Extension bench — Flicker over Intel TXT vs AMD SVM.

No paper counterpart (the paper implemented on AMD only and asserted the
TXT path "functions analogously"); this bench demonstrates the analogy
quantitatively: same session semantics and attestation guarantees, with
the launch-cost difference coming from what each instruction streams to
the TPM (SVM: the SLB or its 4736-byte stub; TXT: the SINIT ACM plus the
full MLE).
"""

import pytest

from benchmarks.conftest import print_table, record
from repro.core import FlickerPlatform, PAL


class CrossVendorPAL(PAL):
    name = "cross-vendor"
    modules = ("tpm_utils",)

    def run(self, ctx):
        ctx.tpm.pcr_read()
        ctx.write_output(b"portable")


def run_both():
    nonce = b"\x77" * 20
    out = {}

    svm = FlickerPlatform(seed=9090)
    session = svm.execute_pal(CrossVendorPAL(), nonce=nonce)
    attestation = svm.attest(nonce, session)
    assert svm.verifier().verify(attestation, session.image, nonce).ok
    out["svm"] = {
        "launch_ms": session.phase_ms["skinit"],
        "total_ms": session.total_ms,
        "outputs": session.outputs,
    }

    txt = FlickerPlatform(seed=9090, launch="txt")
    session = txt.execute_pal(CrossVendorPAL(), nonce=nonce)
    attestation = txt.attest(nonce, session)
    assert txt.verifier().verify_txt(
        attestation, session.image, txt.acm.measurement, nonce
    ).ok
    out["txt"] = {
        "launch_ms": session.phase_ms["senter"],
        "total_ms": session.total_ms,
        "outputs": session.outputs,
        "measured_bytes": session.image.measured_length + len(txt.acm.code),
    }
    return out


def test_txt_vs_svm_launch(benchmark):
    m = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_table(
        "Extension: Flicker over Intel TXT vs AMD SVM",
        ["Quantity", "SVM (SKINIT)", "TXT (SENTER)"],
        [
            ("launch instruction (ms)", f"{m['svm']['launch_ms']:.1f}",
             f"{m['txt']['launch_ms']:.1f}"),
            ("session total (ms)", f"{m['svm']['total_ms']:.1f}",
             f"{m['txt']['total_ms']:.1f}"),
            ("PAL outputs identical", "—",
             "yes" if m["svm"]["outputs"] == m["txt"]["outputs"] else "NO"),
        ],
    )
    record(benchmark,
           svm_launch_ms=m["svm"]["launch_ms"],
           txt_launch_ms=m["txt"]["launch_ms"])

    # Same application behaviour on both vendors.
    assert m["svm"]["outputs"] == m["txt"]["outputs"] == b"portable"
    # TXT streams ACM + full MLE, so its launch costs more than the
    # stub-optimized SKINIT; both stay in the tens-of-ms regime.
    assert m["txt"]["launch_ms"] > m["svm"]["launch_ms"]
    assert m["txt"]["launch_ms"] < 120.0
