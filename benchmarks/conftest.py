"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure from the paper's §7.  The
numbers of interest are *virtual-time* measurements from the simulation;
pytest-benchmark measures the wall time of running the simulation itself
(useful for tracking simulator performance) while the paper-vs-measured
comparison is attached as ``extra_info`` and printed as a table.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import pytest

from repro.core import FlickerPlatform


@pytest.fixture
def platform() -> FlickerPlatform:
    """A freshly assembled platform per benchmark."""
    return FlickerPlatform(seed=1022)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render a paper-style comparison table to stdout (visible with
    ``pytest -s`` and in captured bench logs)."""
    rows = [tuple(str(c) for c in row) for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "+".join("-" * (w + 2) for w in widths)
    out: List[str] = ["", f"== {title} ==", line]
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(line)
    for row in rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    out.append(line)
    print("\n".join(out))


def record(benchmark, **extra) -> None:
    """Attach paper-vs-measured values to the benchmark record."""
    for key, value in extra.items():
        benchmark.extra_info[key] = value


def record_metrics(benchmark, registry) -> None:
    """Attach a metrics-registry snapshot (see ``repro.obs``) to the
    benchmark record, so saved benchmark JSON carries the workload's
    counter/histogram profile alongside its timings."""
    benchmark.extra_info["metrics"] = registry.snapshot()
