"""Work-distribution service under sustained heavy traffic.

The distribution headline numbers: aggregate session throughput
(sessions per virtual second), the validator's verify throughput, and
the redundancy overhead (resend rate) when a fleet mixing honest,
cheating, unreliable, and fault-injected clients grinds through a large
unit backlog.  Every cell also records ``db_sha1`` — the digest of the
byte-canonical job-database dump — so the baseline gate catches any
drift in the full decision history, not just the headline metrics.

Registered with the unified runner as ``dist``; the committed
``BENCH_dist.json`` baseline is produced by
``python -m repro.tools.bench --quick`` (see docs/BENCHMARKS.md for the
refresh procedure).  The sweep runs through
:func:`repro.tools.dist.run_dist_sweep`, so ``workers > 1`` shards the
configs across processes with byte-identical results.
"""

from benchmarks.conftest import print_table, record
from repro.bench import register
from repro.tools.dist import run_dist_sweep

#: The full sweep: a heavy mixed-adversary fleet plus a clean control.
FULL_CONFIGS = (
    dict(machines=64, units=600, seed=2008,
         behaviors="1:lazy,5:dropout,9:forge,13:flaky:90000,21:lazy",
         faults="3:tpm-transient,17:slb-bit-flip:64",
         timeout_ms=60_000.0),
    dict(machines=64, units=600, seed=2008),
)

#: Quick mode (committed baseline): same shape, smaller scale.
QUICK_CONFIGS = (
    dict(machines=8, units=32, seed=2008,
         behaviors="1:lazy,5:dropout",
         faults="3:tpm-transient",
         timeout_ms=60_000.0),
    dict(machines=8, units=32, seed=2008),
)


def run_bench(configs=FULL_CONFIGS, workers=1):
    """Registered entry point: the deterministic traffic sweep."""
    reports = run_dist_sweep([dict(c) for c in configs], workers=workers)
    return {
        "virtual": {
            "sweep": {
                ("adversarial" if c.get("behaviors") else "clean"): report
                for c, report in zip(configs, reports)
            },
        },
    }


register(
    "dist", run_bench,
    params={"configs": FULL_CONFIGS, "workers": 1},
    quick_params={"configs": QUICK_CONFIGS, "workers": 1},
    description="Work distribution under heavy traffic: sessions/vsec, "
                "verify throughput, resend rate (quorum over attested "
                "results)",
)


def test_dist_heavy_traffic(benchmark):
    results = benchmark.pedantic(
        run_bench, kwargs={"configs": FULL_CONFIGS}, rounds=1, iterations=1,
    )["virtual"]["sweep"]
    print_table(
        "Work distribution: 64 machines, 600 units",
        ["Fleet", "Validated", "Assignments", "Resend rate",
         "Sessions/vsec", "Verify/vsec", "Max queue"],
        [
            (name,
             f"{cell['units_validated']}/{cell['total_units']}",
             cell["assignments"],
             f"{cell['resend_rate']:.4f}",
             f"{cell['sessions_per_virtual_second']:.3f}",
             f"{cell['verify_throughput_per_vsec']:.1f}",
             cell["max_verify_queue_depth"])
            for name, cell in results.items()
        ],
    )
    record(benchmark, sweep={
        name: {"sessions_per_virtual_second":
               cell["sessions_per_virtual_second"],
               "resend_rate": cell["resend_rate"]}
        for name, cell in results.items()
    })

    clean, adversarial = results["clean"], results["adversarial"]
    # Every unit resolves in both fleets; the clean fleet needs no
    # redundancy beyond reputation's spot checks.
    assert clean["units_validated"] == clean["total_units"]
    assert adversarial["units_validated"] == adversarial["total_units"]
    assert clean["rejected_attestation"] == 0
    # Forged results are rejected by attestation verification, never
    # reaching quorum; the adversarial fleet pays for it in resends.
    assert adversarial["rejected_attestation"] > 0
    assert adversarial["resend_rate"] > clean["resend_rate"]
    # The dedicated validator keeps verify throughput orders of
    # magnitude above the fleet's session rate (it never gates dispatch).
    assert adversarial["verify_throughput_per_vsec"] > 100.0
