"""Extension bench — next-generation hardware projection.

The paper's abstract promises that hardware modifications proposed in the
authors' concurrent work [19] "can improve performance by up to six
orders of magnitude", and §7 repeats that "it is reasonable to expect
significantly improved performance in future versions of this
technology".  This bench swaps in the projected timing profile and
re-runs the paper's most overhead-sensitive experiments.
"""

import pytest

from benchmarks.conftest import print_table, record
from repro.apps.distributed import BOINCClient, FactoringWorkUnit, flicker_efficiency
from repro.apps.ssh_auth import PasswdEntry, SSHClient, SSHServer
from repro.core import FlickerPlatform
from repro.sim.timing import DEFAULT_PROFILE, FUTURE_HW_PROFILE


def measure_overheads(profile):
    platform = FlickerPlatform(profile=profile, seed=2468)
    client = BOINCClient(platform)
    unit = FactoringWorkUnit(unit_id=1, n=15015, start=2, end=4)
    progress = client.start_unit(unit)
    clock = platform.machine.clock
    before = clock.now()
    client.work_slice(progress, slice_ms=1000.0)
    session_overhead = (clock.now() - before) - 1000.0

    server = SSHServer(platform)
    server.add_user(PasswdEntry.create("alice", b"pw-secret", b"fLiCkEr1"))
    outcome = SSHClient(platform).connect_and_login(server, "alice", b"pw-secret")

    return {
        "session_overhead_ms": session_overhead,
        "ssh_prompt_ms": outcome.time_to_prompt_ms,
        "ssh_entry_ms": outcome.time_after_entry_ms,
        "authenticated": outcome.authenticated,
    }


def test_future_hardware_projection(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "today": measure_overheads(DEFAULT_PROFILE),
            "future": measure_overheads(FUTURE_HW_PROFILE),
        },
        rounds=1, iterations=1,
    )
    today, future = results["today"], results["future"]
    print_table(
        "Future hardware ([19] projection) vs the 2008 testbed",
        ["Quantity", "2008 testbed", "Projection", "Unmodified sshd (paper)"],
        [
            ("per-session Flicker overhead (ms)",
             f"{today['session_overhead_ms']:.1f}",
             f"{future['session_overhead_ms']:.3f}", "—"),
            ("SSH connect → prompt (ms)",
             f"{today['ssh_prompt_ms']:.0f}", f"{future['ssh_prompt_ms']:.0f}", "210"),
            ("SSH entry → session (ms)",
             f"{today['ssh_entry_ms']:.0f}", f"{future['ssh_entry_ms']:.1f}", "10"),
            ("Fig. 8 efficiency @ 1 s",
             f"{flicker_efficiency(1000, today['session_overhead_ms']):.2f}",
             f"{flicker_efficiency(1000, future['session_overhead_ms']):.4f}", "—"),
        ],
    )
    record(benchmark, today=today, future=future)

    assert today["authenticated"] and future["authenticated"]
    # The TPM-bound overhead collapses to low single-digit milliseconds;
    # the residual is OS suspend/resume bookkeeping, which [19]'s TPM-side
    # proposals do not remove (their multicore proposal does — see
    # bench_attestation_comparison).  The *TPM share* alone falls by six
    # orders (898 ms → 5 µs unseal).
    assert future["session_overhead_ms"] < today["session_overhead_ms"] / 500
    assert future["session_overhead_ms"] < 2.5
    assert FUTURE_HW_PROFILE.tpm.unseal_ms(20) < DEFAULT_PROFILE.tpm.unseal_ms(20) / 100_000
    # At 1-second sessions, Flicker efficiency becomes essentially perfect.
    assert flicker_efficiency(1000, future["session_overhead_ms"]) > 0.99
    # And the SSH password path approaches the unmodified server's cost:
    # the post-entry latency falls from ~940 ms to single-digit ms.
    assert future["ssh_entry_ms"] < 25.0
