"""Fault-campaign smoke benchmark: 50 seeded plans x 4 applications.

The same sweep is runnable standalone as
``python -m repro.faults.campaign --smoke``; here pytest-benchmark tracks
how long the simulator takes to grind through the 200 adversarial runs,
and the paper-level invariant (zero ``secret-leaked`` outcomes) is
asserted on every execution.
"""

from benchmarks.conftest import print_table, record
from repro.bench import register
from repro.crypto.sha1 import sha1
from repro.faults import FaultCampaign
from repro.faults.campaign import APPS, OUTCOMES, report_json

SEEDS = range(50)


def run_campaign():
    return FaultCampaign(seeds=SEEDS, apps=APPS).run()


def run_bench(seeds=50, workers=1):
    """Registered entry point: outcome distribution plus a digest of the
    full canonical report — one drifted byte anywhere in the campaign
    flips ``report_sha1``, making this a whole-subsystem regression gate."""
    report = FaultCampaign(seeds=range(seeds), apps=APPS,
                           workers=workers).run()
    summary = report["summary"]
    return {
        "virtual": {
            "runs": summary["runs"],
            "outcomes": summary["outcomes"],
            "secret_leaked": summary["secret_leaked"],
            "report_sha1": sha1(report_json(report).encode("ascii")).hex(),
        },
    }


register(
    "fault_campaign", run_bench,
    params={"seeds": 50, "workers": 1},
    quick_params={"seeds": 12, "workers": 1},
    description="Fault campaign: outcome distribution + canonical-report "
                "digest over seeded adversarial sweeps",
)


def test_fault_campaign_smoke(benchmark):
    report = benchmark.pedantic(run_campaign, rounds=1, iterations=1)

    summary = report["summary"]
    assert summary["runs"] == len(SEEDS) * len(APPS)
    assert summary["secret_leaked"] == 0
    # Determinism spot-check: the serialized report is reproducible.
    assert report_json(report) == report_json(run_campaign())

    by_app = {app: {o: 0 for o in OUTCOMES} for app in APPS}
    for result in report["results"]:
        by_app[result["app"]][result["outcome"]] += 1
    print_table(
        "Fault campaign outcomes (50 seeds x 4 apps)",
        ("app", *OUTCOMES),
        [(app, *(by_app[app][o] for o in OUTCOMES)) for app in APPS],
    )
    record(benchmark, runs=summary["runs"],
           secret_leaked=summary["secret_leaked"],
           **{k: v for k, v in summary["outcomes"].items()})
