"""Fault-campaign smoke benchmark: 50 seeded plans x 4 applications.

The same sweep is runnable standalone as
``python -m repro.faults.campaign --smoke``; here pytest-benchmark tracks
how long the simulator takes to grind through the 200 adversarial runs,
and the paper-level invariant (zero ``secret-leaked`` outcomes) is
asserted on every execution.
"""

import pytest

from benchmarks.conftest import print_table, record
from repro.faults import FaultCampaign
from repro.faults.campaign import APPS, OUTCOMES, report_json

SEEDS = range(50)


def run_campaign():
    return FaultCampaign(seeds=SEEDS, apps=APPS).run()


def test_fault_campaign_smoke(benchmark):
    report = benchmark.pedantic(run_campaign, rounds=1, iterations=1)

    summary = report["summary"]
    assert summary["runs"] == len(SEEDS) * len(APPS)
    assert summary["secret_leaked"] == 0
    # Determinism spot-check: the serialized report is reproducible.
    assert report_json(report) == report_json(run_campaign())

    by_app = {app: {o: 0 for o in OUTCOMES} for app in APPS}
    for result in report["results"]:
        by_app[result["app"]][result["outcome"]] += 1
    print_table(
        "Fault campaign outcomes (50 seeds x 4 apps)",
        ("app", *OUTCOMES),
        [(app, *(by_app[app][o] for o in OUTCOMES)) for app in APPS],
    )
    record(benchmark, runs=summary["runs"],
           secret_leaked=summary["secret_leaked"],
           **{k: v for k, v in summary["outcomes"].items()})
