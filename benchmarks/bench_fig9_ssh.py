"""Figure 9 — SSH server-side overhead, per PAL.

Paper values (100 trials)::

    PAL 1 (setup):  SKINIT 14.3, Key Gen 185.7, Seal 10.2  → total 217.1 ms
    PAL 2 (login):  SKINIT 14.3, Unseal 905.4, Decrypt 4.6 → total 937.6 ms

Plus the §7.4.1 client-side end-to-end numbers: 1221 ms to the password
prompt (210 ms unmodified) and ≈940 ms after password entry (10 ms
unmodified).
"""

import pytest

from benchmarks.conftest import print_table, record
from repro.apps.ssh_auth import PasswdEntry, SSHClient, SSHServer
from repro.core import FlickerPlatform

PAPER_PAL1 = {"skinit_ms": 14.3, "keygen_ms": 185.7, "seal_ms": 10.2, "total_ms": 217.1}
PAPER_PAL2 = {"skinit_ms": 14.3, "unseal_ms": 905.4, "decrypt_ms": 4.6, "total_ms": 937.6}


def run_login():
    platform = FlickerPlatform(seed=999)
    server = SSHServer(platform)
    server.add_user(PasswdEntry.create("alice", b"p4ssw0rd!", b"fLiCkEr1"))
    client = SSHClient(platform)

    trace = platform.machine.trace

    # --- PAL 1: setup session -------------------------------------------
    outcome = client.connect_and_login(server, "alice", b"p4ssw0rd!")
    work = [e for e in trace.events(kind="work")]
    keygen_ms = next(e.detail["ms"] for e in work if e.detail["label"] == "rsa-keygen")
    decrypt_ms = next(e.detail["ms"] for e in work if e.detail["label"] == "rsa-decrypt")
    login_session = platform.last_session

    pal1 = {
        "skinit_ms": platform.machine.profile.tpm.skinit_ms(4736),
        "keygen_ms": keygen_ms,
        "seal_ms": platform.machine.profile.tpm.seal_ms(0),
        "total_ms": None,  # filled by a dedicated setup-session run below
    }
    setup_server = SSHServer(FlickerPlatform(seed=998))
    setup_session, _ = setup_server.run_setup_session(b"\x00" * 20)
    pal1["total_ms"] = setup_session.total_ms
    pal1["seal_ms"] = setup_session.tpm_ms["seal"]
    pal1["skinit_ms"] = setup_session.phase_ms["skinit"]

    pal2 = {
        "skinit_ms": login_session.phase_ms["skinit"],
        "unseal_ms": login_session.tpm_ms["unseal"],
        "decrypt_ms": decrypt_ms,
        "total_ms": login_session.total_ms,
    }
    return outcome, pal1, pal2


def test_fig9_ssh_pal_breakdowns(benchmark):
    outcome, pal1, pal2 = benchmark.pedantic(run_login, rounds=1, iterations=1)

    print_table(
        "Figure 9(a): SSH PAL 1 (setup)",
        ["Operation", "Paper (ms)", "Measured (ms)"],
        [
            ("SKINIT", PAPER_PAL1["skinit_ms"], f"{pal1['skinit_ms']:.1f}"),
            ("Key Gen", PAPER_PAL1["keygen_ms"], f"{pal1['keygen_ms']:.1f}"),
            ("Seal", PAPER_PAL1["seal_ms"], f"{pal1['seal_ms']:.1f}"),
            ("Total", PAPER_PAL1["total_ms"], f"{pal1['total_ms']:.1f}"),
        ],
    )
    print_table(
        "Figure 9(b): SSH PAL 2 (login)",
        ["Operation", "Paper (ms)", "Measured (ms)"],
        [
            ("SKINIT", PAPER_PAL2["skinit_ms"], f"{pal2['skinit_ms']:.1f}"),
            ("Unseal", PAPER_PAL2["unseal_ms"], f"{pal2['unseal_ms']:.1f}"),
            ("Decrypt", PAPER_PAL2["decrypt_ms"], f"{pal2['decrypt_ms']:.1f}"),
            ("Total", PAPER_PAL2["total_ms"], f"{pal2['total_ms']:.1f}"),
        ],
    )
    record(benchmark, pal1=pal1, pal2=pal2)

    assert outcome.authenticated
    # PAL 1 shape: key generation dominates.
    assert pal1["keygen_ms"] == pytest.approx(PAPER_PAL1["keygen_ms"], rel=0.01)
    assert pal1["keygen_ms"] > 0.75 * pal1["total_ms"]
    assert pal1["total_ms"] == pytest.approx(PAPER_PAL1["total_ms"], rel=0.08)
    # PAL 2 shape: the Unseal dominates everything.
    assert pal2["unseal_ms"] == pytest.approx(PAPER_PAL2["unseal_ms"], rel=0.02)
    assert pal2["unseal_ms"] > 0.9 * pal2["total_ms"]
    assert pal2["total_ms"] == pytest.approx(PAPER_PAL2["total_ms"], rel=0.05)


def test_fig9_client_perceived_latency(benchmark):
    """§7.4.1's end-to-end numbers as the client experiences them."""
    outcome, _, _ = benchmark.pedantic(run_login, rounds=1, iterations=1)
    print_table(
        "§7.4.1: client-perceived latency",
        ["Measurement", "Paper (ms)", "Unmodified (ms)", "Measured (ms)"],
        [
            ("connect → password prompt", 1221, 210, f"{outcome.time_to_prompt_ms:.0f}"),
            ("password entry → session", 940, 10, f"{outcome.time_after_entry_ms:.0f}"),
        ],
    )
    record(benchmark,
           time_to_prompt_ms=outcome.time_to_prompt_ms,
           time_after_entry_ms=outcome.time_after_entry_ms)
    assert outcome.time_to_prompt_ms == pytest.approx(1221.0, rel=0.07)
    assert outcome.time_after_entry_ms == pytest.approx(940.0, rel=0.05)
