"""The zero-overhead claim of the observability layer, measured.

Every instrumentation site in the simulation is guarded by a single
``obs is not None`` attribute test, so a platform built without
``observability=True`` must pay (a) *nothing* in virtual time and (b) a
vanishing amount of wall time.  This bench pins both on the Figure 6
module suite — the four application workloads, which between them link
every PAL module:

* **Virtual time** — the enabled and disabled runs of each workload end
  at the *identical* virtual timestamp.  Instrumentation observes the
  clock; it never advances it.
* **Wall time** — the disabled path's entire cost is the guard checks.
  We count the guard evaluations an enabled run actually performs (every
  recorded span, event, and metric sample came through one), price a
  guard with ``timeit``, and assert the total against the measured
  disabled-suite wall time: **< 2%**, with an 8× safety margin on the
  guard count so the bound holds even if instrumentation sites multiply.
"""

import time
import timeit

import pytest

from benchmarks.conftest import print_table, record, record_metrics
from repro.bench import register
from repro.core import FlickerPlatform
from repro.faults.campaign import DRIVERS

APPS = ("rootkit", "ssh", "ca", "distributed")
SEED = 1022
OVERHEAD_BUDGET = 0.02
GUARD_MARGIN = 8  # assume 8 guard evaluations per recorded artifact


def run_suite(observability, seed=SEED):
    """Run the four Figure 6 workloads; return per-app final virtual
    times and the platforms (for span/metric inspection)."""
    virtual_ms = {}
    platforms = {}
    for app in APPS:
        platform = FlickerPlatform(seed=seed, observability=observability)
        outcome = DRIVERS[app](platform)
        assert outcome == "ok", f"{app} failed: {outcome}"
        virtual_ms[app] = platform.machine.clock.now()
        platforms[app] = platform
    return virtual_ms, platforms


def guard_cost_s():
    """Wall cost of one disabled-path guard (attribute is None test)."""
    number = 200_000
    total = timeit.timeit(
        "if obs is not None:\n    pass", setup="obs = None", number=number)
    return total / number


def run_bench(seed=SEED):
    """Registered entry point: the zero-overhead claim, split into the
    deterministic half (virtual timelines identical with and without the
    hub; artifact counts) and the host-dependent half (guard pricing)."""
    disabled_virtual, _ = run_suite(False, seed=seed)
    start = time.perf_counter()
    enabled_virtual, enabled_platforms = run_suite(True, seed=seed)
    enabled_wall_s = time.perf_counter() - start
    artifacts = 0
    for platform in enabled_platforms.values():
        hub = platform.obs
        artifacts += len(hub.spans) + len(hub.events) + len(hub.registry.snapshot())
    per_guard_s = guard_cost_s()
    return {
        "virtual": {
            "virtual_ms": {app: round(disabled_virtual[app], 6) for app in APPS},
            "virtual_time_identical": enabled_virtual == disabled_virtual,
            "artifacts_recorded": artifacts,
            "guard_evals_charged": artifacts * GUARD_MARGIN,
        },
        "wall": {
            "per_guard_ns": round(per_guard_s * 1e9, 1),
            "enabled_suite_seconds": round(enabled_wall_s, 3),
        },
    }


register(
    "obs_overhead", run_bench, params={"seed": SEED},
    description="Observability layer: disabled-path overhead and "
                "virtual-time neutrality on the Figure 6 suite",
)


def test_disabled_instrumentation_overhead_under_2pct(benchmark):
    disabled_virtual, _ = benchmark.pedantic(
        run_suite, args=(False,), rounds=1, iterations=1)
    enabled_virtual, enabled_platforms = run_suite(True)

    # (a) Virtual time: bit-identical timelines with and without the hub.
    assert enabled_virtual == disabled_virtual

    # (b) Wall time: price the guards the disabled path actually executes.
    start = time.perf_counter()
    run_suite(False)
    disabled_wall_s = time.perf_counter() - start

    artifacts = 0
    for platform in enabled_platforms.values():
        hub = platform.obs
        artifacts += len(hub.spans) + len(hub.events) + len(hub.registry.snapshot())
    guard_evals = artifacts * GUARD_MARGIN
    per_guard_s = guard_cost_s()
    overhead = (guard_evals * per_guard_s) / disabled_wall_s

    print_table(
        "Observability: disabled-path overhead (Figure 6 suite)",
        ["Quantity", "Value"],
        [
            ("recorded artifacts (enabled)", artifacts),
            ("guard evaluations charged", guard_evals),
            ("per-guard cost", f"{per_guard_s * 1e9:.1f} ns"),
            ("disabled suite wall time", f"{disabled_wall_s * 1e3:.1f} ms"),
            ("disabled overhead bound", f"{overhead * 100:.4f} %"),
            ("budget", f"{OVERHEAD_BUDGET * 100:.1f} %"),
        ],
    )
    record(benchmark, guard_evals=guard_evals,
           overhead_pct=overhead * 100, budget_pct=OVERHEAD_BUDGET * 100)
    record_metrics(benchmark, enabled_platforms["ca"].obs.registry)

    assert overhead < OVERHEAD_BUDGET


def test_enabled_instrumentation_preserves_results(benchmark):
    """Enabling the hub changes no application-visible result: the CA
    suite's session timings match a plain platform's to the last float."""
    def compare():
        plain = FlickerPlatform(seed=SEED)
        instrumented = FlickerPlatform(seed=SEED, observability=True)
        for platform in (plain, instrumented):
            assert DRIVERS["ca"](platform) == "ok"
        return plain.last_session, instrumented.last_session

    plain, instrumented = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert plain.phase_ms == instrumented.phase_ms
    assert plain.total_ms == instrumented.total_ms
    assert plain.outputs == instrumented.outputs


def test_guard_is_cheap_in_absolute_terms():
    """Sanity floor under the 2% claim: one guard costs well under a
    microsecond, so even 10^5 guards cost < 100 ms of wall time."""
    assert guard_cost_s() < 1e-6


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q", "-s"])
