"""Table 1 — breakdown of rootkit-detector overhead.

Paper values (Broadcom TPM, HP dc5750)::

    SKINIT               15.4 ms
    PCR Extend            1.2 ms
    Hash of Kernel       22.0 ms
    TPM Quote           972.7 ms
    Total Query Latency 1022.7 ms
"""

import pytest

from benchmarks.conftest import print_table, record
from repro.apps.rootkit_detector import RemoteAdministrator
from repro.bench import register
from repro.core import FlickerPlatform

PAPER = {
    "skinit_ms": 15.4,
    "extend_ms": 1.2,
    "kernel_hash_ms": 22.0,
    "quote_ms": 972.7,
    "total_ms": 1022.7,
}


def run_query(platform: FlickerPlatform):
    admin = RemoteAdministrator(platform)
    report = admin.run_detection_query()
    trace = platform.machine.trace
    session = platform.last_session
    hash_events = trace.events(
        kind="hash", predicate=lambda e: e.detail["label"] == "kernel-measure")
    measured = {
        "skinit_ms": session.phase_ms["skinit"],
        "extend_ms": platform.machine.profile.tpm.extend_ms,
        "kernel_hash_ms": platform.machine.profile.host.sha1_ms_per_kb
        * hash_events[-1].detail["nbytes"] / 1024.0,
        "quote_ms": platform.machine.profile.tpm.quote_ms,
        "total_ms": report.query_latency_ms,
    }
    return report, measured


def run_bench(seed=1022):
    """Registered entry point: the Table 1 per-operation breakdown as
    deterministic virtual-time metrics."""
    platform = FlickerPlatform(seed=seed)
    report, measured = run_query(platform)
    return {
        "virtual": {
            "paper_ms": PAPER,
            "measured_ms": {k: round(v, 6) for k, v in measured.items()},
            "kernel_clean": report.kernel_clean,
            "attestation_valid": report.attestation_valid,
        },
    }


register(
    "table1_rootkit", run_bench, params={"seed": 1022},
    description="Table 1: rootkit-detector query latency breakdown",
)


def test_table1_rootkit_detector_breakdown(benchmark, platform):
    report, measured = benchmark.pedantic(
        lambda: run_query(platform), rounds=1, iterations=1
    )

    # The detector used an *unoptimized* SLB in Table 1 (the optimization
    # is introduced afterwards in §7.2); our detector SLB is sized so
    # SKINIT lands in the same regime either way.
    rows = [
        (name, f"{PAPER[key]:.1f}", f"{value:.1f}")
        for (name, key, value) in (
            ("SKINIT", "skinit_ms", measured["skinit_ms"]),
            ("PCR Extend", "extend_ms", measured["extend_ms"]),
            ("Hash of Kernel", "kernel_hash_ms", measured["kernel_hash_ms"]),
            ("TPM Quote", "quote_ms", measured["quote_ms"]),
            ("Total Query Latency", "total_ms", measured["total_ms"]),
        )
    ]
    print_table("Table 1: Rootkit Detector Overhead",
                ["Operation", "Paper (ms)", "Measured (ms)"], rows)
    record(benchmark, paper=PAPER, measured=measured)

    # Shape assertions: the TPM Quote dominates; the end-to-end latency is
    # ~1 s; the hash cost matches the kernel's modelled size.
    assert report.kernel_clean
    assert measured["quote_ms"] > 0.9 * sum(
        v for k, v in measured.items() if k not in ("total_ms", "quote_ms")
    )
    assert measured["total_ms"] == pytest.approx(PAPER["total_ms"], rel=0.03)
    assert measured["kernel_hash_ms"] == pytest.approx(PAPER["kernel_hash_ms"], abs=0.5)


def test_table1_microbench_query_rate(benchmark):
    """Simulator-side benchmark: full detection queries per second of host
    wall time (tracks reproduction performance, not a paper number)."""
    platform = FlickerPlatform(seed=7)
    admin = RemoteAdministrator(platform)
    result = benchmark(lambda: admin.run_detection_query().kernel_clean)
    assert result
