"""§7.2 "SKINIT Optimization" — the measure-then-extend bootstrap stub.

Paper: a 4736-byte PAL containing a hash function and a minimal TPM-extend
driver measures the full 64 KB on the main CPU.  SKINIT then transfers
only the stub: 14 ms instead of 176 ms for a 64-KB SLB — "it saves 164 ms
of the 176 ms SKINIT requires with a 64-KB SLB".
"""

import pytest

from benchmarks.conftest import print_table, record
from repro.core import FlickerPlatform, PAL

PAPER = {"stub_bytes": 4736, "optimized_skinit_ms": 14.0, "full_skinit_ms": 176.0,
         "saving_ms": 164.0}


class BigTCBPAL(PAL):
    """A PAL with the heavyweight module set, so the unoptimized SLB is
    large and the optimization has something to save."""

    name = "big-tcb"
    modules = ("crypto", "tpm_utils", "memory_mgmt")

    def run(self, ctx):
        ctx.write_output(b"ok")


def run_both():
    platform = FlickerPlatform(seed=2222)
    pal = BigTCBPAL()
    optimized = platform.execute_pal(pal, optimize=True)
    unoptimized = platform.execute_pal(pal, optimize=False)
    return {
        "stub_bytes": optimized.image.measured_length,
        "optimized_skinit_ms": optimized.phase_ms["skinit"],
        "unoptimized_skinit_ms": unoptimized.phase_ms["skinit"],
        "unoptimized_measured_bytes": unoptimized.image.measured_length,
        "optimized_total_ms": optimized.total_ms,
        "unoptimized_total_ms": unoptimized.total_ms,
        "stub_hash_cost_ms": optimized.phase_ms["slb-init"],
    }


def test_skinit_optimization(benchmark):
    m = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_table(
        "§7.2 SKINIT optimization (measure-then-extend stub)",
        ["Quantity", "Paper", "Measured"],
        [
            ("stub size (bytes)", PAPER["stub_bytes"], m["stub_bytes"]),
            ("SKINIT, optimized (ms)", PAPER["optimized_skinit_ms"],
             f"{m['optimized_skinit_ms']:.1f}"),
            ("SKINIT, full SLB (ms)", f"~{PAPER['full_skinit_ms']}",
             f"{m['unoptimized_skinit_ms']:.1f} ({m['unoptimized_measured_bytes']} B)"),
            ("SKINIT saving (ms)", PAPER["saving_ms"],
             f"{m['unoptimized_skinit_ms'] - m['optimized_skinit_ms']:.1f}"),
            ("stub's own hashing cost (ms)", "<1 (CPU-speed)",
             f"{m['stub_hash_cost_ms']:.2f}"),
        ],
    )
    record(benchmark, **m)

    assert m["stub_bytes"] == PAPER["stub_bytes"]
    assert m["optimized_skinit_ms"] == pytest.approx(14.0, abs=1.0)
    # The big-TCB image measures ~60 KB unoptimized: SKINIT in the 150+ ms
    # regime, and the optimization recovers the bulk of it.
    assert m["unoptimized_skinit_ms"] > 120.0
    saving = m["unoptimized_skinit_ms"] - m["optimized_skinit_ms"]
    assert saving > 0.85 * (m["unoptimized_skinit_ms"] - 14.0)
    # The stub's CPU-side hash of 64 KB is far cheaper than the TPM
    # transfer it replaces.
    assert m["stub_hash_cost_ms"] < 2.0
    # End-to-end, the optimized session must win overall.
    assert m["optimized_total_ms"] < m["unoptimized_total_ms"]
