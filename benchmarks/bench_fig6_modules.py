"""Figure 6 — the PAL-linkable module inventory.

Paper values::

    Module             LOC    Size (KB)
    SLB Core           94     0.312
    OS Protection      5      0.046
    TPM Driver         216    0.825
    TPM Utilities      889    9.427
    Crypto             2262   31.380
    Memory Management  657    12.511
    Secure Channel     292    2.021

The reproduction carries the same inventory (it sizes the SLB images and
hence the SKINIT model); this bench regenerates the table and checks the
TCB-composition claims made from it.
"""

from benchmarks.conftest import print_table, record
from repro.bench import register
from repro.core import build_slb
from repro.core.modules import MODULE_REGISTRY, resolve_modules
from repro.apps.ca import CertificateAuthorityPAL
from repro.apps.distributed import DistributedPAL
from repro.apps.rootkit_detector import RootkitDetectorPAL
from repro.apps.ssh_auth import SSHPasswordPAL

PAPER_ORDER = (
    "slb_core", "os_protection", "tpm_driver", "tpm_utils",
    "crypto", "memory_mgmt", "secure_channel",
)


def gather():
    inventory = [
        (name, MODULE_REGISTRY[name].lines_of_code,
         MODULE_REGISTRY[name].size_bytes / 1024.0,
         MODULE_REGISTRY[name].description)
        for name in PAPER_ORDER
    ]
    tcb_per_app = {}
    for pal in (RootkitDetectorPAL(), DistributedPAL(), SSHPasswordPAL(),
                CertificateAuthorityPAL()):
        linked = resolve_modules(pal.modules)
        tcb_per_app[pal.name] = {
            "modules": linked,
            "loc": sum(MODULE_REGISTRY[m].lines_of_code for m in linked),
            "slb_bytes": build_slb(pal, optimize=False).measured_length,
        }
    return inventory, tcb_per_app


def run_bench():
    """Registered entry point: the full module inventory and per-app TCB
    composition as deterministic metrics."""
    inventory, tcb_per_app = gather()
    return {
        "virtual": {
            "inventory": {
                name: {"loc": loc, "kb": round(kb, 3)}
                for name, loc, kb, _ in inventory
            },
            "tcb_per_app": tcb_per_app,
            "total_loc": sum(loc for _, loc, _, _ in inventory),
        },
    }


register(
    "fig6_modules", run_bench,
    description="Figure 6: PAL-linkable module inventory and per-app TCB",
)


def test_fig6_module_inventory(benchmark):
    inventory, tcb_per_app = benchmark.pedantic(gather, rounds=1, iterations=1)
    print_table(
        "Figure 6: PAL-linkable modules",
        ["Module", "LOC", "Size (KB)", "Properties"],
        [(name, loc, f"{kb:.3f}", desc) for name, loc, kb, desc in inventory],
    )
    print_table(
        "Per-application TCB composition",
        ["Application", "Modules", "TCB LOC", "SLB bytes (unoptimized)"],
        [
            (app, ", ".join(m for m in info["modules"] if m != "slb_core") or "(core only)",
             info["loc"], info["slb_bytes"])
            for app, info in tcb_per_app.items()
        ],
    )
    record(benchmark, tcb_per_app={k: v["loc"] for k, v in tcb_per_app.items()})

    # The headline TCB claim: the mandatory core is under 250 lines.
    assert MODULE_REGISTRY["slb_core"].lines_of_code < 250
    # Applications pay only for what they link: the detector's TCB is a
    # small fraction of the SSH/CA TCB.
    assert tcb_per_app["rootkit-detector"]["loc"] < 0.2 * tcb_per_app["ssh-password"]["loc"]
    # The full inventory matches Figure 6's totals.
    total_loc = sum(loc for _, loc, _, _ in inventory)
    assert total_loc == 94 + 5 + 216 + 889 + 2262 + 657 + 292
