"""Fleet scaling — aggregate session throughput vs fleet size.

The fleet's figure of merit: N client machines running the §6.2
distributed-factoring workload *concurrently* complete ~N× the Flicker
sessions of one machine in the same virtual interval, because each
machine's TPM-dominated session cost is paid in parallel while the
server's per-result verification (three RSA public ops, well under a
millisecond) stays negligible.

Registered with the unified runner as ``fleet``; the committed
``BENCH_fleet.json`` baseline is produced by
``python -m repro.tools.bench --quick`` (see docs/BENCHMARKS.md for the
refresh procedure).  The sweep itself runs through
:func:`repro.tools.fleet_report.run_fleet_sweep`, so ``workers > 1``
shards the fleet sizes across processes with byte-identical results.
"""

from benchmarks.conftest import print_table, record
from repro.bench import register
from repro.tools.fleet_report import run_fleet_sweep

FLEET_SIZES = (1, 4, 16, 64)
QUICK_SIZES = (1, 4, 16)


def run_bench(sizes=FLEET_SIZES, seed=2008, units_per_client=1,
              slice_ms=2000.0, range_per_unit=400, workers=1):
    """Registered entry point: the deterministic scaling sweep."""
    configs = [
        dict(machines=size, units_per_client=units_per_client,
             slice_ms=slice_ms, range_per_unit=range_per_unit, seed=seed)
        for size in sizes
    ]
    reports = run_fleet_sweep(configs, workers=workers)
    return {
        "virtual": {
            "sweep": {str(size): report
                      for size, report in zip(sizes, reports)},
        },
    }


register(
    "fleet", run_bench,
    params={"sizes": FLEET_SIZES, "seed": 2008, "units_per_client": 1,
            "slice_ms": 2000.0, "range_per_unit": 400, "workers": 1},
    quick_params={"sizes": QUICK_SIZES, "seed": 2008, "units_per_client": 1,
                  "slice_ms": 2000.0, "range_per_unit": 400, "workers": 1},
    description="Fleet scaling: sessions/virtual-second vs fleet size "
                "(distributed factoring, §6.2)",
)


def test_fleet_scaling(benchmark):
    results = benchmark.pedantic(
        run_bench, kwargs={"sizes": FLEET_SIZES}, rounds=1, iterations=1,
    )["virtual"]["sweep"]
    throughput = {
        size: results[str(size)]["sessions_per_virtual_second"]
        for size in FLEET_SIZES
    }
    print_table(
        "Fleet scaling: distributed factoring, 1 unit per client",
        ["Machines", "Sessions", "Makespan (ms)", "Sessions/vsec",
         "Speedup", "Net bytes"],
        [
            (size,
             results[str(size)]["total_sessions"],
             f"{results[str(size)]['makespan_ms']:.1f}",
             f"{throughput[size]:.3f}",
             f"{throughput[size] / throughput[1]:.1f}x",
             results[str(size)]["network_bytes"])
            for size in FLEET_SIZES
        ],
    )
    record(benchmark, throughput={str(k): v for k, v in throughput.items()})

    # Every unit on every fleet size verifies.
    for size in FLEET_SIZES:
        assert results[str(size)]["units_accepted"] == size
        assert results[str(size)]["units_rejected"] == 0
    # The scaling claim: 16 machines deliver >= 10x the aggregate virtual
    # throughput of one machine (near-linear; the gap is network latency
    # plus the server's serialized verification work).
    assert throughput[16] >= 10.0 * throughput[1]
    assert throughput[64] > throughput[16]
