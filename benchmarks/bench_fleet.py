"""Fleet scaling — aggregate session throughput vs fleet size.

The fleet's figure of merit: N client machines running the §6.2
distributed-factoring workload *concurrently* complete ~N× the Flicker
sessions of one machine in the same virtual interval, because each
machine's TPM-dominated session cost is paid in parallel while the
server's per-result verification (three RSA public ops, well under a
millisecond) stays negligible.

Three sections:

* ``virtual.sweep`` — the classic scaling sweep (byte-pinned by the
  committed baseline).
* ``virtual.tenk`` — a 10,000-machine fleet: lazily materialized,
  sharded into machine groups (:func:`repro.sim.parallel.shard_groups`),
  with a sparse active client set.  The full per-machine report (10k
  rows) is too large to commit, so the baseline pins the aggregates plus
  ``report_sha1``, the digest of the canonical full report — any
  behavior drift in any of the 10,000 rows changes the digest.
* ``wall`` — measured wall-clock costs: sweep and 10k-sweep durations,
  the headline **sessions per wall-clock second** for the 10k fleet, and
  the template-vs-eager construction comparison (the ``speedup_x``
  acceptance metric: lazy 10k fleet construction vs eager per-machine
  construction, sampled and extrapolated).

Registered with the unified runner as ``fleet``; the committed
``BENCH_fleet.json`` baseline is produced by
``python -m repro.tools.bench --quick`` (see docs/BENCHMARKS.md for the
refresh procedure).  The sweep itself runs through
:func:`repro.tools.fleet_report.run_fleet_sweep`, so ``workers > 1``
shards the cells across processes with byte-identical results.
"""

import json
import time

from benchmarks.conftest import print_table, record
from repro.bench import register
from repro.tools.fleet_report import run_fleet_sweep

FLEET_SIZES = (1, 4, 16, 64)
QUICK_SIZES = (1, 4, 16)

#: Machines in the big-fleet cell (the ISSUE-8 scale target).
TENK_MACHINES = 10_000
#: Machines per shard group for the big-fleet cell.
TENK_SHARD = 256
#: Active clients: nightly full mode works a whole shard's worth...
TENK_CLIENTS = 256
#: ...while the committed quick baseline keeps CI fast with 16.
TENK_CLIENTS_QUICK = 16

#: Machines timed per construction mode (eager construction of all 10k
#: would take minutes; the per-machine cost is flat, so a sample
#: extrapolates faithfully and the sample size is recorded).
CONSTRUCTION_SAMPLE = 8


def _canonical(doc) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ": "))


def _tenk_cell(seed, units_per_client, slice_ms, range_per_unit,
               big_machines, big_clients, big_shard, workers):
    """Run the sharded big-fleet sweep; returns (virtual-dict, seconds)."""
    from repro.crypto.sha1 import sha1

    config = dict(machines=big_machines, units_per_client=units_per_client,
                  slice_ms=slice_ms, range_per_unit=range_per_unit,
                  seed=seed, clients=big_clients)
    start = time.perf_counter()
    [report] = run_fleet_sweep([config], workers=workers,
                               shard_size=big_shard)
    elapsed = time.perf_counter() - start
    digest = sha1(_canonical(report).encode()).hex()
    cell = {k: v for k, v in report.items() if k != "per_machine"}
    cell["active_clients"] = big_clients
    cell["report_sha1"] = digest
    return cell, elapsed


def _construction_wall(big_machines, sample):
    """Template/lazy vs eager per-machine construction, wall-clock.

    The eager baseline uses ``eager_identity`` clones on fresh seeds
    (disjoint from every cache) — the pre-template construction path,
    where each machine pays keygen and AIK enrolment up front.
    """
    from repro.core.fleet import FlickerFleet, derive_machine_seed
    from repro.core.session import FlickerPlatform

    start = time.perf_counter()
    fleet = FlickerFleet(num_machines=big_machines, seed=2008)
    lazy_fleet_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for i in range(sample):
        fleet.hosts[i].platform.tqd.aik_certificate  # noqa: B018
    lazy_per_machine = (time.perf_counter() - start) / sample

    template = FlickerPlatform.template()
    seeds = [derive_machine_seed(0xE5CA1ADE, i) for i in range(sample)]
    start = time.perf_counter()
    for i, seed in enumerate(seeds):
        template.clone(seed=seed, machine_id=f"eager-{i:02d}",
                       eager_identity=True)
    eager_per_machine = (time.perf_counter() - start) / sample

    eager_extrapolated = eager_per_machine * big_machines
    return {
        "lazy_fleet_seconds": round(lazy_fleet_seconds, 6),
        "lazy_active_per_machine_seconds": round(lazy_per_machine, 6),
        "eager_per_machine_seconds": round(eager_per_machine, 6),
        "eager_extrapolated_s": round(eager_extrapolated, 3),
        "sample_machines": sample,
        "speedup_x": round(eager_extrapolated / lazy_fleet_seconds, 1)
        if lazy_fleet_seconds > 0 else float("inf"),
    }


def run_bench(sizes=FLEET_SIZES, seed=2008, units_per_client=1,
              slice_ms=2000.0, range_per_unit=400, workers=1,
              big_machines=TENK_MACHINES, big_clients=TENK_CLIENTS,
              big_shard=TENK_SHARD, construction_sample=CONSTRUCTION_SAMPLE):
    """Registered entry point: scaling sweep + 10k fleet + wall costs."""
    from repro.crypto.rsa import keygen_cache_info

    configs = [
        dict(machines=size, units_per_client=units_per_client,
             slice_ms=slice_ms, range_per_unit=range_per_unit, seed=seed)
        for size in sizes
    ]
    start = time.perf_counter()
    reports = run_fleet_sweep(configs, workers=workers)
    sweep_seconds = time.perf_counter() - start

    tenk, tenk_seconds = _tenk_cell(
        seed, units_per_client, slice_ms, range_per_unit,
        big_machines, big_clients, big_shard, workers)
    construction = _construction_wall(big_machines, construction_sample)

    sessions_per_wall = (tenk["total_sessions"] / tenk_seconds
                         if tenk_seconds > 0 else 0.0)
    return {
        "virtual": {
            "sweep": {str(size): report
                      for size, report in zip(sizes, reports)},
            "tenk": tenk,
        },
        "wall": {
            "sweep_seconds": round(sweep_seconds, 3),
            "tenk_sweep_seconds": round(tenk_seconds, 3),
            # The headline: attested Flicker sessions simulated per
            # wall-clock second on the 10,000-machine fleet.
            "tenk_sessions_per_wall_sec": round(sessions_per_wall, 1),
            "construction": construction,
            "keygen_cache": keygen_cache_info(),
        },
    }


register(
    "fleet", run_bench,
    params={"sizes": FLEET_SIZES, "seed": 2008, "units_per_client": 1,
            "slice_ms": 2000.0, "range_per_unit": 400, "workers": 1,
            "big_machines": TENK_MACHINES, "big_clients": TENK_CLIENTS,
            "big_shard": TENK_SHARD,
            "construction_sample": CONSTRUCTION_SAMPLE},
    quick_params={"sizes": QUICK_SIZES, "seed": 2008, "units_per_client": 1,
                  "slice_ms": 2000.0, "range_per_unit": 400, "workers": 1,
                  "big_machines": TENK_MACHINES,
                  "big_clients": TENK_CLIENTS_QUICK,
                  "big_shard": TENK_SHARD,
                  "construction_sample": CONSTRUCTION_SAMPLE},
    description="Fleet scaling: sessions/virtual-second vs fleet size, "
                "plus the sharded 10,000-machine sweep and template-clone "
                "construction speedup (distributed factoring, §6.2)",
)


def test_fleet_scaling(benchmark):
    results = benchmark.pedantic(
        run_bench, kwargs={"sizes": FLEET_SIZES}, rounds=1, iterations=1,
    )
    sweep = results["virtual"]["sweep"]
    tenk = results["virtual"]["tenk"]
    wall = results["wall"]
    throughput = {
        size: sweep[str(size)]["sessions_per_virtual_second"]
        for size in FLEET_SIZES
    }
    print_table(
        "Fleet scaling: distributed factoring, 1 unit per client",
        ["Machines", "Sessions", "Makespan (ms)", "Sessions/vsec",
         "Speedup", "Net bytes"],
        [
            (size,
             sweep[str(size)]["total_sessions"],
             f"{sweep[str(size)]['makespan_ms']:.1f}",
             f"{throughput[size]:.3f}",
             f"{throughput[size] / throughput[1]:.1f}x",
             sweep[str(size)]["network_bytes"])
            for size in FLEET_SIZES
        ] + [
            (tenk["fleet_size"],
             tenk["total_sessions"],
             f"{tenk['makespan_ms']:.1f}",
             f"{tenk['sessions_per_virtual_second']:.3f}",
             f"{tenk['shards']} shards",
             tenk["network_bytes"])
        ],
    )
    record(benchmark, throughput={str(k): v for k, v in throughput.items()},
           tenk_sessions_per_wall_sec=wall["tenk_sessions_per_wall_sec"],
           construction_speedup_x=wall["construction"]["speedup_x"])

    # Every unit on every fleet size verifies.
    for size in FLEET_SIZES:
        assert sweep[str(size)]["units_accepted"] == size
        assert sweep[str(size)]["units_rejected"] == 0
    # The scaling claim: 16 machines deliver >= 10x the aggregate virtual
    # throughput of one machine (near-linear; the gap is network latency
    # plus the server's serialized verification work).
    assert throughput[16] >= 10.0 * throughput[1]
    assert throughput[64] > throughput[16]
    # The 10k fleet: every dispatched unit verifies, all 10,000 machines
    # are accounted for, and template/lazy construction beats eager
    # per-machine construction by the required 50x margin.
    assert tenk["fleet_size"] == TENK_MACHINES
    assert tenk["units_accepted"] == TENK_CLIENTS
    assert tenk["units_rejected"] == 0
    assert wall["construction"]["speedup_x"] >= 50.0
