"""Fleet scaling — aggregate session throughput vs fleet size.

The fleet's figure of merit: N client machines running the §6.2
distributed-factoring workload *concurrently* complete ~N× the Flicker
sessions of one machine in the same virtual interval, because each
machine's TPM-dominated session cost is paid in parallel while the
server's per-result verification (three RSA public ops, well under a
millisecond) stays negligible.

Writes the deterministic sweep results to ``BENCH_fleet.json`` at the
repository root as the baseline the next change is compared against.
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import print_table, record
from repro.tools.fleet_report import run_fleet

FLEET_SIZES = (1, 4, 16, 64)
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def sweep():
    results = {}
    for size in FLEET_SIZES:
        started = time.perf_counter()
        _, report = run_fleet(
            machines=size, units_per_client=1, slice_ms=2000.0,
            range_per_unit=400, seed=2008,
        )
        wall_s = time.perf_counter() - started
        results[size] = report.to_dict()
        # Simulator performance (machine-dependent, unlike everything
        # else in the dict): how fast the host churns through sessions.
        results[size]["wall_seconds"] = round(wall_s, 3)
        results[size]["sessions_per_wall_second"] = round(
            report.total_sessions / wall_s, 3)
    return results


def test_fleet_scaling(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    throughput = {
        size: results[size]["sessions_per_virtual_second"] for size in FLEET_SIZES
    }
    print_table(
        "Fleet scaling: distributed factoring, 1 unit per client",
        ["Machines", "Sessions", "Makespan (ms)", "Sessions/vsec",
         "Speedup", "Sessions/wsec", "Net bytes"],
        [
            (size,
             results[size]["total_sessions"],
             f"{results[size]['makespan_ms']:.1f}",
             f"{throughput[size]:.3f}",
             f"{throughput[size] / throughput[1]:.1f}x",
             f"{results[size]['sessions_per_wall_second']:.1f}",
             results[size]["network_bytes"])
            for size in FLEET_SIZES
        ],
    )
    record(benchmark, throughput={str(k): v for k, v in throughput.items()})

    # Every unit on every fleet size verifies.
    for size in FLEET_SIZES:
        assert results[size]["units_accepted"] == size
        assert results[size]["units_rejected"] == 0
    # The scaling claim: 16 machines deliver >= 10x the aggregate virtual
    # throughput of one machine (near-linear; the gap is network latency
    # plus the server's serialized verification work).
    assert throughput[16] >= 10.0 * throughput[1]
    assert throughput[64] > throughput[16]

    BASELINE_PATH.write_text(json.dumps(
        {"workload": "distributed-factoring", "seed": 2008,
         "units_per_client": 1, "slice_ms": 2000.0,
         "sweep": {str(size): results[size] for size in FLEET_SIZES}},
        sort_keys=True, separators=(", ", ": "),
    ) + "\n")
