"""Table 3 — impact of periodic rootkit detection on a kernel build.

Paper values (build of Linux 2.6.20; mm:ss)::

    Detection period   Build time   Std dev (s)
    none               7:22.6       2.6
    5:00               7:21.4       1.1
    3:00               7:21.4       0.9
    2:00               7:21.8       1.0
    1:00               7:21.9       1.1
    0:30               7:22.6       1.7

The paper's conclusion: even a 30-second detection period has negligible
impact (the apparent speed-ups are experimental noise).
"""

import pytest

from benchmarks.conftest import print_table, record
from repro.apps.rootkit_detector import simulate_kernel_build
from repro.core import FlickerPlatform

PAPER_ROWS = [
    (None, "7:22.6", 2.6),
    (300.0, "7:21.4", 1.1),
    (180.0, "7:21.4", 0.9),
    (120.0, "7:21.8", 1.0),
    (60.0, "7:21.9", 1.1),
    (30.0, "7:22.6", 1.7),
]


def fmt_mmss(ms: float) -> str:
    total_s = ms / 1000.0
    return f"{int(total_s // 60)}:{total_s % 60:04.1f}"


def run_sweep():
    platform = FlickerPlatform(seed=333)
    results = []
    for period_s, paper_time, paper_std in PAPER_ROWS:
        mean_ms, std_ms = simulate_kernel_build(platform, period_s)
        results.append((period_s, paper_time, paper_std, mean_ms, std_ms))
    return results


def test_table3_build_impact(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "Table 3: Impact of the Rootkit Detector on a kernel build",
        ["Period", "Paper [m:s]", "Paper std (s)", "Measured [m:s]", "Std (s)"],
        [
            (
                "none" if period is None else fmt_mmss(period * 1000.0),
                paper_time,
                f"{paper_std:.1f}",
                fmt_mmss(mean_ms),
                f"{std_ms / 1000.0:.1f}",
            )
            for period, paper_time, paper_std, mean_ms, std_ms in results
        ],
    )
    baseline = results[0][3]
    worst = max(mean for _, _, _, mean, _ in results)
    record(benchmark, baseline_ms=baseline, worst_ms=worst,
           overhead_percent=100.0 * (worst - baseline) / baseline)

    # Shape: the paper's finding — detection impact is lost in the noise.
    # Even at a 30 s period the slowdown stays under 0.5 %.
    for period, _, _, mean_ms, _ in results[1:]:
        assert (mean_ms - baseline) / baseline < 0.005, period
    # And the measurement noise is of the same order as the paper's.
    for _, _, _, _, std_ms in results:
        assert std_ms < 4000.0
