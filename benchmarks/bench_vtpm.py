"""Multi-tenant vTPM sweep benchmark.

The same workload is runnable standalone as
``python -m repro.tools.vtpm``; here the unified runner pins the
standing invariants — every tenant attestation verifies, mid-run
migrations preserve tenant identity, and the report is byte-stable (the
canonical-JSON digest is exact-gated, so any determinism regression in
the multiplexer or the migration path fails the perf gate).
"""

import json
import time

from benchmarks.conftest import print_table, record
from repro.bench import register
from repro.crypto.sha1 import sha1
from repro.tools.vtpm import run_vtpm_sweep


def _report_sha1(report: dict) -> str:
    canonical = json.dumps(report, sort_keys=True, separators=(",", ": "))
    return sha1(canonical.encode("utf-8")).hex()


def run_bench(machines=4, tenants=2, sessions=2, seed=2008, shard_size=None):
    """Registered entry point: sweep invariants + report digest."""
    config = dict(machines=machines, tenants=tenants, sessions=sessions,
                  seed=seed, migrate=True)
    start = time.perf_counter()
    report = run_vtpm_sweep(config, workers=1, shard_size=shard_size)
    elapsed = time.perf_counter() - start

    aiks = {row["aik"] for row in report["per_tenant"]}
    return {
        "virtual": {
            "tenants": report["tenants"],
            "sessions": report["sessions"],
            "verified": report["verified"],
            "migrations": report["migrations"],
            "distinct_aiks": len(aiks),
            "report_sha1": _report_sha1(report),
        },
        "wall": {
            "sessions_per_sec": round(
                report["sessions"] / elapsed, 1) if elapsed else 0.0,
        },
    }


register(
    "vtpm", run_bench,
    params={"machines": 8, "tenants": 2, "sessions": 2, "seed": 2008,
            "shard_size": 4},
    quick_params={"machines": 4, "tenants": 2, "sessions": 2, "seed": 2008},
    description="vTPM multiplexer: multi-tenant attested sessions with "
                "mid-run migration; exact-gated report digest",
)


def test_vtpm_sweep_smoke(benchmark):
    config = dict(machines=4, tenants=2, sessions=2, seed=2008, migrate=True)
    report = benchmark.pedantic(
        lambda: run_vtpm_sweep(config), rounds=1, iterations=1)

    assert report["verified"] == report["sessions"]
    assert report["migrations"] == 2
    # Every tenant keeps a distinct AIK — including across migration.
    aiks = [row["aik"] for row in report["per_tenant"]]
    assert len(set(aiks)) == len(aiks)
    # Determinism spot-check: a rerun reproduces the bytes.
    assert _report_sha1(run_vtpm_sweep(dict(config))) == _report_sha1(report)

    print_table(
        "vTPM sweep by scenario (seed 2008)",
        ("scenario", "tenants"),
        sorted(
            (s, sum(1 for r in report["per_tenant"] if r["scenario"] == s))
            for s in {r["scenario"] for r in report["per_tenant"]}
        ),
    )
    record(benchmark, sessions=report["sessions"],
           verified=report["verified"], migrations=report["migrations"])
