"""§7.2 end-to-end — remote rootkit-detection query latency.

Paper: over 25 trials, the average time from the administrator initiating
the query to the response arriving was 1.02 s (std < 1.4 ms), over a
12-hop path with 9.45 ms average ping.
"""

import pytest

from benchmarks.conftest import print_table, record
from repro.apps.rootkit_detector import RemoteAdministrator
from repro.core import FlickerPlatform

PAPER_MEAN_MS = 1020.0
TRIALS = 25


def run_trials():
    platform = FlickerPlatform(seed=555)
    admin = RemoteAdministrator(platform)
    latencies = []
    for _ in range(TRIALS):
        report = admin.run_detection_query()
        assert report.kernel_clean
        latencies.append(report.query_latency_ms)
    mean = sum(latencies) / len(latencies)
    variance = sum((x - mean) ** 2 for x in latencies) / len(latencies)
    return mean, variance ** 0.5, latencies


def test_e2e_query_latency(benchmark):
    mean, std, latencies = benchmark.pedantic(run_trials, rounds=1, iterations=1)
    print_table(
        "§7.2 end-to-end rootkit query (25 trials)",
        ["Quantity", "Paper", "Measured"],
        [
            ("mean latency (ms)", f"{PAPER_MEAN_MS:.0f}", f"{mean:.1f}"),
            ("std dev (ms)", "<1.4", f"{std:.2f}"),
            ("network RTT share (ms)", "9.45", "9.45"),
        ],
    )
    record(benchmark, mean_ms=mean, std_ms=std)

    assert mean == pytest.approx(PAPER_MEAN_MS, rel=0.03)
    # Deterministic simulation: the run-to-run spread is tiny, like the
    # paper's sub-1.4 ms std dev.
    assert std < 1.4
    # The claim the number supports: fast enough to gate VPN admission.
    assert mean < 1500.0
