"""§7.4.2 — certificate-authority signing latency.

Paper: over 100 trials, signing one certificate request averaged 906.2 ms,
dominated by the TPM Unseal; the RSA signature itself costs ≈4.7 ms.
"""

import pytest

from benchmarks.conftest import print_table, record, record_metrics
from repro.apps.ca import CertificateAuthority, CertificateSigningRequest
from repro.core import FlickerPlatform
from repro.crypto.rsa import generate_rsa_keypair
from repro.sim.rng import DeterministicRNG
from repro.sim.timing import INFINEON_PROFILE

PAPER = {"total_ms": 906.2, "sign_ms": 4.7}
TRIALS = 10


def run_trials(profile=None):
    platform = (
        FlickerPlatform(seed=4242, observability=True)
        if profile is None
        else FlickerPlatform(profile=profile, seed=4242, observability=True)
    )
    ca = CertificateAuthority(platform)
    ca.initialize()
    keys = generate_rsa_keypair(512, DeterministicRNG(4243))
    clock = platform.machine.clock
    latencies = []
    for i in range(TRIALS):
        csr = CertificateSigningRequest(f"host{i}.example.com", keys.public)
        before = clock.now()
        cert = ca.sign(csr)
        latencies.append(clock.now() - before)
        assert cert is not None and cert.verify(ca.public_key)
    sign_events = [
        e.detail["ms"]
        for e in platform.machine.trace.events(kind="work")
        if e.detail["label"] == "rsa-sign"
    ]
    mean = sum(latencies) / len(latencies)
    return mean, sign_events[-1], platform


def test_ca_signing_latency(benchmark):
    mean, sign_ms, platform = benchmark.pedantic(run_trials, rounds=1, iterations=1)
    session = platform.last_session
    print_table(
        "§7.4.2: CA certificate signing",
        ["Quantity", "Paper (ms)", "Measured (ms)"],
        [
            ("total per CSR", PAPER["total_ms"], f"{mean:.1f}"),
            ("RSA signature", PAPER["sign_ms"], f"{sign_ms:.1f}"),
            ("TPM Unseal share", "~898", f"{session.tpm_ms['unseal']:.1f}"),
        ],
    )
    record(benchmark, mean_ms=mean, sign_ms=sign_ms)
    record_metrics(benchmark, platform.obs.registry)

    assert mean == pytest.approx(PAPER["total_ms"], rel=0.10)
    assert sign_ms == pytest.approx(PAPER["sign_ms"], abs=0.5)
    # Shape: the Unseal dominates; the signature is noise by comparison.
    assert session.tpm_ms["unseal"] > 100 * sign_ms


def test_ca_signing_latency_infineon_ablation(benchmark):
    """Ablation: the faster TPM halves the signing latency — confirming
    the bottleneck attribution."""
    mean, _, _ = benchmark.pedantic(
        lambda: run_trials(profile=INFINEON_PROFILE), rounds=1, iterations=1
    )
    print_table(
        "§7.4.2 ablation: CA signing with an Infineon TPM",
        ["TPM", "Total per CSR (ms)"],
        [("Broadcom (paper)", f"{PAPER['total_ms']:.1f}"), ("Infineon", f"{mean:.1f}")],
    )
    record(benchmark, infineon_mean_ms=mean)
    assert mean < 0.55 * PAPER["total_ms"]
