"""Figure 8 — Flicker vs replication efficiency.

The paper plots efficiency (useful-work fraction) against user latency
(1–10 s) for Flicker and for 3/5/7-way replication.  Replication is a
constant 1/k; Flicker's curve rises as the fixed per-session overhead
(SKINIT + Unseal ≈ 0.91 s) amortizes.  The headline claim: "a two second
user latency allows a more efficient distributed application than
replicating to three or more machines."
"""

import pytest

from benchmarks.conftest import print_table, record
from repro.apps.distributed import (
    BOINCClient,
    FactoringWorkUnit,
    ReplicationScheme,
    flicker_efficiency,
)
from repro.core import FlickerPlatform

LATENCIES_S = tuple(range(1, 11))


def measure_flicker_curve():
    """Measure actual sessions at each user latency and compute the
    efficiency as useful work / total session time."""
    platform = FlickerPlatform(seed=888)
    client = BOINCClient(platform)
    curve = {}
    overhead_sample = None
    for latency_s in LATENCIES_S:
        unit = FactoringWorkUnit(unit_id=latency_s, n=15015, start=2, end=4)
        progress = client.start_unit(unit)
        clock = platform.machine.clock
        # Pick the work slice so the *total* session equals the target
        # user latency: work = latency - overhead (measured on the fly).
        if overhead_sample is None:
            before = clock.now()
            progress, _ = client.work_slice(progress, slice_ms=1000.0)
            overhead_sample = (clock.now() - before) - 1000.0
            progress = client.start_unit(
                FactoringWorkUnit(unit_id=100 + latency_s, n=15015, start=2, end=4)
            )
        work_ms = max(0.0, latency_s * 1000.0 - overhead_sample)
        before = clock.now()
        client.work_slice(progress, slice_ms=work_ms)
        total = clock.now() - before
        curve[latency_s] = work_ms / total
    return curve, overhead_sample


def test_fig8_flicker_vs_replication(benchmark):
    curve, overhead_ms = benchmark.pedantic(measure_flicker_curve, rounds=1, iterations=1)
    model = {s: flicker_efficiency(s * 1000.0, overhead_ms) for s in LATENCIES_S}
    rows = [
        (
            s,
            f"{curve[s]:.2f}",
            f"{model[s]:.2f}",
            f"{ReplicationScheme(3).efficiency:.2f}",
            f"{ReplicationScheme(5).efficiency:.2f}",
            f"{ReplicationScheme(7).efficiency:.2f}",
        )
        for s in LATENCIES_S
    ]
    print_table(
        "Figure 8: efficiency vs user latency (s)",
        ["Latency", "Flicker (measured)", "Flicker (model)", "3-way", "5-way", "7-way"],
        rows,
    )
    record(benchmark, curve=curve, overhead_ms=overhead_ms)

    # Shape assertions:
    # 1. Flicker's curve rises monotonically and concavely toward 1.
    values = [curve[s] for s in LATENCIES_S]
    assert values == sorted(values)
    assert values[-1] > 0.89
    # 2. Replication lines are constant; Flicker crosses 3-way below 2 s.
    assert curve[2] > ReplicationScheme(3).efficiency
    assert curve[1] < ReplicationScheme(3).efficiency
    # 3. By 2 s, Flicker beats even 7-way... (1/7 ≈ 0.14 < 0.54)
    assert curve[2] > ReplicationScheme(7).efficiency
    # 4. The measured curve matches the closed-form model.
    for s in LATENCIES_S:
        assert curve[s] == pytest.approx(model[s], abs=0.02)


def test_fig8_crossover_points(benchmark):
    """Locate the exact crossover latencies against each replication level
    (the paper's qualitative claim, made quantitative)."""

    def crossovers():
        overhead_ms = 912.6
        points = {}
        for k in (3, 5, 7):
            target = 1.0 / k
            # Solve (L - o)/L = 1/k  →  L = o * k / (k - 1).
            points[k] = overhead_ms * k / (k - 1) / 1000.0
        return points

    points = benchmark.pedantic(crossovers, rounds=1, iterations=1)
    print_table(
        "Figure 8: crossover latencies",
        ["Replication", "Flicker wins beyond (s)"],
        [(f"{k}-way", f"{latency:.2f}") for k, latency in points.items()],
    )
    record(benchmark, crossovers=points)
    assert points[3] < 2.0  # the paper's two-second claim
    assert points[7] < points[5] < points[3]
