"""Table 2 — SKINIT latency as a function of SLB size.

Paper values (AMD test machine)::

    SLB size (KB):   0     4     16    32    64
    Avg (ms):        0.0   11.9  45.0  89.2  177.5
"""

import pytest

from benchmarks.conftest import print_table, record
from repro.bench import register
from repro.hw.machine import Machine
from repro.hw.skinit import SLB_REGION_SIZE

PAPER_POINTS = {0: 0.0, 4: 11.9, 16: 45.0, 32: 89.2, 64: 177.5}


def measure_skinit_ms(size_kb: int) -> float:
    """Execute a real SKINIT with an SLB measuring ``size_kb`` KB and read
    the virtual time it consumed."""
    machine = Machine(seed=1000 + size_kb)
    for ap in machine.cpu.aps:
        ap.halted = True
    machine.apic.broadcast_init_ipi()
    # A "0-KB" SLB still carries its 4-byte header, and the 16-bit length
    # word tops out just shy of the full 64 KB (as on real hardware).
    length = min(max(size_kb * 1024, 4), 0xFFFC)
    entry = 4 if length > 4 else 0
    header = length.to_bytes(2, "little") + entry.to_bytes(2, "little")
    image = (header + bytes((i * 3) & 0xFF for i in range(length - 4))).ljust(
        SLB_REGION_SIZE, b"\x00"
    )
    machine.memory.write(0x100000, image)
    machine.register_executable(image, lambda m, c, b: None)
    before = machine.clock.now()
    machine.skinit(0, 0x100000)
    return machine.clock.now() - before


def run_bench(sizes_kb=(0, 4, 16, 32, 64)):
    """Registered entry point: SKINIT virtual latency per SLB size."""
    return {
        "virtual": {
            "paper_ms": {str(kb): PAPER_POINTS[kb] for kb in PAPER_POINTS},
            "measured_ms": {str(kb): round(measure_skinit_ms(kb), 6)
                            for kb in sizes_kb},
        },
    }


register(
    "table2_skinit", run_bench, params={"sizes_kb": (0, 4, 16, 32, 64)},
    description="Table 2: SKINIT latency vs SLB size",
)


def test_table2_skinit_vs_slb_size(benchmark):
    measured = benchmark.pedantic(
        lambda: {kb: measure_skinit_ms(kb) for kb in PAPER_POINTS},
        rounds=1, iterations=1,
    )
    print_table(
        "Table 2: SKINIT latency vs SLB size",
        ["SLB size (KB)", "Paper (ms)", "Measured (ms)"],
        [(kb, f"{PAPER_POINTS[kb]:.1f}", f"{measured[kb]:.1f}") for kb in PAPER_POINTS],
    )
    record(benchmark, paper=PAPER_POINTS, measured=measured)

    # Shape: sub-ms at 0 KB, then linear growth dominated by the TPM
    # transfer — successive 16-KB steps cost the same.
    assert measured[0] < 1.0
    for kb, paper_ms in PAPER_POINTS.items():
        if kb:
            assert measured[kb] == pytest.approx(paper_ms, rel=0.08), kb
    # Linearity: 32→64 KB costs twice as much as 16→32 KB.
    step_16_32 = measured[32] - measured[16]
    step_32_64 = measured[64] - measured[32]
    assert abs(step_32_64 - 2 * step_16_32) < 2.0


def test_table2_single_skinit_wall_time(benchmark):
    """Simulator-side: wall time of one 64-KB SKINIT."""
    benchmark(lambda: measure_skinit_ms(64))
