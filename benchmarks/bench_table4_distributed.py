"""Table 4 — operations for distributed computing.

Paper values (per work session, Broadcom TPM)::

    Application work (ms):  1000   2000   4000   8000
    SKINIT (ms):            14.3   14.3   14.3   14.3
    Unseal (ms):            898.3  898.3  898.3  898.3
    Flicker overhead:       47%    30%    18%    10%
"""

import pytest

from benchmarks.conftest import print_table, record
from repro.apps.distributed import BOINCClient, FactoringWorkUnit
from repro.core import FlickerPlatform

WORK_POINTS_MS = (1000, 2000, 4000, 8000)
PAPER = {
    "skinit_ms": 14.3,
    "unseal_ms": 898.3,
    "overhead_percent": {1000: 47, 2000: 30, 4000: 18, 8000: 10},
}


def run_sweep():
    platform = FlickerPlatform(seed=444)
    client = BOINCClient(platform)
    rows = []
    for work_ms in WORK_POINTS_MS:
        # A tiny functional range so virtual work time is the knob.
        unit = FactoringWorkUnit(unit_id=work_ms, n=15015, start=2, end=4)
        progress = client.start_unit(unit)
        clock = platform.machine.clock
        before = clock.now()
        progress, session = client.work_slice(progress, slice_ms=float(work_ms))
        total_ms = clock.now() - before
        rows.append({
            "work_ms": work_ms,
            "skinit_ms": session.phase_ms["skinit"],
            "unseal_ms": session.tpm_ms["unseal"],
            "total_ms": total_ms,
            "overhead_percent": 100.0 * (total_ms - work_ms) / total_ms,
        })
    return rows


def test_table4_distributed_overheads(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "Table 4: Operations for Distributed Computing",
        ["Work (ms)", "SKINIT paper/meas", "Unseal paper/meas", "Overhead paper/meas"],
        [
            (
                r["work_ms"],
                f"{PAPER['skinit_ms']:.1f} / {r['skinit_ms']:.1f}",
                f"{PAPER['unseal_ms']:.1f} / {r['unseal_ms']:.1f}",
                f"{PAPER['overhead_percent'][r['work_ms']]}% / {r['overhead_percent']:.0f}%",
            )
            for r in rows
        ],
    )
    record(benchmark, rows=rows)

    for r in rows:
        assert r["skinit_ms"] == pytest.approx(PAPER["skinit_ms"], abs=1.0)
        assert r["unseal_ms"] == pytest.approx(PAPER["unseal_ms"], rel=0.01)
        assert r["overhead_percent"] == pytest.approx(
            PAPER["overhead_percent"][r["work_ms"]], abs=2.0
        )
    # Shape: overhead fraction decays as work grows; Unseal dominates it.
    fractions = [r["overhead_percent"] for r in rows]
    assert fractions == sorted(fractions, reverse=True)
    for r in rows:
        assert r["unseal_ms"] > 0.9 * (r["total_ms"] - r["work_ms"] - r["skinit_ms"] - 10)


def test_table4_infineon_ablation(benchmark):
    """Ablation: the faster Infineon TPM (Unseal 391 ms) roughly halves
    the 1-second-work overhead fraction."""
    from repro.sim.timing import INFINEON_PROFILE

    def run():
        platform = FlickerPlatform(profile=INFINEON_PROFILE, seed=445)
        client = BOINCClient(platform)
        unit = FactoringWorkUnit(unit_id=1, n=15015, start=2, end=4)
        progress = client.start_unit(unit)
        clock = platform.machine.clock
        before = clock.now()
        client.work_slice(progress, slice_ms=1000.0)
        total = clock.now() - before
        return 100.0 * (total - 1000.0) / total

    overhead_percent = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Table 4 ablation: Infineon TPM",
        ["TPM", "Overhead at 1 s work"],
        [("Broadcom (paper)", "47%"), ("Infineon (measured)", f"{overhead_percent:.0f}%")],
    )
    record(benchmark, infineon_overhead_percent=overhead_percent)
    assert overhead_percent < 32.0
