"""§3.2 "Meaningful Attestation" / §8 — Flicker vs. IMA-style trusted boot.

The paper's qualitative claim, made quantitative: a Flicker verifier
evaluates a handful of log entries and trusts a few hundred lines of code;
an IMA verifier must assess everything loaded since boot (and learns the
platform's whole software inventory in the process).
"""

import pytest

from benchmarks.conftest import print_table, record
from repro.core import FlickerPlatform, PAL
from repro.core.modules import MODULE_REGISTRY, resolve_modules
from repro.osim.ima import IMAVerifier, IntegrityMeasurementArchitecture

#: Software population of a modest desktop: what IMA must measure.
APP_COUNT = 60

#: Very rough LOC the IMA verifier ends up trusting: the kernel plus the
#: measured userland (the paper's "millions of additional lines").
IMA_TRUSTED_LOC = 5_000_000


class PayrollPAL(PAL):
    name = "payroll"
    modules = ("tpm_utils",)

    def run(self, ctx):
        ctx.write_output(b"payroll-result")


def run_comparison():
    platform = FlickerPlatform(seed=6006)
    nonce = b"\x51" * 20

    # --- the Flicker attestation ----------------------------------------
    pal = PayrollPAL()
    session = platform.execute_pal(pal, inputs=b"q3", nonce=nonce)
    attestation = platform.attest(nonce, session)
    report = platform.verifier().verify(attestation, session.image, nonce)
    assert report.ok
    flicker_tcb_loc = sum(
        MODULE_REGISTRY[m].lines_of_code for m in resolve_modules(pal.modules)
    )

    # --- the IMA attestation on the same machine ---------------------------
    ima = IntegrityMeasurementArchitecture(platform.kernel)
    ima.measured_boot()
    verifier = IMAVerifier()
    for entry in ima.log:
        verifier.known_good[entry.name] = entry.measurement
    for i in range(APP_COUNT):
        binary = f"desktop-app-{i}-binary".encode()
        verifier.learn(f"app:app{i}", binary)
        ima.measure_app_launch(f"app{i}", binary)
    quote, log = ima.attest(nonce)
    ima_report = verifier.verify(quote, log, nonce, platform.machine.tpm.aik_public)
    assert ima_report.ok

    return {
        "flicker_entries": len(attestation.event_log),
        "flicker_tcb_loc": flicker_tcb_loc,
        "flicker_disclosed": [label for label, _ in attestation.event_log],
        "ima_entries": ima_report.entries_evaluated,
        "ima_known_good_db": len(verifier.known_good),
        "ima_disclosed": len(ima_report.disclosed_inventory),
    }


def test_attestation_meaningfulness(benchmark):
    m = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        "Flicker vs IMA-style trusted boot (60-app desktop)",
        ["Metric", "Flicker", "IMA trusted boot"],
        [
            ("log entries the verifier evaluates", m["flicker_entries"], m["ima_entries"]),
            ("known-good DB the verifier maintains", 1, m["ima_known_good_db"]),
            ("code the verifier must trust (LOC)", m["flicker_tcb_loc"],
             f"~{IMA_TRUSTED_LOC:,}"),
            ("software inventory disclosed", "PAL session only", m["ima_disclosed"]),
        ],
    )
    record(benchmark, **{k: v for k, v in m.items() if not isinstance(v, list)})

    # The paper's claims, as inequalities:
    assert m["flicker_entries"] <= 6
    assert m["ima_entries"] > 10 * m["flicker_entries"]
    assert m["flicker_tcb_loc"] < 4000  # hundreds-to-few-thousand lines
    assert m["ima_disclosed"] >= APP_COUNT  # leaks the whole inventory


def test_future_hardware_multicore_isolation(benchmark):
    """§7.5 recommendation ([19]): with secure execution confined to one
    core, the OS never pauses — kernel-build impact drops to exactly zero
    even at aggressive detection rates."""
    from repro.apps.rootkit_detector import simulate_kernel_build

    def run():
        current = FlickerPlatform(seed=6007)
        future = FlickerPlatform(seed=6007, multicore_isolation=True)
        rows = []
        for period_s in (30.0, 5.0, 1.0):
            cur_ms, _ = simulate_kernel_build(current, period_s, noise_sigma_ms=0.0)
            fut_ms, _ = simulate_kernel_build(future, period_s, noise_sigma_ms=0.0)
            rows.append((period_s, cur_ms, fut_ms))
        baseline = current.machine.profile.host.kernel_build_ms
        return baseline, rows

    baseline, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Future hardware: OS impact with multicore isolation",
        ["Detection period (s)", "Today (+ms over baseline)", "Multicore isolation"],
        [(p, f"+{cur - baseline:.0f} ms", f"+{fut - baseline:.0f} ms")
         for p, cur, fut in rows],
    )
    record(benchmark, rows=rows)
    for period, cur_ms, fut_ms in rows:
        assert fut_ms == baseline          # literally zero impact
        assert cur_ms > baseline           # today's hardware pays something
