"""Metrics primitives: counters, gauges, histograms, registry semantics."""

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

pytestmark = pytest.mark.obs


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value() == 0
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labelled_children_are_independent(self):
        c = Counter("x")
        c.inc(op="seal")
        c.inc(2, op="unseal")
        assert c.value(op="seal") == 1
        assert c.value(op="unseal") == 2
        assert c.value() == 0

    def test_label_order_does_not_matter(self):
        c = Counter("x")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.value(b="2", a="1") == 2

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_add_value(self):
        g = Gauge("g")
        g.set(10)
        g.add(-3)
        assert g.value() == 7
        g.set(1, shard="a")
        assert g.value(shard="a") == 1


class TestHistogram:
    def test_fixed_cumulative_buckets(self):
        h = Histogram("h", buckets=(10.0, 100.0))
        for ms in (5.0, 50.0, 50.0, 500.0):
            h.observe(ms)
        child = h.snapshot_child()
        assert child["count"] == 4
        assert child["sum"] == pytest.approx(605.0)
        assert child["buckets"] == [["10.0", 1], ["100.0", 3], ["+Inf", 4]]

    def test_boundary_is_upper_inclusive(self):
        h = Histogram("h", buckets=(10.0,))
        h.observe(10.0)
        assert h.snapshot_child()["buckets"][0] == ["10.0", 1]

    def test_default_buckets_are_fixed_and_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(DEFAULT_LATENCY_BUCKETS_MS)
        assert Histogram("h").boundaries == DEFAULT_LATENCY_BUCKETS_MS

    def test_rejects_bad_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(10.0, 10.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(100.0, 10.0))

    def test_count_and_total_per_label(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(0.5, op="a")
        h.observe(2.5, op="a")
        assert h.count(op="a") == 2
        assert h.total(op="a") == pytest.approx(3.0)
        assert h.count(op="b") == 0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.histogram("h") is reg.histogram("h")
        assert "c" in reg and "missing" not in reg

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_sorted_and_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("z_total").inc(b="2")
            reg.counter("z_total").inc(a="1")
            reg.gauge("a_gauge").set(3)
            reg.histogram("m_ms", buckets=(1.0,)).observe(0.5, op="x")
            return reg

        snap = build().snapshot()
        assert [s["name"] for s in snap] == ["a_gauge", "m_ms", "z_total", "z_total"]
        # label sets within one metric are sorted too
        assert [s["labels"] for s in snap[2:]] == [{"a": "1"}, {"b": "2"}]
        assert snap == build().snapshot()

    def test_format_renders_one_line_per_sample(self):
        reg = MetricsRegistry()
        reg.counter("sessions_total").inc(pal="ca")
        reg.histogram("ms", buckets=(1.0,)).observe(0.5)
        text = reg.format()
        assert "sessions_total{pal=ca} 1" in text
        assert "ms count=1 sum=0.500" in text
