"""obs_report: the Figure 2 breakdown must be reproducible from spans alone."""

import json

import pytest

from repro.core.session import SessionResult
from repro.tools.obs_report import (
    build_report,
    counter_rows,
    main,
    phase_breakdown,
    run_instrumented,
    session_spans,
    tpm_breakdown,
)

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def ca_platform():
    """One instrumented CA run shared by the read-only assertions below."""
    return run_instrumented("ca", seed=2008)


class TestPhaseBreakdown:
    def test_matches_session_result_exactly(self, ca_platform):
        """Acceptance: the Figure 2 phase breakdown is reproduced from the
        recorded spans alone, matching `SessionResult.phase_ms`."""
        phases = phase_breakdown(ca_platform.obs)
        result = ca_platform.last_session
        expected = {k: v for k, v in result.phase_ms.items()
                    if k in SessionResult.FIGURE2_PHASES}
        assert set(phases) == set(expected)
        for name, ms in expected.items():
            assert phases[name] == pytest.approx(ms, abs=1e-9)

    def test_session_span_duration_matches_total(self, ca_platform):
        final = session_spans(ca_platform.obs)[-1]
        assert final.duration_ms == pytest.approx(
            ca_platform.last_session.total_ms, abs=1e-9)

    def test_earlier_sessions_addressable(self, ca_platform):
        first = phase_breakdown(ca_platform.obs, session_index=0)
        last = phase_breakdown(ca_platform.obs, session_index=-1)
        # CA session 0 is keygen, session 1 is sign: different workloads,
        # different PAL-exec times.
        assert first["pal-exec"] != last["pal-exec"]

    def test_no_spans_is_an_error(self):
        from repro.obs import ObservabilityHub
        from repro.sim.clock import VirtualClock

        with pytest.raises(ValueError):
            phase_breakdown(ObservabilityHub(VirtualClock()))


class TestTPMBreakdown:
    def test_unseal_and_quote_dominate_ca(self, ca_platform):
        rows = tpm_breakdown(ca_platform.obs)
        assert rows, "expected TPM command rows"
        ops = [op for op, *_ in rows]
        # Figure 8's claim: TPM operations dominate; quote and unseal lead.
        assert set(ops[:2]) == {"quote", "unseal"}
        for _, count, total, mean in rows:
            assert count >= 1
            assert mean == pytest.approx(total / count)

    def test_counter_rows_flatten_labels(self, ca_platform):
        rows = dict(counter_rows(ca_platform.obs))
        assert rows["skinit_total"] == 2
        assert rows["sessions_total{pal=flicker-ca}"] == 2


class TestReportText:
    def test_report_contains_figure2_phases_and_tpm_table(self, ca_platform):
        text = build_report(ca_platform, "ca", 2008)
        for needle in ("Figure 2 phase breakdown", "skinit", "pal-exec",
                       "TOTAL", "TPM command latencies", "unseal",
                       "## Counters"):
            assert needle in text

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            run_instrumented("minesweeper")


class TestCLI:
    def test_main_writes_deterministic_exports(self, tmp_path, capsys):
        args = ["--seed", "2008"]
        a_jsonl, a_chrome = tmp_path / "a.jsonl", tmp_path / "a.json"
        b_jsonl, b_chrome = tmp_path / "b.jsonl", tmp_path / "b.json"
        assert main(args + ["--jsonl", str(a_jsonl), "--chrome", str(a_chrome)]) == 0
        assert main(args + ["--jsonl", str(b_jsonl), "--chrome", str(b_chrome)]) == 0
        out = capsys.readouterr().out
        assert "Figure 2 phase breakdown" in out
        assert a_jsonl.read_bytes() == b_jsonl.read_bytes()
        assert a_chrome.read_bytes() == b_chrome.read_bytes()
        # The Chrome file is well-formed trace JSON.
        doc = json.loads(a_chrome.read_text())
        assert {"displayTimeUnit", "traceEvents"} <= set(doc)

    def test_main_other_apps_run(self, capsys):
        assert main(["--app", "rootkit"]) == 0
        assert "Figure 2" in capsys.readouterr().out
