"""Span hierarchy, platform wiring, and zero-overhead-when-disabled."""

import pytest

from repro.core import FlickerPlatform, PAL
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.obs import ObservabilityHub
from repro.sim.clock import VirtualClock

pytestmark = pytest.mark.obs


class SealingPAL(PAL):
    """Touches the TPM so sessions produce TPM child spans."""

    name = "obs-sealing"
    modules = ("tpm_utils",)

    def run(self, ctx):
        blob = ctx.tpm.seal_to_pal(b"secret", ctx.self_pcr17)
        ctx.write_output(blob.encode())


@pytest.fixture
def observed_platform() -> FlickerPlatform:
    return FlickerPlatform(seed=1234, observability=True)


class TestHubBasics:
    def test_clock_listener_builds_hierarchy(self):
        clock = VirtualClock()
        hub = ObservabilityHub(clock)
        clock.set_span_listener(hub)
        with clock.span("outer"):
            with clock.span("inner"):
                clock.advance(3.0)
            clock.advance(1.0)
        inner, outer = hub.spans
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration_ms == pytest.approx(3.0)
        assert outer.duration_ms == pytest.approx(4.0)

    def test_record_complete_parents_under_open_span(self):
        clock = VirtualClock()
        hub = ObservabilityHub(clock)
        with hub.span("phase") as phase:
            clock.advance(5.0)
            tpm = hub.record_complete("tpm:seal", "tpm", duration_ms=5.0, op="seal")
        assert tpm.parent_id == phase.span_id
        assert tpm.start_ms == pytest.approx(0.0)
        assert tpm.end_ms == pytest.approx(5.0)

    def test_events_are_ordered_instants(self):
        clock = VirtualClock()
        hub = ObservabilityHub(clock)
        hub.event("a")
        clock.advance(1.0)
        hub.event("b")
        assert [(e.seq, e.name, e.time_ms) for e in hub.events] == [
            (1, "a", 0.0), (2, "b", 1.0)]

    def test_descendants_walks_whole_subtree(self):
        clock = VirtualClock()
        hub = ObservabilityHub(clock)
        with hub.span("root") as root:
            with hub.span("mid"):
                with hub.span("leaf"):
                    clock.advance(1.0)
        names = {s.name for s in hub.descendants(root)}
        assert names == {"mid", "leaf"}


class TestPlatformWiring:
    def test_disabled_by_default_and_zero_state(self):
        platform = FlickerPlatform(seed=1234)
        assert platform.obs is None
        assert platform.machine.obs is None
        assert platform.machine.tpm.obs is None
        assert platform.machine.clock._span_listener is None

    def test_enable_disable_roundtrip(self):
        platform = FlickerPlatform(seed=1234)
        hub = platform.machine.enable_observability()
        assert platform.obs is hub
        assert platform.machine.enable_observability() is hub  # idempotent
        platform.machine.disable_observability()
        assert platform.obs is None
        assert platform.machine.tpm.obs is None

    def test_session_hierarchy(self, observed_platform):
        result = observed_platform.execute_pal(SealingPAL())
        assert result.outputs
        hub = observed_platform.obs
        (session,) = hub.find_spans(name="session", category="session")
        children = {s.name for s in hub.children(session)}
        assert "flicker-session" in children
        (attempt,) = hub.find_spans(name="flicker-session")
        phases = {s.name for s in hub.children(attempt)}
        assert {"init-slb", "suspend-os", "skinit", "restore-os"} <= phases
        # TPM commands are children of the phase that issued them.
        tpm_spans = hub.find_spans(category="tpm")
        assert tpm_spans, "expected per-command TPM spans"
        phase_ids = {s.span_id for s in hub.spans if s.category == "phase"}
        assert all(s.parent_id in phase_ids for s in tpm_spans)

    def test_spans_cover_virtual_time_consistently(self, observed_platform):
        observed_platform.execute_pal(SealingPAL())
        hub = observed_platform.obs
        for span in hub.spans:
            assert span.end_ms >= span.start_ms
        (session,) = hub.find_spans(name="session")
        for child in hub.descendants(session):
            assert child.start_ms >= session.start_ms - 1e-9
            assert child.end_ms <= session.end_ms + 1e-9

    def test_session_metrics_recorded(self, observed_platform):
        observed_platform.execute_pal(SealingPAL())
        reg = observed_platform.obs.registry
        assert reg.counter("sessions_total").value(pal="obs-sealing") == 1
        assert reg.counter("skinit_total").value() == 1
        assert reg.histogram("session_total_ms").count(pal="obs-sealing") == 1
        assert reg.counter("tpm_commands_total").value(op="seal") == 1
        assert reg.counter("session_module_links_total").value(module="tpm_utils") == 1

    def test_retry_counters_and_events(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(kind="tpm-transient", session=0, op="seal", count=1),))
        platform = FlickerPlatform(seed=1234, observability=True)
        FaultInjector(plan).install(platform)
        result = platform.execute_pal(SealingPAL())
        assert result.retries == 1
        reg = platform.obs.registry
        assert reg.counter("session_retries_total").value(pal="obs-sealing") == 1
        assert any(e.name == "session.retry" for e in platform.obs.events)


class TestZeroOverheadSemantics:
    def test_virtual_time_identical_with_and_without_obs(self):
        """Observability must never perturb the simulation itself."""
        base = FlickerPlatform(seed=1234).execute_pal(SealingPAL())
        observed = FlickerPlatform(seed=1234, observability=True).execute_pal(
            SealingPAL())
        assert observed.total_ms == base.total_ms
        assert observed.phase_ms == base.phase_ms
        assert observed.tpm_ms == base.tpm_ms
        assert observed.outputs == base.outputs

    def test_mid_span_enable_does_not_corrupt(self):
        """Wiring the hub while a clock span is open drops the orphan close."""
        clock = VirtualClock()
        hub = ObservabilityHub(clock)
        with clock.span("outer"):
            clock.set_span_listener(hub)
            with clock.span("inner"):
                clock.advance(1.0)
        # 'outer' was opened before the listener existed: only 'inner' lands.
        assert [s.name for s in hub.spans] == ["inner"]
        assert hub.spans[0].parent_id is None
