"""Exporter determinism and EventTrace-derived ordering invariants."""

import json

import pytest

from repro.core import FlickerPlatform
from repro.obs import (
    export_chrome_trace,
    export_jsonl,
    metrics_to_jsonl,
    trace_to_chrome_events,
)
from repro.obs.export import FORMAT_NAME, FORMAT_VERSION
from repro.tools.obs_report import run_instrumented

pytestmark = pytest.mark.obs


def instrumented_ca():
    return run_instrumented("ca", seed=2008)


class TestDeterminism:
    def test_jsonl_byte_identical_across_runs(self):
        a = export_jsonl(instrumented_ca().obs)
        b = export_jsonl(instrumented_ca().obs)
        assert a.encode() == b.encode()

    def test_chrome_trace_byte_identical_across_runs(self):
        p1, p2 = instrumented_ca(), instrumented_ca()
        a = export_chrome_trace(p1.obs, p1.machine.trace)
        b = export_chrome_trace(p2.obs, p2.machine.trace)
        assert a.encode() == b.encode()

    def test_seed_invariant_but_app_sensitive(self):
        # Virtual timings come from the timing profile, not the seed:
        # changing the seed changes key material but not the observable
        # span/metric stream, while changing the workload does.
        a = export_jsonl(run_instrumented("ca", seed=2008).obs)
        b = export_jsonl(run_instrumented("ca", seed=2009).obs)
        c = export_jsonl(run_instrumented("rootkit", seed=2008).obs)
        assert a == b
        assert a != c


class TestJSONLFormat:
    def test_every_line_is_json_and_meta_leads(self):
        lines = export_jsonl(instrumented_ca().obs).splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0] == {
            "format": FORMAT_NAME, "type": "meta", "version": FORMAT_VERSION}
        kinds = {r["type"] for r in records}
        assert kinds == {"meta", "span", "event", "metric"}

    def test_span_records_reference_valid_parents(self):
        records = [json.loads(line) for line in
                   export_jsonl(instrumented_ca().obs).splitlines()]
        spans = [r for r in records if r["type"] == "span"]
        ids = {s["id"] for s in spans}
        for span in spans:
            assert span["end_ms"] >= span["start_ms"]
            assert span["parent"] is None or span["parent"] in ids

    def test_metrics_only_export(self):
        hub = instrumented_ca().obs
        lines = metrics_to_jsonl(hub.registry).splitlines()
        assert lines
        assert all(json.loads(line)["type"] == "metric" for line in lines)


class TestChromeTraceFormat:
    def test_document_shape(self):
        platform = instrumented_ca()
        doc = json.loads(export_chrome_trace(platform.obs, platform.machine.trace))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"  # process-name metadata
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert "id" in event["args"]

    def test_duration_events_sorted_by_start(self):
        platform = instrumented_ca()
        doc = json.loads(export_chrome_trace(platform.obs))
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert ts == sorted(ts)


class TestEventTraceBridge:
    """`EventTrace`-derived instants must preserve the trace's total order."""

    def test_seq_reconstructs_original_order(self):
        platform = instrumented_ca()
        trace = platform.machine.trace
        derived = trace_to_chrome_events(trace)
        assert len(derived) == len(trace)
        seqs = [e["args"]["seq"] for e in derived]
        assert seqs == list(range(len(trace)))
        # Sorting by (ts, seq) — what a trace viewer does — is a no-op:
        # ties on virtual timestamp never reorder events.
        assert sorted(derived, key=lambda e: (e["ts"], e["args"]["seq"])) == derived

    def test_timestamps_monotone_nondecreasing(self):
        trace = instrumented_ca().machine.trace
        ts = [e["ts"] for e in trace_to_chrome_events(trace)]
        assert ts == sorted(ts)

    def test_protocol_ordering_survives_derivation(self):
        """The PCR-17 ordering invariant (reset before SKINIT, sentinel
        extend before OS resume) is visible in the derived events."""
        platform = run_instrumented("rootkit", seed=2008)  # single session
        trace = platform.machine.trace
        assert trace.ordered_before("dynamic_pcr_reset", "skinit")
        derived = trace_to_chrome_events(trace)
        names = [e["name"] for e in derived]
        assert names.index("tpm/dynamic_pcr_reset") < names.index("cpu/skinit")
        last_extend = max(i for i, n in enumerate(names) if n == "tpm/pcr_extend")
        last_resume = max(i for i, n in enumerate(names) if n == "flicker/os-resumed")
        assert last_extend < last_resume


class TestMachineTracks:
    """Spans/events carrying a ``machine`` attribute render on their own
    Chrome track (pid); without machine labels the legacy single-track
    bytes are unchanged."""

    def test_default_output_has_single_track(self):
        doc = json.loads(export_chrome_trace(instrumented_ca().obs))
        assert {e["pid"] for e in doc["traceEvents"]} == {1}

    def test_machine_attribute_maps_to_distinct_pid(self):
        from repro.obs.spans import ObservabilityHub
        from repro.sim.clock import VirtualClock

        clock = VirtualClock()
        hub = ObservabilityHub(clock, machine="client-03")
        with hub.span("session", category="session"):
            clock.advance(1.0)
        doc = json.loads(export_chrome_trace(hub))
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["args"]["machine"] == "client-03"
        assert spans[0]["pid"] != 1
        names = {e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
        assert "flicker-virtual-platform/client-03" in names

    def test_fleet_export_gives_one_track_per_machine(self):
        from repro.obs import export_fleet_chrome_trace
        from repro.obs.spans import ObservabilityHub
        from repro.sim.clock import VirtualClock

        hubs = {}
        for machine in ("client-00", "client-01", "server"):
            clock = VirtualClock()
            hub = ObservabilityHub(clock, machine=machine)
            with hub.span("work", category="session"):
                clock.advance(2.0)
            hubs[machine] = hub
        doc = json.loads(export_fleet_chrome_trace(hubs))
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len({e["pid"] for e in spans}) == 3
        # pid assignment is sorted-label order: stable across runs.
        by_machine = {e["args"]["machine"]: e["pid"] for e in spans}
        assert by_machine["client-00"] < by_machine["client-01"] < by_machine["server"]

    def test_pid_mapping_ignores_event_order(self):
        from repro.obs.export import _machine_pids

        assert _machine_pids({"b", "a", None}) == _machine_pids({None, "a", "b"})
        assert _machine_pids({"a", "b"}) == {None: 1, "a": 2, "b": 3}
