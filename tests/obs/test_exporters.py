"""Exporter determinism and EventTrace-derived ordering invariants."""

import json

import pytest

from repro.core import FlickerPlatform
from repro.obs import (
    export_chrome_trace,
    export_jsonl,
    metrics_to_jsonl,
    trace_to_chrome_events,
)
from repro.obs.export import FORMAT_NAME, FORMAT_VERSION
from repro.tools.obs_report import run_instrumented

pytestmark = pytest.mark.obs


def instrumented_ca():
    return run_instrumented("ca", seed=2008)


class TestDeterminism:
    def test_jsonl_byte_identical_across_runs(self):
        a = export_jsonl(instrumented_ca().obs)
        b = export_jsonl(instrumented_ca().obs)
        assert a.encode() == b.encode()

    def test_chrome_trace_byte_identical_across_runs(self):
        p1, p2 = instrumented_ca(), instrumented_ca()
        a = export_chrome_trace(p1.obs, p1.machine.trace)
        b = export_chrome_trace(p2.obs, p2.machine.trace)
        assert a.encode() == b.encode()

    def test_seed_invariant_but_app_sensitive(self):
        # Virtual timings come from the timing profile, not the seed:
        # changing the seed changes key material but not the observable
        # span/metric stream, while changing the workload does.
        a = export_jsonl(run_instrumented("ca", seed=2008).obs)
        b = export_jsonl(run_instrumented("ca", seed=2009).obs)
        c = export_jsonl(run_instrumented("rootkit", seed=2008).obs)
        assert a == b
        assert a != c


class TestJSONLFormat:
    def test_every_line_is_json_and_meta_leads(self):
        lines = export_jsonl(instrumented_ca().obs).splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0] == {
            "format": FORMAT_NAME, "type": "meta", "version": FORMAT_VERSION}
        kinds = {r["type"] for r in records}
        assert kinds == {"meta", "span", "event", "metric"}

    def test_span_records_reference_valid_parents(self):
        records = [json.loads(line) for line in
                   export_jsonl(instrumented_ca().obs).splitlines()]
        spans = [r for r in records if r["type"] == "span"]
        ids = {s["id"] for s in spans}
        for span in spans:
            assert span["end_ms"] >= span["start_ms"]
            assert span["parent"] is None or span["parent"] in ids

    def test_metrics_only_export(self):
        hub = instrumented_ca().obs
        lines = metrics_to_jsonl(hub.registry).splitlines()
        assert lines
        assert all(json.loads(line)["type"] == "metric" for line in lines)


class TestChromeTraceFormat:
    def test_document_shape(self):
        platform = instrumented_ca()
        doc = json.loads(export_chrome_trace(platform.obs, platform.machine.trace))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"  # process-name metadata
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert "id" in event["args"]

    def test_duration_events_sorted_by_start(self):
        platform = instrumented_ca()
        doc = json.loads(export_chrome_trace(platform.obs))
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert ts == sorted(ts)


class TestEventTraceBridge:
    """`EventTrace`-derived instants must preserve the trace's total order."""

    def test_seq_reconstructs_original_order(self):
        platform = instrumented_ca()
        trace = platform.machine.trace
        derived = trace_to_chrome_events(trace)
        assert len(derived) == len(trace)
        seqs = [e["args"]["seq"] for e in derived]
        assert seqs == list(range(len(trace)))
        # Sorting by (ts, seq) — what a trace viewer does — is a no-op:
        # ties on virtual timestamp never reorder events.
        assert sorted(derived, key=lambda e: (e["ts"], e["args"]["seq"])) == derived

    def test_timestamps_monotone_nondecreasing(self):
        trace = instrumented_ca().machine.trace
        ts = [e["ts"] for e in trace_to_chrome_events(trace)]
        assert ts == sorted(ts)

    def test_protocol_ordering_survives_derivation(self):
        """The PCR-17 ordering invariant (reset before SKINIT, sentinel
        extend before OS resume) is visible in the derived events."""
        platform = run_instrumented("rootkit", seed=2008)  # single session
        trace = platform.machine.trace
        assert trace.ordered_before("dynamic_pcr_reset", "skinit")
        derived = trace_to_chrome_events(trace)
        names = [e["name"] for e in derived]
        assert names.index("tpm/dynamic_pcr_reset") < names.index("cpu/skinit")
        last_extend = max(i for i, n in enumerate(names) if n == "tpm/pcr_extend")
        last_resume = max(i for i, n in enumerate(names) if n == "flicker/os-resumed")
        assert last_extend < last_resume
