"""Shared fixtures for the Flicker reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core import FlickerPlatform
from repro.hw import Machine
from repro.osim import UntrustedKernel
from repro.sim import DeterministicRNG


@pytest.fixture
def rng() -> DeterministicRNG:
    """A deterministic RNG with a fixed seed."""
    return DeterministicRNG(0x7E57)


@pytest.fixture
def machine() -> Machine:
    """A bare simulated machine (no OS)."""
    return Machine(seed=1234)


@pytest.fixture
def kernel(machine: Machine) -> UntrustedKernel:
    """A booted untrusted kernel on ``machine``."""
    return UntrustedKernel(machine)


@pytest.fixture
def platform() -> FlickerPlatform:
    """A fully assembled Flicker deployment."""
    return FlickerPlatform(seed=1234)
