"""Shared fixtures for the Flicker reproduction test suite.

Suite-speed notes
-----------------

RSA key generation dominated the suite's wall time until two levers landed:

* ``repro.crypto.rsa`` memoizes ``generate_rsa_keypair`` on ``(bits,
  rng state)``.  Every ``FlickerPlatform(seed=1234)`` replays identical RNG
  states, so after the first platform of a run, later ones reuse the same
  keypairs for free.  This is why the function-scoped ``platform`` fixture
  stays cheap despite building a whole machine per test.
* Platforms default to 512-bit functional/TPM keys (the ``functional_rsa_bits``
  / ``tpm_key_bits`` knobs on :class:`FlickerPlatform`).  512 is the floor for
  the application paths: EMSA-PKCS1-v1_5/SHA-1 signatures need a >=368-bit
  modulus and the secure-channel padding needs >=408 bits, so don't pass
  anything smaller.  Full-size 1024-bit keys stay covered by the
  ``slow``-marked tests in ``tests/integration/test_full_size_keys.py``.

The session-scoped fixtures below are for *read-only* checks (inspecting
timing profiles, module inventories, verifier maths).  Anything that runs
sessions, extends PCRs, or mutates kernel state must use the function-scoped
fixtures so tests stay order-independent.
"""

from __future__ import annotations

import pytest

from repro.core import FlickerPlatform
from repro.hw import Machine
from repro.osim import UntrustedKernel
from repro.sim import DeterministicRNG


def pytest_addoption(parser: pytest.Parser) -> None:
    """Suite-wide options.

    ``--fuzz-seed`` reseeds the bounded fuzz campaigns in ``tests/fuzz/``
    (plumbed through the ``fuzz_seed`` fixture in
    ``tests/fuzz/conftest.py``).  The default matches the CI smoke seed so
    a plain ``pytest`` run reproduces exactly what CI executed.
    """
    parser.addoption(
        "--fuzz-seed",
        action="store",
        type=int,
        default=2008,
        help="seed for the bounded fuzz campaigns in tests/fuzz/",
    )


@pytest.fixture
def rng() -> DeterministicRNG:
    """A deterministic RNG with a fixed seed."""
    return DeterministicRNG(0x7E57)


@pytest.fixture
def machine() -> Machine:
    """A bare simulated machine (no OS)."""
    return Machine(seed=1234)


@pytest.fixture
def kernel(machine: Machine) -> UntrustedKernel:
    """A booted untrusted kernel on ``machine``."""
    return UntrustedKernel(machine)


@pytest.fixture
def platform() -> FlickerPlatform:
    """A fully assembled Flicker deployment."""
    return FlickerPlatform(seed=1234)


@pytest.fixture(scope="session")
def shared_platform() -> FlickerPlatform:
    """A session-scoped platform for **read-only** assertions.

    Built once per pytest run; tests using it must not execute sessions or
    otherwise mutate machine/TPM state — use ``platform`` for that.
    """
    return FlickerPlatform(seed=1234)


@pytest.fixture(scope="session")
def shared_machine() -> Machine:
    """A session-scoped bare machine for **read-only** assertions."""
    return Machine(seed=1234)
