"""Parallel campaign/sweep executors produce byte-identical reports."""

import json

import pytest

from repro.faults import FaultCampaign
from repro.faults.campaign import report_json
from repro.tools.fleet_report import run_fleet_sweep

pytestmark = pytest.mark.faults


class TestParallelCampaign:
    def run(self, workers):
        return FaultCampaign(seeds=range(3), apps=("rootkit", "ssh"),
                             workers=workers).run()

    def test_parallel_report_byte_identical_to_serial(self):
        assert report_json(self.run(workers=2)) == report_json(self.run(workers=1))

    def test_workers_knob_not_recorded_in_report(self):
        """The executor is an implementation detail: the report of a
        parallel run must not betray how it was produced."""
        assert "workers" not in report_json(self.run(workers=2))


class TestParallelFleetSweep:
    CONFIGS = [
        dict(machines=1, units_per_client=1, seed=2008),
        dict(machines=2, units_per_client=1, seed=2008),
        dict(machines=2, units_per_client=1, seed=7),
    ]

    def test_parallel_sweep_byte_identical_to_serial(self):
        serial = run_fleet_sweep(self.CONFIGS, workers=1)
        parallel = run_fleet_sweep(self.CONFIGS, workers=2)
        assert (json.dumps(parallel, sort_keys=True)
                == json.dumps(serial, sort_keys=True))

    def test_sweep_results_come_back_in_config_order(self):
        reports = run_fleet_sweep(self.CONFIGS, workers=2)
        assert [r["fleet_size"] for r in reports] == [1, 2, 2]
