"""Campaign runner: outcome classification, report determinism, replay."""

import json

import pytest

from repro.faults import FaultCampaign, FaultPlan, FaultSpec, run_scenario
from repro.faults.campaign import APPS, OUTCOMES, main, replay, report_json
from repro.faults.plan import ANY_SESSION
from repro.tools.fault_report import format_report

pytestmark = pytest.mark.faults


def plan_of(*specs):
    return FaultPlan(seed=0, specs=tuple(specs))


class TestRunScenario:
    def test_fault_free_plan_is_ok(self):
        record = run_scenario("rootkit", plan_of(
            FaultSpec(kind="dma-probe", session=99)))  # never reached
        assert record["outcome"] == "ok"
        assert record["faults_fired"] == []
        assert record["leaks"] == []

    def test_pal_exception_classifies_as_session_aborted(self):
        record = run_scenario("rootkit", plan_of(
            FaultSpec(kind="pal-exception", session=0)))
        assert record["outcome"] == "session-aborted"
        assert len(record["faults_fired"]) == 1

    def test_transient_quote_fault_classifies_as_retried_ok(self):
        record = run_scenario("rootkit", plan_of(
            FaultSpec(kind="tpm-transient", session=ANY_SESSION, op="quote",
                      count=1)))
        assert record["outcome"] == "retried-ok"
        assert record["retries"] >= 1

    def test_bit_flip_is_detected_not_leaked(self):
        record = run_scenario("rootkit", plan_of(
            FaultSpec(kind="slb-bit-flip", session=0, magnitude=5)))
        assert record["outcome"] in ("attestation-rejected", "session-aborted")
        assert record["leaks"] == []

    def test_probes_are_counted_as_blocked(self):
        record = run_scenario("rootkit", plan_of(
            FaultSpec(kind="dma-probe", session=0),
            FaultSpec(kind="debug-probe", session=0)))
        assert record["probes_blocked"] == 2
        assert record["outcome"] != "secret-leaked"

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            run_scenario("minesweeper", plan_of(
                FaultSpec(kind="pal-exception")))

    def test_registry_folds_outcome_counters(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        run_scenario("rootkit", plan_of(
            FaultSpec(kind="tpm-transient", session=ANY_SESSION, op="quote",
                      count=1)), registry=registry)
        run_scenario("rootkit", plan_of(
            FaultSpec(kind="dma-probe", session=0)), registry=registry)
        counters = {
            (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
            for s in registry.snapshot() if s["kind"] == "counter"
        }
        outcomes = ("app", "rootkit"), ("outcome", "retried-ok")
        assert counters[("campaign_outcomes_total", outcomes)] == 1
        assert counters[(
            "campaign_faults_fired_total", (("kind", "tpm-transient"),))] == 1
        assert counters[(
            "campaign_probes_blocked_total", (("app", "rootkit"),))] == 1
        assert counters[(
            "campaign_retries_total", (("app", "rootkit"),))] >= 1


# Full campaign sweeps: skipped by the default CI job (-m "not slow"),
# run in full by the nightly workflow.
@pytest.mark.slow
class TestCampaignReport:
    def run_small(self):
        return FaultCampaign(seeds=range(3), apps=("rootkit", "ssh")).run()

    def test_report_json_is_byte_identical_across_runs(self):
        assert report_json(self.run_small()) == report_json(self.run_small())

    def test_summary_counts_match_results(self):
        report = self.run_small()
        assert report["summary"]["runs"] == len(report["results"]) == 6
        assert sum(report["summary"]["outcomes"].values()) == 6
        assert set(report["summary"]["outcomes"]) == set(OUTCOMES)

    def test_no_secret_leaks(self):
        assert self.run_small()["summary"]["secret_leaked"] == 0

    def test_report_is_json_round_trippable(self):
        report = self.run_small()
        assert json.loads(report_json(report)) == report

    def test_formatter_renders_report(self):
        text = format_report(self.run_small())
        assert "Outcome classes per application" in text
        assert "secret-leaked = 0" in text


class TestReplay:
    def test_replay_reproduces_campaign_record(self):
        campaign = FaultCampaign(seeds=[2], apps=("rootkit",))
        (record,) = campaign.run()["results"]
        replayed = replay(2, "rootkit")
        trace = replayed.pop("fault_trace")
        assert replayed == record
        # Every fired fault shows up in the replayed trace.
        assert len(trace) == len(record["faults_fired"])
        for event in trace:
            assert event["kind"] in {f["kind"] for f in record["faults_fired"]}


class TestCLI:
    def test_main_writes_deterministic_report(self, tmp_path, capsys):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        argv = ["--seeds", "2", "--apps", "rootkit", "--out"]
        assert main(argv + [str(out_a)]) == 0
        assert main(argv + [str(out_b)]) == 0
        capsys.readouterr()
        assert out_a.read_bytes() == out_b.read_bytes()
        report = json.loads(out_a.read_text())
        assert report["summary"]["runs"] == 2

    def test_main_replay_prints_trace(self, capsys):
        assert main(["--replay", "1", "--app", "rootkit"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["seed"] == 1
        assert "fault_trace" in record
