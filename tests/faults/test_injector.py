"""FaultInjector mechanics: determinism, gating, trace observability."""

import pytest

from repro.core import FlickerPlatform, PAL
from repro.errors import (
    FaultPlanError,
    PALRuntimeError,
    SessionAbortedError,
    TPMTransientError,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec

pytestmark = pytest.mark.faults


class EchoPAL(PAL):
    name = "echo"
    modules = ()

    def run(self, ctx):
        ctx.write_output(b"echo:" + ctx.inputs)


class SealingPAL(PAL):
    name = "sealer"
    modules = ("tpm_driver", "tpm_utils")

    def run(self, ctx):
        blob = ctx.tpm.seal_to_pal(b"pal-secret", ctx.self_pcr17)
        ctx.write_output(blob.encode())


def plan_of(*specs):
    return FaultPlan(seed=0, specs=tuple(specs))


def install(platform, *specs):
    return FaultInjector(plan_of(*specs)).install(platform)


class TestDeterminism:
    def run_sequence(self, seed):
        platform = FlickerPlatform(seed=4321)
        injector = FaultInjector(FaultPlan.generate(seed)).install(platform)
        pal = SealingPAL()
        for i in range(3):
            try:
                platform.execute_pal(pal, inputs=bytes([i]))
            except (PALRuntimeError, SessionAbortedError):
                pass
        return injector.fired

    def test_same_seed_same_fault_sequence(self):
        for seed in (0, 5, 11, 23):
            assert self.run_sequence(seed) == self.run_sequence(seed)

    def test_fault_sequences_vary_across_seeds(self):
        sequences = {repr(self.run_sequence(seed)) for seed in range(8)}
        assert len(sequences) > 1


class TestSessionTracking:
    def test_session_index_advances(self, platform):
        injector = install(platform)
        assert injector.session_index == -1
        platform.execute_pal(EchoPAL())
        assert injector.session_index == 0
        platform.execute_pal(EchoPAL())
        assert injector.session_index == 1

    def test_session_scoping_selects_one_session(self, platform):
        injector = install(
            platform, FaultSpec(kind="pal-exception", session=1)
        )
        platform.execute_pal(EchoPAL())  # session 0 unaffected
        with pytest.raises(PALRuntimeError):
            platform.execute_pal(EchoPAL())  # session 1 faults
        assert [f["session"] for f in injector.fired] == [1]

    def test_unknown_point_raises(self, platform):
        injector = install(platform)
        with pytest.raises(FaultPlanError):
            injector.fire("warp.core", platform.machine)


class TestTraceObservability:
    def test_every_fired_fault_is_a_trace_event(self, platform):
        injector = install(
            platform,
            FaultSpec(kind="clock-skew", session=0, magnitude=150),
            FaultSpec(kind="debug-probe", session=0),
        )
        platform.execute_pal(EchoPAL())
        events = platform.machine.trace.events(source="fault")
        assert len(events) == len(injector.fired) == 2
        kinds = {e.kind for e in events}
        assert kinds == {"clock-skew", "debug-probe"}
        for event in events:
            assert event.detail["session"] == 0

    def test_trace_records_spec_index(self, platform):
        install(platform, FaultSpec(kind="debug-probe", session=0))
        platform.execute_pal(EchoPAL())
        (event,) = platform.machine.trace.events(source="fault")
        assert event.detail["spec"] == 0


class TestTransientRetry:
    def test_transient_fault_is_retried_to_success(self, platform):
        injector = install(
            platform,
            FaultSpec(kind="tpm-transient", session=0, op="seal", count=1),
        )
        result = platform.execute_pal(SealingPAL())
        assert result.retries == 1
        assert result.outputs  # the retry attempt sealed successfully
        assert len(injector.fired) == 1
        assert platform.machine.trace.events(kind="session-retry")

    def test_exhausted_retries_abort_with_typed_error(self, platform):
        install(
            platform,
            FaultSpec(kind="tpm-transient", session=0, op="seal", count=99),
        )
        with pytest.raises(SessionAbortedError):
            platform.execute_pal(SealingPAL())

    def test_permanent_fault_fails_closed_immediately(self, platform):
        injector = install(
            platform,
            FaultSpec(kind="tpm-permanent", session=0, op="seal"),
        )
        with pytest.raises(SessionAbortedError):
            platform.execute_pal(SealingPAL())
        # No retry for permanent faults: one attempt, one fault.
        assert not platform.machine.trace.events(kind="session-retry")
        assert len(injector.fired) == 1

    def test_os_is_restored_after_aborted_session(self, platform):
        install(
            platform,
            FaultSpec(kind="tpm-permanent", session=0, op="seal"),
        )
        with pytest.raises(SessionAbortedError):
            platform.execute_pal(SealingPAL())
        # Fail-closed means the platform is still usable afterwards.
        assert platform.machine.cpu.bsp.interrupts_enabled
        result = platform.execute_pal(EchoPAL(), inputs=b"after")
        assert result.outputs == b"echo:after"


class TestGating:
    def test_slb_core_bookkeeping_commands_are_exempt(self, platform):
        # An any-session, any-count pcr_extend fault must never strike the
        # SLB Core's own closing extends — only PAL-issued commands.
        install(
            platform,
            FaultSpec(kind="tpm-transient", session=-1, op="pcr_extend",
                      count=99),
        )
        result = platform.execute_pal(EchoPAL(), inputs=b"x")
        assert result.outputs == b"echo:x"
        assert result.retries == 0

    def test_quote_faults_strike_outside_sessions(self, platform):
        install(
            platform,
            FaultSpec(kind="tpm-transient", session=-1, op="quote", count=1),
        )
        session = platform.execute_pal(EchoPAL())
        attestation = platform.attest(session.nonce)
        assert platform.machine.trace.events(kind="attest-retry")
        report = platform.verifier().verify(
            attestation, session.image, session.nonce
        )
        assert report.ok


class TestClockSkew:
    def test_skew_applies_only_to_targeted_session(self, platform):
        install(
            platform, FaultSpec(kind="clock-skew", session=0, magnitude=200)
        )
        slow = platform.execute_pal(EchoPAL())
        assert platform.machine.clock.skew == 1.0  # reset at session end
        fast = platform.execute_pal(EchoPAL())
        assert slow.total_ms > fast.total_ms * 1.5

    def test_raw_setter_rejects_nonpositive(self, platform):
        with pytest.raises(ValueError):
            platform.machine.clock.set_skew(0)
