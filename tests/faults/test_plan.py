"""Fault-plan generation, validation, and serialization."""

import pytest

from repro.errors import FaultPlanError
from repro.faults.plan import (
    ANY_SESSION,
    FAULT_KINDS,
    TPM_FAULT_OPS,
    FaultPlan,
    FaultSpec,
)

pytestmark = pytest.mark.faults


class TestGeneration:
    def test_same_seed_same_plan(self):
        assert FaultPlan.generate(42) == FaultPlan.generate(42)

    def test_different_seeds_differ(self):
        plans = {FaultPlan.generate(seed).specs for seed in range(20)}
        assert len(plans) > 1

    def test_generation_does_not_touch_global_state(self):
        before = FaultPlan.generate(7)
        for seed in range(50):
            FaultPlan.generate(seed)
        assert FaultPlan.generate(7) == before

    def test_spec_fields_within_bounds(self):
        for seed in range(100):
            plan = FaultPlan.generate(seed, max_faults=4, max_sessions=5)
            assert 1 <= len(plan.specs) <= 4
            for spec in plan.specs:
                assert spec.kind in FAULT_KINDS
                assert 0 <= spec.session < 5
                assert spec.count >= 1
                if spec.kind in ("tpm-transient", "tpm-permanent"):
                    assert spec.op in TPM_FAULT_OPS
                if spec.kind == "clock-skew":
                    assert 50 <= spec.magnitude <= 300

    def test_all_kinds_reachable(self):
        seen = set()
        for seed in range(300):
            seen.update(s.kind for s in FaultPlan.generate(seed).specs)
        assert seen == set(FAULT_KINDS)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="emp-blast")

    def test_unknown_op_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="tpm-transient", op="self_destruct")

    def test_nv_corrupt_requires_nv_write(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="nv-corrupt", op="seal")

    def test_bad_session_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="pal-exception", session=-2)

    def test_zero_count_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="tpm-transient", op="seal", count=0)

    def test_clock_skew_needs_positive_magnitude(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="clock-skew", magnitude=0)

    def test_any_session_allowed(self):
        spec = FaultSpec(kind="pal-exception", session=ANY_SESSION)
        assert spec.session == ANY_SESSION


class TestSerialization:
    def test_roundtrip(self):
        for seed in range(25):
            plan = FaultPlan.generate(seed)
            assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_roundtrip_is_json_compatible(self):
        import json

        plan = FaultPlan.generate(3)
        rebuilt = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert rebuilt == plan

    def test_malformed_dict_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"specs": []})
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"seed": 1, "specs": [{"nope": True}]})

    def test_bad_spec_in_dict_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict(
                {"seed": 1, "specs": [{"kind": "warp-core-breach"}]}
            )
