"""Per-injection-point behavior: each fault kind lands where it should
and produces the typed, fail-closed outcome the platform promises."""

import pytest

from repro.core import PAL
from repro.errors import (
    AttestationError,
    PALRuntimeError,
    SessionAbortedError,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.faults.plan import ANY_SESSION
from repro.osim.tpm_driver import OSTPMDriver
from repro.tpm.nvram import flip_bit
from repro.tpm.structures import SealedBlob

pytestmark = pytest.mark.faults


class EchoPAL(PAL):
    name = "echo"
    modules = ()

    def run(self, ctx):
        ctx.write_output(b"echo:" + ctx.inputs)


class SealPAL(PAL):
    """Seals on empty input, unseals otherwise — one code identity for
    both halves, so the blob's PCR 17 policy matches across sessions."""

    name = "seal"
    modules = ("tpm_driver", "tpm_utils")

    def run(self, ctx):
        if not ctx.inputs:
            blob = ctx.tpm.seal_to_pal(b"sealed-secret", ctx.self_pcr17)
            ctx.write_output(blob.encode())
        else:
            ctx.write_output(ctx.tpm.unseal(SealedBlob.decode(ctx.inputs)))


def install(platform, *specs):
    plan = FaultPlan(seed=0, specs=tuple(specs))
    return FaultInjector(plan).install(platform)


class TestSLBBitFlip:
    def test_flip_is_visible_to_the_verifier(self, platform):
        install(platform, FaultSpec(kind="slb-bit-flip", session=0,
                                    magnitude=7))
        session = platform.execute_pal(EchoPAL(), inputs=b"hi")
        attestation = platform.attest(session.nonce)
        report = platform.verifier().verify(
            attestation, session.image, session.nonce
        )
        assert not report.ok
        with pytest.raises(AttestationError):
            report.require()

    def test_unseal_never_succeeds_after_flip(self, platform):
        blob = platform.execute_pal(SealPAL()).outputs
        # Sessions are counted from install: the unseal run is session 0.
        install(platform, FaultSpec(kind="slb-bit-flip", session=0,
                                    magnitude=123))
        with pytest.raises(PALRuntimeError):
            platform.execute_pal(SealPAL(), inputs=blob)

    def test_unseal_succeeds_without_flip(self, platform):
        # Control for the test above: identical flow, no fault.
        blob = platform.execute_pal(SealPAL()).outputs
        result = platform.execute_pal(SealPAL(), inputs=blob)
        assert result.outputs == b"sealed-secret"


class TestTPMFaults:
    def test_attest_retry_exhaustion_is_typed(self, platform):
        install(platform, FaultSpec(kind="tpm-transient", session=ANY_SESSION,
                                    op="quote", count=99))
        session = platform.execute_pal(EchoPAL())
        with pytest.raises(AttestationError):
            platform.attest(session.nonce)

    def test_permanent_fault_error_type_is_pinned(self, platform):
        install(platform, FaultSpec(kind="tpm-permanent", session=0,
                                    op="seal"))
        with pytest.raises(SessionAbortedError) as excinfo:
            platform.execute_pal(SealPAL())
        assert excinfo.value.error_type == "TPMPermanentError"

    def test_transient_get_random_is_survivable(self, platform):
        install(platform, FaultSpec(kind="tpm-transient", session=0,
                                    op="get_random", count=1))

        class RandomPAL(PAL):
            name = "random"
            modules = ("tpm_driver",)

            def run(self, ctx):
                ctx.write_output(ctx.tpm.get_random(16))

        result = platform.execute_pal(RandomPAL())
        assert result.retries == 1
        assert len(result.outputs) == 16


class TestNVCorruption:
    INDEX = 0x1100

    def test_nv_write_data_is_corrupted_in_flight(self, platform):
        injector = install(
            platform,
            FaultSpec(kind="nv-corrupt", session=ANY_SESSION, op="nv_write",
                      magnitude=21),
        )
        owner = b"\x00" * 20
        platform.machine.tpm.take_ownership(owner)
        driver = OSTPMDriver(platform.machine.os_tpm_interface())
        driver.define_nv_space(self.INDEX, 8, owner)
        payload = b"A" * 8
        driver.nv_write(self.INDEX, payload)
        stored = driver.nv_read(self.INDEX)
        assert stored != payload
        assert stored == flip_bit(payload, 21)
        assert injector.fired[0]["kind"] == "nv-corrupt"

    def test_flip_bit_involution(self):
        data = bytes(range(16))
        assert flip_bit(flip_bit(data, 77), 77) == data
        assert flip_bit(b"", 5) == b""


class TestHardwareProbes:
    def test_dma_probe_is_blocked_and_logged(self, platform):
        injector = install(platform, FaultSpec(kind="dma-probe", session=0))
        result = platform.execute_pal(EchoPAL(), inputs=b"x")
        assert result.outputs == b"echo:x"
        (probe,) = injector.probe_results
        assert probe.vector == "dma" and probe.blocked
        assert not injector.leaks
        assert platform.machine.dev.blocked_attempts
        assert platform.machine.trace.events(kind="dma_blocked")

    def test_debug_probe_is_blocked(self, platform):
        injector = install(platform, FaultSpec(kind="debug-probe", session=0))
        platform.execute_pal(EchoPAL())
        (probe,) = injector.probe_results
        assert probe.vector == "debugger" and probe.blocked
        assert not injector.leaks


class TestClockSkew:
    def test_skewed_timing_is_deterministic(self):
        from repro.core import FlickerPlatform

        def timed_run():
            platform = FlickerPlatform(seed=1234)
            install(platform, FaultSpec(kind="clock-skew", session=0,
                                        magnitude=175))
            return platform.execute_pal(EchoPAL()).total_ms

        assert timed_run() == timed_run()


class TestPALException:
    def test_injected_exception_is_typed_and_not_transient(self, platform):
        install(platform, FaultSpec(kind="pal-exception", session=0))
        with pytest.raises(PALRuntimeError) as excinfo:
            platform.execute_pal(EchoPAL())
        assert excinfo.value.error_type == "PALRuntimeError"
        assert not excinfo.value.transient
        # The OS survives the fault: the next session runs clean.
        result = platform.execute_pal(EchoPAL(), inputs=b"ok")
        assert result.outputs == b"echo:ok"
