"""Rule unit tests: one positive and one negative snippet per rule."""

import textwrap

from repro.analysis import analyze_source
from repro.analysis.engine import Project, parse_source, run_rules
from repro.analysis.tcb import TCBForbiddenImportRule


def rules_of(findings):
    return [f.rule for f in findings]


def analyze(snippet, module="repro.sim.example"):
    return analyze_source(textwrap.dedent(snippet), module=module)


# -- DET001: wall clock --------------------------------------------------------

class TestWallClock:
    def test_time_time_flagged(self):
        findings = analyze("""
            import time

            def stamp(report):
                report["at"] = time.time()
        """)
        assert rules_of(findings) == ["DET001"]
        assert findings[0].line == 5

    def test_datetime_now_flagged(self):
        findings = analyze("""
            from datetime import datetime

            def stamp():
                return datetime.now()
        """)
        assert rules_of(findings) == ["DET001"]

    def test_perf_counter_flagged(self):
        assert rules_of(analyze("""
            import time

            def tick():
                return time.perf_counter()
        """)) == ["DET001"]

    def test_virtual_clock_not_flagged(self):
        assert analyze("""
            def stamp(clock, report):
                report["at"] = clock.now()
        """) == []

    def test_bench_modules_exempt(self):
        assert analyze("""
            import time

            def wall():
                return time.time()
        """, module="repro.bench.registry") == []


# -- DET002: ambient entropy ---------------------------------------------------

class TestAmbientEntropy:
    def test_os_urandom_flagged(self):
        assert rules_of(analyze("""
            import os

            def nonce():
                return os.urandom(20)
        """)) == ["DET002"]

    def test_global_random_flagged(self):
        assert rules_of(analyze("""
            import random

            def jitter():
                return random.random()
        """)) == ["DET002"]

    def test_unseeded_random_instance_flagged(self):
        assert rules_of(analyze("""
            import random

            def rng():
                return random.Random()
        """)) == ["DET002"]

    def test_seeded_random_instance_ok(self):
        assert analyze("""
            import random

            def rng(seed):
                return random.Random(seed)
        """) == []

    def test_deterministic_rng_ok(self):
        assert analyze("""
            from repro.sim.rng import DeterministicRNG

            def rng(seed):
                return DeterministicRNG(seed)
        """) == []

    def test_exempt_wrapper_module(self):
        assert analyze("""
            import os

            def entropy():
                return os.urandom(32)
        """, module="repro.sim.rng") == []


# -- DET003: unordered iteration ----------------------------------------------

class TestUnorderedIteration:
    def test_set_for_loop_in_exporter_flagged(self):
        findings = analyze("""
            def export(report, machines):
                for machine in set(machines):
                    report.append(machine)
        """, module="repro.obs.export")
        assert rules_of(findings) == ["DET003"]

    def test_set_comprehension_iter_flagged(self):
        assert rules_of(analyze("""
            def export(spans):
                return [s for s in {x.machine for x in spans}]
        """, module="repro.tools.report")) == ["DET003"]

    def test_join_over_set_flagged(self):
        assert rules_of(analyze("""
            def export(names):
                return ",".join({n.lower() for n in names})
        """, module="repro.faults.campaign")) == ["DET003"]

    def test_sorted_set_ok(self):
        assert analyze("""
            def export(report, machines):
                for machine in sorted(set(machines)):
                    report.append(machine)
        """, module="repro.obs.export") == []

    def test_non_exporter_module_not_flagged(self):
        assert analyze("""
            def scratch(machines):
                for machine in set(machines):
                    machine.reset()
        """, module="repro.hw.machine") == []


# -- DET004: id() sort keys ----------------------------------------------------

class TestIdSortKey:
    def test_key_id_flagged(self):
        assert rules_of(analyze("""
            def order(spans):
                return sorted(spans, key=id)
        """)) == ["DET004"]

    def test_lambda_id_flagged(self):
        assert rules_of(analyze("""
            def order(spans):
                spans.sort(key=lambda s: (id(s), s.name))
        """)) == ["DET004"]

    def test_stable_key_ok(self):
        assert analyze("""
            def order(spans):
                return sorted(spans, key=lambda s: s.span_id)
        """) == []


# -- SEC001: secret flow -------------------------------------------------------

class TestSecretFlow:
    def test_unseal_to_print_flagged(self):
        findings = analyze("""
            def debug(tpm, blob):
                secret = tpm.unseal(blob)
                print("got", secret)
        """)
        assert rules_of(findings) == ["SEC001"]

    def test_unseal_into_trace_event_flagged(self):
        assert rules_of(analyze("""
            def run(ctx, trace, blob):
                key = ctx.tpm.unseal(blob)
                trace.emit(0.0, "pal", "unseal", value=key)
        """)) == ["SEC001"]

    def test_taint_propagates_through_assignment(self):
        assert rules_of(analyze("""
            def run(ctx, blob, log):
                secret = ctx.tpm.unseal(blob)
                derived = secret + b"-suffix"
                log.info(derived)
        """)) == ["SEC001"]

    def test_secret_in_exception_message_flagged(self):
        assert rules_of(analyze("""
            def check(tpm, blob):
                secret = tpm.unseal(blob)
                if not secret:
                    raise ValueError(f"bad secret {secret!r}")
        """)) == ["SEC001"]

    def test_digest_of_secret_ok(self):
        assert analyze("""
            def run(ctx, trace, blob, sha1):
                key = ctx.tpm.unseal(blob)
                trace.emit(0.0, "pal", "unseal", digest=sha1(key).hex())
        """) == []

    def test_length_of_secret_ok(self):
        assert analyze("""
            def run(ctx, blob):
                key = ctx.tpm.unseal(blob)
                print("unsealed", len(key), "bytes")
        """) == []

    def test_unrelated_logging_ok(self):
        assert analyze("""
            def run(ctx, blob, log):
                key = ctx.tpm.unseal(blob)
                log.info("unseal completed")
                return key
        """) == []

    def test_raise_of_name_bound_from_tainted_fstring_flagged(self):
        # The leak hides one binding away: the f-string taints ``err``,
        # and ``raise err`` publishes it.
        assert rules_of(analyze("""
            def check(tpm, blob):
                secret = tpm.unseal(blob)
                err = ValueError(f"bad secret {secret!r}")
                raise err
        """)) == ["SEC001"]

    def test_raise_of_sanitized_message_ok(self):
        assert analyze("""
            def check(tpm, blob, sha1):
                secret = tpm.unseal(blob)
                err = ValueError(f"bad secret, digest {sha1(secret)}")
                raise err
        """) == []

    def test_augmented_accumulation_flagged(self):
        # ``+=`` in a loop re-binds the accumulator from itself plus the
        # secret; the taint must survive the self-reference.
        assert rules_of(analyze("""
            def collect(tpm, blobs, log):
                out = b""
                for blob in blobs:
                    out += tpm.unseal(blob)
                log.info(out)
        """)) == ["SEC001"]

    def test_augmented_accumulation_of_lengths_ok(self):
        assert analyze("""
            def collect(tpm, blobs, log):
                total = 0
                for blob in blobs:
                    key = tpm.unseal(blob)
                    total += len(key)
                log.info(total)
        """) == []

    def test_hex_is_an_encoding_not_a_digest(self):
        # ``.hex()`` of a secret is the secret; only real measurement
        # functions (sha1/len/...) sanitize.
        assert rules_of(analyze("""
            def run(tpm, blob):
                key = tpm.unseal(blob)
                print(key.hex())
        """)) == ["SEC001"]

    def test_taint_defined_below_its_use_in_a_loop_flagged(self):
        # A single top-down sweep misses this: the tainting assignment
        # sits below the re-binding that feeds the sink.
        assert rules_of(analyze("""
            def churn(tpm, blobs, log):
                for blob in blobs:
                    copy = key
                    log.info(copy)
                    key = tpm.unseal(blob)
        """)) == ["SEC001"]


# -- TCB001: forbidden imports (needs a multi-file project) --------------------

def make_project(tmp_path, files):
    sources = []
    for relpath, text in sorted(files.items()):
        module = relpath.replace("src/", "").replace("/", ".")[: -len(".py")]
        if module.endswith(".__init__"):
            module = module[: -len(".__init__")]
        sources.append(parse_source(textwrap.dedent(text), relpath, module))
    return Project(root=tmp_path, files=sources)


class TestTCBAudit:
    def test_osim_import_from_pal_module_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/pal.py": "from repro.osim.kernel import UntrustedKernel\n",
            "src/repro/osim/kernel.py": "class UntrustedKernel:\n    pass\n",
        })
        findings = run_rules(project, [TCBForbiddenImportRule()])
        assert rules_of(findings) == ["TCB001"]
        assert "repro.osim.kernel" in findings[0].message

    def test_function_local_import_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/slb_core.py": (
                "def execute():\n"
                "    from repro.obs.spans import ObservabilityHub\n"
                "    return ObservabilityHub\n"
            ),
            "src/repro/obs/spans.py": "class ObservabilityHub:\n    pass\n",
        })
        findings = run_rules(project, [TCBForbiddenImportRule()])
        assert rules_of(findings) == ["TCB001"]
        assert findings[0].line == 2

    def test_type_checking_import_exempt(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/pal.py": (
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    from repro.osim.kernel import UntrustedKernel\n"
            ),
            "src/repro/osim/kernel.py": "class UntrustedKernel:\n    pass\n",
        })
        assert run_rules(project, [TCBForbiddenImportRule()]) == []

    def test_allowed_closure_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/pal.py": "from repro.crypto.sha1 import sha1\n",
            "src/repro/crypto/sha1.py": "def sha1(data):\n    return data\n",
            "src/repro/osim/kernel.py": "import repro.obs\n",  # outside closure
        })
        assert run_rules(project, [TCBForbiddenImportRule()]) == []

    def test_transitive_reach_flagged(self, tmp_path):
        # pal -> tpm.helper (allowed prefix) -> osim: the boundary edge is
        # inside tpm.helper, and that is where the finding lands.
        project = make_project(tmp_path, {
            "src/repro/core/pal.py": "from repro.tpm.helper import seal\n",
            "src/repro/tpm/helper.py": (
                "from repro.osim.kernel import UntrustedKernel\n"
                "def seal():\n    pass\n"
            ),
            "src/repro/osim/kernel.py": "class UntrustedKernel:\n    pass\n",
        })
        findings = run_rules(project, [TCBForbiddenImportRule()])
        assert rules_of(findings) == ["TCB001"]
        assert findings[0].path == "src/repro/tpm/helper.py"
