"""Baseline and suppression semantics: round-trips and precedence."""

import textwrap

from repro.analysis import (
    analyze_source,
    load_baseline,
    render_baseline,
    split_baselined,
)
from repro.analysis.engine import Finding, parse_source

WALL_CLOCK_SNIPPET = textwrap.dedent("""
    import time

    def stamp(report):
        report["at"] = time.time()
""")


class TestSuppressions:
    def test_line_suppression_silences_one_line(self):
        findings = analyze_source(
            "import time\n"
            "def stamp(report):\n"
            "    report['at'] = time.time()  # repro: noqa[DET001]\n"
            "    report['t2'] = time.time()\n",
            module="repro.sim.example",
        )
        assert [(f.rule, f.line) for f in findings] == [("DET001", 4)]

    def test_file_suppression_silences_whole_file(self):
        findings = analyze_source(
            "# repro: noqa[DET001]\n"
            "import time\n"
            "def stamp(report):\n"
            "    report['at'] = time.time()\n",
            module="repro.sim.example",
        )
        assert findings == []

    def test_bare_noqa_suppresses_all_rules(self):
        findings = analyze_source(
            "import time, os\n"
            "def stamp(report):\n"
            "    report['at'] = time.time()  # repro: noqa\n"
            "    report['nonce'] = os.urandom(8)  # repro: noqa\n",
            module="repro.sim.example",
        )
        assert findings == []

    def test_suppression_is_rule_specific(self):
        findings = analyze_source(
            "import os\n"
            "def nonce(report):\n"
            "    report['n'] = os.urandom(8)  # repro: noqa[DET001]\n",
            module="repro.sim.example",
        )
        assert [f.rule for f in findings] == ["DET002"]

    def test_parse_suppressions_table(self):
        source = parse_source(
            "# repro: noqa[SEC001]\n"
            "x = 1  # repro: noqa[DET001, DET002]\n",
            "example.py", "repro.example",
        )
        assert source.file_suppressions == frozenset({"SEC001"})
        assert source.line_suppressions[2] == frozenset({"DET001", "DET002"})
        assert source.suppressed("SEC001", 99)
        assert source.suppressed("DET002", 2)
        assert not source.suppressed("DET001", 1)


class TestSuppressionEdgeCases:
    def test_noqa_inside_triple_quoted_string_is_data(self):
        # The marker is string *content*, not a comment token — it must
        # not become a file-wide suppression.
        findings = analyze_source(
            'DOC = """\n'
            "# repro: noqa[DET001]\n"
            '"""\n'
            "import time\n"
            "def stamp(report):\n"
            "    report['at'] = time.time()\n",
            module="repro.sim.example",
        )
        assert [f.rule for f in findings] == ["DET001"]

    def test_noqa_in_string_on_finding_line_is_data(self):
        findings = analyze_source(
            "import time\n"
            "def stamp(report):\n"
            "    report['at'] = (time.time(), '# repro: noqa[DET001]')\n",
            module="repro.sim.example",
        )
        assert [f.rule for f in findings] == ["DET001"]

    def test_stacked_markers_in_one_comment_all_apply(self):
        findings = analyze_source(
            "import time, os\n"
            "def stamp(report):\n"
            "    report['x'] = (time.time(), os.urandom(8))"
            "  # repro: noqa[DET001] # repro: noqa[DET002]\n",
            module="repro.sim.example",
        )
        assert findings == []

    def test_unknown_rule_id_is_a_finding(self):
        findings = analyze_source(
            "x = 1  # repro: noqa[NOPE999]\n",
            module="repro.sim.example",
        )
        assert [(f.rule, f.line) for f in findings] == [("SUP001", 1)]
        assert "NOPE999" in findings[0].message

    def test_typoed_suppression_silences_nothing(self):
        # The mistyped id neither suppresses the real finding nor
        # escapes the SUP001 audit.
        findings = analyze_source(
            "import time\n"
            "def stamp(report):\n"
            "    report['at'] = time.time()  # repro: noqa[DET01]\n",
            module="repro.sim.example",
        )
        assert sorted(f.rule for f in findings) == ["DET001", "SUP001"]

    def test_bare_noqa_is_exempt_from_sup001(self):
        findings = analyze_source(
            "import time\n"
            "def stamp(report):\n"
            "    report['at'] = time.time()  # repro: noqa\n",
            module="repro.sim.example",
        )
        assert findings == []

    def test_standalone_unknown_id_flagged_once(self):
        findings = analyze_source(
            "# repro: noqa[GONE042]\n"
            "x = 1\n",
            module="repro.sim.example",
        )
        assert [(f.rule, f.line) for f in findings] == [("SUP001", 1)]


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = analyze_source(WALL_CLOCK_SNIPPET, module="repro.sim.example")
        assert len(findings) == 1
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline(findings), encoding="utf-8")
        baseline = load_baseline(path)
        new, old = split_baselined(findings, baseline)
        assert new == []
        assert old == findings

    def test_render_is_byte_stable(self):
        findings = analyze_source(WALL_CLOCK_SNIPPET, module="repro.sim.example")
        assert render_baseline(findings) == render_baseline(list(reversed(findings)))

    def test_baseline_ignores_line_drift(self, tmp_path):
        findings = analyze_source(WALL_CLOCK_SNIPPET, module="repro.sim.example")
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline(findings), encoding="utf-8")
        drifted = analyze_source("\n\n\n" + WALL_CLOCK_SNIPPET,
                                 module="repro.sim.example")
        assert drifted[0].line != findings[0].line
        new, old = split_baselined(drifted, load_baseline(path))
        assert new == [] and len(old) == 1

    def test_count_budget_is_enforced(self, tmp_path):
        one = analyze_source(WALL_CLOCK_SNIPPET, module="repro.sim.example")
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline(one), encoding="utf-8")
        two = analyze_source(
            "import time\n"
            "def stamp(report):\n"
            "    report['a'] = time.time()\n"
            "    report['b'] = time.time()\n",
            module="repro.sim.example",
        )
        assert len(two) == 2
        new, old = split_baselined(two, load_baseline(path))
        assert len(new) == 1 and len(old) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_finding_key_excludes_line(self):
        a = Finding("DET001", "x.py", 3, "msg")
        b = Finding("DET001", "x.py", 30, "msg")
        assert a.key() == b.key()
        assert a.sort_key() != b.sort_key()
