"""Interprocedural rule tests: SEC002 cross-function secret flow,
ISO001/ISO002 tenant isolation, RACE001 scheduler sharing — one
positive and one negative synthetic project per behaviour."""

import textwrap

from repro.analysis.engine import Project, parse_source, run_rules
from repro.analysis.interproc import InterproceduralSecretFlowRule
from repro.analysis.isolation import TenantBoundAccessRule, TenantSnapshotLeakRule
from repro.analysis.races import SchedulerSharedStateRule, find_spawned_bodies


def make_project(tmp_path, files):
    sources = []
    for relpath, text in sorted(files.items()):
        module = relpath.replace("src/", "").replace("/", ".")[: -len(".py")]
        if module.endswith(".__init__"):
            module = module[: -len(".__init__")]
        sources.append(parse_source(textwrap.dedent(text), relpath, module))
    return Project(root=tmp_path, files=sources)


def rules_of(findings):
    return [f.rule for f in findings]


def sec002(tmp_path, files):
    return run_rules(make_project(tmp_path, files),
                     [InterproceduralSecretFlowRule()])


class TestSEC002:
    def test_wrapped_secret_reaching_log_flagged(self, tmp_path):
        findings = sec002(tmp_path, {
            "src/repro/sim/keys.py": """
                def load_key(ctx):
                    return ctx.tpm.unseal(ctx.blob)
            """,
            "src/repro/sim/report.py": """
                from repro.sim.keys import load_key

                def report(ctx, log):
                    log.info(load_key(ctx))
            """,
        })
        assert rules_of(findings) == ["SEC002"]
        assert findings[0].path == "src/repro/sim/report.py"
        assert "secret from another function" in findings[0].message

    def test_digest_of_wrapped_secret_is_clean(self, tmp_path):
        assert sec002(tmp_path, {
            "src/repro/sim/keys.py": """
                def load_key(ctx):
                    return ctx.tpm.unseal(ctx.blob)
            """,
            "src/repro/sim/report.py": """
                from repro.sim.keys import load_key
                from repro.crypto.sha1 import sha1

                def report(ctx, log):
                    log.info(sha1(load_key(ctx)))
            """,
        }) == []

    def test_intra_procedural_flow_left_to_sec001(self, tmp_path):
        # Source and sink in one function is SEC001's finding; SEC002
        # stays silent so each leak is reported exactly once.
        assert sec002(tmp_path, {
            "src/repro/sim/leak.py": """
                def leak(ctx, log):
                    log.info(ctx.tpm.unseal(ctx.blob))
            """,
        }) == []

    def test_param_forwarding_chain_flagged(self, tmp_path):
        # decode() forwards its parameter to its return value, so the
        # secret survives one more hop before the sink.
        findings = sec002(tmp_path, {
            "src/repro/sim/chain.py": """
                def decode(raw):
                    return raw

                def load(ctx):
                    return ctx.tpm.unseal(ctx.blob)

                def report(ctx, log):
                    log.info(decode(load(ctx)))
            """,
        })
        assert rules_of(findings) == ["SEC002"]

    def test_secret_passed_into_publishing_helper_flagged(self, tmp_path):
        findings = sec002(tmp_path, {
            "src/repro/sim/pub.py": """
                def publish(log, value):
                    log.info(value)

                def load(ctx):
                    return ctx.tpm.unseal(ctx.blob)

                def report(ctx, log):
                    publish(log, load(ctx))
            """,
        })
        assert rules_of(findings) == ["SEC002"]
        assert "publishes it" in findings[0].message

    def test_secret_attribute_store_connects_methods(self, tmp_path):
        findings = sec002(tmp_path, {
            "src/repro/sim/stash.py": """
                class Session:
                    def load(self, ctx):
                        self.key = ctx.tpm.unseal(ctx.blob)

                    def report(self, log):
                        log.info(self.key)
            """,
        })
        assert rules_of(findings) == ["SEC002"]

    def test_public_half_of_keypair_is_clean(self, tmp_path):
        assert sec002(tmp_path, {
            "src/repro/sim/pubkey.py": """
                def make_keys(rng):
                    return generate_rsa_keypair(rng)

                def announce(rng, log):
                    keys = make_keys(rng)
                    log.info(keys.public)
            """,
        }) == []

    def test_wrapped_secret_in_exception_flagged(self, tmp_path):
        findings = sec002(tmp_path, {
            "src/repro/sim/err.py": """
                def load(ctx):
                    return ctx.tpm.unseal(ctx.blob)

                def check(ctx):
                    key = load(ctx)
                    raise ValueError(key)
            """,
        })
        assert rules_of(findings) == ["SEC002"]
        assert "exception" in findings[0].message


def iso001(tmp_path, files):
    return run_rules(make_project(tmp_path, files), [TenantBoundAccessRule()])


class TestISO001:
    def test_direct_chip_call_in_vtpm_flagged(self, tmp_path):
        findings = iso001(tmp_path, {
            "src/repro/vtpm/bad.py": """
                def clobber(machine):
                    machine.tpm.nv_write(7, b"x")
            """,
        })
        assert rules_of(findings) == ["ISO001"]
        assert "bypasses the tenant partition" in findings[0].message

    def test_private_chip_entry_point_flagged(self, tmp_path):
        findings = iso001(tmp_path, {
            "src/repro/dist/bad.py": """
                def clobber(machine):
                    machine.tpm._seal(b"x")
            """,
        })
        assert rules_of(findings) == ["ISO001"]

    def test_untenanted_interface_flagged(self, tmp_path):
        findings = iso001(tmp_path, {
            "src/repro/vtpm/bad.py": """
                def session(machine):
                    return machine.tpm.interface(2)
            """,
        })
        assert rules_of(findings) == ["ISO001"]
        assert "tenant=" in findings[0].message

    def test_tenant_none_interface_flagged(self, tmp_path):
        findings = iso001(tmp_path, {
            "src/repro/vtpm/bad.py": """
                def session(machine):
                    return machine.tpm.interface(2, tenant=None)
            """,
        })
        assert rules_of(findings) == ["ISO001"]

    def test_tenant_bound_interface_is_clean(self, tmp_path):
        assert iso001(tmp_path, {
            "src/repro/vtpm/good.py": """
                def session(machine, tenant):
                    return machine.tpm.interface(2, tenant=tenant)
            """,
        }) == []

    def test_helper_returning_untenanted_interface_flagged(self, tmp_path):
        # Hiding the acquisition in an out-of-scope module does not
        # help: the call graph resolves the helper.
        findings = iso001(tmp_path, {
            "src/repro/hw/helpers.py": """
                def grab_session(machine):
                    return machine.tpm.interface(0)
            """,
            "src/repro/vtpm/lazy.py": """
                from repro.hw.helpers import grab_session

                def write(machine, data):
                    iface = grab_session(machine)
                    iface.store(data)
            """,
        })
        assert rules_of(findings) == ["ISO001"]
        assert findings[0].path == "src/repro/vtpm/lazy.py"
        assert "grab_session" in findings[0].message

    def test_hardware_owner_code_is_out_of_scope(self, tmp_path):
        # The platform legitimately owns the chip.
        assert iso001(tmp_path, {
            "src/repro/hw/owner.py": """
                def provision(machine):
                    machine.tpm.nv_write(7, b"x")
                    return machine.tpm.interface(2)
            """,
        }) == []


def iso002(tmp_path, files):
    return run_rules(make_project(tmp_path, files), [TenantSnapshotLeakRule()])


class TestISO002:
    def test_snapshot_logged_flagged(self, tmp_path):
        findings = iso002(tmp_path, {
            "src/repro/vtpm/migrate.py": """
                def migrate(mux, log, tenant):
                    snap = mux.export_tenant(tenant)
                    log.info(snap)
            """,
        })
        assert rules_of(findings) == ["ISO002"]
        assert "tenant snapshot material" in findings[0].message

    def test_snapshot_persisted_to_nv_flagged(self, tmp_path):
        findings = iso002(tmp_path, {
            "src/repro/vtpm/persist.py": """
                def stash(mux, iface, tenant):
                    snap = mux.export_tenant(tenant)
                    iface.nv_write(3, snap)
            """,
        })
        assert rules_of(findings) == ["ISO002"]

    def test_snapshot_crossing_functions_flagged(self, tmp_path):
        findings = iso002(tmp_path, {
            "src/repro/vtpm/a.py": """
                def take(mux, tenant):
                    return mux.export_tenant(tenant)
            """,
            "src/repro/vtpm/b.py": """
                from repro.vtpm.a import take

                def audit(mux, log, tenant):
                    log.info(take(mux, tenant))
            """,
        })
        assert rules_of(findings) == ["ISO002"]
        assert findings[0].path == "src/repro/vtpm/b.py"

    def test_migration_path_is_clean(self, tmp_path):
        assert iso002(tmp_path, {
            "src/repro/vtpm/migrate.py": """
                def migrate(src, dst, tenant):
                    snap = src.export_tenant(tenant)
                    dst.import_tenant(snap)
                    src.remove_tenant(tenant)
            """,
        }) == []

    def test_snapshot_digest_is_clean(self, tmp_path):
        assert iso002(tmp_path, {
            "src/repro/vtpm/audit.py": """
                from repro.crypto.sha1 import sha1

                def audit(mux, log, tenant):
                    snap = mux.export_tenant(tenant)
                    log.info(sha1(snap))
            """,
        }) == []


def race001(tmp_path, files):
    return run_rules(make_project(tmp_path, files),
                     [SchedulerSharedStateRule()])


class TestRACE001:
    def test_two_bodies_writing_module_state_flagged(self, tmp_path):
        findings = race001(tmp_path, {
            "src/repro/sim/workers.py": """
                STATE = {}

                def producer(box):
                    STATE["p"] = 1
                    yield 1

                def consumer(box):
                    STATE.update(c=1)
                    yield 2

                def main(sched, box):
                    sched.spawn(producer(box))
                    sched.spawn(consumer(box))
            """,
        })
        assert rules_of(findings) == ["RACE001", "RACE001"]
        assert "STATE" in findings[0].message
        assert "Mailbox" in findings[0].message

    def test_body_spawned_in_loop_flagged(self, tmp_path):
        findings = race001(tmp_path, {
            "src/repro/sim/fleet.py": """
                REGISTRY = {}

                def worker(n):
                    REGISTRY[n] = 1
                    yield n

                def main(sched):
                    for n in range(3):
                        sched.spawn(worker(n))
            """,
        })
        assert rules_of(findings) == ["RACE001"]
        assert "spawned in a loop" in findings[0].message

    def test_write_in_reachable_helper_flagged(self, tmp_path):
        # The write sits two calls below the process body; the rule
        # walks the reachable closure.
        findings = race001(tmp_path, {
            "src/repro/sim/deep.py": """
                TOTALS = {}

                def account(n):
                    TOTALS[n] = 1

                def step(n):
                    account(n)

                def worker(n):
                    step(n)
                    yield n

                def main(sched):
                    for n in range(2):
                        sched.spawn(worker(n))
            """,
        })
        assert rules_of(findings) == ["RACE001"]

    def test_mailbox_mediation_is_clean(self, tmp_path):
        assert race001(tmp_path, {
            "src/repro/sim/boxed.py": """
                def producer(box):
                    box.put(1)
                    yield 1

                def consumer(box):
                    box.put(2)
                    yield 2

                def main(sched, box):
                    sched.spawn(producer(box))
                    sched.spawn(consumer(box))
            """,
        }) == []

    def test_exclusive_if_arms_are_clean(self, tmp_path):
        # The two bodies are spawned in opposite arms of one ``if`` —
        # they never share a schedule.
        assert race001(tmp_path, {
            "src/repro/sim/modes.py": """
                STATE = {}

                def scheduled(box):
                    STATE["s"] = 1
                    yield 1

                def inline(box):
                    STATE["i"] = 1
                    yield 2

                def main(sched, box, mode):
                    if mode == "scheduled":
                        sched.spawn(scheduled(box))
                    else:
                        sched.spawn(inline(box))
            """,
        }) == []

    def test_shared_attribute_of_spawning_class_flagged(self, tmp_path):
        findings = race001(tmp_path, {
            "src/repro/sim/service.py": """
                class Service:
                    def worker(self):
                        self.jobs.append(1)
                        yield 1

                    def run(self, sched):
                        for _ in range(2):
                            sched.spawn(self.worker())
            """,
        })
        assert rules_of(findings) == ["RACE001"]
        assert "shared attribute" in findings[0].message

    def test_constructor_writes_are_clean(self, tmp_path):
        # __init__ writes to an object no other process holds yet.
        assert race001(tmp_path, {
            "src/repro/sim/ctor.py": """
                class Worker:
                    def __init__(self):
                        self.jobs = []

                    def body(self):
                        yield 1

                def main(sched, w):
                    for _ in range(2):
                        sched.spawn(w.body())
            """,
        }) == []

    def test_non_generator_argument_is_not_a_body(self, tmp_path):
        # Process(make_config(...)) — the argument is a plain function.
        assert race001(tmp_path, {
            "src/repro/sim/plain.py": """
                STATE = {}

                def make_config(n):
                    STATE[n] = 1
                    return {"n": n}

                def main(sched):
                    for n in range(2):
                        sched.spawn(make_config(n))
            """,
        }) == []

    def test_find_spawned_bodies_reports_contexts(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/sim/two.py": """
                def a(box):
                    yield 1

                def main(sched, box):
                    sched.spawn(a(box))
                    for _ in range(2):
                        sched.spawn(a(box))
            """,
        })
        bodies = find_spawned_bodies(project)
        assert [b.qualname for b in bodies] == ["repro.sim.two.a"]
        assert bodies[0].multi_instance
