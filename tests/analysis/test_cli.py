"""CLI behaviour of ``python -m repro.tools.lint``: exit codes, --json,
--explain, --profile, baseline and report round-trips on a synthetic
tree."""

import json
import textwrap

import pytest

from repro.analysis import all_rules
from repro.tools.lint import main

CLEAN_MODULE = "def now(clock):\n    return clock.now()\n"
DIRTY_MODULE = (
    "import time\n"
    "def stamp(report):\n"
    "    report['at'] = time.time()\n"
)


def make_repo(tmp_path, files):
    (tmp_path / "setup.cfg").write_text(
        "[repro:lint]\npaths = src/repro\n", encoding="utf-8")
    for relpath, text in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return tmp_path


def write_reports(root):
    assert main(["--root", str(root), "--update-tcb-report",
                 "--update-callgraph-report"]) == 0


@pytest.fixture
def clean_repo(tmp_path):
    root = make_repo(tmp_path, {"src/repro/sim/example.py": CLEAN_MODULE})
    write_reports(root)
    return root


@pytest.fixture
def dirty_repo(tmp_path):
    root = make_repo(tmp_path, {"src/repro/sim/example.py": DIRTY_MODULE})
    write_reports(root)
    return root


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_repo):
        assert main(["--root", str(clean_repo)]) == 0

    def test_findings_exit_one(self, dirty_repo):
        assert main(["--root", str(dirty_repo)]) == 1

    def test_missing_tcb_report_exits_one(self, tmp_path):
        root = make_repo(tmp_path, {"src/repro/sim/example.py": CLEAN_MODULE})
        assert main(["--root", str(root), "--update-callgraph-report"]) == 0
        assert main(["--root", str(root)]) == 1  # TCB002: report missing

    def test_missing_callgraph_report_exits_one(self, tmp_path):
        root = make_repo(tmp_path, {"src/repro/sim/example.py": CLEAN_MODULE})
        assert main(["--root", str(root), "--update-tcb-report"]) == 0
        assert main(["--root", str(root)]) == 1  # CG001: report missing

    def test_unknown_explain_exits_two(self, capsys):
        assert main(["--explain", "NOPE999"]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestExplain:
    def test_explain_prints_rationale(self, capsys):
        assert main(["--explain", "TCB001"]) == 0
        out = capsys.readouterr().out
        assert "TCB001" in out and "allowlisted" in out

    def test_every_rule_has_an_explanation(self, capsys):
        for rule in all_rules():
            assert main(["--explain", rule.id]) == 0
            out = capsys.readouterr().out
            assert rule.id in out
            assert len(out.strip().splitlines()) > 2, f"{rule.id} explanation too thin"

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("TCB001", "TCB002", "DET001", "DET002", "DET003",
                        "DET004", "SEC001", "SEC002", "ISO001", "ISO002",
                        "RACE001", "CG001", "SUP001"):
            assert rule_id in out


class TestJsonOutput:
    def test_json_shape(self, dirty_repo, capsys):
        assert main(["--root", str(dirty_repo), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro-analysis-findings"
        assert doc["baselined"] == 0
        rules = [f["rule"] for f in doc["findings"]]
        assert rules == ["DET001"]
        assert doc["findings"][0]["path"] == "src/repro/sim/example.py"
        assert doc["findings"][0]["line"] == 3

    def test_json_clean(self, clean_repo, capsys):
        assert main(["--root", str(clean_repo), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["findings"] == []

    def test_json_reports_rule_timings(self, clean_repo, capsys):
        assert main(["--root", str(clean_repo), "--json"]) == 0
        timings = json.loads(capsys.readouterr().out)["meta"]["rule_timings"]
        assert set(timings) == {rule.id for rule in all_rules()}
        for stat in timings.values():
            assert stat["wall_ms"] >= 0
            assert stat["findings"] >= 0

    def test_json_timings_count_findings(self, dirty_repo, capsys):
        assert main(["--root", str(dirty_repo), "--json"]) == 1
        timings = json.loads(capsys.readouterr().out)["meta"]["rule_timings"]
        assert timings["DET001"]["findings"] == 1


class TestProfile:
    def test_profile_prints_rule_timings(self, clean_repo, capsys):
        assert main(["--root", str(clean_repo), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "rule timings" in out
        for rule in all_rules():
            assert rule.id in out


class TestBaselineFlow:
    def test_update_baseline_then_clean(self, dirty_repo, capsys):
        assert main(["--root", str(dirty_repo), "--update-baseline"]) == 0
        assert (dirty_repo / "ANALYSIS_baseline.json").exists()
        assert main(["--root", str(dirty_repo)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_new_finding_not_covered_by_baseline(self, dirty_repo):
        assert main(["--root", str(dirty_repo), "--update-baseline"]) == 0
        extra = dirty_repo / "src/repro/sim/fresh.py"
        extra.write_text(DIRTY_MODULE, encoding="utf-8")
        write_reports(dirty_repo)
        assert main(["--root", str(dirty_repo)]) == 1

    def test_explicit_baseline_path(self, dirty_repo, tmp_path):
        baseline = tmp_path / "elsewhere.json"
        assert main(["--root", str(dirty_repo), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert main(["--root", str(dirty_repo), "--baseline", str(baseline)]) == 0


class TestTCBReportFlow:
    def test_report_regeneration_is_byte_identical(self, clean_repo):
        report = clean_repo / "ANALYSIS_tcb.json"
        first = report.read_bytes()
        assert main(["--root", str(clean_repo), "--update-tcb-report"]) == 0
        assert report.read_bytes() == first

    def test_tcb_growth_stales_report(self, clean_repo):
        assert main(["--root", str(clean_repo)]) == 0
        # A new module under a TCB root joins the audited closure, so the
        # committed report no longer matches until regenerated.
        extra = clean_repo / "src/repro/core/modules/extra.py"
        extra.parent.mkdir(parents=True, exist_ok=True)
        extra.write_text(CLEAN_MODULE, encoding="utf-8")
        assert main(["--root", str(clean_repo)]) == 1  # TCB002 + CG001 fire
        write_reports(clean_repo)
        assert main(["--root", str(clean_repo)]) == 0


class TestCallgraphReportFlow:
    def test_report_regeneration_is_byte_identical(self, clean_repo):
        report = clean_repo / "ANALYSIS_callgraph.json"
        first = report.read_bytes()
        assert main(["--root", str(clean_repo),
                     "--update-callgraph-report"]) == 0
        assert report.read_bytes() == first

    def test_new_call_stales_report(self, clean_repo):
        assert main(["--root", str(clean_repo)]) == 0
        # A new caller changes the committed call graph, so CG001 fires
        # until the report is regenerated.
        extra = clean_repo / "src/repro/sim/caller.py"
        extra.write_text("from repro.sim.example import now\n"
                         "def later(clock):\n"
                         "    return now(clock)\n", encoding="utf-8")
        assert main(["--root", str(clean_repo)]) == 1  # CG001 fires
        assert main(["--root", str(clean_repo),
                     "--update-callgraph-report"]) == 0
        assert main(["--root", str(clean_repo)]) == 0
