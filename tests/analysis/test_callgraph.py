"""Call-graph builder unit tests plus the committed-report regression:
``ANALYSIS_callgraph.json`` is exact, and regeneration is deterministic —
the same pinning discipline as ``ANALYSIS_tcb.json``.
"""

import json
import pathlib
import textwrap

from repro.analysis import load_project
from repro.analysis.callgraph import (
    CALLGRAPH_REPORT_FORMAT,
    CALLGRAPH_REPORT_NAME,
    CallGraphReportStaleRule,
    build_callgraph,
    generate_callgraph_report,
    get_callgraph,
    module_bindings,
)
from repro.analysis.engine import Project, parse_source, run_rules

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def make_project(tmp_path, files):
    sources = []
    for relpath, text in sorted(files.items()):
        module = relpath.replace("src/", "").replace("/", ".")[: -len(".py")]
        if module.endswith(".__init__"):
            module = module[: -len(".__init__")]
        sources.append(parse_source(textwrap.dedent(text), relpath, module))
    return Project(root=tmp_path, files=sources)


def edges_of(graph, caller):
    return [(e.callee, e.resolution, e.ambiguous)
            for e in graph.out_edges.get(caller, ())]


# -- resolution tiers ----------------------------------------------------------

class TestResolution:
    def test_local_function_call(self, tmp_path):
        graph = build_callgraph(make_project(tmp_path, {
            "src/repro/a.py": """
                def helper():
                    return 1

                def caller():
                    return helper()
            """,
        }))
        assert edges_of(graph, "repro.a.caller") == [
            ("repro.a.helper", "local", False)]

    def test_from_import_call(self, tmp_path):
        graph = build_callgraph(make_project(tmp_path, {
            "src/repro/a.py": "def helper():\n    return 1\n",
            "src/repro/b.py": """
                from repro.a import helper

                def caller():
                    return helper()
            """,
        }))
        assert edges_of(graph, "repro.b.caller") == [
            ("repro.a.helper", "import", False)]

    def test_module_alias_attribute_call(self, tmp_path):
        graph = build_callgraph(make_project(tmp_path, {
            "src/repro/a.py": "def helper():\n    return 1\n",
            "src/repro/b.py": """
                import repro.a as lib

                def caller():
                    return lib.helper()
            """,
        }))
        assert edges_of(graph, "repro.b.caller") == [
            ("repro.a.helper", "import", False)]

    def test_relative_import_call(self, tmp_path):
        graph = build_callgraph(make_project(tmp_path, {
            "src/repro/pkg/a.py": "def helper():\n    return 1\n",
            "src/repro/pkg/b.py": """
                from .a import helper

                def caller():
                    return helper()
            """,
        }))
        assert edges_of(graph, "repro.pkg.b.caller") == [
            ("repro.pkg.a.helper", "import", False)]

    def test_constructor_resolves_to_init(self, tmp_path):
        graph = build_callgraph(make_project(tmp_path, {
            "src/repro/a.py": """
                class Widget:
                    def __init__(self, size):
                        self.size = size

                def caller():
                    return Widget(3)
            """,
        }))
        assert edges_of(graph, "repro.a.caller") == [
            ("repro.a.Widget.__init__", "local", False)]

    def test_self_method_call(self, tmp_path):
        graph = build_callgraph(make_project(tmp_path, {
            "src/repro/a.py": """
                class Widget:
                    def shrink(self):
                        return self.resize(-1)

                    def resize(self, by):
                        return by
            """,
        }))
        assert edges_of(graph, "repro.a.Widget.shrink") == [
            ("repro.a.Widget.resize", "class", False)]

    def test_self_method_walks_bases(self, tmp_path):
        graph = build_callgraph(make_project(tmp_path, {
            "src/repro/base.py": """
                class Base:
                    def resize(self, by):
                        return by
            """,
            "src/repro/a.py": """
                from repro.base import Base

                class Widget(Base):
                    def shrink(self):
                        return self.resize(-1)
            """,
        }))
        assert edges_of(graph, "repro.a.Widget.shrink") == [
            ("repro.base.Base.resize", "class", False)]

    def test_unambiguous_suffix_match(self, tmp_path):
        graph = build_callgraph(make_project(tmp_path, {
            "src/repro/a.py": """
                class Chip:
                    def nv_write(self, index, data):
                        return data
            """,
            "src/repro/b.py": """
                def caller(chip):
                    return chip.nv_write(1, b"x")
            """,
        }))
        assert edges_of(graph, "repro.b.caller") == [
            ("repro.a.Chip.nv_write", "suffix", False)]

    def test_multi_candidate_suffix_is_ambiguous(self, tmp_path):
        graph = build_callgraph(make_project(tmp_path, {
            "src/repro/a.py": "class A:\n    def emit(self):\n        pass\n",
            "src/repro/b.py": "class B:\n    def emit(self):\n        pass\n",
            "src/repro/c.py": """
                def caller(sink):
                    sink.emit()
            """,
        }))
        edges = edges_of(graph, "repro.c.caller")
        assert len(edges) == 2
        assert all(resolution == "suffix" and ambiguous
                   for _, resolution, ambiguous in edges)
        # Rules act on neither candidate.
        assert graph.callees("repro.c.caller") == []

    def test_module_level_calls_attribute_to_pseudo_caller(self, tmp_path):
        graph = build_callgraph(make_project(tmp_path, {
            "src/repro/a.py": """
                def setup():
                    return {}

                REGISTRY = setup()
            """,
        }))
        assert edges_of(graph, "repro.a.<module>") == [
            ("repro.a.setup", "local", False)]

    def test_nested_def_attributes_to_enclosing_function(self, tmp_path):
        graph = build_callgraph(make_project(tmp_path, {
            "src/repro/a.py": """
                def helper():
                    return 1

                def outer():
                    def inner():
                        return helper()
                    return inner
            """,
        }))
        assert edges_of(graph, "repro.a.outer") == [
            ("repro.a.helper", "local", False)]
        # The nested def itself is not a call target.
        assert "repro.a.outer.inner" not in graph.functions
        assert "repro.a.inner" not in graph.functions


class TestFunctionIndex:
    def test_generator_detection_ignores_nested_defs(self, tmp_path):
        graph = build_callgraph(make_project(tmp_path, {
            "src/repro/a.py": """
                def plain():
                    def gen():
                        yield 1
                    return gen

                def looping():
                    yield from range(3)
            """,
        }))
        assert not graph.functions["repro.a.plain"].is_generator
        assert graph.functions["repro.a.looping"].is_generator

    def test_params_and_method_flag(self, tmp_path):
        graph = build_callgraph(make_project(tmp_path, {
            "src/repro/a.py": """
                class Widget:
                    def resize(self, by, *extra, scale=1, **rest):
                        return by
            """,
        }))
        info = graph.functions["repro.a.Widget.resize"]
        assert info.is_method
        assert info.params == ("self", "by", "scale")
        assert info.has_vararg and info.has_kwarg

    def test_module_bindings(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/b.py": (
                "import repro.a as lib\n"
                "from repro.a import helper as h\n"
                "import os.path\n"
            ),
        })
        bindings = module_bindings(project.files[0])
        assert bindings["lib"] == "repro.a"
        assert bindings["h"] == "repro.a.helper"
        assert bindings["os"] == "os"


class TestReachability:
    def test_reachable_follows_actionable_edges(self, tmp_path):
        graph = build_callgraph(make_project(tmp_path, {
            "src/repro/a.py": """
                def leaf():
                    return 1

                def mid():
                    return leaf()

                def root():
                    return mid()

                def island():
                    return 2
            """,
        }))
        reached = graph.reachable(["repro.a.root"])
        assert reached == {"repro.a.root", "repro.a.mid", "repro.a.leaf"}

    def test_callgraph_is_cached_on_the_project(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/a.py": "def f():\n    return 1\n",
        })
        assert get_callgraph(project) is get_callgraph(project)


# -- the committed report ------------------------------------------------------

class TestCommittedReport:
    def test_report_matches_source_byte_for_byte(self):
        project = load_project(REPO_ROOT, ["src/repro"])
        committed = (REPO_ROOT / CALLGRAPH_REPORT_NAME).read_text(
            encoding="utf-8")
        assert generate_callgraph_report(project) == committed, (
            f"{CALLGRAPH_REPORT_NAME} is stale — the call graph changed; "
            "regenerate with: python -m repro.tools.lint "
            "--update-callgraph-report"
        )

    def test_generation_is_deterministic(self):
        project = load_project(REPO_ROOT, ["src/repro"])
        assert (generate_callgraph_report(project)
                == generate_callgraph_report(project))

    def test_report_shape_and_totals(self):
        doc = json.loads(
            (REPO_ROOT / CALLGRAPH_REPORT_NAME).read_text(encoding="utf-8"))
        assert doc["format"] == CALLGRAPH_REPORT_FORMAT
        totals = doc["totals"]
        assert totals["functions"] > 0 and totals["classes"] > 0
        assert totals["call_sites"] >= sum(totals["edges"].values())
        assert set(totals["edges"]) == {"local", "import", "class", "suffix"}
        assert "repro.vtpm.mux" in doc["modules"]

    def test_cg001_fires_when_report_missing_or_stale(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/a.py": "def f():\n    return 1\n",
        })
        findings = run_rules(project, [CallGraphReportStaleRule()])
        assert [f.rule for f in findings] == ["CG001"]
        assert "missing" in findings[0].message
        (tmp_path / CALLGRAPH_REPORT_NAME).write_text(
            generate_callgraph_report(project), encoding="utf-8")
        assert run_rules(project, [CallGraphReportStaleRule()]) == []
        (tmp_path / CALLGRAPH_REPORT_NAME).write_text("{}\n", encoding="utf-8")
        findings = run_rules(project, [CallGraphReportStaleRule()])
        assert "does not match" in findings[0].message
