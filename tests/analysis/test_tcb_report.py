"""Regression: the committed TCB report is exact, and the repo lints
clean.  Any PR that grows the PAL TCB must regenerate
``ANALYSIS_tcb.json`` explicitly, making the growth visible in review —
the repro analogue of the paper's Figure 6 accounting discipline.
"""

import json
import pathlib

from repro.analysis import generate_tcb_report, load_project
from repro.analysis.tcb import (
    TCB_FORBIDDEN_PREFIXES,
    TCB_REPORT_NAME,
    find_pals,
    tcb_closure,
)
from repro.tools.lint import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def load_repo_project():
    return load_project(REPO_ROOT, ["src/repro"])


def committed_report():
    return (REPO_ROOT / TCB_REPORT_NAME).read_text(encoding="utf-8")


class TestCommittedReport:
    def test_report_matches_source_byte_for_byte(self):
        project = load_repo_project()
        assert generate_tcb_report(project) == committed_report(), (
            f"{TCB_REPORT_NAME} is stale — the PAL TCB changed; regenerate "
            "with: python -m repro.tools.lint --update-tcb-report"
        )

    def test_generation_is_deterministic(self):
        project = load_repo_project()
        assert generate_tcb_report(project) == generate_tcb_report(project)

    def test_closure_contains_no_forbidden_modules(self):
        doc = json.loads(committed_report())
        for module in doc["closure"]:
            assert not any(
                module == p or module.startswith(p + ".")
                for p in TCB_FORBIDDEN_PREFIXES
            ), f"forbidden module {module} inside the committed TCB closure"

    def test_every_pal_is_listed_with_modules_and_loc(self):
        doc = json.loads(committed_report())
        pals = doc["pals"]
        for expected in (
            "repro.apps.ca.CertificateAuthorityPAL",
            "repro.apps.ssh_auth.SSHPasswordPAL",
            "repro.apps.rootkit_detector.RootkitDetectorPAL",
            "repro.apps.distributed.DistributedPAL",
        ):
            assert expected in pals, f"{expected} missing from the TCB report"
        for name, entry in pals.items():
            assert entry["linked_modules"][0:1] == ["slb_core"], name
            assert entry["pal_loc"] > 0, name
            assert entry["tcb_modules"], name
            assert entry["figure6_total_loc"] >= 94, name  # at least the SLB Core

    def test_figure6_numbers_come_from_the_registry(self):
        from repro.core.modules import MODULE_REGISTRY

        doc = json.loads(committed_report())
        ca = doc["pals"]["repro.apps.ca.CertificateAuthorityPAL"]
        for module, loc in ca["figure6_loc"].items():
            assert loc == MODULE_REGISTRY[module].lines_of_code

    def test_report_pal_set_matches_static_scan(self):
        project = load_repo_project()
        scanned = {f"{p['module']}.{p['class']}" for p in find_pals(project)}
        assert scanned == set(json.loads(committed_report())["pals"])


class TestRepoLintsClean:
    def test_lint_exits_zero_on_the_repo(self):
        assert main(["--root", str(REPO_ROOT)]) == 0, (
            "python -m repro.tools.lint found non-baselined findings; "
            "run it locally for details"
        )

    def test_committed_baseline_is_minimal(self):
        doc = json.loads(
            (REPO_ROOT / "ANALYSIS_baseline.json").read_text(encoding="utf-8"))
        assert doc["findings"] == [], (
            "the committed baseline grew — fix findings instead of "
            "grandfathering them"
        )

    def test_tpm_utils_has_no_osim_dependency(self):
        # The concrete TCB fix this audit forced: the PAL-side TPM
        # utilities share session plumbing via repro.tpm.driver, never
        # via the untrusted OS driver.
        project = load_repo_project()
        closure, _ = tcb_closure(project)
        assert "repro.tpm.driver" in closure
        assert not any(m.startswith("repro.osim") for m in closure)
