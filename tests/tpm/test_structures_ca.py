"""PCR composites, quote structures, sessions, and Privacy CA tests."""

import pytest

from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import AttestationError, TPMAuthError, TPMError
from repro.sim.rng import DeterministicRNG
from repro.tpm.privacy_ca import PrivacyCA
from repro.tpm.sessions import AuthSession, WELL_KNOWN_AUTH
from repro.tpm.structures import PCRComposite, Quote, SealedBlob


class TestPCRComposite:
    def test_encoding_is_deterministic_and_sorted(self):
        a = PCRComposite.from_mapping({18: b"\x02" * 20, 17: b"\x01" * 20})
        b = PCRComposite.from_mapping({17: b"\x01" * 20, 18: b"\x02" * 20})
        assert a.encode() == b.encode()
        assert a.digest() == b.digest()

    def test_different_values_different_digest(self):
        a = PCRComposite.from_mapping({17: b"\x01" * 20})
        b = PCRComposite.from_mapping({17: b"\x02" * 20})
        assert a.digest() != b.digest()

    def test_different_selection_different_digest(self):
        a = PCRComposite.from_mapping({17: b"\x01" * 20})
        b = PCRComposite.from_mapping({18: b"\x01" * 20})
        assert a.digest() != b.digest()

    def test_bad_value_length_rejected(self):
        with pytest.raises(TPMError):
            PCRComposite.from_mapping({17: b"short"})

    def test_as_dict_roundtrip(self):
        mapping = {17: b"\x0a" * 20, 23: b"\x0b" * 20}
        assert PCRComposite.from_mapping(mapping).as_dict() == mapping


class TestQuoteStructure:
    def test_quote_info_requires_20_byte_nonce(self):
        composite = PCRComposite.from_mapping({17: b"\x00" * 20})
        with pytest.raises(TPMError):
            Quote.quote_info(composite, b"short-nonce")

    def test_verify_rejects_foreign_aik(self):
        from repro.crypto.pkcs1 import pkcs1_sign_sha1

        keys = generate_rsa_keypair(512, DeterministicRNG(21))
        other = generate_rsa_keypair(512, DeterministicRNG(22))
        composite = PCRComposite.from_mapping({17: b"\x00" * 20})
        nonce = b"\x05" * 20
        signature = pkcs1_sign_sha1(keys.private, Quote.quote_info(composite, nonce))
        quote = Quote(composite=composite, nonce=nonce, signature=signature,
                      aik_public=keys.public)
        assert quote.verify(keys.public)
        assert not quote.verify(other.public)


class TestSealedBlobEncoding:
    def test_roundtrip(self):
        blob = SealedBlob(ciphertext=b"\x01" * 48, mac=b"\x02" * 20, bound_pcrs=(17, 18))
        assert SealedBlob.decode(blob.encode()) == blob

    def test_roundtrip_no_pcrs(self):
        blob = SealedBlob(ciphertext=b"\x03" * 32, mac=b"\x04" * 20, bound_pcrs=())
        assert SealedBlob.decode(blob.encode()) == blob

    def test_truncated_rejected(self):
        with pytest.raises(TPMError):
            SealedBlob.decode(b"\x00\x01")

    def test_bad_mac_length_rejected(self):
        blob = SealedBlob(ciphertext=b"\x01" * 16, mac=b"\x02" * 20, bound_pcrs=())
        with pytest.raises(TPMError):
            SealedBlob.decode(blob.encode()[:-1])


class TestAuthSession:
    def test_proof_verifies_and_nonce_rolls(self):
        session = AuthSession(1, "OIAP", nonce_even=b"\x11" * 20)
        digest, odd = b"\x22" * 20, b"\x33" * 20
        proof = session.compute_proof(WELL_KNOWN_AUTH, digest, odd)
        before = session.nonce_even
        session.verify_proof(WELL_KNOWN_AUTH, digest, odd, proof)
        assert session.nonce_even != before

    def test_bad_proof_closes_session(self):
        session = AuthSession(1, "OIAP", nonce_even=b"\x11" * 20)
        with pytest.raises(TPMAuthError):
            session.verify_proof(WELL_KNOWN_AUTH, b"\x00" * 20, b"\x01" * 20, b"\xff" * 20)
        assert session.closed
        # Even a now-correct proof is refused on a closed session.
        good = session.compute_proof(WELL_KNOWN_AUTH, b"\x00" * 20, b"\x01" * 20)
        with pytest.raises(TPMAuthError):
            session.verify_proof(WELL_KNOWN_AUTH, b"\x00" * 20, b"\x01" * 20, good)

    def test_osap_uses_shared_secret(self):
        shared = AuthSession.osap_shared_secret(b"\x0a" * 20, b"\x0b" * 20, b"\x0c" * 20)
        session = AuthSession(2, "OSAP", nonce_even=b"\x0d" * 20, shared_secret=shared)
        digest, odd = b"\x0e" * 20, b"\x0f" * 20
        # Entity auth is *not* the proof key for OSAP; the shared secret is.
        proof = session.compute_proof(b"\x0a" * 20, digest, odd)
        import repro.crypto.hmac as hmac_mod

        assert proof == hmac_mod.hmac_sha1(shared, digest + b"\x0d" * 20 + odd)


class TestPrivacyCA:
    @pytest.fixture
    def actors(self):
        rng = DeterministicRNG(31)
        ca = PrivacyCA(rng)
        tpm_ek = generate_rsa_keypair(512, rng.fork("ek"))
        aik = generate_rsa_keypair(512, rng.fork("aik"))
        return ca, tpm_ek, aik

    def test_issue_and_verify(self, actors):
        ca, ek, aik = actors
        ca.register_ek(ek.public)
        cert = ca.issue(aik.public, ek.public, "test-platform")
        assert cert.verify(ca.public_key)
        assert cert.aik_public == aik.public
        assert cert.platform_label == "test-platform"

    def test_unregistered_ek_refused(self, actors):
        ca, ek, aik = actors
        with pytest.raises(AttestationError):
            ca.issue(aik.public, ek.public, "unknown-platform")

    def test_cert_from_wrong_issuer_rejected(self, actors):
        ca, ek, aik = actors
        ca.register_ek(ek.public)
        cert = ca.issue(aik.public, ek.public, "p")
        rogue = PrivacyCA(DeterministicRNG(32))
        assert not cert.verify(rogue.public_key)

    def test_tampered_cert_rejected(self, actors):
        from dataclasses import replace

        ca, ek, aik = actors
        ca.register_ek(ek.public)
        cert = ca.issue(aik.public, ek.public, "p")
        forged = replace(cert, platform_label="other-platform")
        assert not forged.verify(ca.public_key)
