"""TPM device command tests: quote, seal/unseal, auth, NV, counters."""

import pytest

from repro.errors import (
    TPMAuthError,
    TPMError,
    TPMLocalityError,
    TPMNVError,
    TPMPolicyError,
)
from repro.osim.tpm_driver import OSTPMDriver
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRNG
from repro.sim.timing import BROADCOM_BCM0102
from repro.sim.trace import EventTrace
from repro.tpm.structures import SealedBlob
from repro.tpm.tpm import LOCALITY_CPU, TPM, command_digest


@pytest.fixture
def tpm_setup():
    clock = VirtualClock()
    trace = EventTrace()
    tpm = TPM(clock, trace, DeterministicRNG(77), BROADCOM_BCM0102, key_bits=512)
    return tpm, clock, trace


@pytest.fixture
def driver(tpm_setup):
    tpm, _, _ = tpm_setup
    return OSTPMDriver(tpm.interface(0))


class TestLocality:
    def test_software_cannot_reset_dynamic_pcrs(self, tpm_setup):
        tpm, _, _ = tpm_setup
        for locality in range(4):
            with pytest.raises(TPMLocalityError):
                tpm.interface(locality).dynamic_pcr_reset()

    def test_cpu_locality_resets(self, tpm_setup):
        tpm, _, _ = tpm_setup
        tpm.interface(LOCALITY_CPU).dynamic_pcr_reset()
        assert tpm.pcrs.read(17) == b"\x00" * 20

    def test_invalid_locality_rejected(self, tpm_setup):
        tpm, _, _ = tpm_setup
        with pytest.raises(TPMLocalityError):
            tpm.interface(5)

    def test_software_can_extend_pcr17(self, tpm_setup):
        """§2.3: PCR 17 can be extended (not reset) by software."""
        tpm, _, _ = tpm_setup
        iface = tpm.interface(0)
        before = iface.pcr_read(17)
        after = iface.pcr_extend(17, b"\x11" * 20)
        assert after != before


class TestQuote:
    def test_quote_verifies(self, tpm_setup, driver):
        tpm, _, _ = tpm_setup
        nonce = b"\x07" * 20
        quote = driver.quote(nonce, [17])
        assert quote.verify(tpm.aik_public)
        assert quote.nonce == nonce
        assert 17 in quote.composite.as_dict()

    def test_quote_covers_live_pcr_values(self, tpm_setup, driver):
        tpm, _, _ = tpm_setup
        driver.pcr_extend(17, b"\x22" * 20)
        quote = driver.quote(b"\x01" * 20, [17])
        assert quote.composite.as_dict()[17] == tpm.pcrs.read(17)

    def test_quote_signature_binds_nonce(self, tpm_setup, driver):
        """A quote for nonce A cannot be replayed as a quote for nonce B."""
        from dataclasses import replace

        tpm, _, _ = tpm_setup
        quote = driver.quote(b"\xaa" * 20, [17])
        forged = replace(quote, nonce=b"\xbb" * 20)
        assert not forged.verify(tpm.aik_public)

    def test_quote_requires_valid_auth(self, tpm_setup):
        tpm, _, _ = tpm_setup
        iface = tpm.interface(0)
        session = iface.start_oiap()
        digest = command_digest("TPM_Quote", b"\x00" * 20, bytes((17,)))
        bad_proof = session.compute_proof(b"\x55" * 20, digest, b"\x01" * 20)
        with pytest.raises(TPMAuthError):
            iface.quote(b"\x00" * 20, [17], session, b"\x01" * 20, bad_proof)

    def test_quote_charges_virtual_time(self, tpm_setup, driver):
        _, clock, _ = tpm_setup
        before = clock.now()
        driver.quote(b"\x00" * 20, [17])
        assert clock.now() - before >= BROADCOM_BCM0102.quote_ms


class TestSealUnseal:
    def test_roundtrip_no_policy(self, driver):
        blob = driver.seal(b"plain secret", {})
        assert driver.unseal(blob) == b"plain secret"

    def test_policy_enforced(self, tpm_setup, driver):
        tpm, _, _ = tpm_setup
        tpm.interface(LOCALITY_CPU).dynamic_pcr_reset()
        required = tpm.pcrs.read(17)
        blob = driver.seal(b"bound secret", {17: required})
        assert driver.unseal(blob) == b"bound secret"
        # Change PCR 17: unseal must now fail.
        driver.pcr_extend(17, b"\x01" * 20)
        with pytest.raises(TPMPolicyError):
            driver.unseal(blob)

    def test_policy_binds_to_wrong_value_never_opens(self, tpm_setup, driver):
        blob = driver.seal(b"unreachable", {17: b"\x42" * 20})
        with pytest.raises(TPMPolicyError):
            driver.unseal(blob)

    def test_tampered_blob_rejected(self, driver):
        blob = driver.seal(b"integrity", {})
        bad = SealedBlob(
            ciphertext=blob.ciphertext[:-1] + bytes([blob.ciphertext[-1] ^ 1]),
            mac=blob.mac,
            bound_pcrs=blob.bound_pcrs,
        )
        with pytest.raises(TPMError):
            driver.unseal(bad)

    def test_blob_opaque_to_holder(self, driver):
        """The ciphertext must not contain the plaintext."""
        blob = driver.seal(b"findable-plaintext-marker", {})
        assert b"findable-plaintext-marker" not in blob.ciphertext

    def test_blob_encode_decode(self, driver):
        blob = driver.seal(b"serialize me", {17: b"\x10" * 20})
        decoded = SealedBlob.decode(blob.encode())
        assert decoded == blob

    def test_seal_requires_valid_auth(self, tpm_setup):
        tpm, _, _ = tpm_setup
        iface = tpm.interface(0)
        session = iface.start_oiap()
        digest = command_digest("TPM_Seal", b"data", b"")
        wrong = session.compute_proof(b"\x99" * 20, digest, b"\x02" * 20)
        with pytest.raises(TPMAuthError):
            iface.seal(b"data", {}, session, b"\x02" * 20, wrong)

    def test_auth_session_proof_not_replayable(self, tpm_setup):
        tpm, _, _ = tpm_setup
        iface = tpm.interface(0)
        session = iface.start_oiap()
        nonce_odd = b"\x03" * 20
        digest = command_digest("TPM_Seal", b"data", b"")
        proof = session.compute_proof(iface.srk_auth, digest, nonce_odd)
        iface.seal(b"data", {}, session, nonce_odd, proof)
        # Rolling nonce means the same proof no longer authorizes.
        with pytest.raises(TPMAuthError):
            iface.seal(b"data", {}, session, nonce_odd, proof)

    def test_unseal_charges_profile_time(self, tpm_setup, driver):
        _, clock, _ = tpm_setup
        blob = driver.seal(b"k" * 20, {})
        before = clock.now()
        driver.unseal(blob)
        elapsed = clock.now() - before
        # Session setup + unseal; dominated by the ~898 ms unseal.
        assert elapsed == pytest.approx(
            BROADCOM_BCM0102.unseal_ms(20) + BROADCOM_BCM0102.session_ms, abs=1.0
        )


class TestOwnershipNVAndCounters:
    OWNER = b"\x0a" * 20

    def test_take_ownership_once(self, tpm_setup):
        tpm, _, _ = tpm_setup
        tpm.take_ownership(self.OWNER)
        assert tpm.owner_auth_installed
        with pytest.raises(TPMAuthError):
            tpm.take_ownership(self.OWNER)

    def test_owner_auth_length_checked(self, tpm_setup):
        tpm, _, _ = tpm_setup
        with pytest.raises(TPMError):
            tpm.take_ownership(b"short")

    def test_nv_define_requires_owner(self, tpm_setup, driver):
        with pytest.raises(TPMAuthError):
            driver.define_nv_space(0x1000, 20, self.OWNER)  # no owner installed

    def test_nv_define_write_read(self, tpm_setup, driver):
        tpm, _, _ = tpm_setup
        tpm.take_ownership(self.OWNER)
        driver.define_nv_space(0x1000, 64, self.OWNER)
        driver.nv_write(0x1000, b"persistent")
        assert driver.nv_read(0x1000) == b"persistent"

    def test_nv_pcr_gated_read(self, tpm_setup, driver):
        tpm, _, _ = tpm_setup
        tpm.take_ownership(self.OWNER)
        tpm.interface(LOCALITY_CPU).dynamic_pcr_reset()
        good = tpm.pcrs.read(17)
        driver.define_nv_space(0x2000, 20, self.OWNER, read_pcr_policy={17: good})
        driver.nv_write(0x2000, b"pal-only-value-here!")
        assert driver.nv_read(0x2000) == b"pal-only-value-here!"
        driver.pcr_extend(17, b"\x01" * 20)
        with pytest.raises(TPMPolicyError):
            driver.nv_read(0x2000)

    def test_nv_size_and_duplicates(self, tpm_setup, driver):
        tpm, _, _ = tpm_setup
        tpm.take_ownership(self.OWNER)
        driver.define_nv_space(0x3000, 8, self.OWNER)
        with pytest.raises(TPMNVError):
            driver.define_nv_space(0x3000, 8, self.OWNER)
        with pytest.raises(TPMNVError):
            driver.nv_write(0x3000, b"too long for space")
        with pytest.raises(TPMNVError):
            driver.nv_read(0x9999)

    def test_nv_read_before_write(self, tpm_setup, driver):
        tpm, _, _ = tpm_setup
        tpm.take_ownership(self.OWNER)
        driver.define_nv_space(0x4000, 8, self.OWNER)
        with pytest.raises(TPMNVError):
            driver.nv_read(0x4000)

    def test_counter_lifecycle(self, tpm_setup, driver):
        tpm, _, _ = tpm_setup
        tpm.take_ownership(self.OWNER)
        cid = driver.create_counter(b"replay", self.OWNER)
        assert driver.read_counter(cid) == 0
        assert driver.increment_counter(cid) == 1
        assert driver.increment_counter(cid) == 2
        assert driver.read_counter(cid) == 2

    def test_counter_unknown_id(self, tpm_setup, driver):
        with pytest.raises(TPMNVError):
            driver.read_counter(999)

    def test_nv_persists_across_reboot(self, tpm_setup, driver):
        tpm, _, _ = tpm_setup
        tpm.take_ownership(self.OWNER)
        driver.define_nv_space(0x5000, 16, self.OWNER)
        driver.nv_write(0x5000, b"durable")
        tpm.reboot()
        assert driver.nv_read(0x5000) == b"durable"


class TestMisc:
    def test_get_random_is_deterministic_per_seed(self):
        def make():
            return TPM(VirtualClock(), EventTrace(), DeterministicRNG(5),
                       BROADCOM_BCM0102, key_bits=512)

        assert make().interface(0).get_random(16) == make().interface(0).get_random(16)

    def test_get_capability(self, tpm_setup):
        tpm, _, _ = tpm_setup
        caps = tpm.interface(0).get_capability()
        assert caps["version"] == "1.2"
        assert caps["pcr_count"] == 24
        assert caps["owned"] is False

    def test_sessions_dropped_on_reboot(self, tpm_setup):
        tpm, _, _ = tpm_setup
        iface = tpm.interface(0)
        session = iface.start_oiap()
        tpm.reboot()
        digest = command_digest("TPM_Seal", b"x", b"")
        proof = session.compute_proof(iface.srk_auth, digest, b"\x01" * 20)
        with pytest.raises(TPMAuthError):
            iface.seal(b"x", {}, session, b"\x01" * 20, proof)
