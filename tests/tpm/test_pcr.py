"""PCR bank semantics (paper §2.1, §2.3)."""

import pytest

from repro.crypto.sha1 import sha1
from repro.errors import TPMError
from repro.tpm.pcr import (
    DYNAMIC_PCRS,
    PCR_COUNT,
    PCR_DYNAMIC_BOOT_VALUE,
    PCRBank,
    extend_value,
    simulate_extend_chain,
)


class TestExtendValue:
    def test_matches_specification(self):
        old = b"\x00" * 20
        m = sha1(b"measurement")
        assert extend_value(old, m) == sha1(old + m)

    def test_rejects_bad_lengths(self):
        with pytest.raises(TPMError):
            extend_value(b"\x00" * 19, b"\x00" * 20)
        with pytest.raises(TPMError):
            extend_value(b"\x00" * 20, b"short")

    def test_chain_simulation(self):
        measurements = [sha1(bytes([i])) for i in range(5)]
        value = b"\x00" * 20
        for m in measurements:
            value = extend_value(value, m)
        assert simulate_extend_chain(b"\x00" * 20, measurements) == value

    def test_order_matters(self):
        m1, m2 = sha1(b"1"), sha1(b"2")
        assert simulate_extend_chain(b"\x00" * 20, [m1, m2]) != simulate_extend_chain(
            b"\x00" * 20, [m2, m1]
        )


class TestPCRBank:
    def test_boot_values(self):
        bank = PCRBank()
        for i in range(PCR_COUNT):
            if i in DYNAMIC_PCRS:
                assert bank.read(i) == b"\xff" * 20, f"PCR {i}"
            else:
                assert bank.read(i) == b"\x00" * 20, f"PCR {i}"

    def test_dynamic_pcrs_are_17_to_23(self):
        assert DYNAMIC_PCRS == tuple(range(17, 24))

    def test_dynamic_reset_zeroes_only_dynamic(self):
        bank = PCRBank()
        bank.extend(0, sha1(b"static"))
        static_value = bank.read(0)
        bank.dynamic_reset()
        assert bank.read(17) == b"\x00" * 20
        assert bank.read(23) == b"\x00" * 20
        assert bank.read(0) == static_value

    def test_reboot_distinguishable_from_dynamic_reset(self):
        """§2.3: a verifier can tell a reboot (-1) from SKINIT's reset (0)."""
        bank = PCRBank()
        bank.dynamic_reset()
        assert bank.read(17) == b"\x00" * 20
        bank.reboot()
        assert bank.read(17) == PCR_DYNAMIC_BOOT_VALUE

    def test_extend_is_cumulative_and_irreversible(self):
        bank = PCRBank()
        bank.dynamic_reset()
        v1 = bank.extend(17, sha1(b"first"))
        v2 = bank.extend(17, sha1(b"second"))
        assert v1 != v2
        assert bank.read(17) == v2
        # No sequence of extends can return PCR 17 to its post-reset value
        # other than finding a SHA-1 preimage; spot-check a few extends.
        for i in range(16):
            bank.extend(17, sha1(bytes([i])))
            assert bank.read(17) != b"\x00" * 20

    def test_extend_matches_chain_helper(self):
        bank = PCRBank()
        bank.dynamic_reset()
        ms = [sha1(b"a"), sha1(b"b"), sha1(b"c")]
        for m in ms:
            bank.extend(17, m)
        assert bank.read(17) == simulate_extend_chain(b"\x00" * 20, ms)

    def test_index_bounds(self):
        bank = PCRBank()
        with pytest.raises(TPMError):
            bank.read(24)
        with pytest.raises(TPMError):
            bank.extend(-1, sha1(b"x"))

    def test_snapshot(self):
        bank = PCRBank()
        snap = bank.snapshot([0, 17])
        assert set(snap) == {0, 17}
        assert snap[17] == b"\xff" * 20
