"""The TPM idempotent-read cache: hits, invalidation, exclusions.

The cache changes *wall* cost only — every command still charges its
virtual latency and emits its trace event — so these tests focus on
correctness: cached reads return the same values, every mutating path
(including the hardware SKINIT/TXT path that writes the PCR bank
directly, bypassing the command layer) invalidates, and non-idempotent
commands never hit the cache.
"""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRNG
from repro.sim.timing import BROADCOM_BCM0102
from repro.sim.trace import EventTrace
from repro.tpm.tpm import LOCALITY_CPU, TPM


@pytest.fixture
def tpm():
    return TPM(VirtualClock(), EventTrace(), DeterministicRNG(42),
               BROADCOM_BCM0102, key_bits=512)


@pytest.fixture
def iface(tpm):
    return tpm.interface(0)


class TestCacheHits:
    def test_repeated_pcr_read_hits_the_cache(self, tpm, iface):
        first = iface.pcr_read(17)
        second = iface.pcr_read(17)
        assert first == second
        info = tpm.read_cache_info()
        assert info["hits"] >= 1
        assert info["entries"] >= 1

    def test_cached_read_still_charges_virtual_time(self, tpm, iface):
        iface.pcr_read(17)
        before = tpm._clock.now()
        iface.pcr_read(17)  # cache hit
        assert tpm._clock.now() > before

    def test_get_capability_hits_and_returns_fresh_copies(self, iface):
        first = iface.get_capability()
        second = iface.get_capability()
        assert first == second
        assert first is not second  # callers cannot poison the cache
        first["pcr_count"] = -1
        assert iface.get_capability()["pcr_count"] != -1

    def test_interface_exposes_cache_info(self, tpm, iface):
        assert iface.read_cache_info() == tpm.read_cache_info()


class TestInvalidation:
    def test_pcr_extend_invalidates(self, tpm, iface):
        stale = iface.pcr_read(17)
        iface.pcr_extend(17, b"\x11" * 20)
        assert iface.pcr_read(17) != stale

    def test_dynamic_reset_invalidates(self, tpm, iface):
        iface.pcr_extend(17, b"\x11" * 20)
        stale = iface.pcr_read(17)
        tpm.interface(LOCALITY_CPU).dynamic_pcr_reset()
        assert iface.pcr_read(17) == b"\x00" * 20
        assert iface.pcr_read(17) != stale

    def test_direct_hardware_pcr_write_invalidates_via_generation(self, tpm, iface):
        """SKINIT/TXT extend the PCR bank directly (``machine.tpm.pcrs``),
        bypassing the command layer; the generation counter catches it."""
        stale = iface.pcr_read(17)
        tpm.pcrs.extend(17, b"\x22" * 20)  # the hardware path
        assert iface.pcr_read(17) != stale

    def test_reboot_invalidates(self, tpm, iface):
        iface.pcr_extend(0, b"\x33" * 20)
        extended = iface.pcr_read(0)
        tpm.reboot()
        assert iface.pcr_read(0) != extended

    def test_nv_write_invalidates_nv_read(self, tpm, iface):
        from repro.osim.tpm_driver import OSTPMDriver

        owner = b"\x05" * 20
        tpm.take_ownership(owner)
        driver = OSTPMDriver(iface)
        driver.define_nv_space(0x1000, 4, owner)
        iface.nv_write(0x1000, b"aaaa")
        assert iface.nv_read(0x1000) == b"aaaa"
        assert iface.nv_read(0x1000) == b"aaaa"  # cached
        iface.nv_write(0x1000, b"bbbb")
        assert iface.nv_read(0x1000) == b"bbbb"

    def test_counter_increment_invalidates_counter_read(self, tpm, iface):
        from repro.osim.tpm_driver import OSTPMDriver

        owner = b"\x05" * 20
        tpm.take_ownership(owner)
        driver = OSTPMDriver(iface)
        counter_id = driver.create_counter(b"ctr", owner)

        assert iface.read_counter(counter_id) == iface.read_counter(counter_id)
        before = iface.read_counter(counter_id)
        iface.increment_counter(counter_id)
        assert iface.read_counter(counter_id) == before + 1


class TestGenerationCounter:
    def test_every_pcr_bank_mutation_bumps_generation(self, tpm):
        gen = tpm.pcrs.generation
        tpm.pcrs.extend(17, b"\x01" * 20)
        assert tpm.pcrs.generation == gen + 1
        tpm.pcrs.dynamic_reset()
        assert tpm.pcrs.generation == gen + 2
        tpm.pcrs.reboot()
        assert tpm.pcrs.generation == gen + 3


class TestExclusions:
    def test_get_random_is_never_cached(self, tpm, iface):
        entries_before = tpm.read_cache_info()["entries"]
        a = iface.get_random(20)
        b = iface.get_random(20)
        assert a != b  # fresh entropy every call
        assert tpm.read_cache_info()["entries"] == entries_before
