"""Rootkit detector application tests (paper §6.1, §7.2)."""

import pytest

from repro.apps.rootkit_detector import (
    DetectionReport,
    RemoteAdministrator,
    RootkitDetectorPAL,
    describe_kernel_regions,
)
from repro.osim.attacker import Attacker


@pytest.fixture
def admin(platform):
    return RemoteAdministrator(platform)


class TestCleanKernel:
    def test_clean_kernel_passes(self, admin):
        report = admin.run_detection_query()
        assert report.attestation_valid, report.failures
        assert report.kernel_clean
        assert not report.compromised

    def test_repeated_queries_stay_clean(self, admin):
        for _ in range(3):
            assert admin.run_detection_query().kernel_clean

    def test_query_latency_matches_section72(self, admin):
        """§7.2: average end-to-end query time ≈ 1.02 s."""
        report = admin.run_detection_query()
        assert report.query_latency_ms == pytest.approx(1022.7, abs=30.0)

    def test_detector_hash_is_output(self, admin, platform):
        from repro.crypto.sha1 import sha1

        report = admin.run_detection_query()
        assert report.kernel_hash == sha1(platform.kernel.pristine_measurement_input())


class TestCompromisedKernel:
    def test_text_patch_detected(self, admin, platform):
        Attacker(platform.kernel).patch_kernel_text()
        report = admin.run_detection_query()
        assert report.attestation_valid
        assert report.compromised

    def test_syscall_hook_detected(self, admin, platform):
        Attacker(platform.kernel).hook_syscall(11)
        assert admin.run_detection_query().compromised

    def test_malicious_module_detected_against_approved_list(self, admin, platform):
        """The admin's known-good hash covers the module set it approved;
        a kernel with an extra (evil) module measures differently."""
        approved_known_good = admin.known_good_hash()
        Attacker(platform.kernel).install_malicious_module()
        report = admin.run_detection_query()
        assert report.attestation_valid
        assert report.kernel_hash != approved_known_good

    def test_module_attack_changes_hash(self, admin, platform):
        before = admin.run_detection_query().kernel_hash
        Attacker(platform.kernel).install_malicious_module()
        after = admin.run_detection_query().kernel_hash
        assert before != after

    def test_detection_after_repair(self, admin, platform):
        """Restoring the kernel text restores a clean verdict."""
        from repro.osim.kernel import KERNEL_TEXT_BASE

        attacker = Attacker(platform.kernel)
        attacker.patch_kernel_text(offset=0x2000)
        assert admin.run_detection_query().compromised
        platform.machine.memory.write(
            KERNEL_TEXT_BASE, platform.kernel._pristine_text
        )
        assert admin.run_detection_query().kernel_clean


class TestMaliciousOSBehaviour:
    def test_os_cannot_fake_clean_hash(self, admin, platform):
        """A compromised OS that runs the detector but swaps the output
        hash for the known-good one fails attestation."""
        from dataclasses import replace

        Attacker(platform.kernel).patch_kernel_text()
        nonce = admin._fresh_nonce()
        inputs = describe_kernel_regions(platform.kernel)
        session = platform.execute_pal(admin.pal, inputs=inputs, nonce=nonce)
        attestation = platform.attest(nonce, session)
        forged = replace(attestation, outputs=admin.known_good_hash())
        report = platform.verifier().verify(
            forged, session.image, nonce, pal_extends=[forged.outputs]
        )
        assert not report.ok

    def test_os_cannot_skip_the_run(self, admin, platform):
        """Without a fresh session, the quote cannot chain to a fresh
        nonce: replaying yesterday's attestation fails."""
        report1 = admin.run_detection_query()
        assert report1.kernel_clean
        # Attack, then replay the old attestation against a new nonce: the
        # admin's verify step inside run_detection_query would catch it;
        # simulate directly by reusing the old quote with a new nonce.
        Attacker(platform.kernel).patch_kernel_text()
        report2 = admin.run_detection_query()
        assert report2.compromised  # fresh run tells the truth


class TestDetectorPAL:
    def test_empty_regions_contained(self, platform):
        from repro.errors import PALRuntimeError

        with pytest.raises(PALRuntimeError):
            platform.execute_pal(
                RootkitDetectorPAL(),
                inputs=(0).to_bytes(2, "big") + (0).to_bytes(8, "big"))

    def test_region_descriptor_roundtrip(self, kernel):
        from repro.apps.rootkit_detector import _parse_regions

        payload = describe_kernel_regions(kernel)
        regions, modelled = _parse_regions(payload)
        assert len(regions) == len(kernel.measured_regions())
        assert modelled == int(kernel.measured_size_kb() * 1024)

    def test_hash_time_charged_for_modelled_size(self, platform):
        """Table 1: kernel hashing accounts for ≈22 ms of the session."""
        admin = RemoteAdministrator(platform)
        clock = platform.machine.clock
        inputs = describe_kernel_regions(platform.kernel)
        before = clock.now()
        platform.execute_pal(admin.pal, inputs=inputs)
        session_ms = clock.now() - before
        # SKINIT ~15 + hash ~22 + extends ~4 + bookkeeping; well below the
        # 1 s quote-dominated e2e but above SKINIT alone.
        assert 35.0 <= session_ms <= 60.0
