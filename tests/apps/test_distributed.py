"""Distributed-computing application tests (paper §6.2, §7.3, Figure 8)."""

import pytest

from repro.apps.distributed import (
    BOINCClient,
    BOINCServer,
    ClientProgress,
    DistributedPAL,
    FactoringState,
    FactoringWorkUnit,
    ReplicationScheme,
    flicker_efficiency,
)
from repro.errors import PALRuntimeError
from repro.osim.attacker import Attacker

NONCE = b"\x0d" * 20


@pytest.fixture
def client(platform):
    return BOINCClient(platform)


@pytest.fixture
def server():
    # 3 * 5 * 7 * 11 * 13 = 15015 has many small factors.
    return BOINCServer(n=15015 * 1_000_003, range_per_unit=400)


class TestFactoringState:
    def test_encode_decode(self):
        state = FactoringState(unit_id=3, n=15015, cursor=17, end=400, found=(3, 5, 7))
        assert FactoringState.decode(state.encode()) == state

    def test_done_flag(self):
        assert FactoringState(0, 10, cursor=100, end=100).done
        assert not FactoringState(0, 10, cursor=99, end=100).done


class TestWorkUnitLifecycle:
    def test_init_session_produces_protected_state(self, client, server):
        unit = server.issue_unit()
        progress = client.start_unit(unit)
        assert progress.state.unit_id == unit.unit_id
        assert progress.state.cursor == unit.start
        assert len(progress.mac) == 20
        assert not progress.done

    def test_unit_runs_to_completion(self, client, server):
        unit = server.issue_unit()
        progress, _ = client.run_unit(unit, slice_ms=1000)
        state = progress.state
        assert state.done
        assert 3 in state.found and 5 in state.found and 7 in state.found

    def test_found_factors_actually_divide(self, client, server):
        unit = server.issue_unit()
        progress, _ = client.run_unit(unit, slice_ms=1000)
        for factor in progress.state.found:
            assert server.n % factor == 0

    def test_work_split_across_slices(self, client, server):
        unit = server.issue_unit()
        progress = client.start_unit(unit)
        slices = 0
        while not progress.done:
            # 1 ms of work covers ~181 divisors, under the 400-wide range,
            # so the unit must take multiple sessions.
            progress, _ = client.work_slice(progress, slice_ms=1)
            slices += 1
            assert slices < 100
        assert slices >= 2

    def test_units_have_disjoint_ranges(self, server):
        u1, u2 = server.issue_unit(), server.issue_unit()
        assert u1.end <= u2.start


class TestStateIntegrity:
    def test_tampered_state_rejected(self, client, server):
        """An OS that edits the inter-session state (e.g. to skip work)
        fails the HMAC check in the next session."""
        unit = server.issue_unit()
        progress = client.start_unit(unit)
        doctored = FactoringState.decode(progress.state_bytes)
        doctored = FactoringState(
            unit_id=doctored.unit_id, n=doctored.n,
            cursor=doctored.end,  # pretend the work is done
            end=doctored.end, found=(),
        )
        forged = ClientProgress(
            sealed_key=progress.sealed_key,
            state_bytes=doctored.encode(),
            mac=progress.mac,
        )
        with pytest.raises(PALRuntimeError, match="MAC"):
            client.work_slice(forged, slice_ms=100)

    def test_tampered_mac_rejected(self, client, server):
        unit = server.issue_unit()
        progress = client.start_unit(unit)
        forged = ClientProgress(
            sealed_key=progress.sealed_key,
            state_bytes=progress.state_bytes,
            mac=bytes(b ^ 1 for b in progress.mac),
        )
        with pytest.raises(PALRuntimeError, match="MAC"):
            client.work_slice(forged, slice_ms=100)

    def test_hmac_key_unreachable_by_os(self, client, server, platform):
        unit = server.issue_unit()
        progress = client.start_unit(unit)
        from repro.errors import TPMPolicyError

        with pytest.raises(TPMPolicyError):
            platform.tqd.driver.unseal(progress.sealed_key)

    def test_sealed_key_blob_tamper_rejected(self, client, server, platform):
        unit = server.issue_unit()
        progress = client.start_unit(unit)
        forged = ClientProgress(
            sealed_key=Attacker(platform.kernel).tamper_blob(progress.sealed_key),
            state_bytes=progress.state_bytes,
            mac=progress.mac,
        )
        with pytest.raises(PALRuntimeError):
            client.work_slice(forged, slice_ms=100)


class TestServerVerification:
    def test_attested_result_accepted(self, client, server, platform):
        unit = server.issue_unit()
        progress = client.start_unit(unit)
        result = None
        while not progress.done:
            progress, result = client.work_slice(progress, slice_ms=1000, nonce=NONCE)
        attestation = platform.attest(NONCE, result)
        assert server.accept_result(platform, unit, progress, result, attestation, NONCE)
        assert server.verified_results[unit.unit_id] == progress.state.found

    def test_forged_result_rejected(self, client, server, platform):
        from dataclasses import replace

        unit = server.issue_unit()
        progress = client.start_unit(unit)
        result = None
        while not progress.done:
            progress, result = client.work_slice(progress, slice_ms=1000, nonce=NONCE)
        attestation = platform.attest(NONCE, result)
        # A cheating client claims different factors.
        lying_state = FactoringState(
            unit_id=unit.unit_id, n=server.n, cursor=unit.end, end=unit.end,
            found=(9999,),
        )
        lying = ClientProgress(
            sealed_key=progress.sealed_key,
            state_bytes=lying_state.encode(),
            mac=progress.mac,
            done=True,
        )
        assert not server.accept_result(platform, unit, lying, result, attestation, NONCE)

    def test_unfinished_unit_rejected(self, client, server, platform):
        unit = server.issue_unit()
        progress = client.start_unit(unit)
        progress, result = client.work_slice(progress, slice_ms=1, nonce=NONCE)
        assert not progress.done  # 1 ms covers < half the 400-wide range
        attestation = platform.attest(NONCE, result)
        assert not server.accept_result(platform, unit, progress, result, attestation, NONCE)


class TestEfficiencyModel:
    def test_replication_efficiency(self):
        assert ReplicationScheme(3).efficiency == pytest.approx(1 / 3)
        assert ReplicationScheme(7).efficiency == pytest.approx(1 / 7)

    def test_majority_result(self):
        scheme = ReplicationScheme(3)
        assert scheme.majority_result([(3,), (3,), (5,)]) == (3,)
        assert scheme.majority_result([(3,), (5,), (7,)]) is None

    def test_flicker_efficiency_curve_shape(self):
        overhead = 912.6  # SKINIT + Unseal (Table 4)
        values = [flicker_efficiency(s * 1000.0, overhead) for s in range(1, 11)]
        assert all(b > a for a, b in zip(values, values[1:]))  # rising
        assert values[0] < 0.2  # ~9% at 1 s
        assert values[-1] > 0.89  # >90% at 10 s

    def test_crossover_vs_3way_near_1_4s(self):
        """§7.3: 'a two second user latency allows a more efficient
        distributed application than replicating to three or more
        machines' — the crossover sits below 2 s."""
        overhead = 912.6
        assert flicker_efficiency(2000.0, overhead) > ReplicationScheme(3).efficiency
        assert flicker_efficiency(1300.0, overhead) < ReplicationScheme(3).efficiency

    def test_zero_latency_degenerate(self):
        assert flicker_efficiency(0.0, 900.0) == 0.0
        assert flicker_efficiency(500.0, 900.0) == 0.0  # overhead exceeds budget


class TestSessionOverheads:
    def test_work_session_overhead_matches_table4(self, client, server, platform):
        """Table 4: SKINIT 14.3 + Unseal 898.3 ≈ 912.6 ms of overhead per
        work session."""
        unit = server.issue_unit()
        progress = client.start_unit(unit)
        clock = platform.machine.clock
        before = clock.now()
        progress, result = client.work_slice(progress, slice_ms=1000)
        total = clock.now() - before
        overhead = total - 1000.0
        assert overhead == pytest.approx(912.6, rel=0.05)
        assert result.tpm_ms["unseal"] == pytest.approx(898.3, rel=0.01)
        assert result.phase_ms["skinit"] == pytest.approx(14.3, abs=1.0)

    def test_overhead_fraction_by_slice_length(self, client, server, platform):
        """Table 4's bottom row: 47/30/18/10 % at 1/2/4/8 s of work."""
        unit = server.issue_unit()
        expectations = {1000: 0.47, 2000: 0.30, 4000: 0.18, 8000: 0.10}
        for work_ms, expected in expectations.items():
            progress = client.start_unit(
                FactoringWorkUnit(unit_id=99, n=15015, start=2, end=3)
            )
            clock = platform.machine.clock
            before = clock.now()
            client.work_slice(progress, slice_ms=work_ms)
            total = clock.now() - before
            fraction = (total - work_ms) / total
            assert fraction == pytest.approx(expected, abs=0.02), work_ms
