"""Fleet-level application scenarios: the VPN gateway and a multi-client
BOINC project (the deployments §6.1/§6.2 motivate)."""

import pytest

from repro.apps.distributed import BOINCProject, ReplicationScheme
from repro.apps.rootkit_detector import VPNGateway
from repro.core import FlickerPlatform
from repro.osim.attacker import Attacker


class TestVPNGateway:
    @pytest.fixture
    def gateway(self):
        gw = VPNGateway()
        self.platforms = {
            "laptop-a": FlickerPlatform(seed=101),
            "laptop-b": FlickerPlatform(seed=102),
        }
        for host, platform in self.platforms.items():
            gw.enroll(host, platform)
        return gw

    def test_clean_host_admitted(self, gateway):
        decision = gateway.request_access("laptop-a")
        assert decision.admitted
        assert decision.report.attestation_valid

    def test_compromised_host_denied(self, gateway):
        Attacker(self.platforms["laptop-b"].kernel).patch_kernel_text()
        decision = gateway.request_access("laptop-b")
        assert not decision.admitted
        assert decision.report.compromised

    def test_compromise_on_one_host_does_not_affect_others(self, gateway):
        Attacker(self.platforms["laptop-b"].kernel).hook_syscall(2)
        assert gateway.request_access("laptop-a").admitted
        assert not gateway.request_access("laptop-b").admitted

    def test_unenrolled_host_denied(self, gateway):
        decision = gateway.request_access("stranger")
        assert not decision.admitted
        assert "not enrolled" in decision.report.failures[0]

    def test_audit_log_records_everything(self, gateway):
        gateway.request_access("laptop-a")
        gateway.request_access("stranger")
        assert [d.host for d in gateway.audit_log] == ["laptop-a", "stranger"]
        assert [d.admitted for d in gateway.audit_log] == [True, False]

    def test_repeat_checks_catch_later_compromise(self, gateway):
        assert gateway.request_access("laptop-a").admitted
        Attacker(self.platforms["laptop-a"].kernel).patch_kernel_text()
        assert not gateway.request_access("laptop-a").admitted


class TestBOINCProject:
    def test_fleet_run_all_units_accepted(self):
        project = BOINCProject(n=3 * 5 * 7 * 1_000_003, range_per_unit=200)
        platforms = [FlickerPlatform(seed=200 + i) for i in range(3)]
        report = project.run(platforms, units_per_client=2, slice_ms=1000.0)
        assert report.units_issued == 6
        assert report.units_accepted == 6
        assert report.units_rejected == 0

    def test_fleet_finds_all_low_factors(self):
        project = BOINCProject(n=3 * 5 * 7 * 1_000_003, range_per_unit=200)
        platforms = [FlickerPlatform(seed=300 + i) for i in range(2)]
        project.run(platforms, units_per_client=1, slice_ms=1000.0)
        found = set()
        for factors in project.server.verified_results.values():
            found.update(factors)
        assert {3, 5, 7} <= found

    def test_efficiency_beats_replication_at_long_slices(self):
        project = BOINCProject(n=15015, range_per_unit=100_000)
        platforms = [FlickerPlatform(seed=400)]
        report = project.run(platforms, units_per_client=1, slice_ms=4000.0)
        assert report.units_accepted == 1
        assert report.efficiency > ReplicationScheme(3).efficiency

    def test_each_client_attests_with_its_own_aik(self):
        """Per-client TPMs: the server's trust decisions are per machine."""
        p1, p2 = FlickerPlatform(seed=500), FlickerPlatform(seed=501)
        assert p1.machine.tpm.aik_public != p2.machine.tpm.aik_public
