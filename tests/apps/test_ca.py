"""Certificate-authority application tests (paper §6.3.2, §7.4.2)."""

import pytest

from repro.apps.ca import (
    Certificate,
    CertificateAuthority,
    CertificateAuthorityPAL,
    CertificateSigningRequest,
    SigningPolicy,
)
from repro.crypto.rsa import generate_rsa_keypair
from repro.sim.rng import DeterministicRNG


@pytest.fixture
def ca(platform):
    authority = CertificateAuthority(platform)
    authority.initialize()
    return authority


@pytest.fixture
def subject_keys():
    return generate_rsa_keypair(512, DeterministicRNG(2024))


def csr_for(subject, keys):
    return CertificateSigningRequest(subject=subject, public_key=keys.public)


class TestEncodings:
    def test_csr_roundtrip(self, subject_keys):
        csr = csr_for("www.example.com", subject_keys)
        assert CertificateSigningRequest.decode(csr.encode()) == csr

    def test_policy_roundtrip(self):
        policy = SigningPolicy(
            allowed_suffixes=(".example.com", ".example.org"),
            denied_subjects=("bad.example.com",),
            max_certificates=42,
        )
        assert SigningPolicy.decode(policy.encode()) == policy

    def test_certificate_roundtrip(self, ca, subject_keys):
        cert = ca.sign(csr_for("www.example.com", subject_keys))
        assert Certificate.decode(cert.encode()) == cert


class TestIssuance:
    def test_issue_and_verify(self, ca, subject_keys):
        cert = ca.sign(csr_for("www.example.com", subject_keys))
        assert cert is not None
        assert cert.subject == "www.example.com"
        assert cert.public_key == subject_keys.public
        assert cert.verify(ca.public_key)

    def test_serials_increment(self, ca, subject_keys):
        c1 = ca.sign(csr_for("a.example.com", subject_keys))
        c2 = ca.sign(csr_for("b.example.com", subject_keys))
        assert (c1.serial, c2.serial) == (1, 2)

    def test_certificate_fails_against_other_key(self, ca, subject_keys):
        cert = ca.sign(csr_for("www.example.com", subject_keys))
        other = generate_rsa_keypair(512, DeterministicRNG(9))
        assert not cert.verify(other.public)

    def test_tampered_certificate_rejected(self, ca, subject_keys):
        from dataclasses import replace

        cert = ca.sign(csr_for("www.example.com", subject_keys))
        forged = replace(cert, subject="evil.example.com")
        assert not forged.verify(ca.public_key)


class TestPolicy:
    def test_disallowed_suffix_denied(self, ca, subject_keys):
        assert ca.sign(csr_for("www.attacker.net", subject_keys)) is None

    def test_denied_subject(self, platform, subject_keys):
        authority = CertificateAuthority(
            platform,
            policy=SigningPolicy(denied_subjects=("blocked.example.com",)),
        )
        authority.initialize()
        assert authority.sign(csr_for("blocked.example.com", subject_keys)) is None
        assert authority.sign(csr_for("ok.example.com", subject_keys)) is not None

    def test_max_certificates_enforced(self, platform, subject_keys):
        authority = CertificateAuthority(
            platform, policy=SigningPolicy(max_certificates=2)
        )
        authority.initialize()
        assert authority.sign(csr_for("a.example.com", subject_keys)) is not None
        assert authority.sign(csr_for("b.example.com", subject_keys)) is not None
        assert authority.sign(csr_for("c.example.com", subject_keys)) is None

    def test_denials_logged_count_against_nothing(self, platform, subject_keys):
        """A denial reseals the DB (audit) but does not consume serials."""
        authority = CertificateAuthority(platform)
        authority.initialize()
        authority.sign(csr_for("evil.net", subject_keys))
        cert = authority.sign(csr_for("fine.example.com", subject_keys))
        assert cert.serial == 1


class TestKeySecrecy:
    def test_signing_key_never_in_cleartext_memory_after_session(self, ca, platform, subject_keys):
        """The sealed-state plaintext starts with the private-key encoding,
        whose first bytes are the (public) modulus — so if the plaintext
        leaked anywhere, scanning for the modulus bytes would find it.
        The modulus legitimately appears in the *output page* (inside the
        issued certificate), so hits there are excluded."""
        from repro.core.layout import PARAM_PAGE_SIZE, SLBLayout

        ca.sign(csr_for("www.example.com", subject_keys))
        layout = SLBLayout(base=platform.flicker.slb_base)
        n_bytes = ca.public_key.n.to_bytes(ca.public_key.modulus_bytes, "big")
        hits = [
            addr
            for addr in platform.machine.memory.find_bytes(n_bytes)
            if not layout.output_page <= addr < layout.output_page + PARAM_PAGE_SIZE
        ]
        assert hits == []

    def test_os_cannot_unseal_signing_key(self, ca, platform):
        from repro.errors import TPMPolicyError
        from repro.tpm.structures import SealedBlob

        with pytest.raises(TPMPolicyError):
            platform.tqd.driver.unseal(SealedBlob.decode(ca._sealed_state))

    def test_sign_before_initialize_rejected(self, platform, subject_keys):
        authority = CertificateAuthority(platform)
        with pytest.raises(RuntimeError):
            authority.sign(csr_for("x.example.com", subject_keys))


class TestAuditAndRevocation:
    def test_audit_log_records_decisions(self, ca, subject_keys):
        ca.sign(csr_for("a.example.com", subject_keys))
        ca.sign(csr_for("evil.net", subject_keys))  # denied
        log = ca.audit_log()
        assert any(entry.startswith("ISSUED:1:") for entry in log)
        assert "DENIED:evil.net" in log

    def test_revoke_issued_certificate(self, ca, subject_keys):
        cert = ca.sign(csr_for("a.example.com", subject_keys))
        assert ca.certificate_valid(cert)
        assert ca.revoke(cert.serial)
        assert not ca.certificate_valid(cert)
        # The signature itself still verifies — revocation is a CRL fact.
        assert cert.verify(ca.public_key)

    def test_revoke_unknown_serial_refused(self, ca, subject_keys):
        ca.sign(csr_for("a.example.com", subject_keys))
        assert not ca.revoke(999)

    def test_revocation_is_idempotent_and_durable(self, ca, subject_keys):
        cert = ca.sign(csr_for("a.example.com", subject_keys))
        assert ca.revoke(cert.serial)
        assert ca.revoke(cert.serial)  # already revoked: still "in effect"
        assert ca.revoked_serials() == [cert.serial]

    def test_other_certificates_unaffected(self, ca, subject_keys):
        c1 = ca.sign(csr_for("a.example.com", subject_keys))
        c2 = ca.sign(csr_for("b.example.com", subject_keys))
        ca.revoke(c1.serial)
        assert not ca.certificate_valid(c1)
        assert ca.certificate_valid(c2)

    def test_compromise_recovery_story(self, ca, platform, subject_keys):
        """§6.3.2's argument: a compromised OS submits a malicious CSR the
        policy happens to allow; once discovered, the bad certificate is
        revoked — no CA key rollover needed, because the key never leaked."""
        rogue = ca.sign(csr_for("rogue.example.com", subject_keys))
        assert rogue is not None  # the attack "succeeded"
        assert any(f"ISSUED:{rogue.serial}:" in e for e in ca.audit_log())
        ca.revoke(rogue.serial)
        assert not ca.certificate_valid(rogue)
        # The CA key remains trustworthy: new issuance continues.
        clean = ca.sign(csr_for("clean.example.com", subject_keys))
        assert ca.certificate_valid(clean)


class TestTimings:
    def test_signing_latency_matches_section742(self, ca, subject_keys):
        """§7.4.2: one CSR signing averages ≈906.2 ms (Unseal-dominated)."""
        platform = ca.platform
        before = platform.machine.clock.now()
        ca.sign(csr_for("timed.example.com", subject_keys))
        elapsed = platform.machine.clock.now() - before
        assert elapsed == pytest.approx(906.2, rel=0.15)

    def test_unseal_dominates(self, ca, subject_keys):
        ca.sign(csr_for("www.example.com", subject_keys))
        session = ca.last_session
        assert session.tpm_ms["unseal"] > 0.8 * session.total_ms
