"""SSH password-authentication tests (paper §6.3.1, Figure 7, §7.4.1)."""

import pytest

from repro.apps.ssh_auth import PasswdEntry, SSHClient, SSHPasswordPAL, SSHServer
from repro.core import FlickerPlatform
from repro.crypto.md5crypt import md5crypt

PASSWORD = b"correct-horse"
SALT = b"fLiCkEr1"


@pytest.fixture
def deployment(platform):
    server = SSHServer(platform)
    server.add_user(PasswdEntry.create("alice", PASSWORD, SALT))
    client = SSHClient(platform)
    return platform, server, client


class TestPasswdEntry:
    def test_create_matches_md5crypt(self):
        entry = PasswdEntry.create("bob", b"pw", b"somesalt")
        assert entry.hashed == md5crypt(b"pw", b"somesalt")
        assert entry.salt == b"somesalt"


class TestLoginFlow:
    def test_correct_password_authenticates(self, deployment):
        _, server, client = deployment
        outcome = client.connect_and_login(server, "alice", PASSWORD)
        assert outcome.authenticated

    def test_wrong_password_rejected(self, deployment):
        _, server, client = deployment
        assert not client.connect_and_login(server, "alice", b"wrong").authenticated

    def test_unknown_user_rejected(self, deployment):
        _, server, client = deployment
        assert not client.connect_and_login(server, "mallory", PASSWORD).authenticated

    def test_multiple_users(self, deployment):
        platform, server, client = deployment
        server.add_user(PasswdEntry.create("carol", b"carolpw", b"csalt"))
        assert client.connect_and_login(server, "carol", b"carolpw").authenticated
        assert not client.connect_and_login(server, "carol", PASSWORD).authenticated


class TestSecrecy:
    def test_cleartext_password_never_crosses_network(self, deployment):
        platform, server, client = deployment
        client.connect_and_login(server, "alice", PASSWORD)
        for _, _, payload in platform.network.messages():
            if isinstance(payload, bytes):
                assert PASSWORD not in payload

    def test_cleartext_password_not_in_memory_after_login(self, deployment):
        """§6.3.1: the unencrypted password exists on the server only
        during the Flicker session; cleanup must erase it."""
        platform, server, client = deployment
        client.connect_and_login(server, "alice", PASSWORD)
        assert platform.machine.memory.find_bytes(PASSWORD) == ()

    def test_password_hash_comparison_happens_outside_pal(self, deployment):
        """The PAL outputs only the crypt hash — the OS-side comparison
        needs nothing secret."""
        platform, server, client = deployment
        client.connect_and_login(server, "alice", PASSWORD)
        assert platform.last_session.outputs == md5crypt(PASSWORD, SALT).encode("ascii")

    def test_replayed_ciphertext_rejected(self, deployment):
        """A captured login ciphertext replayed under a different server
        nonce must fail (Figure 7's nonce check)."""
        from repro.core.secure_channel import SecureChannelClient
        from repro.errors import PALRuntimeError

        platform, server, _ = deployment
        client_nonce = b"\x03" * 20
        session, attestation = server.run_setup_session(client_nonce)
        channel_client = SecureChannelClient(
            platform.verifier(), platform.machine.rng.fork("replay-test")
        )
        channel = channel_client.accept(attestation, session.image, client_nonce)

        nonce1 = server._fresh_nonce()
        message = len(PASSWORD).to_bytes(2, "big") + PASSWORD + nonce1
        ciphertext = channel_client.encrypt(channel, message)
        sdata = channel.sdata.encode()
        assert server.run_login_session("alice", ciphertext, sdata, nonce1)

        # Same ciphertext, different login nonce: the PAL must abort.
        nonce2 = server._fresh_nonce()
        with pytest.raises(PALRuntimeError, match="nonce"):
            server.run_login_session("alice", ciphertext, sdata, nonce2)


class TestTimings:
    def test_time_to_prompt_matches_paper(self, deployment):
        """§7.4.1: ~1221 ms from TCP connect to password prompt (vs 210 ms
        unmodified).  Dominated by the Quote (972.7 here vs the paper's
        949 ms sample) plus PAL 1."""
        _, server, client = deployment
        outcome = client.connect_and_login(server, "alice", PASSWORD)
        assert outcome.time_to_prompt_ms == pytest.approx(1221.0, rel=0.06)

    def test_time_after_entry_matches_paper(self, deployment):
        """§7.4.1: ~940 ms from password entry to session (vs 10 ms
        unmodified), dominated by the Unseal."""
        _, server, client = deployment
        outcome = client.connect_and_login(server, "alice", PASSWORD)
        assert outcome.time_after_entry_ms == pytest.approx(940.0, rel=0.03)

    def test_pal1_breakdown_matches_fig9a(self, platform):
        """Figure 9(a): SKINIT 14.3, KeyGen 185.7, Seal 10.2 → total 217.1."""
        server = SSHServer(platform)
        session, _ = server.run_setup_session(b"\x00" * 20)
        assert session.phase_ms["skinit"] == pytest.approx(14.3, abs=1.0)
        assert session.tpm_ms.get("seal", 0) == pytest.approx(10.2, abs=2.0)
        assert session.total_ms == pytest.approx(217.1, rel=0.08)

    def test_pal2_dominated_by_unseal(self, deployment):
        """Figure 9(b): Unseal 905.4 of the 937.6 ms total."""
        platform, server, client = deployment
        client.connect_and_login(server, "alice", PASSWORD)
        login_session = platform.last_session
        assert login_session.tpm_ms.get("unseal", 0) == pytest.approx(905.4, rel=0.02)
        assert login_session.total_ms == pytest.approx(937.6, rel=0.05)

    def test_channel_reuse_skips_setup_pal(self, platform):
        """§6.3.1's optimization: 'only create a new keypair the first
        time a user connects' — cached-channel logins skip PAL 1 and the
        Quote, collapsing the time-to-prompt."""
        from repro.apps.ssh_auth import SSHClient as Client

        server = SSHServer(platform)
        server.add_user(PasswdEntry.create("alice", PASSWORD, SALT))
        client = Client(platform, reuse_channel=True)
        first = client.connect_and_login(server, "alice", PASSWORD)
        second = client.connect_and_login(server, "alice", PASSWORD)
        assert first.authenticated and second.authenticated
        # Second connection: no setup PAL, no Quote → prompt in ~transport
        # time instead of ~1.2 s.
        assert second.time_to_prompt_ms < 0.1 * first.time_to_prompt_ms
        # The login path itself is unchanged (still Unseal-dominated).
        assert second.time_after_entry_ms == pytest.approx(
            first.time_after_entry_ms, rel=0.05
        )

    def test_forget_channel_triggers_rekey(self, platform):
        from repro.apps.ssh_auth import SSHClient as Client

        server = SSHServer(platform)
        server.add_user(PasswdEntry.create("alice", PASSWORD, SALT))
        client = Client(platform, reuse_channel=True)
        client.connect_and_login(server, "alice", PASSWORD)
        client.forget_channel()
        outcome = client.connect_and_login(server, "alice", PASSWORD)
        assert outcome.authenticated
        assert outcome.time_to_prompt_ms > 1000.0  # full setup again

    def test_faster_tpm_shrinks_login(self):
        """Ablation: the Infineon profile (Unseal 391 ms) roughly halves
        the post-entry latency."""
        from repro.sim.timing import INFINEON_PROFILE

        slow = FlickerPlatform(seed=77)
        fast = FlickerPlatform(profile=INFINEON_PROFILE, seed=77)
        outcomes = {}
        for label, plat in (("slow", slow), ("fast", fast)):
            server = SSHServer(plat)
            server.add_user(PasswdEntry.create("alice", PASSWORD, SALT))
            outcomes[label] = SSHClient(plat).connect_and_login(
                server, "alice", PASSWORD
            ).time_after_entry_ms
        assert outcomes["fast"] < 0.6 * outcomes["slow"]
