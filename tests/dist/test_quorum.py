"""The quorum decision function: unanimity, flags, escalation, ties."""

import pytest

from repro.dist.quorum import QuorumDecision, QuorumPolicy, UnitQuorum

POLICY = QuorumPolicy(base_quorum=3, trusted_quorum=1, escalation=2,
                      max_rounds=4)


def quorum(target=3):
    return UnitQuorum("u00000-test", target)


class TestUnanimity:
    def test_pending_until_target(self):
        q = quorum(3)
        q.add_vote("a", "d1")
        q.add_vote("b", "d1")
        assert q.decide(POLICY).outcome == "pending"

    def test_unanimous_at_target_validates(self):
        q = quorum(3)
        for client in "abc":
            q.add_vote(client, "d1")
        decision = q.decide(POLICY)
        assert decision == QuorumDecision("validated", digest="d1")

    def test_single_vote_target_validates_immediately(self):
        q = quorum(1)
        q.add_vote("a", "d1")
        assert q.decide(POLICY).outcome == "validated"


class TestFlagging:
    def test_any_disagreement_flags(self):
        # 2-of-3 majority already in hand — still flags, never validates:
        # the disagreeing minority might be the honest one.
        q = quorum(3)
        q.add_vote("a", "d1")
        q.add_vote("b", "d1")
        q.add_vote("c", "d2")
        assert q.decide(POLICY).outcome == "flag"

    def test_escalation_raises_target_and_round(self):
        q = quorum(3)
        q.add_vote("a", "d1")
        q.add_vote("b", "d2")
        q.escalate(POLICY, pool_size=10)
        assert (q.target, q.rounds, q.flagged) == (5, 2, True)
        assert q.initial_target == 3

    def test_escalation_clamps_to_pool(self):
        q = quorum(3)
        q.escalate(POLICY, pool_size=4)
        assert q.target == 4

    def test_flagged_plurality_validates_at_target(self):
        q = quorum(3)
        for client, digest in (("a", "d1"), ("b", "d2"), ("c", "d1")):
            q.add_vote(client, digest)
        q.escalate(POLICY, pool_size=5)
        q.add_vote("d", "d1")
        q.add_vote("e", "d1")
        decision = q.decide(POLICY)
        assert decision == QuorumDecision("validated", digest="d1")

    def test_flagged_pending_below_target(self):
        q = quorum(3)
        q.add_vote("a", "d1")
        q.add_vote("b", "d2")
        q.escalate(POLICY, pool_size=5)
        assert q.decide(POLICY).outcome == "pending"


class TestTies:
    def test_tie_flags_again_while_clients_remain(self):
        q = quorum(2)
        q.add_vote("a", "d1")
        q.add_vote("b", "d2")
        q.escalate(POLICY, pool_size=4)
        q.add_vote("c", "d1")
        q.add_vote("d", "d2")
        assert q.decide(POLICY).outcome == "flag"

    def test_tie_with_pool_exhausted_abandons(self):
        q = quorum(2)
        q.add_vote("a", "d1")
        q.add_vote("b", "d2")
        q.escalate(POLICY, pool_size=2)
        assert q.decide(POLICY, pool_exhausted=True).outcome == "abandon"

    def test_tie_at_max_rounds_abandons(self):
        q = quorum(2)
        q.add_vote("a", "d1")
        q.add_vote("b", "d2")
        for _ in range(POLICY.max_rounds - 1):
            q.escalate(POLICY, pool_size=2)
        assert q.rounds == POLICY.max_rounds
        assert q.decide(POLICY).outcome == "abandon"

    def test_unflagged_conflict_at_max_rounds_abandons(self):
        q = quorum(2)
        q.rounds = POLICY.max_rounds
        q.add_vote("a", "d1")
        q.add_vote("b", "d2")
        assert q.decide(POLICY).outcome == "abandon"


class TestPoolExhaustion:
    def test_unanimous_short_count_validates_degraded(self):
        # Timeouts ate the third voter; the surviving votes agree.
        q = quorum(3)
        q.add_vote("a", "d1")
        q.add_vote("b", "d1")
        assert q.decide(POLICY, pool_exhausted=True).outcome == "validated"

    def test_no_votes_abandons(self):
        q = quorum(3)
        assert q.decide(POLICY, pool_exhausted=True).outcome == "abandon"

    def test_flagged_plurality_validates_on_exhaustion(self):
        q = quorum(2)
        q.add_vote("a", "d1")
        q.add_vote("b", "d2")
        q.escalate(POLICY, pool_size=3)
        q.add_vote("c", "d1")
        decision = q.decide(POLICY, pool_exhausted=True)
        assert decision == QuorumDecision("validated", digest="d1")


class TestTally:
    def test_tally_first_seen_order(self):
        q = quorum(3)
        for client, digest in (("a", "d2"), ("b", "d1"), ("c", "d2")):
            q.add_vote(client, digest)
        assert list(q.tally().items()) == [("d2", 2), ("d1", 1)]
        assert q.voters_for("d2") == ["a", "c"]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            QuorumPolicy(base_quorum=0)
        with pytest.raises(ValueError):
            QuorumPolicy(escalation=0)
        with pytest.raises(ValueError):
            UnitQuorum("u", 0)
