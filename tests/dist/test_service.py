"""Integration tests: the distribution service on a real fleet.

Every scenario runs full Flicker sessions — SKINIT, sealed HMAC state,
PCR-17 attestation — on a small fleet; the assertions pin the quorum
edge cases from docs/DISTRIBUTED.md.
"""

import json

import pytest

from repro.core.fleet import FlickerFleet
from repro.dist import (
    ClientBehavior,
    JobDatabase,
    JobSpec,
    QuorumPolicy,
    ReputationPolicy,
    WorkDistributionService,
    build_report,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec

#: The demonstration composite: 3*5*7*11*13 times a prime.
N = 15015 * 1_000_003

#: All factors of N below 4002 (10 default-size units' divisor space).
FACTORS_4002 = (3, 5, 7, 11, 13, 15, 21, 33, 35, 39, 55, 65, 77, 91, 105,
                143, 165, 195, 231, 273, 385, 429, 455, 715, 1001, 1155,
                1365, 2145, 3003)


def run_service(machines=4, units=4, seed=2008, base_quorum=2,
                behaviors=None, fault_plan=None, timeout_ms=60_000.0,
                observability=False, **policy):
    fleet = FlickerFleet(num_machines=machines, seed=seed,
                         observability=observability)
    if fault_plan is not None:
        for host in fleet.hosts:
            sub = fault_plan.for_machine(host.machine_id)
            if sub.specs:
                FaultInjector(sub).install(host.platform)
    service = WorkDistributionService(
        fleet,
        JobSpec(n=N, total_units=units, batch_size=4,
                timeout_ms=timeout_ms),
        quorum=QuorumPolicy(base_quorum=base_quorum),
        reputation=ReputationPolicy(**policy) if policy
        else ReputationPolicy(),
        behaviors=behaviors or {},
    )
    return service, service.run()


class TestHonestFleet:
    def test_all_units_validate_with_correct_factors(self):
        _, report = run_service(machines=4, units=10, base_quorum=2)
        assert report.units_validated == 10
        assert report.units_abandoned == 0
        assert report.found == FACTORS_4002
        assert report.rejected_attestation == 0
        assert report.timeouts == 0

    def test_deterministic(self):
        a = run_service(units=4)[1].to_dict()
        b = run_service(units=4)[1].to_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_reputation_cuts_redundancy(self):
        # With promotion after 1 valid unit and no spot checks, most of a
        # long honest run is issued at k=1 instead of full quorum.
        service, report = run_service(
            machines=2, units=12, base_quorum=2,
            promote_after=1, spot_check_every=0)
        assert report.units_validated == 12
        assert report.assignments < 12 * 2
        assert all(c["trusted"] for c in report.per_client)

    def test_spot_checks_are_issued_at_full_quorum(self):
        service, report = run_service(
            machines=3, units=12, base_quorum=3,
            promote_after=1, spot_check_every=2)
        assert report.units_validated == 12
        assert sum(c["spot_checks"] for c in report.per_client) > 0

    def test_runs_exactly_once(self):
        service, _ = run_service(units=2)
        with pytest.raises(RuntimeError):
            service.run()


class TestAdversaries:
    def test_forged_results_never_reach_quorum(self):
        # The forger computes honestly, then doctors the claimed state
        # with an extra "factor"; its attested PCR chain no longer
        # matches, so verification rejects every result before voting.
        _, report = run_service(
            machines=4, units=6, base_quorum=2,
            behaviors={1: ClientBehavior("forge")})
        assert report.rejected_attestation > 0
        assert report.units_validated == 6
        assert 999983 not in report.found
        assert report.found == tuple(f for f in FACTORS_4002 if f <= 2402)

    def test_lazy_cheat_attests_but_is_outvoted(self):
        # The lazy client's attestation *verifies* (execution integrity
        # holds — it honestly attested an empty result to a doctored
        # unit), so only quorum disagreement catches it.
        _, report = run_service(
            machines=4, units=4, base_quorum=2,
            behaviors={1: ClientBehavior("lazy")})
        assert report.rejected_attestation == 0       # the cheat verifies!
        assert report.units_flagged > 0               # ...but disagrees
        assert report.units_validated == 4
        assert report.found == tuple(f for f in FACTORS_4002 if f <= 1602)
        lazy = report.per_client[1]
        assert lazy["outvoted"] > 0 and not lazy["trusted"]

    def test_malicious_majority_overturned_by_escalation(self):
        # Two colluding lazy clients land 2-of-3 first-round votes on a
        # unit; a first-round majority never wins outright — the flag
        # escalates to fresh clients and the honest digest takes the
        # plurality.
        _, report = run_service(
            machines=5, units=1, base_quorum=3,
            behaviors={1: ClientBehavior("lazy"),
                       2: ClientBehavior("lazy")})
        assert report.units_validated == 1
        assert report.units_flagged == 1
        assert report.found == tuple(f for f in FACTORS_4002 if f <= 402)

    def test_tie_vote_on_exhausted_pool_abandons(self):
        # One honest and one lazy client, nobody left to break the tie:
        # the unit is abandoned rather than guessed at.
        _, report = run_service(
            machines=2, units=1, base_quorum=2,
            behaviors={1: ClientBehavior("lazy")})
        assert report.units_abandoned == 1
        assert report.units_validated == 0
        assert report.found == ()


class TestChurn:
    def test_dropout_times_out_and_unit_reissues(self):
        _, report = run_service(
            machines=4, units=4, base_quorum=3, timeout_ms=30_000.0,
            behaviors={2: ClientBehavior("dropout")})
        assert report.timeouts >= 1
        assert report.units_validated == 4
        assert report.resends >= 1

    def test_flaky_late_results_are_ignored_mid_quorum(self):
        # The flaky client answers after its deadline: the server has
        # already timed it out and re-issued; the late result is logged
        # and discarded, and every unit still validates.
        _, report = run_service(
            machines=4, units=12, base_quorum=3, timeout_ms=12_000.0,
            behaviors={2: ClientBehavior("flaky", delay_ms=18_000.0)})
        assert report.timeouts >= 1
        assert report.late >= 1
        assert report.units_validated == 12
        # N has no divisor in (4002, 4802), so the 12-unit sweep finds
        # exactly the same factors as the 10-unit one.
        assert report.found == FACTORS_4002

    def test_all_clients_dead_terminates_instead_of_hanging(self):
        # The issued unit is abandoned once every voter has timed out of
        # it; the unit that never got issued stays honestly unresolved
        # (the job would resume it if clients came back).
        _, report = run_service(
            machines=2, units=2, base_quorum=2, timeout_ms=20_000.0,
            behaviors={0: ClientBehavior("dropout"),
                       1: ClientBehavior("dropout")})
        assert report.units_validated == 0
        assert report.units_abandoned == 1
        assert report.units_unresolved == 1
        assert report.timeouts == 2


class TestFaults:
    def test_transient_tpm_fault_absorbed_by_retry(self):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(kind="tpm-transient", op="quote",
                      machine="client-01"),
        ))
        _, report = run_service(machines=3, units=3, base_quorum=2,
                                fault_plan=plan)
        assert report.failures == 0
        assert report.units_validated == 3

    def test_corrupted_session_fails_closed_and_reissues(self):
        # An SLB bit flip changes the measured PCR: the PAL's unseal is
        # denied and the session faults — the corrupted result never
        # exists, the client reports the failure, the unit re-issues.
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(kind="slb-bit-flip", session=1, magnitude=64,
                      machine="client-01"),
        ))
        _, report = run_service(machines=3, units=4, base_quorum=2,
                                fault_plan=plan)
        assert report.failures >= 1
        assert report.units_validated == 4
        assert report.found == tuple(f for f in FACTORS_4002 if f <= 1602)


class TestReplay:
    def test_replayed_dump_reproduces_identical_report(self):
        service, report = run_service(
            machines=4, units=6, base_quorum=2, timeout_ms=30_000.0,
            behaviors={1: ClientBehavior("lazy"),
                       3: ClientBehavior("dropout")})
        dump = service.db.dump_json()
        replayed = build_report(JobDatabase.from_json(dump))
        assert replayed.to_dict() == report.to_dict()
        # The dump itself is byte-stable through a round trip.
        assert JobDatabase.from_json(dump).dump_json() == dump

    def test_sweep_workers_byte_identical(self):
        from repro.tools.dist import run_dist_sweep

        configs = [
            dict(machines=3, units=4, seed=2008, behaviors="1:lazy"),
            dict(machines=2, units=2, seed=5),
        ]
        serial = run_dist_sweep(configs, workers=1)
        parallel = run_dist_sweep(configs, workers=4)
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)


@pytest.mark.obs
class TestObservability:
    def test_verifier_spans_and_queue_metrics(self):
        service, report = run_service(machines=3, units=3, base_quorum=2,
                                      observability=True)
        hubs = service.fleet.hubs()
        verify_hub = hubs["server-verify"]
        assert verify_hub.find_spans("verify-result")
        server_hub = hubs["server"]
        lifecycle = server_hub.find_spans("unit-lifecycle")
        assert len(lifecycle) == 3
        registry = server_hub.registry
        assert registry.counter("dist_units_validated_total").value() == 3
        assert registry.gauge("dist_verify_queue_depth").value() == 0
        assert report.max_verify_queue_depth >= 1
