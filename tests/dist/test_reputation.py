"""Reputation: promotion streaks, slashes, spot-check cadence."""

import pytest

from repro.dist.quorum import QuorumPolicy
from repro.dist.reputation import ReputationBook, ReputationPolicy

QUORUM = QuorumPolicy(base_quorum=3, trusted_quorum=1)


class TestStreaks:
    def test_promotion_after_streak(self):
        book = ReputationBook(ReputationPolicy(promote_after=3))
        for _ in range(2):
            book.record_valid("c")
        assert not book.is_trusted("c")
        book.record_valid("c")
        assert book.is_trusted("c")

    def test_any_slash_resets(self):
        book = ReputationBook(ReputationPolicy(promote_after=2))
        book.record_valid("c")
        book.record_valid("c")
        assert book.is_trusted("c")
        book.record_slash("c")
        assert not book.is_trusted("c")
        assert book.streak("c") == 0

    def test_clients_are_independent(self):
        book = ReputationBook(ReputationPolicy(promote_after=1))
        book.record_valid("a")
        assert book.is_trusted("a")
        assert not book.is_trusted("b")


class TestQuorumFor:
    def trusted_book(self, spot_check_every=4):
        book = ReputationBook(ReputationPolicy(
            promote_after=1, spot_check_every=spot_check_every))
        book.record_valid("c")
        return book

    def test_untrusted_gets_full_quorum(self):
        book = ReputationBook()
        assert book.quorum_for("c", QUORUM) == (3, False)

    def test_trusted_gets_spot_checked_every_nth(self):
        book = self.trusted_book(spot_check_every=4)
        outcomes = [book.quorum_for("c", QUORUM) for _ in range(8)]
        assert outcomes == [(1, False), (1, False), (1, False), (3, True)] * 2

    def test_spot_checks_disabled(self):
        book = self.trusted_book(spot_check_every=0)
        assert all(book.quorum_for("c", QUORUM) == (1, False)
                   for _ in range(6))

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ReputationPolicy(promote_after=0)
        with pytest.raises(ValueError):
            ReputationPolicy(spot_check_every=-1)
