"""Job-database records: seeded ids, batching, canonical round trips."""

import json

import pytest

from repro.dist.records import (
    DB_SCHEMA,
    AssignmentRecord,
    ClientRecord,
    JobDatabase,
    UnitRecord,
    unit_id,
)


def small_db(total_units=10, batch_size=4):
    return JobDatabase(job_seed=2008, n=15015 * 1_000_003,
                       total_units=total_units, range_per_unit=400,
                       batch_size=batch_size)


class TestUnitIds:
    def test_seeded_and_stable(self):
        assert unit_id(2008, 0) == unit_id(2008, 0)
        assert unit_id(2008, 0) != unit_id(2008, 1)
        assert unit_id(2008, 3) != unit_id(2009, 3)

    def test_embeds_index(self):
        assert unit_id(7, 42).startswith("u00042-")

    def test_no_collisions_within_a_job(self):
        ids = {unit_id(2008, i) for i in range(500)}
        assert len(ids) == 500


class TestBatching:
    def test_batches_cover_the_job_exactly(self):
        db = small_db(total_units=10, batch_size=4)
        sizes = []
        while True:
            batch = db.generate_batch()
            if not batch:
                break
            sizes.append(len(batch))
        assert sizes == [4, 4, 2]
        assert db.units_generated == 10

    def test_unit_ranges_tile_the_divisor_space(self):
        db = small_db(total_units=4, batch_size=4)
        units = db.generate_batch()
        assert [u.start for u in units] == [2, 402, 802, 1202]
        assert all(u.end - u.start == 400 for u in units)
        assert [u.batch for u in units] == [0, 0, 0, 0]

    def test_generation_is_exhausted_once(self):
        db = small_db(total_units=2, batch_size=4)
        assert len(db.generate_batch()) == 2
        assert db.generate_batch() == []


class TestRoundTrip:
    def populated(self):
        db = small_db(total_units=4, batch_size=4)
        units = db.generate_batch()
        units[0].state = "validated"
        units[0].digest = "ab" * 20
        units[0].found = (3, 5)
        db.assignments.append(AssignmentRecord(
            seq=0, unit_id=units[0].unit_id, client="client-00",
            round=1, issued_ms=0.0, state="verified-ok",
            digest="ab" * 20, found=(3, 5), returned_ms=10.0,
            verified_ms=11.0,
        ))
        db.client("client-00").valid = 1
        db.finalize(makespan_ms=11.0, verify_count=1)
        return db

    def test_dump_is_byte_canonical(self):
        a, b = self.populated(), self.populated()
        assert a.dump_json() == b.dump_json()
        assert a.dump_json().endswith("\n")

    def test_round_trip_preserves_everything(self):
        db = self.populated()
        clone = JobDatabase.from_json(db.dump_json())
        assert clone.dump_json() == db.dump_json()
        unit = next(iter(clone.units.values()))
        assert isinstance(unit, UnitRecord) and unit.found == (3, 5)
        assert isinstance(clone.assignments[0], AssignmentRecord)
        assert clone.assignments[0].found == (3, 5)
        assert isinstance(clone.clients["client-00"], ClientRecord)
        assert clone.summary["makespan_ms"] == 11.0

    def test_schema_mismatch_rejected(self):
        data = json.loads(self.populated().dump_json())
        data["schema"] = "something-else/9"
        with pytest.raises(ValueError, match=DB_SCHEMA):
            JobDatabase.from_dict(data)

    def test_validation(self):
        with pytest.raises(ValueError):
            small_db(total_units=0)
        with pytest.raises(ValueError):
            small_db(batch_size=0)
