"""The ``python -m repro.tools.dist`` command line."""

import json

import pytest

from repro.errors import FaultPlanError
from repro.tools.dist import main, parse_faults
from repro.dist import parse_behaviors


class TestSpecParsing:
    def test_parse_behaviors(self):
        spec = parse_behaviors("0:lazy,2:dropout,3:flaky:90000")
        assert spec[0].kind == "lazy"
        assert spec[3].kind == "flaky" and spec[3].delay_ms == 90000.0
        assert parse_behaviors("") == {}

    def test_parse_behaviors_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_behaviors("0:sneaky")
        with pytest.raises(ValueError):
            parse_behaviors("0:lazy,0:forge")
        with pytest.raises(ValueError):
            parse_behaviors("lazy")

    def test_parse_faults(self):
        plan = parse_faults("2:slb-bit-flip:64,5:tpm-transient", seed=9)
        assert plan.seed == 9
        assert plan.specs[0].machine == "client-02"
        assert plan.specs[0].magnitude == 64
        assert plan.specs[1].kind == "tpm-transient"

    def test_parse_faults_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_faults("2:slb-bit-flip:64:9")
        with pytest.raises(FaultPlanError):
            parse_faults("2:no-such-fault")


class TestMain:
    def run_main(self, capsys, *argv):
        main(list(argv))
        return capsys.readouterr().out

    def test_report_output(self, capsys):
        out = self.run_main(
            capsys, "--machines", "3", "--units", "3", "--quorum", "2")
        assert "## Per-client outcomes" in out
        assert "units validated / total" in out
        assert "3 / 3" in out

    def test_dump_and_replay_round_trip(self, capsys, tmp_path):
        db_path = tmp_path / "db.json"
        live_json = tmp_path / "live.json"
        self.run_main(
            capsys, "--machines", "3", "--units", "3", "--quorum", "2",
            "--behaviors", "1:lazy",
            "--json", str(live_json), "--dump-db", str(db_path))
        replay_json = tmp_path / "replay.json"
        out = self.run_main(
            capsys, "--replay", str(db_path), "--json", str(replay_json))
        assert "no simulation ran" in out
        assert live_json.read_bytes() == replay_json.read_bytes()
        report = json.loads(live_json.read_text())
        assert report["units_validated"] == 3

    def test_replay_cannot_dump(self, capsys, tmp_path):
        db_path = tmp_path / "db.json"
        self.run_main(capsys, "--machines", "2", "--units", "2",
                      "--quorum", "2", "--dump-db", str(db_path))
        with pytest.raises(SystemExit):
            main(["--replay", str(db_path), "--dump-db", str(db_path)])
