"""Campaign engine: determinism, monotone coverage, worker independence."""

import pytest

from repro.fuzz.engine import FuzzCampaign, edge_monotonicity

pytestmark = pytest.mark.fuzz


def _small(seed, workers=1, executions=24):
    return FuzzCampaign(seed=seed, executions=executions, workers=workers)


class TestDeterminism:
    def test_same_seed_same_report(self, fuzz_seed):
        first = _small(fuzz_seed).run()
        second = _small(fuzz_seed).run()
        assert FuzzCampaign.report_json(first) == FuzzCampaign.report_json(second)

    def test_different_seeds_diverge(self, fuzz_seed):
        a = _small(fuzz_seed, executions=32).run()
        b = _small(fuzz_seed + 1, executions=32).run()
        assert FuzzCampaign.report_json(a) != FuzzCampaign.report_json(b)

    @pytest.mark.slow
    def test_byte_identical_across_worker_counts(self, fuzz_seed):
        serial = _small(fuzz_seed, workers=1, executions=48).run()
        parallel = _small(fuzz_seed, workers=4, executions=48).run()
        assert FuzzCampaign.report_json(serial) == FuzzCampaign.report_json(parallel)


class TestCoverageGrowth:
    def test_edge_count_monotone(self, fuzz_seed):
        report = _small(fuzz_seed, executions=32).run()
        assert edge_monotonicity(report)

    def test_coverage_nonzero_and_tcb_scoped(self, fuzz_seed):
        report = _small(fuzz_seed, executions=32).run()
        assert report["coverage"]["edges"] > 0
        assert all(m.startswith("repro.") for m in report["coverage"]["modules"])
        assert "repro.tpm.tpm" in report["coverage"]["modules"]


class TestReportShape:
    def test_execution_accounting(self, fuzz_seed):
        report = _small(fuzz_seed, executions=24).run()
        assert report["executions"]["total"] == 24
        assert sum(report["executions"]["by_target"].values()) == 24

    def test_clean_campaign_has_no_counterexamples(self, fuzz_seed):
        report = _small(fuzz_seed, executions=24).run()
        assert report["summary"]["clean"]
        assert report["counterexamples"] == []

    def test_target_restriction(self, fuzz_seed):
        report = FuzzCampaign(seed=fuzz_seed, executions=16,
                              targets=("tpm",)).run()
        assert set(report["executions"]["by_target"]) == {"tpm"}

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            FuzzCampaign(targets=("bios",))
        with pytest.raises(ValueError):
            FuzzCampaign(shards=0)
