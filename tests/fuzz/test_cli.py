"""The ``python -m repro.tools.fuzz`` command-line interface."""

import json

import pytest

from repro.fuzz.case import FuzzCase
from repro.tools.fuzz import build_parser, main

pytestmark = pytest.mark.fuzz


class TestParser:
    def test_requires_a_mode(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_modes_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--smoke", "--campaign"])

    def test_target_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--campaign", "--targets", "bios"])


class TestCampaign:
    def test_small_campaign_clean(self, capsys):
        rc = main(["--campaign", "--executions", "16", "--seed", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "counterexamples: 0" in out

    def test_json_report_written(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        rc = main(["--campaign", "--executions", "16", "--seed", "5",
                   "--json", "--out", str(out_file)])
        assert rc == 0
        stdout = capsys.readouterr().out
        report = json.loads(stdout)
        assert report["summary"]["clean"]
        assert out_file.read_text() == stdout

    def test_same_seed_same_bytes(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            main(["--campaign", "--executions", "16", "--seed", "5",
                  "--out", str(path)])
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_target_restriction(self, capsys):
        rc = main(["--campaign", "--executions", "8", "--targets", "tpm",
                   "--json"])
        report = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert set(report["executions"]["by_target"]) == {"tpm"}


class TestReplay:
    def test_replay_corpus_entry(self, corpus_dir, capsys):
        rc = main(["--replay",
                   str(corpus_dir / "seal-header-tamper.json")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "holds" in out

    def test_replay_raw_case_file(self, tmp_path, capsys):
        case = FuzzCase("seal", {"bind": True})
        path = tmp_path / "case.json"
        path.write_text(case.to_json())
        rc = main(["--replay", str(path), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["result"]["status"] == "ok"

    def test_missing_file_is_usage_error(self, capsys):
        rc = main(["--replay", "does-not-exist.json"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestMinimize:
    def test_non_counterexample_is_noop(self, tmp_path, capsys):
        case = FuzzCase("seal", {"bind": True})
        path = tmp_path / "case.json"
        path.write_text(case.to_json())
        rc = main(["--minimize", str(path)])
        assert rc == 0
        assert "nothing to minimize" in capsys.readouterr().out
