"""Counterexample minimization: deterministic, oracle-preserving shrinking."""

import pytest

from repro.fuzz import minimize as minimize_mod
from repro.fuzz.case import FuzzCase
from repro.fuzz.minimize import minimize_case
from repro.fuzz.targets import TargetResult

pytestmark = pytest.mark.fuzz


def _fake_oracle(predicate):
    """A stand-in run_case: counterexample iff predicate(case)."""

    def runner(case):
        if predicate(case):
            return TargetResult("counterexample", "fake-oracle", "still fails")
        return TargetResult("ok", "", "clean")

    return runner


class TestMinimize:
    def test_non_counterexample_returned_unchanged(self):
        case = FuzzCase("seal", {"bind": True})
        result = TargetResult("ok", "", "clean")
        assert minimize_case(case, result) == (case, result)

    def test_shrinks_list_to_failing_element(self, monkeypatch):
        def fails(case):
            commands = case.payload.get("commands", [])
            return any(c.get("op") == "bad" for c in commands
                       if isinstance(c, dict))

        monkeypatch.setattr(minimize_mod, "run_case", _fake_oracle(fails))
        case = FuzzCase("tpm", {"commands": [
            {"op": "pcr_read", "index": 17},
            {"op": "bad"},
            {"op": "get_capability"},
        ]})
        result = minimize_mod.run_case(case)
        small, small_result = minimize_case(case, result)
        assert small.payload["commands"] == [{"op": "bad"}]
        assert small_result.oracle == "fake-oracle"

    def test_shrinks_integers_toward_zero(self, monkeypatch):
        def fails(case):
            return case.payload.get("base", 0) >= 100

        monkeypatch.setattr(minimize_mod, "run_case", _fake_oracle(fails))
        case = FuzzCase("skinit", {"base": 100000, "length": 64})
        result = minimize_mod.run_case(case)
        small, _ = minimize_case(case, result)
        assert 100 <= small.payload["base"] < 100000
        assert small.payload["length"] == 0  # unconstrained field zeroed

    def test_truncates_byte_fields(self, monkeypatch):
        def fails(case):
            from repro.fuzz.case import get_bytes

            return len(get_bytes(case.payload, "body")) >= 4

        monkeypatch.setattr(minimize_mod, "run_case", _fake_oracle(fails))
        case = FuzzCase("skinit", {"body": b"\xaa" * 64})
        result = minimize_mod.run_case(case)
        small, _ = minimize_case(case, result)
        assert len(bytes.fromhex(small.payload["body"]["hex"])) == 4

    def test_minimization_is_deterministic(self, monkeypatch):
        def fails(case):
            commands = case.payload.get("commands", [])
            return sum(1 for c in commands if isinstance(c, dict)) >= 2

        monkeypatch.setattr(minimize_mod, "run_case", _fake_oracle(fails))
        case = FuzzCase("tpm", {"commands": [{"op": "a"}, {"op": "b"},
                                             {"op": "c"}, {"op": "d"}]})
        result = minimize_mod.run_case(case)
        first, _ = minimize_case(case, result)
        second, _ = minimize_case(case, result)
        assert first == second

    def test_respects_eval_budget(self, monkeypatch):
        calls = []

        def runner(case):
            calls.append(case)
            return TargetResult("counterexample", "fake-oracle", "fails")

        monkeypatch.setattr(minimize_mod, "run_case", runner)
        case = FuzzCase("tpm", {"commands": [{"op": str(i)} for i in range(8)]})
        minimize_case(case, TargetResult("counterexample", "fake-oracle", "x"),
                      max_evals=10)
        assert len(calls) <= 10
