"""Fixtures for the fuzzer test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

CORPUS_DIR = Path(__file__).parent / "corpus"


@pytest.fixture
def fuzz_seed(request: pytest.FixtureRequest) -> int:
    """The campaign seed, overridable via ``pytest --fuzz-seed N``."""
    return request.config.getoption("--fuzz-seed")


@pytest.fixture
def corpus_dir() -> Path:
    """The committed counterexample corpus."""
    return CORPUS_DIR
