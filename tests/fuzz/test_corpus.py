"""Corpus format and the non-regression contract over committed entries."""

import json

import pytest

from repro.fuzz.corpus import (
    FORMAT,
    CorpusEntry,
    CorpusError,
    load_corpus,
)

pytestmark = pytest.mark.fuzz


class TestCorpusFormat:
    def test_load_committed_corpus(self, corpus_dir):
        entries = load_corpus(corpus_dir)
        assert len(entries) >= 4
        names = [entry.name for entry in entries]
        assert names == sorted(names)  # filename order == load order

    def test_entries_round_trip(self, corpus_dir):
        for entry in load_corpus(corpus_dir):
            again = CorpusEntry.from_dict(json.loads(entry.to_json()))
            assert again == entry

    def test_files_are_canonical_json(self, corpus_dir):
        for path in sorted(corpus_dir.glob("*.json")):
            on_disk = path.read_text()
            entry = CorpusEntry.from_dict(json.loads(on_disk))
            assert entry.to_json() == on_disk, f"{path.name} is not canonical"

    def test_bad_format_rejected(self):
        with pytest.raises(CorpusError):
            CorpusEntry.from_dict({"format": "not-a-corpus-file"})

    def test_bad_verdict_rejected(self):
        with pytest.raises(CorpusError):
            CorpusEntry.from_dict({
                "format": FORMAT, "name": "x", "verdict": "maybe",
                "case": {"target": "tpm", "payload": {}}, "oracle": "o",
            })


class TestNonRegressionContract:
    """Every committed counterexample replays deterministically with its
    recorded verdict — the fuzzer's findings stay fixed (or pinned) forever."""

    def test_every_entry_verdict_holds(self, corpus_dir):
        regressions = []
        for entry in load_corpus(corpus_dir):
            holds, live = entry.replay()
            if not holds:
                regressions.append(
                    f"{entry.name}: verdict '{entry.verdict}' broken "
                    f"(live {live.status}/{live.oracle}: {live.detail})"
                )
        assert not regressions, "\n".join(regressions)

    def test_replay_is_deterministic(self, corpus_dir):
        for entry in load_corpus(corpus_dir):
            first = entry.replay()[1].to_dict()
            second = entry.replay()[1].to_dict()
            assert first == second, entry.name

    def test_known_findings_are_present(self, corpus_dir):
        names = {entry.name for entry in load_corpus(corpus_dir)}
        assert {
            "tpm-get-random-negative",
            "nv-define-negative",
            "seal-header-tamper",
            "seal-replay-message-leak",
        } <= names
