"""FuzzCase canonicalization and mutation-operator properties."""

import pytest

from repro.fuzz.case import TARGETS, FuzzCase, FuzzCaseError, get_bytes
from repro.fuzz.mutators import (
    MAX_BYTES,
    MAX_COMMANDS,
    MAX_SPECS,
    mutate,
    seed_corpus,
)
from repro.sim.rng import DeterministicRNG

pytestmark = pytest.mark.fuzz


class TestFuzzCase:
    def test_round_trips_through_json(self):
        case = FuzzCase("tpm", {"commands": [
            {"op": "pcr_extend", "index": 17, "data": b"\x01" * 20},
        ]})
        assert FuzzCase.from_json(case.to_json()) == case

    def test_bytes_become_hex(self):
        case = FuzzCase("skinit", {"body": b"\xde\xad"})
        assert case.payload["body"] == {"hex": "dead"}
        assert get_bytes(case.payload, "body") == b"\xde\xad"

    def test_digest_is_stable_identity(self):
        a = FuzzCase("seal", {"bind": True, "tampers": []})
        b = FuzzCase("seal", {"tampers": [], "bind": True})
        assert a.digest() == b.digest()

    def test_unknown_target_rejected(self):
        with pytest.raises(FuzzCaseError):
            FuzzCase("bios", {})

    def test_unsupported_payload_value_rejected(self):
        with pytest.raises(FuzzCaseError):
            FuzzCase("tpm", {"weird": 1.5})


class TestSeedCorpus:
    @pytest.mark.parametrize("target", TARGETS)
    def test_every_target_has_seeds(self, target):
        seeds = seed_corpus(target)
        assert seeds
        assert all(case.target == target for case in seeds)

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            seed_corpus("bios")


class TestMutate:
    def test_deterministic_under_same_rng(self):
        base = seed_corpus("tpm")[0]
        chain_a = chain_b = base
        rng_a, rng_b = DeterministicRNG(7), DeterministicRNG(7)
        for _ in range(25):
            chain_a = mutate(chain_a, rng_a)
            chain_b = mutate(chain_b, rng_b)
        assert chain_a == chain_b

    @pytest.mark.parametrize("target", TARGETS)
    def test_mutants_stay_valid_and_bounded(self, target):
        rng = DeterministicRNG(11)
        case = seed_corpus(target)[0]
        for _ in range(50):
            case = mutate(case, rng)
            assert case.target == target
            commands = case.payload.get("commands")
            if isinstance(commands, list):
                assert len(commands) <= MAX_COMMANDS
            specs = case.payload.get("specs")
            if isinstance(specs, list):
                assert len(specs) <= MAX_SPECS
            for value in case.payload.values():
                if isinstance(value, dict) and "hex" in value:
                    assert len(value["hex"]) <= MAX_BYTES * 2

    def test_mutation_eventually_changes_case(self):
        rng = DeterministicRNG(13)
        base = seed_corpus("seal")[0]
        assert any(mutate(base, rng) != base for _ in range(10))
