"""Target executors: oracle classification on known inputs."""

import pytest

from repro.fuzz.case import FuzzCase
from repro.fuzz.mutators import seed_corpus
from repro.fuzz.targets import SECRET, run_case

pytestmark = pytest.mark.fuzz


class TestSeedCorpusVerdicts:
    """The committed seed cases must never themselves be counterexamples —
    they are the known-good / known-typed starting points."""

    @pytest.mark.parametrize("target", ("tpm", "skinit", "seal", "faults"))
    def test_no_seed_case_fails(self, target):
        for case in seed_corpus(target):
            result = run_case(case)
            assert result.status in ("ok", "rejected"), (case, result)


class TestTpmTarget:
    def test_happy_stream_is_ok(self):
        case = FuzzCase("tpm", {"commands": [
            {"op": "seal", "bind": True},
            {"op": "unseal", "which": 0, "tamper": -1},
        ]})
        assert run_case(case).status == "ok"

    def test_negative_get_random_is_typed(self):
        case = FuzzCase("tpm", {"commands": [{"op": "get_random", "n": -7}]})
        result = run_case(case)
        assert result.status == "ok"  # typed refusal inside the stream

    def test_tampered_unseal_is_refused(self):
        case = FuzzCase("tpm", {"commands": [
            {"op": "seal", "bind": True},
            {"op": "unseal", "which": 0, "tamper": 0, "xor": 255},
        ]})
        result = run_case(case)
        assert result.status == "ok"  # refusal, not a counterexample

    def test_hardware_extend_then_read_is_coherent(self):
        case = FuzzCase("tpm", {"commands": [
            {"op": "extend_hw", "index": 17, "data": b"\x42" * 20},
            {"op": "pcr_read", "index": 17},
        ]})
        assert run_case(case).status == "ok"

    def test_quote_forgery_oracle_runs(self):
        case = FuzzCase("tpm", {"commands": [{"op": "quote", "nonce": b"x"}]})
        assert run_case(case).status == "ok"

    def test_unknown_ops_are_skipped(self):
        case = FuzzCase("tpm", {"commands": [{"op": "warp-core"}]})
        assert run_case(case).status == "ok"


class TestSkinitTarget:
    def test_valid_launch_ok(self):
        case = FuzzCase("skinit", {"base": 4096, "length": 64, "entry": 4,
                                   "body": b"\x90" * 60})
        result = run_case(case)
        assert result.status == "ok", result

    @pytest.mark.parametrize("overrides", (
        {"base": 4097},            # misaligned
        {"quiesce": False},        # APs running
        {"ring": 3},               # not ring 0
        {"length": 3},             # header too short
        {"entry": 4096},           # entry outside measured region
        {"tamper_bit": 5},         # measured bytes changed
        {"register": False},       # nothing registered for the measurement
        {"base": -4096},           # negative base
        {"base": 2 ** 31},         # beyond physical memory
    ))
    def test_invalid_launches_rejected_typed(self, overrides):
        payload = {"base": 4096, "length": 64, "entry": 4,
                   "body": b"\x90" * 60}
        payload.update(overrides)
        result = run_case(FuzzCase("skinit", payload))
        assert result.status == "rejected", result


class TestSealTarget:
    def test_clean_roundtrip(self):
        case = FuzzCase("seal", {"bind": True})
        assert run_case(case).status == "ok"

    def test_single_tamper_rejected(self):
        case = FuzzCase("seal", {"bind": True,
                                 "tampers": [{"offset": 5, "xor": 1}]})
        assert run_case(case).status == "rejected"

    def test_cancelling_tampers_are_a_noop(self):
        case = FuzzCase("seal", {"bind": True,
                                 "tampers": [{"offset": 5, "xor": 9},
                                             {"offset": 5, "xor": 9}]})
        assert run_case(case).status == "ok"

    def test_policy_violation_rejected(self):
        case = FuzzCase("seal", {"bind": True,
                                 "extends": [{"data": b"\x77" * 20}]})
        assert run_case(case).status == "rejected"

    def test_versioned_newest_succeeds(self):
        case = FuzzCase("seal", {"mode": "versioned", "reseals": 3,
                                 "present": 2})
        assert run_case(case).status == "ok"

    def test_versioned_stale_rejected_without_numerals(self):
        case = FuzzCase("seal", {"mode": "versioned", "reseals": 3,
                                 "present": 0})
        result = run_case(case)
        assert result.status == "rejected"


class TestFaultsTarget:
    def test_valid_plan_never_leaks(self):
        case = FuzzCase("faults", {"app": "rootkit", "seed": 9, "specs": [
            {"kind": "tpm-transient", "op": "seal", "count": 2},
        ]})
        result = run_case(case)
        assert result.status == "ok"

    def test_bogus_kind_is_rejected(self):
        case = FuzzCase("faults", {"specs": [{"kind": "warp-field"}]})
        assert run_case(case).status == "rejected"

    def test_unknown_app_falls_back(self):
        case = FuzzCase("faults", {"app": "bogus", "specs": []})
        assert run_case(case).status == "ok"


class TestSecretHygiene:
    def test_canary_never_in_results(self):
        """No verdict detail may carry the canary secret."""
        marker = SECRET.decode("ascii")
        for target in ("tpm", "skinit", "seal", "faults"):
            for case in seed_corpus(target):
                result = run_case(case)
                assert marker not in result.detail
                assert SECRET.hex() not in result.detail
