"""Edge-collector and coverage-map behavior."""

import pytest

from repro.fuzz.coverage import CoverageMap, EdgeCollector, tcb_module_names
from repro.hw.machine import Machine

pytestmark = pytest.mark.fuzz


class TestTCBModuleNames:
    def test_reads_pinned_closure(self):
        names = tcb_module_names()
        assert "repro.tpm.tpm" in names
        assert "repro.hw.skinit" in names
        assert "repro.core.modules.tpm_utils" in names

    def test_excludes_untrusted_modules(self):
        names = tcb_module_names()
        assert not any(n.startswith("repro.osim") for n in names)
        assert not any(n.startswith("repro.fuzz") for n in names)
        assert not any(n.startswith("repro.faults") for n in names)

    def test_sorted_and_stable(self):
        names = tcb_module_names()
        assert list(names) == sorted(names)
        assert tcb_module_names() == names


class TestEdgeCollector:
    def test_collects_tcb_edges_only(self):
        collector = EdgeCollector()

        def job():
            return Machine(seed=1).os_tpm_interface().pcr_read(17)

        result, edges = collector.collect(job)
        assert len(result) == 20
        assert edges
        tcb = set(tcb_module_names())
        assert {module for module, _, _ in edges} <= tcb

    def test_deterministic_across_runs(self):
        collector = EdgeCollector()

        def job():
            return Machine(seed=1).os_tpm_interface().pcr_read(17)

        _, first = collector.collect(job)
        _, second = collector.collect(job)
        assert first == second

    def test_exceptions_propagate_and_tracer_restored(self):
        import sys

        collector = EdgeCollector(backend="settrace")
        prior = sys.gettrace()
        with pytest.raises(ValueError):
            collector.collect(lambda: (_ for _ in ()).throw(ValueError("boom")))
        assert sys.gettrace() is prior

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            EdgeCollector(backend="perf")


class TestCoverageMap:
    def test_observe_counts_only_new(self):
        cov = CoverageMap()
        assert cov.observe([("m", 0, 1), ("m", 1, 2)]) == 2
        assert cov.observe([("m", 1, 2), ("m", 2, 3)]) == 1
        assert cov.edge_count == 3

    def test_digest_order_independent(self):
        a = CoverageMap([("m", 0, 1), ("n", 4, 5)])
        b = CoverageMap([("n", 4, 5), ("m", 0, 1)])
        assert a.digest() == b.digest()

    def test_merge_is_monotone(self):
        a = CoverageMap([("m", 0, 1)])
        b = CoverageMap([("m", 0, 1), ("m", 1, 2)])
        before = a.edge_count
        new = a.merge(b)
        assert new == 1
        assert a.edge_count == before + new

    def test_to_dict_is_canonical(self):
        cov = CoverageMap([("b", 0, 1), ("a", 0, 1)])
        assert cov.to_dict()["modules"] == ["a", "b"]
