"""CLI tools smoke tests."""

from repro.tools.report import build_report
from repro.tools.timeline import TimelineDemoPAL


class TestReportTool:
    def test_report_builds(self):
        report = build_report()
        assert "Rootkit detector" in report
        assert "SKINIT vs SLB size" in report
        assert "SSH password authentication" in report
        assert "Certificate authority" in report
        assert "Distributed computing" in report

    def test_report_is_deterministic(self):
        assert build_report() == build_report()

    def test_report_claims_hold(self):
        """Quick sanity on the embedded measured values."""
        report = build_report()
        assert "NO" not in report  # every yes/no check passed


class TestTimelineTool:
    def test_demo_pal_runs(self, platform):
        result = platform.execute_pal(TimelineDemoPAL(), inputs=b"x")
        assert len(result.outputs) > 0

    def test_trace_has_key_events(self, platform):
        platform.execute_pal(TimelineDemoPAL(), inputs=b"x")
        trace = platform.machine.trace
        for kind in ("os-suspended", "dynamic_pcr_reset", "skinit",
                     "seal", "slb-core-exit", "os-resumed"):
            assert trace.events(kind=kind), kind
