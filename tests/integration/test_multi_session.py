"""Multi-session scenarios: interleaving applications, reboots, and
long-running state (paper §4.3)."""

import pytest

from repro.core import FlickerPlatform, PAL
from repro.errors import PALRuntimeError, TPMPolicyError
from repro.tpm.structures import SealedBlob


class CounterPAL(PAL):
    """Carries a counter across sessions via sealed storage."""

    name = "session-counter"
    modules = ("tpm_utils",)

    def run(self, ctx):
        if not ctx.inputs:
            value = 0
        else:
            blob = SealedBlob.decode(ctx.inputs)
            value = int.from_bytes(ctx.tpm.unseal(blob), "big")
        value += 1
        sealed = ctx.tpm.seal_to_pal(value.to_bytes(8, "big"), ctx.self_pcr17)
        ctx.write_output(value.to_bytes(8, "big") + sealed.encode())


class TestMultiSessionState:
    def test_counter_survives_many_sessions(self, platform):
        pal = CounterPAL()
        blob = b""
        for expected in range(1, 6):
            result = platform.execute_pal(pal, inputs=blob)
            value = int.from_bytes(result.outputs[:8], "big")
            assert value == expected
            blob = result.outputs[8:]

    def test_state_survives_reboot(self, platform):
        """Sealed blobs outlive reboots: the TPM's storage keys and NV are
        non-volatile, and the PAL relaunches into the same PCR-17 state."""
        pal = CounterPAL()
        result = platform.execute_pal(pal, inputs=b"")
        blob = result.outputs[8:]
        platform.machine.reboot()
        result2 = platform.execute_pal(pal, inputs=blob)
        assert int.from_bytes(result2.outputs[:8], "big") == 2

    def test_interleaved_applications_do_not_interfere(self, platform):
        from repro.apps.ca import CertificateAuthority, CertificateSigningRequest
        from repro.apps.ssh_auth import PasswdEntry, SSHClient, SSHServer
        from repro.crypto.rsa import generate_rsa_keypair
        from repro.sim.rng import DeterministicRNG

        counter_pal = CounterPAL()
        ca = CertificateAuthority(platform)
        ca.initialize()
        server = SSHServer(platform)
        server.add_user(PasswdEntry.create("u", b"pw-123", b"sa1t"))
        client = SSHClient(platform)

        blob = platform.execute_pal(counter_pal, inputs=b"").outputs[8:]
        keys = generate_rsa_keypair(512, DeterministicRNG(8))
        cert = ca.sign(CertificateSigningRequest("a.example.com", keys.public))
        assert cert is not None
        assert client.connect_and_login(server, "u", b"pw-123").authenticated
        result = platform.execute_pal(counter_pal, inputs=blob)
        assert int.from_bytes(result.outputs[:8], "big") == 2
        cert2 = ca.sign(CertificateSigningRequest("b.example.com", keys.public))
        assert cert2.serial == cert.serial + 1

    def test_pal_code_update_orphans_old_blobs(self, platform):
        """Changing the PAL (a new 'version') changes its identity, so
        blobs sealed to the old version stay sealed — the paper's sealing
        semantics make code updates explicit state migrations."""

        class CounterPALv2(PAL):
            name = "session-counter"  # same name...
            modules = ("tpm_utils",)

            def run(self, ctx):  # ...but different logic
                blob = SealedBlob.decode(ctx.inputs)
                value = int.from_bytes(ctx.tpm.unseal(blob), "big")
                ctx.write_output(value.to_bytes(8, "big"))

        pal_v1 = CounterPAL()
        blob = platform.execute_pal(pal_v1, inputs=b"").outputs[8:]
        with pytest.raises(PALRuntimeError):
            platform.execute_pal(CounterPALv2(), inputs=blob)


class TestRebootSemantics:
    def test_dynamic_pcrs_show_reboot(self, platform):
        platform.execute_pal(CounterPAL(), inputs=b"")
        platform.machine.reboot()
        assert platform.machine.tpm.pcrs.read(17) == b"\xff" * 20

    def test_blob_not_unsealable_outside_session_even_after_reboot(self, platform):
        result = platform.execute_pal(CounterPAL(), inputs=b"")
        blob = SealedBlob.decode(result.outputs[8:])
        platform.machine.reboot()
        with pytest.raises(TPMPolicyError):
            platform.tqd.driver.unseal(blob)


class TestManySessionsStability:
    def test_twenty_sessions_consistent_timing(self, platform):
        """Session cost does not drift as sessions accumulate."""

        class NopPAL(PAL):
            name = "nop"
            modules = ()

            def run(self, ctx):
                ctx.write_output(b"n")

        pal = NopPAL()
        durations = [platform.execute_pal(pal).total_ms for _ in range(20)]
        assert max(durations) - min(durations) < 0.5

    def test_trace_accumulates_in_order(self, platform):
        class NopPAL2(PAL):
            name = "nop2"
            modules = ()

            def run(self, ctx):
                ctx.write_output(b"n")

        for _ in range(3):
            platform.execute_pal(NopPAL2())
        skinits = platform.machine.trace.events(kind="skinit")
        assert len(skinits) == 3
        times = [e.time_ms for e in skinits]
        assert times == sorted(times)
