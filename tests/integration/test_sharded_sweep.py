"""Sharded group execution: a big fleet partitioned into machine groups
runs each group as its own cell and merges back byte-identically at any
worker count — the ISSUE-8 scale path for the 10,000-machine sweep."""

import json

import pytest

from repro.tools.fleet_report import merge_group_reports, run_fleet_sweep

pytestmark = pytest.mark.slow


def canonical(doc):
    return json.dumps(doc, sort_keys=True)


FLEET_CONFIG = dict(machines=10, units_per_client=1, slice_ms=2000.0,
                    range_per_unit=400, seed=2008)


class TestShardedFleetSweep:
    def test_worker_count_does_not_change_bytes(self):
        serial = run_fleet_sweep([FLEET_CONFIG], workers=1, shard_size=4)
        parallel = run_fleet_sweep([FLEET_CONFIG], workers=2, shard_size=4)
        assert canonical(serial) == canonical(parallel)

    def test_sharded_report_shape(self):
        [report] = run_fleet_sweep([FLEET_CONFIG], workers=1, shard_size=4)
        assert report["shards"] == 3  # 4 + 4 + 2
        assert report["fleet_size"] == 10
        assert report["units_accepted"] == 10
        assert report["units_rejected"] == 0
        assert [m["machine_id"] for m in report["per_machine"]] == [
            f"client-{i:02d}" for i in range(10)
        ]

    def test_shard_size_covering_fleet_is_unsharded(self):
        """A shard size >= the fleet leaves the run whole: no group
        split, no ``shards`` key, bytes identical to a plain sweep."""
        [whole] = run_fleet_sweep([FLEET_CONFIG], workers=1)
        [covered] = run_fleet_sweep([FLEET_CONFIG], workers=1, shard_size=64)
        assert "shards" not in covered
        assert canonical(whole) == canonical(covered)

    def test_global_client_prefix_spans_groups(self):
        """clients=6 with shard_size=4 means groups work 4, 2, 0 active
        clients — participation is a *global* machine prefix."""
        config = {**FLEET_CONFIG, "clients": 6}
        [report] = run_fleet_sweep([config], workers=1, shard_size=4)
        assert report["units_accepted"] == 6
        active = [m["machine_id"] for m in report["per_machine"]
                  if m["sessions"] > 0]
        assert active == [f"client-{i:02d}" for i in range(6)]

    def test_merge_recomputes_rates_from_totals(self):
        groups = [
            {"fleet_size": 2, "units_issued": 2, "units_accepted": 2,
             "units_rejected": 0, "makespan_ms": 1000.0, "total_sessions": 4,
             "total_busy_ms": 800.0, "useful_ms": 400.0, "network_bytes": 10,
             "network_messages": 4, "per_machine": [{"machine_id": "client-00"}],
             "efficiency": 0.5, "sessions_per_virtual_second": 4.0},
            {"fleet_size": 1, "units_issued": 1, "units_accepted": 1,
             "units_rejected": 0, "makespan_ms": 2000.0, "total_sessions": 2,
             "total_busy_ms": 200.0, "useful_ms": 100.0, "network_bytes": 5,
             "network_messages": 2, "per_machine": [{"machine_id": "client-02"}],
             "efficiency": 0.5, "sessions_per_virtual_second": 1.0},
        ]
        merged = merge_group_reports(groups)
        assert merged["fleet_size"] == 3
        assert merged["makespan_ms"] == 2000.0  # slowest group
        assert merged["total_sessions"] == 6
        assert merged["efficiency"] == 0.5
        # 6 sessions / 2 virtual seconds, recomputed — not an average.
        assert merged["sessions_per_virtual_second"] == 3.0
        assert merged["shards"] == 2

    def test_single_group_merge_is_identity(self):
        group = {"fleet_size": 1, "anything": True}
        assert merge_group_reports([group]) is group


class TestShardedDistSweep:
    def test_worker_count_does_not_change_bytes(self):
        from repro.tools.dist import run_dist_sweep

        config = dict(machines=6, units=12, seed=2008)
        serial = run_dist_sweep([config], workers=1, shard_size=2)
        parallel = run_dist_sweep([config], workers=2, shard_size=2)
        assert canonical(serial) == canonical(parallel)

    def test_unit_split_is_exact_and_proportional(self):
        from repro.tools.dist import run_dist_sweep

        config = dict(machines=5, units=11, seed=2008)
        [cell] = run_dist_sweep([config], workers=1, shard_size=2)
        # 11 units over groups of 2+2+1 machines: quotas 4/5, 4/5, 1/5
        # by cumulative differencing — every unit lands exactly once.
        assert cell["total_units"] == 11
        assert cell["units_validated"] == 11
        assert cell["fleet_size"] == 5
        assert cell["group_db_sha1"] and len(cell["db_sha1"]) == 40
