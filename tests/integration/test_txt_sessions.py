"""End-to-end Flicker sessions over Intel TXT (GETSEC[SENTER]) — the
§2.4 'functions analogously' claim exercised through the whole stack."""

import pytest

from repro.core import FlickerPlatform, PAL
from repro.core.attestation import expected_txt_pcrs
from repro.errors import FlickerError, PALRuntimeError, TPMPolicyError
from repro.tpm.structures import SealedBlob

NONCE = b"\x09" * 20


class TxtSealerPAL(PAL):
    """Seals on command 0 (to the two-register TXT identity), unseals on
    command 1."""

    name = "txt-sealer"
    modules = ("tpm_utils",)

    def run(self, ctx):
        if ctx.inputs[0] == 0:
            blob = ctx.tpm.seal_to_policy(b"txt-bound-secret", ctx.self_seal_policy)
            ctx.write_output(blob.encode())
        else:
            ctx.write_output(ctx.tpm.unseal(SealedBlob.decode(ctx.inputs[1:])))


class OtherTxtPAL(PAL):
    name = "txt-other"
    modules = ("tpm_utils",)

    def run(self, ctx):
        ctx.write_output(ctx.tpm.unseal(SealedBlob.decode(ctx.inputs)))


@pytest.fixture
def txt_platform():
    return FlickerPlatform(launch="txt", seed=4242)


class TestTXTSessions:
    def test_session_runs_and_returns_outputs(self, txt_platform):
        result = txt_platform.execute_pal(TxtSealerPAL(), inputs=b"\x00")
        assert len(result.outputs) > 0

    def test_images_are_forced_unoptimized(self, txt_platform):
        result = txt_platform.execute_pal(TxtSealerPAL(), inputs=b"\x00")
        assert not result.image.optimized

    def test_optimized_image_rejected_directly(self, txt_platform):
        from repro.core.slb import build_slb

        image = build_slb(TxtSealerPAL(), optimize=True)
        txt_platform.install(image)
        with pytest.raises(FlickerError, match="unoptimized"):
            txt_platform.flicker.execute()

    def test_senter_recorded_in_trace(self, txt_platform):
        txt_platform.execute_pal(TxtSealerPAL(), inputs=b"\x00")
        assert txt_platform.machine.trace.events(kind="senter")
        assert not txt_platform.machine.trace.events(kind="skinit")

    def test_pcr18_holds_mle_identity(self, txt_platform):
        from repro.tpm.pcr import simulate_extend_chain

        result = txt_platform.execute_pal(TxtSealerPAL(), inputs=b"\x00")
        assert txt_platform.machine.tpm.pcrs.read(18) == simulate_extend_chain(
            b"\x00" * 20, [result.image.skinit_measurement]
        )


class TestTXTAttestation:
    def test_attestation_verifies(self, txt_platform):
        session = txt_platform.execute_pal(TxtSealerPAL(), inputs=b"\x00", nonce=NONCE)
        attestation = txt_platform.attest(NONCE, session)
        report = txt_platform.verifier().verify_txt(
            attestation, session.image, txt_platform.acm.measurement, NONCE
        )
        assert report.ok, report.failures

    def test_wrong_acm_rejected(self, txt_platform):
        from repro.crypto.sha1 import sha1

        session = txt_platform.execute_pal(TxtSealerPAL(), inputs=b"\x00", nonce=NONCE)
        attestation = txt_platform.attest(NONCE, session)
        report = txt_platform.verifier().verify_txt(
            attestation, session.image, sha1(b"some-other-acm"), NONCE
        )
        assert not report.ok

    def test_wrong_mle_rejected(self, txt_platform):
        session = txt_platform.execute_pal(TxtSealerPAL(), inputs=b"\x00", nonce=NONCE)
        attestation = txt_platform.attest(NONCE, session)
        other_image = txt_platform.build(OtherTxtPAL(), optimize=False)
        report = txt_platform.verifier().verify_txt(
            attestation, other_image, txt_platform.acm.measurement, NONCE
        )
        assert not report.ok
        assert any("PCR 18" in f for f in report.failures)

    def test_forged_outputs_rejected(self, txt_platform):
        from dataclasses import replace

        session = txt_platform.execute_pal(TxtSealerPAL(), inputs=b"\x00", nonce=NONCE)
        attestation = txt_platform.attest(NONCE, session)
        forged = replace(attestation, outputs=b"forged")
        report = txt_platform.verifier().verify_txt(
            forged, session.image, txt_platform.acm.measurement, NONCE
        )
        assert not report.ok

    def test_expected_pcrs_helper_matches_quote(self, txt_platform):
        session = txt_platform.execute_pal(TxtSealerPAL(), inputs=b"\x00", nonce=NONCE)
        attestation = txt_platform.attest(NONCE, session)
        expected = expected_txt_pcrs(
            session.image, txt_platform.acm.measurement,
            b"\x00", session.outputs, NONCE,
        )
        composite = attestation.quote.composite.as_dict()
        assert composite[17] == expected[17]
        assert composite[18] == expected[18]


class TestTXTSealedStorage:
    def test_same_pal_unseals_across_sessions(self, txt_platform):
        pal = TxtSealerPAL()
        stored = txt_platform.execute_pal(pal, inputs=b"\x00")
        loaded = txt_platform.execute_pal(pal, inputs=b"\x01" + stored.outputs)
        assert loaded.outputs == b"txt-bound-secret"

    def test_different_pal_cannot_unseal(self, txt_platform):
        stored = txt_platform.execute_pal(TxtSealerPAL(), inputs=b"\x00")
        with pytest.raises(PALRuntimeError):
            txt_platform.execute_pal(OtherTxtPAL(), inputs=stored.outputs)

    def test_os_cannot_unseal(self, txt_platform):
        stored = txt_platform.execute_pal(TxtSealerPAL(), inputs=b"\x00")
        with pytest.raises(TPMPolicyError):
            txt_platform.tqd.driver.unseal(SealedBlob.decode(stored.outputs))

    def test_svm_launch_of_same_code_cannot_unseal(self):
        """The two-register TXT policy binds the ACM too: the same PAL
        launched via SKINIT (different PCR-17/18 state) gets nothing."""
        txt = FlickerPlatform(launch="txt", seed=777)
        stored = txt.execute_pal(TxtSealerPAL(), inputs=b"\x00")
        svm = FlickerPlatform(seed=777)
        # Different machine (and TPM), so this cannot work for key reasons
        # alone; the policy check is the interesting in-machine case —
        # unseal on the same TXT machine after an SVM-style PCR state:
        with pytest.raises(PALRuntimeError):
            # Run the unseal command through a *fresh* PAL class whose
            # chain lacks the ACM measurement context — simulated by
            # handing the blob to OtherTxtPAL above; here just confirm the
            # SVM platform rejects malformed foreign blobs outright.
            svm.execute_pal(TxtSealerPAL(), inputs=b"\x01" + stored.outputs)
