"""Public-API surface tests: everything the README promises resolves."""

import pytest


class TestTopLevelPackage:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_subpackage_exports_resolve(self):
        import repro.apps
        import repro.core
        import repro.crypto
        import repro.hw
        import repro.osim
        import repro.sim
        import repro.tpm

        for module in (repro.apps, repro.core, repro.crypto, repro.hw,
                       repro.osim, repro.sim, repro.tpm):
            for name in module.__all__:
                assert getattr(module, name) is not None, f"{module.__name__}.{name}"

    def test_readme_quickstart_works(self):
        from repro import FlickerPlatform

        from repro.tools.timeline import TimelineDemoPAL

        platform = FlickerPlatform()
        nonce = b"\x42" * 20
        result = platform.execute_pal(TimelineDemoPAL(), inputs=b"", nonce=nonce)
        attestation = platform.attest(nonce, result)
        report = platform.verifier().verify(attestation, result.image, nonce)
        assert report.ok

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        import inspect

        import repro.errors as errors

        for name, cls in inspect.getmembers(errors, inspect.isclass):
            if cls.__module__ == "repro.errors":
                assert issubclass(cls, errors.ReproError), name

    def test_layer_hierarchies(self):
        from repro import errors

        assert issubclass(errors.DMAProtectionError, errors.ProtectionFault)
        assert issubclass(errors.ProtectionFault, errors.HardwareError)
        assert issubclass(errors.TPMPolicyError, errors.TPMError)
        assert issubclass(errors.SLBFormatError, errors.FlickerError)
        assert issubclass(errors.AttestationError, errors.FlickerError)


class TestTimingJitter:
    def test_default_is_deterministic(self):
        from repro.hw import Machine
        from repro.osim.tpm_driver import OSTPMDriver

        def quote_time(seed):
            machine = Machine(seed=seed)
            driver = OSTPMDriver(machine.os_tpm_interface())
            before = machine.clock.now()
            driver.pcr_extend(17, b"\x01" * 20)
            return machine.clock.now() - before

        assert quote_time(1) == quote_time(2)  # no noise by default

    def test_jitter_spreads_latencies(self):
        from repro.hw import Machine
        from repro.osim.tpm_driver import OSTPMDriver

        machine = Machine(seed=3, tpm_jitter_fraction=0.05)
        driver = OSTPMDriver(machine.os_tpm_interface())
        samples = []
        for _ in range(20):
            before = machine.clock.now()
            driver.pcr_extend(17, b"\x02" * 20)
            samples.append(machine.clock.now() - before)
        assert len(set(round(s, 6) for s in samples)) > 10  # genuinely spread
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(machine.profile.tpm.extend_ms, rel=0.1)

    def test_jitter_never_negative(self):
        from repro.hw import Machine
        from repro.osim.tpm_driver import OSTPMDriver

        machine = Machine(seed=4, tpm_jitter_fraction=2.0)  # absurd spread
        driver = OSTPMDriver(machine.os_tpm_interface())
        before = machine.clock.now()
        for _ in range(50):
            driver.pcr_extend(17, b"\x03" * 20)
        assert machine.clock.now() >= before  # clock cannot run backwards
