"""Full-size (1024-bit, the paper's size) key coverage.

The rest of the suite runs 512-bit functional/TPM keys for speed (see
``tests/conftest.py``); these slow-marked tests keep each crypto path —
functional signing, sealed storage, quote verification — exercised at the
size the paper's prototype used.
"""

import pytest

from repro.apps.ca import CertificateAuthority, CertificateSigningRequest
from repro.core import FlickerPlatform
from repro.crypto.rsa import generate_rsa_keypair

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def full_platform() -> FlickerPlatform:
    return FlickerPlatform(seed=1234, functional_rsa_bits=1024,
                           tpm_key_bits=1024)


class TestFullSizeKeys:
    def test_ca_signs_and_attests_with_1024_bit_keys(self, full_platform):
        ca = CertificateAuthority(full_platform)
        ca.initialize()
        assert ca.public_key.n.bit_length() >= 1023
        subject = generate_rsa_keypair(
            512, full_platform.machine.rng.fork("full-size-subject")
        )
        csr = CertificateSigningRequest(subject="host.example.com",
                                        public_key=subject.public)
        certificate = ca.sign(csr)
        assert certificate is not None and certificate.verify(ca.public_key)
        attestation = full_platform.attest(ca.last_session.nonce)
        report = full_platform.verifier().verify(
            attestation, ca.last_session.image, ca.last_session.nonce
        )
        assert report.ok

    def test_quote_signature_sized_to_tpm_key(self, full_platform):
        quote = full_platform.attest(b"\x11" * 20).quote
        assert len(quote.signature) == 128  # 1024-bit AIK modulus
