"""Tests for the reproduction's paper-motivated extensions: NV-backed
replay counters, multicore isolation, and Flicker-aware I/O."""

import pytest

from repro.core import FlickerPlatform, PAL
from repro.core.sealed_storage import ReplayProtectedStorage, VersionedBlob
from repro.errors import PALRuntimeError, TPMPolicyError
from repro.osim.storage import BlockDevice, FileStore

OWNER_AUTH = b"\x0e" * 20
NV_INDEX = 0x4653  # 'FS'


class NVReplayPAL(PAL):
    """Figure 4 over the NV-space counter backend (§4.3.2 option two).

    Commands: 0 = create NV counter + seal v1; 1 = reseal; 2 = unseal.
    """

    name = "nv-replay"
    modules = ("tpm_utils",)

    def run(self, ctx):
        command = ctx.inputs[0]
        payload = ctx.inputs[1:]
        if command == 0:
            storage = ReplayProtectedStorage.create_nv(
                ctx.tpm, OWNER_AUTH, NV_INDEX, ctx.self_pcr17
            )
            ctx.write_output(storage.seal(payload, ctx.self_pcr17).encode())
        elif command == 1:
            storage = ReplayProtectedStorage.attach_nv(ctx.tpm, NV_INDEX)
            ctx.write_output(storage.seal(payload, ctx.self_pcr17).encode())
        else:
            versioned = VersionedBlob.decode(payload)
            storage = ReplayProtectedStorage.attach_nv(ctx.tpm, NV_INDEX)
            ctx.write_output(storage.unseal(versioned))


@pytest.fixture
def owned_platform():
    platform = FlickerPlatform(seed=808)
    platform.machine.tpm.take_ownership(OWNER_AUTH)
    return platform


class TestNVBackedReplayProtection:
    def test_roundtrip(self, owned_platform):
        pal = NVReplayPAL()
        v1 = owned_platform.execute_pal(pal, inputs=b"\x00" + b"state-v1")
        out = owned_platform.execute_pal(pal, inputs=b"\x02" + v1.outputs)
        assert out.outputs == b"state-v1"

    def test_stale_blob_rejected(self, owned_platform):
        pal = NVReplayPAL()
        v1 = owned_platform.execute_pal(pal, inputs=b"\x00" + b"state-v1")
        owned_platform.execute_pal(pal, inputs=b"\x01" + b"state-v2")
        with pytest.raises(PALRuntimeError, match="replay"):
            owned_platform.execute_pal(pal, inputs=b"\x02" + v1.outputs)

    def test_os_cannot_touch_the_nv_counter(self, owned_platform):
        """The NV space is PCR-gated to the PAL: the OS can neither read
        nor roll back the counter (§4.3.2's whole point)."""
        pal = NVReplayPAL()
        owned_platform.execute_pal(pal, inputs=b"\x00" + b"s")
        driver = owned_platform.tqd.driver
        with pytest.raises(TPMPolicyError):
            driver.nv_read(NV_INDEX)
        with pytest.raises(TPMPolicyError):
            driver.nv_write(NV_INDEX, (0).to_bytes(8, "big"))

    def test_counter_survives_reboot(self, owned_platform):
        pal = NVReplayPAL()
        owned_platform.execute_pal(pal, inputs=b"\x00" + b"v1")
        latest = owned_platform.execute_pal(pal, inputs=b"\x01" + b"v2").outputs
        owned_platform.machine.reboot()
        out = owned_platform.execute_pal(pal, inputs=b"\x02" + latest)
        assert out.outputs == b"v2"


class LongPAL(PAL):
    name = "long-session"
    modules = ()

    def run(self, ctx):
        ctx.charge(8000.0, "long-work")
        ctx.write_output(b"done")


class TestMulticoreIsolation:
    """The §7.5 / [19] next-generation hardware recommendation."""

    def test_aps_keep_running_during_session(self):
        platform = FlickerPlatform(seed=809, multicore_isolation=True)
        platform.kernel.spawn("bsp-proc")
        ap_proc = platform.kernel.spawn("ap-proc")
        ran = {}

        class ProbePAL(PAL):
            name = "mc-probe"
            modules = ()

            def run(self, ctx):
                ap = platform.machine.cpu.cores[1]
                ran["ap_halted"] = ap.halted
                ran["ap_proc_core"] = ap_proc.core_id
                ctx.write_output(b"x")

        platform.execute_pal(ProbePAL())
        assert ran["ap_halted"] is False
        assert ran["ap_proc_core"] == 1  # never descheduled

    def test_bsp_still_fully_protected(self):
        platform = FlickerPlatform(seed=810, multicore_isolation=True)
        seen = {}

        class ProbePAL2(PAL):
            name = "mc-probe2"
            modules = ()

            def run(self, ctx):
                bsp = platform.machine.cpu.bsp
                seen["interrupts"] = bsp.interrupts_enabled
                seen["debug"] = bsp.debug_access_enabled
                ctx.write_output(b"x")

        platform.execute_pal(ProbePAL2())
        assert seen == {"interrupts": False, "debug": False}

    def test_attestation_unaffected(self):
        platform = FlickerPlatform(seed=811, multicore_isolation=True)
        nonce = b"\x31" * 20

        class AttestedPAL(PAL):
            name = "mc-attested"
            modules = ()

            def run(self, ctx):
                ctx.write_output(b"mc")

        session = platform.execute_pal(AttestedPAL(), nonce=nonce)
        attestation = platform.attest(nonce, session)
        assert platform.verifier().verify(attestation, session.image, nonce).ok

    def test_kernel_build_unaffected_even_at_30s_period(self):
        from repro.apps.rootkit_detector import simulate_kernel_build

        isolated = FlickerPlatform(seed=812, multicore_isolation=True)
        mean_ms, _ = simulate_kernel_build(isolated, detection_period_s=30.0,
                                           noise_sigma_ms=0.0)
        assert mean_ms == isolated.machine.profile.host.kernel_build_ms


class TestFlickerAwareIO:
    def test_long_sessions_safe_with_aware_drivers(self, platform):
        """§7.5's fix: quiescing devices before each session removes the
        timeout hazard even for sessions far beyond the device timeout."""
        machine = platform.machine
        src = BlockDevice(machine, "disk-a")
        dst = BlockDevice(machine, "disk-b")
        store = FileStore(machine)
        src.store_file("f", b"\x5a" * (256 * 1024))

        store.copy(platform.kernel, src, "f", dst, "f",
                   suspension_cb=lambda copied: 120_000.0,  # 2-minute session
                   flicker_aware=True)
        assert src.io_errors == [] and dst.io_errors == []
        assert dst.read_file("f") == b"\x5a" * (256 * 1024)

    def test_same_sessions_fail_without_awareness(self, platform):
        machine = platform.machine
        src = BlockDevice(machine, "disk-c")
        dst = BlockDevice(machine, "disk-d")
        store = FileStore(machine)
        src.store_file("f", b"\x5b" * (256 * 1024))
        store.copy(platform.kernel, src, "f", dst, "f",
                   suspension_cb=lambda copied: 120_000.0,
                   flicker_aware=False)
        assert src.io_errors and dst.io_errors
