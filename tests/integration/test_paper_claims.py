"""The paper's headline claims (abstract + §1), each as an executable test.

These intentionally overlap with more detailed suites elsewhere — this
file is the index a reader checks first: claim by claim, does the
reproduction actually exhibit the paper's properties?
"""

import pytest

from repro.core import FlickerPlatform, PAL
from repro.core.modules import MODULE_REGISTRY
from repro.osim.attacker import Attacker
from repro.osim.ima import IMAVerifier, IntegrityMeasurementArchitecture


class ClaimPAL(PAL):
    name = "claims"
    modules = ()

    def run(self, ctx):
        ctx.mem.write(ctx.layout.stack_base, b"CLAIMS-SECRET")
        ctx.write_output(b"claims-output")


NONCE = b"\x19" * 20


class TestAbstractClaims:
    def test_trusting_as_few_as_250_lines(self):
        """'…while trusting as few as 250 lines of additional code.'"""
        assert MODULE_REGISTRY["slb_core"].lines_of_code <= 250

    def test_meaningful_fine_grained_attestation(self, platform):
        """'…meaningful, fine-grained attestation of the code executed
        (as well as its inputs and outputs) to a remote party.'"""
        session = platform.execute_pal(ClaimPAL(), inputs=b"in", nonce=NONCE)
        attestation = platform.attest(NONCE, session)
        # Exactly the code: a different PAL fails.
        ok = platform.verifier().verify(attestation, session.image, NONCE)
        assert ok.ok
        # Exactly the inputs and outputs: verifying with pinned inputs.
        pinned = platform.verifier().verify(
            attestation, session.image, NONCE, expected_inputs=b"in"
        )
        assert pinned.ok

    def test_guarantees_hold_with_malicious_os_and_dma(self, platform):
        """'…even if the BIOS, OS and DMA-enabled devices are all
        malicious.'  (OS + DMA half; BIOS half below.)"""
        attacker = Attacker(platform.kernel)
        attacker.patch_kernel_text()            # malicious OS
        attacker.hook_syscall(3)
        platform.execute_pal(ClaimPAL(), nonce=NONCE)
        attestation = platform.attest(NONCE)
        assert platform.verifier().verify(
            attestation, platform.build(ClaimPAL()), NONCE
        ).ok
        # And the session left no secrets for the malicious OS to sweep.
        assert attacker.scan_memory_for(b"CLAIMS-SECRET") == []

    def test_guarantees_hold_with_malicious_bios(self, platform):
        """BIOS half: Flicker's dynamic root of trust makes the boot chain
        irrelevant — corrupt every static (boot-time) PCR and the Flicker
        attestation still verifies, while a trusted-boot attestation from
        the same machine is now worthless."""
        driver = platform.tqd.driver
        for pcr in (0, 1, 2, 4, 5):  # malicious firmware measured garbage
            driver.pcr_extend(pcr, b"\xbb" * 20)

        session = platform.execute_pal(ClaimPAL(), nonce=NONCE)
        attestation = platform.attest(NONCE, session)
        assert platform.verifier().verify(attestation, session.image, NONCE).ok

        # Contrast: the trusted-boot (SRTM) story collapses — the IMA
        # verifier cannot reproduce the corrupted static PCRs.
        ima = IntegrityMeasurementArchitecture(platform.kernel)
        ima.measured_boot()
        verifier = IMAVerifier()
        for entry in ima.log:
            verifier.known_good[entry.name] = entry.measurement
        quote, log = ima.attest(NONCE)
        report = verifier.verify(quote, log, NONCE, platform.machine.tpm.aik_public)
        assert not report.ok

    def test_no_new_os_or_vmm_required(self, platform):
        """'Flicker … does not require a new OS or even a VMM, so the
        user's platform for non-sensitive operations remains unchanged.'
        Structural: the only OS-side addition is one loadable module, and
        ordinary OS work proceeds before and after sessions."""
        kernel = platform.kernel
        module_names = {m.name for m in kernel.loaded_modules()}
        assert module_names == {"flicker_module"}
        process = kernel.spawn("ordinary-app")
        platform.execute_pal(ClaimPAL())
        assert process.pid in {p.pid for p in [process]}  # still alive
        assert kernel.processes_on_core(process.core_id)

    def test_operates_at_any_time(self, platform):
        """'Flicker can operate at any time' — sessions interleave with
        ordinary operation arbitrarily, including after attacks and
        mid-workload."""
        platform.kernel.spawn("editor")
        for _ in range(3):
            result = platform.execute_pal(ClaimPAL())
            assert result.outputs == b"claims-output"
        Attacker(platform.kernel).install_malicious_module()
        assert platform.execute_pal(ClaimPAL()).outputs == b"claims-output"
