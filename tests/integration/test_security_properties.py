"""Cross-layer security-property tests: the paper's §3.2 goals, each
demonstrated against an active adversary."""

import pytest

from repro.core import FlickerPlatform, PAL
from repro.errors import (
    DebugAccessError,
    DMAProtectionError,
    PALRuntimeError,
    SkinitError,
)
from repro.osim.attacker import Attacker


class SecretSessionPAL(PAL):
    """Holds a secret in SLB memory and gives the test hooks to attack the
    session while it runs."""

    name = "secret-session"
    modules = ("tpm_utils",)
    mid_session_hook = None

    def run(self, ctx):
        ctx.mem.write(ctx.layout.stack_base, b"IN-SESSION-SECRET-0xABC")
        if type(self).mid_session_hook is not None:
            type(self).mid_session_hook(ctx)
        ctx.write_output(b"finished")


@pytest.fixture
def platform():
    return FlickerPlatform(seed=31337)


@pytest.fixture(autouse=True)
def reset_hook():
    yield
    SecretSessionPAL.mid_session_hook = None


class TestIsolationGoal:
    """Goal 1 (§3.2): complete isolation from all other software and
    devices, including DMA and hardware debuggers."""

    def test_dma_cannot_read_session_secret(self, platform):
        attacker = Attacker(platform.kernel)

        def attack(ctx):
            base = platform.flicker.slb_base
            with pytest.raises(DMAProtectionError):
                attacker.dma_probe(base, 64 * 1024)

        SecretSessionPAL.mid_session_hook = staticmethod(attack)
        platform.execute_pal(SecretSessionPAL())

    def test_debugger_cannot_read_session_secret(self, platform):
        attacker = Attacker(platform.kernel)

        def attack(ctx):
            with pytest.raises(DebugAccessError):
                attacker.debugger_probe(platform.flicker.slb_base, 4096)

        SecretSessionPAL.mid_session_hook = staticmethod(attack)
        platform.execute_pal(SecretSessionPAL())

    def test_interrupts_disabled_during_session(self, platform):
        seen = {}

        def observe(ctx):
            seen["interrupts"] = platform.machine.cpu.bsp.interrupts_enabled

        SecretSessionPAL.mid_session_hook = staticmethod(observe)
        platform.execute_pal(SecretSessionPAL())
        assert seen["interrupts"] is False

    def test_no_trace_after_session(self, platform):
        """Goal 1 second half: secrecy of the PAL's data *after* it exits
        the isolated environment."""
        platform.execute_pal(SecretSessionPAL())
        attacker = Attacker(platform.kernel)
        assert attacker.scan_memory_for(b"IN-SESSION-SECRET-0xABC") == []

    def test_dma_allowed_before_and_after(self, platform):
        """The DEV protection is session-scoped: the platform is a normal
        machine outside Flicker sessions."""
        attacker = Attacker(platform.kernel)
        attacker.dma_probe(0x500000, 16)  # fine before
        platform.execute_pal(SecretSessionPAL())
        attacker.dma_probe(0x500000, 16)  # fine after


class TestMaliciousRing0:
    """§3.1: the adversary runs at ring 0 and can invoke SKINIT with
    arguments of its choosing — but gains nothing."""

    def test_attacker_skinit_with_own_slb_yields_attacker_measurement(self, platform):
        """The adversary can late-launch its own code, but PCR 17 then
        records *its* identity, so attestations name the attacker."""
        machine = platform.machine
        evil_image = (100).to_bytes(2, "little") + (4).to_bytes(2, "little")
        evil_image = evil_image + b"\xe1" * 96
        evil_image = evil_image.ljust(64 * 1024, b"\x00")
        base = platform.kernel.kalloc(64 * 1024 + 3 * 4096, align=64 * 1024)
        machine.memory.write(base, evil_image)
        machine.register_executable(evil_image, lambda m, c, b: "evil-ran")
        platform.kernel.deschedule_aps()
        machine.apic.broadcast_init_ipi()
        assert machine.skinit(0, base) == "evil-ran"
        from repro.crypto.sha1 import sha1

        expected = sha1(b"\x00" * 20 + sha1(evil_image[:100]))
        assert machine.tpm.pcrs.read(17) == expected
        # A verifier expecting the honest PAL's chain will never match.
        honest = platform.build(SecretSessionPAL())
        assert machine.tpm.pcrs.read(17) != honest.pcr17_launch_value
        # Restore for other tests.
        platform.kernel.resume_aps()
        machine.cpu.bsp.interrupts_enabled = True
        machine.cpu.bsp.paging_enabled = True
        machine.cpu.bsp.debug_access_enabled = True
        machine.dev.clear()

    def test_attacker_cannot_skinit_from_ring3(self, platform):
        from repro.errors import PrivilegeError

        platform.machine.cpu.bsp.ring = 3
        with pytest.raises(PrivilegeError):
            platform.machine.skinit(0, 0x100000)
        platform.machine.cpu.bsp.ring = 0

    def test_attacker_regains_control_but_secrets_are_gone(self, platform):
        """§3.1: 'We also allow the adversary to regain control between
        Flicker sessions' — by then nothing secret remains."""
        platform.execute_pal(SecretSessionPAL())
        attacker = Attacker(platform.kernel)
        # Full ring-0 memory sweep finds nothing.
        assert attacker.scan_memory_for(b"IN-SESSION-SECRET") == []


class TestMeaningfulAttestation:
    """Goal 3 (§3.2): attestations cover exactly the code, inputs and
    outputs — and leak nothing else."""

    def test_attestation_covers_only_session_artifacts(self, platform):
        nonce = b"\x66" * 20
        session = platform.execute_pal(SecretSessionPAL(), inputs=b"in", nonce=nonce)
        attestation = platform.attest(nonce, session)
        # The attestation names the PAL, inputs, outputs, nonce — and the
        # event log contains no reference to the OS, other apps, etc.
        labels = {label for label, _ in attestation.event_log}
        assert labels <= {"skinit-slb", "slb-region", "pal-extend", "io", "sentinel"}

    def test_verifier_needs_only_pal_knowledge(self, platform):
        """The verifier validates with: the PAL image, its nonce, the
        Privacy CA key.  No OS measurement list (contrast with IMA)."""
        nonce = b"\x67" * 20
        pal = SecretSessionPAL()
        session = platform.execute_pal(pal, inputs=b"", nonce=nonce)
        attestation = platform.attest(nonce, session)
        report = platform.verifier().verify(attestation, session.image, nonce)
        assert report.ok


class TestMinimalTCB:
    """Goal 4 (§3.2): the mandatory TCB stays tiny."""

    def test_mandatory_tcb_under_250_lines(self):
        from repro.core.modules import MODULE_REGISTRY

        assert MODULE_REGISTRY["slb_core"].lines_of_code < 250

    def test_minimal_pal_links_only_slb_core(self, platform):
        class Tiny(PAL):
            name = "tiny"
            modules = ()

            def run(self, ctx):
                ctx.write_output(b"t")

        image = platform.build(Tiny())
        assert image.linked_modules == ("slb_core",)

    def test_flicker_module_outside_tcb(self, platform):
        """The flicker-module is untrusted: corrupting its text changes the
        kernel's measured state but not any PAL's measurement or chain."""
        pal = SecretSessionPAL()
        image_before = platform.build(pal)
        value_before = image_before.pcr17_launch_value
        # 'Compromise' the flicker-module in memory.
        platform.machine.memory.write(platform.flicker.text_addr, b"\xde\xad" * 64)
        assert platform.build(pal).pcr17_launch_value == value_before
        # Sessions still run and attest correctly.
        nonce = b"\x68" * 20
        session = platform.execute_pal(pal, nonce=nonce)
        attestation = platform.attest(nonce, session)
        assert platform.verifier().verify(attestation, session.image, nonce).ok
