"""SKINIT semantics and machine-assembly tests (paper §2.4)."""

import pytest

from repro.crypto.sha1 import sha1
from repro.errors import (
    DebugAccessError,
    DMAProtectionError,
    SkinitError,
    SLBFormatError,
)
from repro.hw.machine import Machine
from repro.hw.skinit import SLB_REGION_SIZE, parse_slb_header


def make_minimal_slb(length: int = 4096, entry: int = 4) -> bytes:
    """A raw SLB image with valid header and deterministic body."""
    header = length.to_bytes(2, "little") + entry.to_bytes(2, "little")
    body = bytes((i * 7) & 0xFF for i in range(length - 4))
    return (header + body).ljust(SLB_REGION_SIZE, b"\x00")


@pytest.fixture
def armed_machine():
    """A machine with quiesced APs, an installed SLB, and a no-op entry."""
    machine = Machine(seed=42)
    for ap in machine.cpu.aps:
        ap.halted = True
    machine.apic.broadcast_init_ipi()
    image = make_minimal_slb()
    slb_base = 0x100000
    machine.memory.write(slb_base, image)

    observations = {}

    def entry(machine_, core, base):
        observations["ran"] = True
        observations["interrupts"] = core.interrupts_enabled
        observations["debug"] = core.debug_access_enabled
        observations["paging"] = core.paging_enabled
        observations["pcr17"] = machine_.tpm.pcrs.read(17)
        return "entry-result"

    machine.register_executable(image, entry)
    return machine, slb_base, image, observations


class TestSLBHeader:
    def test_parse(self):
        header = (500).to_bytes(2, "little") + (4).to_bytes(2, "little")
        assert parse_slb_header(header) == (500, 4)

    def test_truncated_rejected(self):
        with pytest.raises(SLBFormatError):
            parse_slb_header(b"\x01")


class TestSkinitPreconditions:
    def test_requires_ring0(self, armed_machine):
        machine, slb_base, _, _ = armed_machine
        machine.cpu.bsp.ring = 3
        with pytest.raises(Exception):
            machine.skinit(0, slb_base)

    def test_requires_bsp(self, armed_machine):
        machine, slb_base, _, _ = armed_machine
        with pytest.raises(SkinitError):
            machine.skinit(1, slb_base)

    def test_requires_quiesced_aps(self):
        machine = Machine(seed=43)
        image = make_minimal_slb()
        machine.memory.write(0x100000, image)
        machine.register_executable(image, lambda *a: None)
        with pytest.raises(SkinitError):
            machine.skinit(0, 0x100000)  # APs never descheduled

    def test_requires_page_alignment(self, armed_machine):
        machine, _, _, _ = armed_machine
        with pytest.raises(SkinitError):
            machine.skinit(0, 0x100001)

    def test_rejects_slb_past_end_of_memory(self, armed_machine):
        machine, _, _, _ = armed_machine
        end = machine.memory.size_bytes
        with pytest.raises(SkinitError):
            machine.skinit(0, end - 4096)

    def test_rejects_bad_length(self, armed_machine):
        machine, slb_base, _, _ = armed_machine
        machine.memory.write(slb_base, (0).to_bytes(2, "little") + (0).to_bytes(2, "little"))
        with pytest.raises(SLBFormatError):
            machine.skinit(0, slb_base)

    def test_rejects_entry_outside_measured_region(self, armed_machine):
        machine, slb_base, _, _ = armed_machine
        header = (64).to_bytes(2, "little") + (100).to_bytes(2, "little")
        machine.memory.write(slb_base, header)
        with pytest.raises(SLBFormatError):
            machine.skinit(0, slb_base)


class TestSkinitProtections:
    def test_protections_active_at_entry(self, armed_machine):
        machine, slb_base, _, obs = armed_machine
        result = machine.skinit(0, slb_base)
        assert result == "entry-result"
        assert obs["ran"]
        assert obs["interrupts"] is False
        assert obs["debug"] is False
        assert obs["paging"] is False

    def test_dev_blocks_dma_to_slb(self, armed_machine):
        machine, slb_base, _, obs = armed_machine
        nic = machine.attach_dma_device("nic")

        def entry(machine_, core, base):
            with pytest.raises(DMAProtectionError):
                nic.dma_read(base, 64)
            with pytest.raises(DMAProtectionError):
                nic.dma_write(base + 60 * 1024, b"attack")
            return True

        image = make_minimal_slb(length=2048)
        machine.memory.write(slb_base, image)
        machine.register_executable(image, entry)
        assert machine.skinit(0, slb_base) is True

    def test_debugger_blocked_during_session(self, armed_machine):
        machine, slb_base, _, _ = armed_machine

        def entry(machine_, core, base):
            with pytest.raises(DebugAccessError):
                machine_.debugger.probe(base, 16)
            return True

        image = make_minimal_slb(length=1024)
        machine.memory.write(slb_base, image)
        machine.register_executable(image, entry)
        assert machine.skinit(0, slb_base) is True


class TestSkinitMeasurement:
    def test_pcr17_is_reset_then_extended(self, armed_machine):
        machine, slb_base, image, obs = armed_machine
        machine.tpm.pcrs.extend(17, b"\xaa" * 20)  # pre-session garbage
        machine.skinit(0, slb_base)
        measured = image[:4096]
        expected = sha1(b"\x00" * 20 + sha1(measured))
        assert obs["pcr17"] == expected

    def test_measurement_covers_only_declared_length(self, armed_machine):
        machine, slb_base, image, obs = armed_machine
        # Mutate a byte beyond the measured length: PCR 17 is unchanged,
        # which is exactly why the optimization stub must hash the rest.
        machine.memory.write(slb_base + 5000, b"\xff")
        machine.skinit(0, slb_base)
        expected = sha1(b"\x00" * 20 + sha1(image[:4096]))
        assert obs["pcr17"] == expected

    def test_tampered_measured_bytes_change_dispatch(self, armed_machine):
        machine, slb_base, _, _ = armed_machine
        machine.memory.write(slb_base + 100, b"\xde\xad")
        # The tampered image measures differently; no executable is
        # registered for it, which the simulation reports as an error
        # (real hardware would run the tampered code, but PCR 17 would
        # still expose it to any verifier).
        with pytest.raises(SkinitError, match="no executable"):
            machine.skinit(0, slb_base)

    def test_skinit_cost_scales_with_measured_length(self):
        costs = {}
        for length in (1024, 32 * 1024):
            machine = Machine(seed=44)
            for ap in machine.cpu.aps:
                ap.halted = True
            machine.apic.broadcast_init_ipi()
            image = make_minimal_slb(length=length)
            machine.memory.write(0x100000, image)
            machine.register_executable(image, lambda *a: None)
            before = machine.clock.now()
            machine.skinit(0, 0x100000)
            costs[length] = machine.clock.now() - before
        assert costs[32 * 1024] > costs[1024] * 5


class TestMachineAssembly:
    def test_reboot_restores_cpu_state(self):
        machine = Machine(seed=45)
        machine.cpu.bsp.interrupts_enabled = False
        machine.cpu.bsp.debug_access_enabled = False
        machine.dev.protect_range(0, 1 << 16)
        machine.reboot()
        assert machine.cpu.bsp.interrupts_enabled
        assert machine.cpu.bsp.debug_access_enabled
        assert len(machine.dev) == 0

    def test_reboot_does_not_clear_memory(self):
        """Cold-boot remanence: memory survives reboot, which is why the
        SLB Core must erase secrets itself."""
        machine = Machine(seed=46)
        machine.memory.write(0x5000, b"remanent-secret")
        machine.reboot()
        assert machine.memory.read(0x5000, 15) == b"remanent-secret"

    def test_charge_host_sha1(self):
        machine = Machine(seed=47)
        before = machine.clock.now()
        machine.charge_host_sha1(2820 * 1024)
        assert machine.clock.now() - before == pytest.approx(22.0, abs=0.1)

    def test_register_executable_keys_on_measured_prefix(self):
        machine = Machine(seed=48)
        image = make_minimal_slb(length=512)
        measurement = machine.register_executable(image, lambda *a: "x")
        assert measurement == sha1(image[:512])
        assert machine.lookup_executable(measurement) is not None
        assert machine.lookup_executable(b"\x00" * 20) is None
