"""Physical memory and Device Exclusion Vector tests."""

import pytest

from repro.errors import DMAProtectionError, MemoryFault
from repro.hw.dev import DeviceExclusionVector
from repro.hw.memory import PAGE_SIZE, PhysicalMemory


class TestPhysicalMemory:
    def test_read_untouched_memory_is_zero(self):
        mem = PhysicalMemory(1 << 20)
        assert mem.read(0x1234, 16) == b"\x00" * 16

    def test_write_read_roundtrip(self):
        mem = PhysicalMemory(1 << 20)
        mem.write(0x1000, b"hello world")
        assert mem.read(0x1000, 11) == b"hello world"

    def test_cross_page_write_and_read(self):
        mem = PhysicalMemory(1 << 20)
        data = bytes(range(256)) * 40  # 10240 bytes: spans 3 pages
        addr = PAGE_SIZE - 100
        mem.write(addr, data)
        assert mem.read(addr, len(data)) == data

    def test_bounds_checked(self):
        mem = PhysicalMemory(1 << 16)
        with pytest.raises(MemoryFault):
            mem.read((1 << 16) - 4, 8)
        with pytest.raises(MemoryFault):
            mem.write(-1, b"x")
        with pytest.raises(MemoryFault):
            mem.read(0, -1)

    def test_size_must_be_page_multiple(self):
        with pytest.raises(MemoryFault):
            PhysicalMemory(PAGE_SIZE + 1)
        with pytest.raises(MemoryFault):
            PhysicalMemory(0)

    def test_zeroize(self):
        mem = PhysicalMemory(1 << 20)
        mem.write(0x2000, b"secret" * 100)
        mem.zeroize(0x2000, 600)
        assert mem.is_zero(0x2000, 600)

    def test_zeroize_cross_page(self):
        mem = PhysicalMemory(1 << 20)
        addr = PAGE_SIZE - 10
        mem.write(addr, b"S" * 40)
        mem.zeroize(addr, 40)
        assert mem.is_zero(addr, 40)

    def test_find_bytes_within_page(self):
        mem = PhysicalMemory(1 << 20)
        mem.write(0x3000, b"needle")
        mem.write(0x8000, b"needle")
        assert mem.find_bytes(b"needle") == (0x3000, 0x8000)

    def test_find_bytes_across_page_boundary(self):
        mem = PhysicalMemory(1 << 20)
        addr = 2 * PAGE_SIZE - 3
        mem.write(addr, b"straddle")
        assert addr in mem.find_bytes(b"straddle")

    def test_find_bytes_empty_pattern_rejected(self):
        mem = PhysicalMemory(1 << 20)
        with pytest.raises(MemoryFault):
            mem.find_bytes(b"")

    def test_allocated_pages_sparse(self):
        mem = PhysicalMemory(1 << 24)
        assert mem.allocated_pages() == 0
        mem.write(0, b"x")
        mem.write(1 << 23, b"y")
        assert mem.allocated_pages() == 2

    def test_page_range(self):
        pages = list(PhysicalMemory.page_range(PAGE_SIZE - 1, 2))
        assert pages == [0, 1]
        assert list(PhysicalMemory.page_range(0, 0)) == []


class TestDeviceExclusionVector:
    def test_protect_blocks_dma(self):
        dev = DeviceExclusionVector()
        dev.protect_range(0x10000, 64 * 1024)
        with pytest.raises(DMAProtectionError):
            dev.check_dma(0x10000, 4, "nic")

    def test_partial_overlap_blocked(self):
        dev = DeviceExclusionVector()
        dev.protect_range(0x10000, PAGE_SIZE)
        # Transfer starting below the protected page but reaching into it.
        with pytest.raises(DMAProtectionError):
            dev.check_dma(0x10000 - 8, 16, "nic")

    def test_unprotected_memory_allowed(self):
        dev = DeviceExclusionVector()
        dev.protect_range(0x10000, PAGE_SIZE)
        dev.check_dma(0x20000, 4096, "nic")  # must not raise

    def test_unprotect_range(self):
        dev = DeviceExclusionVector()
        dev.protect_range(0x10000, 64 * 1024)
        dev.unprotect_range(0x10000, 64 * 1024)
        dev.check_dma(0x10000, 4, "nic")

    def test_clear(self):
        dev = DeviceExclusionVector()
        dev.protect_range(0, 1 << 20)
        dev.clear()
        assert len(dev) == 0

    def test_page_granularity(self):
        dev = DeviceExclusionVector()
        dev.protect_range(100, 1)  # a single byte protects its whole page
        assert dev.is_page_protected(0)
        with pytest.raises(DMAProtectionError):
            dev.check_dma(PAGE_SIZE - 1, 1, "nic")

    def test_skinit_covers_64kb(self):
        """SKINIT protects 16 pages for a 64-KB SLB."""
        dev = DeviceExclusionVector()
        dev.protect_range(0x100000, 64 * 1024)
        assert len(dev) == 16
