"""Intel TXT (GETSEC[SENTER]) tests — the §2.4 'functions analogously'
claim, with the TXT-specific differences."""

import pytest

from repro.crypto.sha1 import sha1
from repro.errors import SkinitError
from repro.hw.machine import Machine
from repro.hw.txt import ACM_PCR, IntelACMAuthority, MLE_PCR, SINITModule


@pytest.fixture
def txt_machine():
    authority = IntelACMAuthority()
    machine = Machine(seed=84, intel_acm_authority=authority)
    for ap in machine.cpu.aps:
        ap.halted = True
    machine.apic.broadcast_init_ipi()
    return machine, authority


def install_mle(machine, length=2048):
    header = length.to_bytes(2, "little") + (4).to_bytes(2, "little")
    image = (header + bytes((i * 11) & 0xFF for i in range(length - 4))).ljust(
        64 * 1024, b"\x00"
    )
    base = 0x200000
    machine.memory.write(base, image)
    observations = {}

    def entry(machine_, core, mle_base):
        observations["pcr17"] = machine_.tpm.pcrs.read(ACM_PCR)
        observations["pcr18"] = machine_.tpm.pcrs.read(MLE_PCR)
        observations["interrupts"] = core.interrupts_enabled
        return "mle-ran"

    machine.register_executable(image, entry)
    return base, image, observations


class TestSENTERLaunch:
    def test_launch_with_signed_acm(self, txt_machine):
        machine, authority = txt_machine
        acm = authority.sign_acm(b"sinit-code-v1" * 100)
        base, image, obs = install_mle(machine)
        assert machine.senter(0, acm, base) == "mle-ran"
        assert obs["interrupts"] is False

    def test_acm_measured_into_pcr17(self, txt_machine):
        machine, authority = txt_machine
        acm = authority.sign_acm(b"sinit-code-v1" * 100)
        base, image, obs = install_mle(machine)
        machine.senter(0, acm, base)
        assert obs["pcr17"] == sha1(b"\x00" * 20 + acm.measurement)

    def test_mle_measured_into_pcr18(self, txt_machine):
        machine, authority = txt_machine
        acm = authority.sign_acm(b"sinit")
        base, image, obs = install_mle(machine)
        machine.senter(0, acm, base)
        assert obs["pcr18"] == sha1(b"\x00" * 20 + sha1(image[:2048]))

    def test_two_register_identity_vs_svm_single(self, txt_machine):
        """TXT splits identity across PCRs 17 (launch env) and 18 (code);
        SVM puts everything in 17 — a verifier must know which."""
        machine, authority = txt_machine
        acm = authority.sign_acm(b"sinit")
        base, image, obs = install_mle(machine)
        machine.senter(0, acm, base)
        assert obs["pcr17"] != obs["pcr18"]


class TestACMAuthentication:
    def test_unsigned_acm_rejected(self, txt_machine):
        machine, authority = txt_machine
        rogue = SINITModule(code=b"evil-sinit", signature=b"\x00" * 64,
                            signer=authority.public_key)
        base, _, _ = install_mle(machine)
        with pytest.raises(SkinitError, match="ACM signature"):
            machine.senter(0, rogue, base)

    def test_foreign_authority_rejected(self, txt_machine):
        machine, _ = txt_machine
        other = IntelACMAuthority(seed=0xBAD)
        acm = other.sign_acm(b"sinit-from-elsewhere")
        base, _, _ = install_mle(machine)
        with pytest.raises(SkinitError, match="ACM signature"):
            machine.senter(0, acm, base)

    def test_tampered_acm_code_rejected(self, txt_machine):
        machine, authority = txt_machine
        acm = authority.sign_acm(b"sinit-genuine")
        tampered = SINITModule(code=b"sinit-Genuine", signature=acm.signature,
                               signer=acm.signer)
        base, _, _ = install_mle(machine)
        with pytest.raises(SkinitError, match="ACM signature"):
            machine.senter(0, tampered, base)

    def test_machine_without_txt_refuses(self):
        machine = Machine(seed=85)  # no ACM authority
        for ap in machine.cpu.aps:
            ap.halted = True
        machine.apic.broadcast_init_ipi()
        authority = IntelACMAuthority()
        acm = authority.sign_acm(b"sinit")
        machine.memory.write(0x200000, (64).to_bytes(2, "little") + (4).to_bytes(2, "little"))
        with pytest.raises(SkinitError, match="no TXT support"):
            machine.senter(0, acm, 0x200000)


class TestSENTERPreconditions:
    def test_requires_bsp(self, txt_machine):
        machine, authority = txt_machine
        acm = authority.sign_acm(b"s")
        with pytest.raises(SkinitError):
            machine.senter(1, acm, 0x200000)

    def test_requires_quiesced_aps(self):
        authority = IntelACMAuthority()
        machine = Machine(seed=86, intel_acm_authority=authority)
        acm = authority.sign_acm(b"s")
        base, _, _ = install_mle(machine)
        with pytest.raises(SkinitError, match="rendezvous"):
            machine.senter(0, acm, base)

    def test_dev_protects_mle(self, txt_machine):
        machine, authority = txt_machine
        acm = authority.sign_acm(b"s")
        nic = machine.attach_dma_device("nic")
        base, image, _ = install_mle(machine)

        def entry(machine_, core, mle_base):
            from repro.errors import DMAProtectionError

            with pytest.raises(DMAProtectionError):
                nic.dma_read(mle_base, 16)
            return True

        machine.register_executable(image, entry)
        assert machine.senter(0, acm, base) is True

    def test_cost_includes_acm_and_mle(self, txt_machine):
        machine, authority = txt_machine
        small = authority.sign_acm(b"s" * 100)
        big = authority.sign_acm(b"s" * 20000)
        base, image, _ = install_mle(machine)
        t0 = machine.clock.now()
        machine.senter(0, small, base)
        small_cost = machine.clock.now() - t0
        # Reset state for a second launch.
        machine.reboot()
        for ap in machine.cpu.aps:
            ap.halted = True
        machine.apic.broadcast_init_ipi()
        machine.memory.write(base, image)
        t0 = machine.clock.now()
        machine.senter(0, big, base)
        big_cost = machine.clock.now() - t0
        assert big_cost > small_cost + 40.0  # ~20 KB more streamed to the TPM
