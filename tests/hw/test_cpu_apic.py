"""CPU core, segmentation, and APIC tests."""

import pytest

from repro.errors import PrivilegeError, SegmentationFault, SkinitError
from repro.hw.apic import APIC
from repro.hw.cpu import CPU, GDT, SegmentDescriptor


class TestSegmentDescriptor:
    def test_translate_within_limit(self):
        seg = SegmentDescriptor("ds", base=0x1000, limit=0x100)
        assert seg.translate(0x10, 4) == 0x1010

    def test_translate_at_limit_rejected(self):
        seg = SegmentDescriptor("ds", base=0x1000, limit=0x100)
        with pytest.raises(SegmentationFault):
            seg.translate(0x100, 1)
        with pytest.raises(SegmentationFault):
            seg.translate(0xFF, 2)

    def test_negative_offset_rejected(self):
        seg = SegmentDescriptor("ds", base=0x1000, limit=0x100)
        with pytest.raises(SegmentationFault):
            seg.translate(-1, 1)

    def test_zero_length_at_limit_ok(self):
        seg = SegmentDescriptor("ds", base=0, limit=16)
        assert seg.translate(16, 0) == 16


class TestGDT:
    def test_install_and_lookup(self):
        gdt = GDT()
        gdt.install(SegmentDescriptor("cs", 0, 100, executable=True))
        assert gdt.lookup("cs").executable

    def test_lookup_missing_raises(self):
        with pytest.raises(SegmentationFault):
            GDT().lookup("nope")

    def test_flat_covers_all_memory(self):
        gdt = GDT.flat(1 << 20)
        for name in ("cs", "ds", "ss"):
            seg = gdt.lookup(name)
            assert seg.base == 0 and seg.limit == 1 << 20

    def test_names_sorted(self):
        gdt = GDT.flat(4096)
        assert gdt.names() == ["cs", "ds", "ss"]


class TestCPUCore:
    def test_bsp_identification(self):
        cpu = CPU(num_cores=2)
        assert cpu.bsp.is_bsp
        assert not cpu.aps[0].is_bsp
        assert len(cpu.cores) == 2

    def test_require_ring(self):
        cpu = CPU()
        cpu.bsp.ring = 3
        with pytest.raises(PrivilegeError):
            cpu.bsp.require_ring(0, "SKINIT")
        cpu.bsp.ring = 0
        cpu.bsp.require_ring(0, "SKINIT")  # no raise

    def test_segment_register_loading(self):
        cpu = CPU()
        core = cpu.bsp
        gdt = GDT.flat(1 << 16)
        core.load_gdt(gdt)
        core.load_segment("ds", "ds")
        assert core.active_segment("ds").limit == 1 << 16

    def test_load_segment_requires_descriptor(self):
        cpu = CPU()
        core = cpu.bsp
        core.load_gdt(GDT())
        with pytest.raises(SegmentationFault):
            core.load_segment("ds", "missing")

    def test_active_segment_requires_load(self):
        cpu = CPU()
        core = cpu.bsp
        core.load_gdt(GDT.flat(4096))
        with pytest.raises(SegmentationFault):
            core.active_segment("fs")

    def test_snapshot_restore_roundtrip(self):
        cpu = CPU()
        core = cpu.bsp
        gdt = GDT.flat(1 << 16)
        core.load_gdt(gdt)
        core.load_segment("cs", "cs")
        core.cr3 = 0xCAFE000
        core.interrupts_enabled = True
        snapshot = core.snapshot()

        core.ring = 3
        core.interrupts_enabled = False
        core.cr3 = 0
        core.paging_enabled = False
        core.restore(snapshot)

        assert core.ring == 0
        assert core.interrupts_enabled
        assert core.cr3 == 0xCAFE000
        assert core.paging_enabled
        assert core.segments["cs"] == "cs"

    def test_single_core_cpu_has_no_aps(self):
        cpu = CPU(num_cores=1)
        assert cpu.aps == []
        assert cpu.all_aps_quiesced()  # vacuously true

    def test_zero_cores_rejected(self):
        with pytest.raises(PrivilegeError):
            CPU(num_cores=0)


class TestAPIC:
    def test_init_ipi_requires_halted_ap(self):
        cpu = CPU(num_cores=2)
        apic = APIC(cpu)
        with pytest.raises(SkinitError):
            apic.send_init_ipi(1)  # AP still running

    def test_init_ipi_to_bsp_rejected(self):
        cpu = CPU(num_cores=2)
        apic = APIC(cpu)
        with pytest.raises(SkinitError):
            apic.send_init_ipi(0)

    def test_broadcast_after_deschedule(self):
        cpu = CPU(num_cores=4)
        apic = APIC(cpu)
        for ap in cpu.aps:
            ap.halted = True
        apic.broadcast_init_ipi()
        assert cpu.all_aps_quiesced()

    def test_release_aps(self):
        cpu = CPU(num_cores=2)
        apic = APIC(cpu)
        cpu.aps[0].halted = True
        apic.send_init_ipi(1)
        apic.release_aps()
        assert not cpu.aps[0].received_init_ipi

    def test_quiesced_requires_both_halt_and_ipi(self):
        cpu = CPU(num_cores=2)
        cpu.aps[0].halted = True
        assert not cpu.all_aps_quiesced()  # INIT not yet received
        cpu.aps[0].received_init_ipi = True
        assert cpu.all_aps_quiesced()
