"""Machine assembly odds and ends."""

import pytest

from repro.errors import MemoryFault
from repro.hw.machine import Machine
from repro.sim.timing import INFINEON_PROFILE


class TestMachineConfiguration:
    def test_custom_memory_size(self):
        machine = Machine(seed=1, memory_bytes=16 * 1024 * 1024)
        machine.memory.write(16 * 1024 * 1024 - 16, b"end")
        with pytest.raises(MemoryFault):
            machine.memory.read(16 * 1024 * 1024, 1)

    def test_custom_core_count(self):
        machine = Machine(seed=2, num_cores=4)
        assert len(machine.cpu.cores) == 4
        assert len(machine.cpu.aps) == 3

    def test_profile_selection(self):
        machine = Machine(seed=3, profile=INFINEON_PROFILE)
        assert machine.profile.tpm.name == "Infineon v1.2"
        assert machine.tpm.timings.quote_ms == pytest.approx(331.0)

    def test_boot_segments_cover_memory(self):
        machine = Machine(seed=4)
        for core in machine.cpu.cores:
            assert core.active_segment("cs").limit == machine.memory.size_bytes

    def test_seeds_isolate_machines(self):
        a, b = Machine(seed=5), Machine(seed=6)
        assert a.rng.bytes(16) != b.rng.bytes(16)

    def test_same_seed_same_machine(self):
        a, b = Machine(seed=7), Machine(seed=7)
        assert a.tpm.aik_public == b.tpm.aik_public

    def test_multiple_dma_devices(self):
        machine = Machine(seed=8)
        nic = machine.attach_dma_device("nic")
        disk = machine.attach_dma_device("disk")
        machine.memory.write(0x4000, b"shared")
        assert nic.dma_read(0x4000, 6) == disk.dma_read(0x4000, 6)

    def test_charge_work_traces(self):
        machine = Machine(seed=9)
        machine.charge_work(12.5, "app-phase")
        event = machine.trace.last(kind="work")
        assert event.detail == {"label": "app-phase", "ms": 12.5}
        assert machine.clock.now() == pytest.approx(12.5)
