"""OS-Protection module and PAL heap tests (paper §5.1.2)."""

import pytest

from repro.core import PAL
from repro.core.layout import SLBLayout
from repro.core.modules.memory_mgmt import PALHeap
from repro.core.modules.os_protection import restricted_view, unrestricted_view
from repro.errors import PALRuntimeError, SegmentationFault
from repro.hw.memory import PhysicalMemory
from repro.osim.kernel import KERNEL_TEXT_BASE


class NosyPAL(PAL):
    """Tries to read kernel memory from inside the session."""

    name = "nosy"
    modules = ()  # overridden per test via subclasses below

    def run(self, ctx):
        data = ctx.mem.read(KERNEL_TEXT_BASE, 16)
        ctx.write_output(data)


class ConfinedNosyPAL(NosyPAL):
    name = "confined-nosy"
    modules = ("os_protection",)


class ClobberPAL(PAL):
    """Tries to overwrite kernel text."""

    name = "clobber"
    modules = ()

    def run(self, ctx):
        ctx.mem.write(KERNEL_TEXT_BASE, b"\x00" * 64)
        ctx.write_output(b"clobbered")


class ConfinedClobberPAL(ClobberPAL):
    name = "confined-clobber"
    modules = ("os_protection",)


class WindowedPAL(PAL):
    """Works entirely within its allowed window (must succeed confined)."""

    name = "windowed"
    modules = ("os_protection",)

    def run(self, ctx):
        ctx.mem.write(ctx.layout.stack_base, b"stack-data")
        assert ctx.mem.read(ctx.layout.stack_base, 10) == b"stack-data"
        ctx.write_output(b"within-window")


class TestOSProtectionModule:
    def test_default_pal_reads_all_memory(self, platform):
        """§4.2: by default a PAL can access all physical memory — this is
        what the rootkit detector relies on."""
        result = platform.execute_pal(NosyPAL())
        expected = platform.machine.memory.read(KERNEL_TEXT_BASE, 16)
        assert result.outputs == expected

    def test_confined_pal_cannot_read_kernel(self, platform):
        with pytest.raises(PALRuntimeError, match="SegmentationFault|exceeds limit"):
            platform.execute_pal(ConfinedNosyPAL())

    def test_default_pal_can_clobber_kernel(self, platform):
        before = platform.machine.memory.read(KERNEL_TEXT_BASE, 64)
        platform.execute_pal(ClobberPAL())
        after = platform.machine.memory.read(KERNEL_TEXT_BASE, 64)
        assert after != before

    def test_confined_pal_cannot_clobber_kernel(self, platform):
        before = platform.machine.memory.read(KERNEL_TEXT_BASE, 64)
        with pytest.raises(PALRuntimeError):
            platform.execute_pal(ConfinedClobberPAL())
        assert platform.machine.memory.read(KERNEL_TEXT_BASE, 64) == before

    def test_confined_pal_runs_in_ring3(self, platform):
        ring_seen = {}

        class RingProbePAL(PAL):
            name = "ring-probe"
            modules = ("os_protection",)

            def run(self, ctx):
                ring_seen["ring"] = platform.machine.cpu.bsp.ring
                ctx.write_output(b"x")

        platform.execute_pal(RingProbePAL())
        assert ring_seen["ring"] == 3
        assert platform.machine.cpu.bsp.ring == 0  # back in ring 0 after

    def test_unconfined_pal_runs_in_ring0(self, platform):
        ring_seen = {}

        class Ring0ProbePAL(PAL):
            name = "ring0-probe"
            modules = ()

            def run(self, ctx):
                ring_seen["ring"] = platform.machine.cpu.bsp.ring
                ctx.write_output(b"x")

        platform.execute_pal(Ring0ProbePAL())
        assert ring_seen["ring"] == 0

    def test_confined_pal_window_operations_work(self, platform):
        result = platform.execute_pal(WindowedPAL())
        assert result.outputs == b"within-window"

    def test_view_factories(self):
        memory = PhysicalMemory(1 << 20)
        layout = SLBLayout(base=0x10000)
        unrestricted = unrestricted_view(memory)
        assert unrestricted.ring == 0
        unrestricted.write(0x5000, b"anywhere")
        restricted = restricted_view(memory, layout)
        assert restricted.ring == 3
        restricted.write(layout.base + 100, b"inside")
        with pytest.raises(SegmentationFault):
            restricted.read(0x5000, 8)
        with pytest.raises(SegmentationFault):
            restricted.read(layout.saved_state_page, 8)  # saved state off-limits


class TestPALHeap:
    @pytest.fixture
    def heap(self):
        memory = PhysicalMemory(1 << 20)
        return PALHeap(memory, base=0x10000, size=16 * 1024), memory

    def test_malloc_returns_usable_memory(self, heap):
        allocator, memory = heap
        addr = allocator.malloc(100)
        memory.write(addr, b"d" * 100)
        assert memory.read(addr, 100) == b"d" * 100

    def test_allocations_do_not_overlap(self, heap):
        allocator, memory = heap
        addrs = [allocator.malloc(64) for _ in range(10)]
        for addr in addrs:
            memory.write(addr, addr.to_bytes(8, "big") * 8)
        for addr in addrs:
            assert memory.read(addr, 8) == addr.to_bytes(8, "big")

    def test_free_and_reuse(self, heap):
        allocator, _ = heap
        a = allocator.malloc(256)
        allocator.free(a)
        b = allocator.malloc(256)
        assert b == a  # first fit reuses the freed block

    def test_double_free_rejected(self, heap):
        allocator, _ = heap
        addr = allocator.malloc(32)
        allocator.free(addr)
        with pytest.raises(PALRuntimeError, match="double free"):
            allocator.free(addr)

    def test_free_of_non_allocation_rejected(self, heap):
        allocator, _ = heap
        with pytest.raises(PALRuntimeError):
            allocator.free(0x10004)

    def test_exhaustion(self, heap):
        allocator, _ = heap
        with pytest.raises(PALRuntimeError, match="exhausted"):
            allocator.malloc(32 * 1024)

    def test_coalescing_allows_large_realloc(self, heap):
        allocator, _ = heap
        blocks = [allocator.malloc(1024) for _ in range(8)]
        for addr in blocks:
            allocator.free(addr)
        big = allocator.malloc(8 * 1024)  # only possible after coalescing
        assert big == blocks[0]

    def test_realloc_grows_and_preserves(self, heap):
        allocator, memory = heap
        addr = allocator.malloc(16)
        memory.write(addr, b"0123456789abcdef")
        new_addr = allocator.realloc(addr, 400)
        assert memory.read(new_addr, 16) == b"0123456789abcdef"

    def test_realloc_shrink_is_noop(self, heap):
        allocator, _ = heap
        addr = allocator.malloc(100)
        assert allocator.realloc(addr, 50) == addr

    def test_malloc_invalid_size(self, heap):
        allocator, _ = heap
        with pytest.raises(PALRuntimeError):
            allocator.malloc(0)

    def test_free_bytes_accounting(self, heap):
        allocator, _ = heap
        start = allocator.free_bytes()
        addr = allocator.malloc(1000)
        assert allocator.free_bytes() < start
        allocator.free(addr)
        assert allocator.free_bytes() == start
        assert allocator.allocated_blocks() == 0

    def test_heap_inside_session(self, platform):
        class HeapPAL(PAL):
            name = "heap-user"
            modules = ("memory_mgmt",)

            def run(self, ctx):
                a = ctx.heap.malloc(128)
                ctx.mem.write(a, b"heap!" * 4)
                data = ctx.mem.read(a, 20)
                ctx.heap.free(a)
                ctx.write_output(data)

        result = platform.execute_pal(HeapPAL())
        assert result.outputs == b"heap!" * 4

    def test_heap_contents_erased_after_session(self, platform):
        class LeakyHeapPAL(PAL):
            name = "leaky-heap"
            modules = ("memory_mgmt",)

            def run(self, ctx):
                a = ctx.heap.malloc(64)
                ctx.mem.write(a, b"HEAP-RESIDENT-SECRET")
                ctx.write_output(b"ok")  # never frees: cleanup must still erase

        platform.execute_pal(LeakyHeapPAL())
        assert platform.machine.memory.find_bytes(b"HEAP-RESIDENT-SECRET") == ()
