"""Memoized measurement hot paths: SLB digests and PCR composites.

The memos are keyed by content — an identical rebuild reuses the cached
digest, any differing byte produces a fresh one — and they live in
derived state invisible to dataclass equality.  These tests pin the
invalidation story the docstrings promise.
"""

from repro.core.pal import PAL
from repro.core.slb import (
    build_slb,
    clear_measurement_cache,
    measurement_cache_info,
)
from repro.crypto.sha1 import sha1
from repro.tpm.structures import PCRComposite


class MemoPAL(PAL):
    name = "memo-pal"
    modules = ()

    def run(self, ctx):
        ctx.write_output(b"a")


class OtherPAL(PAL):
    name = "other-pal"
    modules = ()

    def run(self, ctx):
        ctx.write_output(b"b")


class TestSLBMeasurementMemo:
    def test_instance_memo_returns_identical_objects(self):
        image = build_slb(MemoPAL())
        assert image.skinit_measurement is image.skinit_measurement
        assert image.region_measurement is image.region_measurement
        assert image.pcr17_launch_value is image.pcr17_launch_value

    def test_memo_matches_a_fresh_hash(self):
        image = build_slb(MemoPAL())
        _ = image.skinit_measurement  # prime the memo
        assert image.skinit_measurement == sha1(
            image.image[: image.measured_length])
        assert image.region_measurement == sha1(image.image)

    def test_identical_rebuild_measures_identically(self):
        a, b = build_slb(MemoPAL()), build_slb(MemoPAL())
        assert a is not b
        assert a.skinit_measurement == b.skinit_measurement
        assert a.pcr17_launch_value == b.pcr17_launch_value

    def test_differing_content_gets_a_fresh_digest(self):
        a, b = build_slb(MemoPAL()), build_slb(OtherPAL())
        assert a.image != b.image
        assert a.region_measurement != b.region_measurement
        assert a.pcr17_launch_value != b.pcr17_launch_value

    def test_memo_is_invisible_to_equality(self):
        pal = MemoPAL()
        a, b = build_slb(pal), build_slb(pal)
        _ = a.skinit_measurement  # a carries memo state, b does not
        assert a == b

    def test_cache_info_and_explicit_clear(self):
        clear_measurement_cache()
        assert measurement_cache_info().currsize == 0
        image = build_slb(MemoPAL())
        _ = image.region_measurement
        assert measurement_cache_info().currsize > 0
        clear_measurement_cache()
        assert measurement_cache_info().currsize == 0
        # Results are identical after a cold restart of the cache.
        assert build_slb(MemoPAL()).region_measurement == image.region_measurement


class TestPCRCompositeMemo:
    def composite(self, fill):
        return PCRComposite.from_mapping({17: bytes([fill]) * 20,
                                          18: b"\x00" * 20})

    def test_encode_and_digest_memoized(self):
        comp = self.composite(1)
        assert comp.encode() is comp.encode()
        assert comp.digest() is comp.digest()

    def test_equal_composites_digest_equally(self):
        assert self.composite(1).digest() == self.composite(1).digest()

    def test_differing_composite_gets_fresh_digest(self):
        assert self.composite(1).digest() != self.composite(2).digest()

    def test_memo_is_invisible_to_equality(self):
        a, b = self.composite(3), self.composite(3)
        _ = a.digest()
        assert a == b

    def test_digest_is_sha1_of_encoding(self):
        comp = self.composite(4)
        assert comp.digest() == sha1(comp.encode())
