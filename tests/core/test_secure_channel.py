"""Secure-channel protocol tests (paper §4.4.2)."""

import pytest

from repro.core import PAL
from repro.core.modules.secure_channel import (
    decode_channel_output,
    encode_channel_output,
)
from repro.core.secure_channel import SecureChannelClient
from repro.errors import PALRuntimeError, SecureChannelError

NONCE = b"\x2a" * 20


class ChannelPAL(PAL):
    """establish on command 0; decrypt one message on command 1."""

    name = "channel"
    modules = ("secure_channel",)

    def run(self, ctx):
        if ctx.inputs[0] == 0:
            ctx.write_output(ctx.secure_channel.establish())
        else:
            sdata_len = int.from_bytes(ctx.inputs[1:5], "big")
            sdata = ctx.inputs[5 : 5 + sdata_len]
            ciphertext = ctx.inputs[5 + sdata_len :]
            ctx.write_output(ctx.secure_channel.open(sdata, ciphertext))


def establish(platform, pal):
    session = platform.execute_pal(pal, inputs=b"\x00", nonce=NONCE)
    attestation = platform.attest(NONCE, session)
    client = SecureChannelClient(platform.verifier(), platform.machine.rng.fork("client"))
    channel = client.accept(attestation, session.image, NONCE)
    return client, channel


class TestEstablish:
    def test_client_accepts_valid_attestation(self, platform):
        client, channel = establish(platform, ChannelPAL())
        assert channel.pal_public.n > 0

    def test_end_to_end_message(self, platform):
        pal = ChannelPAL()
        client, channel = establish(platform, pal)
        ciphertext = client.encrypt(channel, b"to-the-pal")
        sdata = channel.sdata.encode()
        inputs = b"\x01" + len(sdata).to_bytes(4, "big") + sdata + ciphertext
        result = platform.execute_pal(pal, inputs=inputs)
        assert result.outputs == b"to-the-pal"

    def test_client_rejects_wrong_pal(self, platform):
        pal = ChannelPAL()
        session = platform.execute_pal(pal, inputs=b"\x00", nonce=NONCE)
        attestation = platform.attest(NONCE, session)

        class Decoy(PAL):
            name = "decoy"
            modules = ("secure_channel",)

            def run(self, ctx):
                ctx.write_output(ctx.secure_channel.establish())

        decoy_image = platform.build(Decoy())
        client = SecureChannelClient(platform.verifier(), platform.machine.rng.fork("c"))
        with pytest.raises(SecureChannelError):
            client.accept(attestation, decoy_image, NONCE)

    def test_client_rejects_substituted_key(self, platform):
        """A MITM OS that swaps its own public key into the outputs breaks
        the PCR-17 chain and is caught."""
        from dataclasses import replace

        from repro.crypto.rsa import generate_rsa_keypair
        from repro.sim.rng import DeterministicRNG

        pal = ChannelPAL()
        session = platform.execute_pal(pal, inputs=b"\x00", nonce=NONCE)
        attestation = platform.attest(NONCE, session)

        mitm_keys = generate_rsa_keypair(512, DeterministicRNG(666))
        _, sealed = decode_channel_output(attestation.outputs)
        forged_outputs = encode_channel_output(mitm_keys.public, sealed)
        forged = replace(attestation, outputs=forged_outputs)

        client = SecureChannelClient(platform.verifier(), platform.machine.rng.fork("c"))
        with pytest.raises(SecureChannelError):
            client.accept(forged, session.image, NONCE)

    def test_client_rejects_stale_nonce(self, platform):
        pal = ChannelPAL()
        session = platform.execute_pal(pal, inputs=b"\x00", nonce=NONCE)
        attestation = platform.attest(NONCE, session)
        client = SecureChannelClient(platform.verifier(), platform.machine.rng.fork("c"))
        with pytest.raises(SecureChannelError):
            client.accept(attestation, session.image, b"\x0f" * 20)


class TestChannelUse:
    def test_other_pal_cannot_open_channel(self, platform):
        pal = ChannelPAL()
        client, channel = establish(platform, pal)
        ciphertext = client.encrypt(channel, b"secret")

        class Thief(PAL):
            name = "thief"
            modules = ("secure_channel",)

            def run(self, ctx):
                sdata_len = int.from_bytes(ctx.inputs[:4], "big")
                sdata = ctx.inputs[4 : 4 + sdata_len]
                ctx.write_output(ctx.secure_channel.open(sdata, ctx.inputs[4 + sdata_len :]))

        sdata = channel.sdata.encode()
        with pytest.raises(PALRuntimeError):
            platform.execute_pal(
                Thief(), inputs=len(sdata).to_bytes(4, "big") + sdata + ciphertext
            )

    def test_os_learns_nothing_from_transit(self, platform):
        """The plaintext never appears in the ciphertext or sealed data."""
        client, channel = establish(platform, ChannelPAL())
        ciphertext = client.encrypt(channel, b"plaintext-marker")
        assert b"plaintext-marker" not in ciphertext
        assert b"plaintext-marker" not in channel.sdata.encode()

    def test_message_length_limit(self, platform):
        client, channel = establish(platform, ChannelPAL())
        limit = channel.pal_public.modulus_bytes - 11
        with pytest.raises(SecureChannelError):
            client.encrypt(channel, b"x" * (limit + 1))

    def test_malformed_sdata_contained(self, platform):
        pal = ChannelPAL()
        client, channel = establish(platform, pal)
        ciphertext = client.encrypt(channel, b"hi")
        bad_sdata = b"\xde\xad\xbe\xef"
        inputs = b"\x01" + len(bad_sdata).to_bytes(4, "big") + bad_sdata + ciphertext
        with pytest.raises(PALRuntimeError):
            platform.execute_pal(pal, inputs=inputs)


class TestEncoding:
    def test_channel_output_roundtrip(self, platform):
        client, channel = establish(platform, ChannelPAL())
        payload = encode_channel_output(channel.pal_public, channel.sdata)
        public, sealed = decode_channel_output(payload)
        assert public == channel.pal_public
        assert sealed == channel.sdata

    def test_truncated_output_rejected(self):
        with pytest.raises(SecureChannelError):
            decode_channel_output(b"\x00\x00")

    def test_trailing_bytes_rejected(self, platform):
        client, channel = establish(platform, ChannelPAL())
        payload = encode_channel_output(channel.pal_public, channel.sdata)
        with pytest.raises(SecureChannelError):
            decode_channel_output(payload + b"junk")
