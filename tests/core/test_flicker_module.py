"""flicker-module protocol tests: the sysfs surface an application uses."""

import pytest

from repro.core import FlickerPlatform, PAL
from repro.core.flicker_module import FlickerModule
from repro.errors import FlickerError, SLBFormatError, SysfsError


class SysfsPAL(PAL):
    name = "sysfs-driven"
    modules = ()

    def run(self, ctx):
        ctx.write_output(b"via-sysfs:" + ctx.inputs)


class TestSysfsProtocol:
    """Paper §4.2: applications drive sessions through four sysfs entries."""

    def test_entries_registered_on_load(self, platform):
        for entry in ("slb", "inputs", "outputs", "control"):
            assert platform.kernel.sysfs.exists(f"flicker/{entry}")

    def test_full_session_via_sysfs_only(self, platform):
        image = platform.build(SysfsPAL())
        sysfs = platform.kernel.sysfs
        sysfs.write("flicker/slb", image.image)
        sysfs.write("flicker/inputs", b"raw-app-data")
        sysfs.write("flicker/control", b"go")
        assert sysfs.read("flicker/outputs") == b"via-sysfs:raw-app-data"

    def test_control_with_hex_nonce(self, platform):
        image = platform.build(SysfsPAL())
        sysfs = platform.kernel.sysfs
        sysfs.write("flicker/slb", image.image)
        sysfs.write("flicker/inputs", b"")
        nonce = bytes(range(20))
        sysfs.write("flicker/control", b"go:" + nonce.hex().encode())
        assert platform.flicker.last_result is not None

    def test_unknown_slb_bytes_rejected(self, platform):
        with pytest.raises(SLBFormatError):
            platform.kernel.sysfs.write("flicker/slb", b"\x01\x02" * 100)

    def test_outputs_not_writable_inputs_not_readable(self, platform):
        with pytest.raises(SysfsError):
            platform.kernel.sysfs.write("flicker/outputs", b"x")
        with pytest.raises(SysfsError):
            platform.kernel.sysfs.read("flicker/inputs")

    def test_entries_removed_on_unload(self, platform):
        platform.kernel.unload_module(platform.flicker)
        for entry in ("slb", "inputs", "outputs", "control"):
            assert not platform.kernel.sysfs.exists(f"flicker/{entry}")

    def test_reload_restores_service(self, platform):
        platform.kernel.unload_module(platform.flicker)
        fresh = FlickerModule()
        platform.kernel.load_module(fresh)
        platform.flicker = fresh
        platform._installed = None
        result = platform.execute_pal(SysfsPAL(), inputs=b"after-reload")
        assert result.outputs == b"via-sysfs:after-reload"


class TestModuleStates:
    def test_execute_without_install_rejected(self):
        module = FlickerModule()
        with pytest.raises(FlickerError, match="no SLB"):
            module.execute()

    def test_install_requires_loaded_module(self, platform):
        unloaded = FlickerModule()
        image = platform.build(SysfsPAL())
        with pytest.raises(FlickerError, match="not loaded"):
            unloaded.install_slb(image)

    def test_bad_launch_technology_rejected(self):
        with pytest.raises(FlickerError):
            FlickerModule(launch="sgx")

    def test_txt_without_acm_rejected(self):
        with pytest.raises(FlickerError):
            FlickerModule(launch="txt")

    def test_slb_base_is_64kb_aligned(self, platform):
        platform.execute_pal(SysfsPAL())
        assert platform.flicker.slb_base % (64 * 1024) == 0

    def test_installed_image_accessor(self, platform):
        image = platform.build(SysfsPAL())
        platform.install(image)
        assert platform.flicker.installed_image is image

    def test_inputs_persist_between_sessions(self, platform):
        """Staged inputs are reused until overwritten (sysfs semantics)."""
        image = platform.build(SysfsPAL())
        sysfs = platform.kernel.sysfs
        sysfs.write("flicker/slb", image.image)
        sysfs.write("flicker/inputs", b"sticky")
        sysfs.write("flicker/control", b"go")
        sysfs.write("flicker/control", b"go")
        assert sysfs.read("flicker/outputs") == b"via-sysfs:sticky"

    def test_module_text_is_measured_kernel_state(self, platform):
        """The flicker-module appears in the kernel's module list, so the
        rootkit detector measures it like any other module."""
        names = [name for name, _, _ in platform.kernel.measured_regions()]
        assert "module:flicker_module" in names
