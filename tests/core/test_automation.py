"""PAL-extraction tool tests (paper §5.2)."""

import textwrap

import pytest

from repro.core.automation import extract_pal_source
from repro.errors import ExtractionError

PROGRAM = textwrap.dedent(
    '''
    import os

    MODULUS_BITS = 1024
    BANNER = "app v1"

    def helper_a(x):
        return x * 2

    def helper_b(x):
        return helper_a(x) + MODULUS_BITS

    def unrelated():
        return os.getpid()

    def rsa_keygen():
        seed = helper_b(7)
        return seed

    def noisy_target():
        print(BANNER)
        data = rsa_keygen()
        return data

    def filesystem_target():
        with open("/etc/passwd") as f:
            return f.read()
    '''
)


class TestClosureComputation:
    def test_target_and_dependencies_extracted(self):
        result = extract_pal_source(PROGRAM, "rsa_keygen")
        assert set(result.included) == {"rsa_keygen", "helper_b", "helper_a"}

    def test_unrelated_functions_excluded(self):
        result = extract_pal_source(PROGRAM, "rsa_keygen")
        assert "unrelated" not in result.included
        assert "unrelated" not in result.standalone_source

    def test_constants_carried_along(self):
        result = extract_pal_source(PROGRAM, "rsa_keygen")
        assert "MODULUS_BITS" in result.constants
        assert "MODULUS_BITS = 1024" in result.standalone_source

    def test_clean_target_has_no_disallowed(self):
        result = extract_pal_source(PROGRAM, "rsa_keygen")
        assert result.clean
        assert result.disallowed == {}

    def test_missing_target_rejected(self):
        with pytest.raises(ExtractionError):
            extract_pal_source(PROGRAM, "does_not_exist")

    def test_syntax_error_rejected(self):
        with pytest.raises(ExtractionError):
            extract_pal_source("def broken(:", "broken")


class TestDisallowedDependencies:
    def test_print_flagged_for_elimination(self):
        result = extract_pal_source(PROGRAM, "noisy_target")
        assert "print" in result.disallowed
        assert "eliminate" in result.disallowed["print"]
        assert not result.clean

    def test_open_flagged(self):
        result = extract_pal_source(PROGRAM, "filesystem_target")
        assert "open" in result.disallowed

    def test_malloc_suggests_memory_mgmt(self):
        program = "def alloc_heavy():\n    return malloc(64)\n"
        result = extract_pal_source(program, "alloc_heavy")
        assert "memory_mgmt" in result.disallowed["malloc"]

    def test_unresolved_call_reported(self):
        program = "def caller():\n    return mystery_function(1)\n"
        result = extract_pal_source(program, "caller")
        assert "mystery_function" in result.disallowed

    def test_noisy_target_still_includes_closure(self):
        """Extraction proceeds despite disallowed names so the programmer
        can iterate (§5.2: 'the programmer can simply eliminate the call')."""
        result = extract_pal_source(PROGRAM, "noisy_target")
        assert "rsa_keygen" in result.included
        assert "helper_a" in result.included


class TestStandaloneProgram:
    def test_standalone_source_is_executable(self):
        result = extract_pal_source(PROGRAM, "rsa_keygen")
        namespace = {}
        exec(result.standalone_source, namespace)  # noqa: S102 - test fixture
        assert namespace["PAL_ENTRY"]() == 1038  # helper_b(7) = 14 + 1024

    def test_dependencies_defined_before_use(self):
        result = extract_pal_source(PROGRAM, "rsa_keygen")
        src = result.standalone_source
        assert src.index("def helper_a") < src.index("def helper_b")
        assert src.index("def helper_b") < src.index("def rsa_keygen")

    def test_entry_alias_points_at_target(self):
        result = extract_pal_source(PROGRAM, "rsa_keygen")
        assert result.standalone_source.rstrip().endswith("PAL_ENTRY = rsa_keygen")

    def test_recursive_function_extracts(self):
        program = textwrap.dedent(
            """
            def fact(n):
                return 1 if n <= 1 else n * fact(n - 1)
            """
        )
        result = extract_pal_source(program, "fact")
        assert result.clean
        namespace = {}
        exec(result.standalone_source, namespace)  # noqa: S102
        assert namespace["PAL_ENTRY"](5) == 120

    def test_mutually_recursive_functions(self):
        program = textwrap.dedent(
            """
            def is_even(n):
                return True if n == 0 else is_odd(n - 1)

            def is_odd(n):
                return False if n == 0 else is_even(n - 1)
            """
        )
        result = extract_pal_source(program, "is_even")
        assert set(result.included) == {"is_even", "is_odd"}
        namespace = {}
        exec(result.standalone_source, namespace)  # noqa: S102
        assert namespace["PAL_ENTRY"](10) is True

    def test_module_dependencies_flagged(self):
        program = textwrap.dedent(
            """
            import socket
            import os as operating_system

            def networked():
                conn = socket.create_connection(("host", 80))
                pid = operating_system.getpid()
                return conn, pid
            """
        )
        result = extract_pal_source(program, "networked")
        assert "socket" in result.disallowed
        assert "operating_system" in result.disallowed
        assert "socket.create_connection" in result.disallowed["socket"]

    def test_attribute_calls_on_locals_not_flagged(self):
        program = textwrap.dedent(
            """
            def builder(parts):
                out = []
                for part in parts:
                    out.append(part)
                return out
            """
        )
        result = extract_pal_source(program, "builder")
        assert result.clean

    def test_local_variables_not_flagged(self):
        program = textwrap.dedent(
            """
            def compute(values):
                total = 0
                for item in values:
                    total += item
                return total
            """
        )
        result = extract_pal_source(program, "compute")
        assert result.clean
