"""SLB layout and image-building tests (Figure 3, §5.1.2, §7.2)."""

import pytest

from repro.core.layout import (
    MAX_PARAM_BYTES,
    OPTIMIZED_STUB_BYTES,
    SLB_MAX_CODE,
    SLB_REGION_SIZE,
    SLBLayout,
    decode_param,
    encode_param,
)
from repro.core.modules import MODULE_REGISTRY, modules_total_bytes, resolve_modules
from repro.core.pal import PAL
from repro.core.slb import build_slb, lookup_image
from repro.crypto.sha1 import sha1
from repro.errors import SLBFormatError
from repro.tpm.pcr import simulate_extend_chain


class SmallPAL(PAL):
    name = "small"
    modules = ()

    def run(self, ctx):
        ctx.write_output(b"ok")


class TPMUserPAL(PAL):
    name = "tpm-user"
    modules = ("tpm_utils",)

    def run(self, ctx):
        ctx.write_output(ctx.tpm.pcr_read())


class TestLayout:
    def test_addresses(self):
        layout = SLBLayout(base=0x100000)
        assert layout.end == 0x110000
        assert layout.input_page == 0x110000
        assert layout.output_page == 0x111000
        assert layout.saved_state_page == 0x112000
        assert layout.stack_base == 0x110000 - 4096

    def test_base_alignment_enforced(self):
        with pytest.raises(SLBFormatError):
            SLBLayout(base=0x100001)

    def test_pal_window_excludes_saved_state(self):
        layout = SLBLayout(base=0x100000)
        assert layout.pal_window_end == layout.saved_state_page

    def test_param_encoding_roundtrip(self):
        for payload in (b"", b"x", b"p" * MAX_PARAM_BYTES):
            assert decode_param(encode_param(payload).ljust(4096, b"\x00")) == payload

    def test_param_too_large(self):
        with pytest.raises(SLBFormatError):
            encode_param(b"x" * (MAX_PARAM_BYTES + 1))

    def test_decode_param_garbage(self):
        with pytest.raises(SLBFormatError):
            decode_param(b"\x00")
        with pytest.raises(SLBFormatError):
            decode_param((5000).to_bytes(4, "big") + b"\x00" * 100)


class TestModuleRegistry:
    def test_figure6_loc_totals(self):
        """Figure 6's headline: SLB Core alone is under 250 lines."""
        assert MODULE_REGISTRY["slb_core"].lines_of_code == 94
        assert MODULE_REGISTRY["slb_core"].lines_of_code < 250

    def test_resolution_includes_dependencies(self):
        resolved = resolve_modules(("tpm_utils",))
        assert "tpm_driver" in resolved
        assert resolved[0] == "slb_core"

    def test_secure_channel_pulls_full_stack(self):
        resolved = resolve_modules(("secure_channel",))
        assert set(resolved) >= {"slb_core", "tpm_driver", "tpm_utils", "crypto", "secure_channel"}

    def test_full_crypto_subsumes_sha1_subset(self):
        resolved = resolve_modules(("crypto_sha1", "crypto"))
        assert "crypto_sha1" not in resolved
        assert "crypto" in resolved

    def test_unknown_module_rejected(self):
        with pytest.raises(SLBFormatError):
            resolve_modules(("no-such-module",))

    def test_total_bytes_sums_sizes(self):
        names = resolve_modules(("tpm_utils",))
        expected = sum(MODULE_REGISTRY[n].size_bytes for n in names)
        assert modules_total_bytes(names) == expected


class TestBuildSLB:
    def test_optimized_image_measures_stub_only(self):
        image = build_slb(SmallPAL(), optimize=True)
        assert image.measured_length == OPTIMIZED_STUB_BYTES
        assert image.optimized
        assert len(image.image) == SLB_REGION_SIZE

    def test_unoptimized_image_measures_all_code(self):
        image = build_slb(SmallPAL(), optimize=False)
        assert image.measured_length == image.code_size
        assert not image.optimized

    def test_header_encodes_length_and_entry(self):
        image = build_slb(SmallPAL(), optimize=False)
        length = int.from_bytes(image.image[:2], "little")
        entry = int.from_bytes(image.image[2:4], "little")
        assert length == image.measured_length
        assert entry == 4

    def test_pcr17_launch_value_unoptimized(self):
        image = build_slb(SmallPAL(), optimize=False)
        expected = simulate_extend_chain(b"\x00" * 20, [image.skinit_measurement])
        assert image.pcr17_launch_value == expected

    def test_pcr17_launch_value_optimized_binds_whole_region(self):
        image = build_slb(SmallPAL(), optimize=True)
        expected = simulate_extend_chain(
            b"\x00" * 20, [image.skinit_measurement, sha1(image.image)]
        )
        assert image.pcr17_launch_value == expected

    def test_identical_stub_across_pals(self):
        """All optimized images share the same SKINIT measurement (the
        stub); the PAL identity lives in the region measurement."""
        a = build_slb(SmallPAL(), optimize=True)
        b = build_slb(TPMUserPAL(), optimize=True)
        assert a.skinit_measurement == b.skinit_measurement
        assert a.region_measurement != b.region_measurement
        assert a.pcr17_launch_value != b.pcr17_launch_value

    def test_different_pals_measure_differently_unoptimized(self):
        a = build_slb(SmallPAL(), optimize=False)
        b = build_slb(TPMUserPAL(), optimize=False)
        assert a.skinit_measurement != b.skinit_measurement

    def test_module_list_affects_identity(self):
        """Linking a different TCB is a different measured identity even
        for byte-identical PAL logic."""

        class V1(PAL):
            name = "v"
            modules = ()

            def run(self, ctx):
                ctx.write_output(b"same body")

        class V2(PAL):
            name = "v"
            modules = ("tpm_utils",)

            def run(self, ctx):
                ctx.write_output(b"same body")

        a = build_slb(V1(), optimize=False)
        b = build_slb(V2(), optimize=False)
        assert a.skinit_measurement != b.skinit_measurement

    def test_oversized_pal_rejected(self):
        class Oversized(PAL):
            name = "huge"
            modules = ("crypto", "tpm_utils", "memory_mgmt", "secure_channel")

            def run(self, ctx):
                pass

        # Inflate the PAL body beyond what fits beside the full module set.
        pal = Oversized()
        pal.code_bytes = lambda: b"\x90" * (SLB_MAX_CODE - 40_000)
        with pytest.raises(SLBFormatError):
            build_slb(pal, optimize=True)

    def test_lookup_image_roundtrip(self):
        image = build_slb(SmallPAL(), optimize=True)
        assert lookup_image(image.image) is image

    def test_lookup_unknown_image_rejected(self):
        with pytest.raises(SLBFormatError):
            lookup_image(b"\xde\xad" * 1000)

    def test_rootkit_detector_slb_lands_near_table1_skinit(self):
        """Table 1's SKINIT row (15.4 ms) corresponds to a ~5.3 KB SLB on
        the Table 2 line; the unoptimized detector image should be in that
        size neighbourhood."""
        from repro.apps.rootkit_detector import RootkitDetectorPAL
        from repro.sim.timing import BROADCOM_BCM0102

        image = build_slb(RootkitDetectorPAL(), optimize=False)
        skinit_ms = BROADCOM_BCM0102.skinit_ms(image.measured_length)
        assert 12.0 <= skinit_ms <= 22.0
