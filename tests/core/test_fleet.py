"""The multi-machine fleet: construction, concurrent project runs,
per-machine fault addressing, and byte-level determinism."""

import json

import pytest

from repro.apps.distributed import FleetProject
from repro.core import FlickerFleet
from repro.core.fleet import SERVER_ID, derive_machine_seed
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.obs import export_fleet_chrome_trace


def small_project(fleet, units_per_client=1):
    return FleetProject(
        fleet, n=15015 * 1_000_003,
        units_per_client=units_per_client,
        slice_ms=2000.0, range_per_unit=400,
    )


class TestFleetConstruction:
    def test_machines_have_distinct_identities(self):
        fleet = FlickerFleet(num_machines=3, seed=2008)
        ids = [h.machine_id for h in fleet.hosts]
        assert ids == ["client-00", "client-01", "client-02"]
        aiks = {h.platform.tqd.aik_certificate.aik_public.n for h in fleet.hosts}
        assert len(aiks) == 3  # per-machine TPM identities, not clones

    def test_machine_seeds_are_stable_in_index(self):
        """Growing the fleet never reseeds existing machines."""
        assert [derive_machine_seed(2008, i) for i in range(2)] == [
            derive_machine_seed(2008, i) for i in range(2)
        ]
        small = FlickerFleet(num_machines=2, seed=2008)
        large = FlickerFleet(num_machines=4, seed=2008)
        for a, b in zip(small.hosts, large.hosts):
            assert (a.platform.tqd.aik_certificate.aik_public.n
                    == b.platform.tqd.aik_certificate.aik_public.n)

    def test_host_lookup(self):
        fleet = FlickerFleet(num_machines=2, seed=2008)
        assert fleet.host("client-01") is fleet.hosts[1]
        with pytest.raises(KeyError):
            fleet.host("client-99")

    def test_verifier_for_is_cached_per_machine(self):
        fleet = FlickerFleet(num_machines=2, seed=2008)
        v = fleet.verifier_for("client-00")
        assert fleet.verifier_for("client-00") is v
        assert fleet.verifier_for("client-01") is not v


class TestFleetProject:
    @pytest.fixture(scope="class")
    def run(self):
        fleet = FlickerFleet(num_machines=2, seed=2008)
        report = small_project(fleet, units_per_client=1).run()
        return fleet, report

    def test_every_unit_verifies(self, run):
        _, report = run
        assert report.units_issued == 2
        assert report.units_accepted == 2
        assert report.units_rejected == 0

    def test_machines_run_concurrently(self, run):
        """The fleet makespan is that of ONE client's workload (plus
        network + verification), not the serial sum."""
        fleet, report = run
        slowest = max(m.busy_ms for m in report.per_machine)
        assert report.makespan_ms < 1.1 * slowest
        assert report.total_busy_ms > 1.9 * slowest  # both actually worked

    def test_sessions_counted_per_machine(self, run):
        _, report = run
        for m in report.per_machine:
            assert m.sessions == 2  # init session + one work slice
        assert report.total_sessions == 4

    def test_clients_stay_busy(self, run):
        _, report = run
        for m in report.per_machine:
            assert m.utilization > 0.95

    def test_server_report_aggregates_links(self, run):
        fleet, report = run
        server = fleet.machine_reports()[-1]
        assert server.machine_id == SERVER_ID
        assert server.sessions == 0
        assert server.net_messages == report.network_messages
        assert server.net_bytes == report.network_bytes
        # Verification work was charged to the server host's clock.
        assert server.busy_ms > 0.0

    def test_network_carried_all_protocol_messages(self, run):
        _, report = run
        # Per client: assignment in, result out, stop in.
        assert report.network_messages == 3 * report.fleet_size


class TestFleetDeterminism:
    def test_same_seed_reports_byte_identical(self):
        def one_run():
            fleet = FlickerFleet(num_machines=2, seed=424242)
            report = small_project(fleet).run()
            return json.dumps(report.to_dict(), sort_keys=True)

        assert one_run() == one_run()

    def test_same_seed_traces_byte_identical(self):
        def one_trace():
            fleet = FlickerFleet(num_machines=2, seed=77, observability=True)
            small_project(fleet).run()
            return export_fleet_chrome_trace(fleet.hubs(), fleet.traces())

        first = one_trace()
        assert first == one_trace()
        doc = json.loads(first)
        # One pid per machine (plus the legacy default track's metadata).
        pids = {e["pid"] for e in doc["traceEvents"]}
        # default, client-00, client-01, server, server-verify
        assert len(pids) == 5

    def test_jitter_changes_timings_but_stays_deterministic(self):
        def one_run(jitter):
            fleet = FlickerFleet(num_machines=2, seed=9, jitter_ms=jitter)
            return small_project(fleet).run().to_dict()

        assert one_run(2.0) == one_run(2.0)
        assert one_run(2.0)["makespan_ms"] != one_run(0.0)["makespan_ms"]


class TestVerifyScheduling:
    """The fix for inline verification stalling dispatch: attestation
    checks run on the fleet's dedicated verification clock, so the
    server dispatches a client's next unit the moment its result
    arrives instead of after the verify completes."""

    @staticmethod
    def one_run(verify_mode, units_per_client=2):
        fleet = FlickerFleet(num_machines=2, seed=2008)
        project = FleetProject(
            fleet, n=15015 * 1_000_003, units_per_client=units_per_client,
            slice_ms=2000.0, range_per_unit=400, verify_mode=verify_mode,
        )
        return fleet, project.run()

    def test_scheduled_is_the_default(self):
        fleet = FlickerFleet(num_machines=1, seed=2008)
        assert small_project(fleet).verify_mode == "scheduled"

    def test_bad_mode_rejected(self):
        fleet = FlickerFleet(num_machines=1, seed=2008)
        with pytest.raises(ValueError):
            FleetProject(fleet, n=15, verify_mode="eager")

    def test_both_modes_accept_every_unit(self):
        for mode in ("scheduled", "inline"):
            _, report = self.one_run(mode)
            assert report.units_accepted == 4
            assert report.units_rejected == 0

    def test_inline_verification_stalls_dispatch(self):
        """The pinned timing difference: with verification inline on the
        dispatch loop, each client's next unit waits behind the verify
        of its previous result (3 RSA public ops), so the inline
        makespan trails the scheduled one by at least one verify."""
        from repro.sim.timing import DEFAULT_PROFILE

        from repro.apps.distributed import VERIFY_PUBLIC_OPS

        _, scheduled = self.one_run("scheduled")
        _, inline = self.one_run("inline")
        verify_ms = DEFAULT_PROFILE.host.rsa1024_public_op_ms * VERIFY_PUBLIC_OPS
        assert inline.makespan_ms >= scheduled.makespan_ms + verify_ms

    def test_scheduled_charges_verify_to_the_verify_clock(self):
        fleet, report = self.one_run("scheduled")
        assert fleet.verify_clock.busy_ms > 0.0
        assert fleet.server_clock.busy_ms == 0.0  # dispatch does no verify work
        # ...but the server's machine report still aggregates both.
        assert fleet.machine_reports()[-1].busy_ms == fleet.verify_clock.busy_ms

    def test_inline_keeps_legacy_accounting(self):
        fleet, _ = self.one_run("inline")
        assert fleet.verify_clock.busy_ms == 0.0
        assert fleet.server_clock.busy_ms > 0.0

    def test_scheduled_mode_deterministic(self):
        a = json.dumps(self.one_run("scheduled")[1].to_dict(), sort_keys=True)
        b = json.dumps(self.one_run("scheduled")[1].to_dict(), sort_keys=True)
        assert a == b


class TestPerMachineFaults:
    def test_fault_addressed_to_one_machine_fires_only_there(self):
        fleet = FlickerFleet(num_machines=2, seed=2008)
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(kind="tpm-transient", op="quote", machine="client-01"),
        ))
        injectors = {
            host.machine_id: FaultInjector(
                plan.for_machine(host.machine_id)
            ).install(host.platform)
            for host in fleet.hosts
        }
        report = small_project(fleet).run()
        # The transient quote fault is retried and absorbed; work completes.
        assert report.units_accepted == 2
        assert [f["kind"] for f in injectors["client-01"].fired] == ["tpm-transient"]
        assert injectors["client-00"].fired == []

    def test_for_machine_keeps_broadcast_specs(self):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(kind="tpm-transient", op="seal"),          # any machine
            FaultSpec(kind="clock-skew", magnitude=150, machine="client-07"),
        ))
        sub = plan.for_machine("client-00")
        assert [s.kind for s in sub.specs] == ["tpm-transient"]
        sub7 = plan.for_machine("client-07")
        assert [s.kind for s in sub7.specs] == ["tpm-transient", "clock-skew"]

    def test_machine_field_round_trips_through_dict(self):
        plan = FaultPlan(seed=5, specs=(
            FaultSpec(kind="pal-exception", machine="client-03"),
        ))
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt == plan
        assert rebuilt.specs[0].machine == "client-03"


class TestLazyMaterialization:
    def test_construction_materializes_nothing(self):
        fleet = FlickerFleet(num_machines=50, seed=2008)
        assert fleet.materialized_count == 0
        assert len(fleet) == 50
        assert len(fleet.hosts) == 50
        assert fleet.materialized_count == 0

    def test_host_lookup_materializes_exactly_one(self):
        fleet = FlickerFleet(num_machines=50, seed=2008)
        host = fleet.host("client-07")
        assert fleet.materialized_count == 1
        # Indexing hands back the same slot — no re-materialization.
        assert host is fleet.hosts[7]
        assert fleet.materialized_count == 1

    def test_unknown_machine_raises_without_materializing(self):
        fleet = FlickerFleet(num_machines=10, seed=2008)
        with pytest.raises(KeyError):
            fleet.host("client-99")
        assert fleet.materialized_count == 0

    def test_negative_index_and_slice_views(self):
        fleet = FlickerFleet(num_machines=10, seed=2008)
        tail = fleet.hosts[-1]
        assert tail.machine_id == "client-09"
        window = fleet.hosts[2:4]
        assert [h.machine_id for h in window] == ["client-02", "client-03"]
        assert fleet.materialized_count == 3

    def test_machine_reports_cover_unmaterialized_rows(self):
        fleet = FlickerFleet(num_machines=5, seed=2008)
        fleet.host("client-02")
        rows = fleet.machine_reports()
        assert [r.machine_id for r in rows] == [
            f"client-{i:02d}" for i in range(5)
        ] + [SERVER_ID]
        for row in rows[:-1]:
            if row.machine_id != "client-02":
                assert row.sessions == 0
                assert row.busy_ms == 0.0
                assert row.net_bytes == 0

    def test_out_of_order_materialization_is_order_independent(self):
        a = FlickerFleet(num_machines=8, seed=77)
        b = FlickerFleet(num_machines=8, seed=77)
        order = [5, 1, 7, 0]
        for i in order:
            a.hosts[i].platform.tqd.aik_certificate  # noqa: B018
        for i in sorted(order):
            b.hosts[i].platform.tqd.aik_certificate  # noqa: B018
        for i in order:
            assert (a.hosts[i].platform.tqd.aik_certificate.aik_public.n
                    == b.hosts[i].platform.tqd.aik_certificate.aik_public.n)

    def test_sparse_project_materializes_only_participants(self):
        fleet = FlickerFleet(num_machines=40, seed=2008)
        project = FleetProject(
            fleet, n=15015 * 1_000_003, units_per_client=1,
            slice_ms=2000.0, range_per_unit=400, clients=3,
        )
        report = project.run()
        assert report.units_accepted == 3
        assert fleet.materialized_count == 3
        assert report.fleet_size == 40
        assert len(report.per_machine) == 40
        active = {m.machine_id for m in report.per_machine if m.sessions > 0}
        assert active == {"client-00", "client-01", "client-02"}


class TestIndexBase:
    def test_ids_and_seeds_shift_by_base(self):
        group = FlickerFleet(num_machines=4, seed=123, index_base=8)
        assert group.machine_id_at(0) == "client-08"
        assert [h.machine_id for h in group.hosts] == [
            "client-08", "client-09", "client-10", "client-11"
        ]

    def test_group_machines_match_whole_fleet_machines(self):
        """Machine index_base+i of a shard group is *the same machine*
        (same derived seed, hence same keys) as machine index_base+i of
        the undivided fleet — the invariant sharded sweeps rely on."""
        whole = FlickerFleet(num_machines=12, seed=123)
        group = FlickerFleet(num_machines=4, seed=123, index_base=8)
        assert (group.hosts[0].platform.tqd.aik_certificate.aik_public.n
                == whole.hosts[8].platform.tqd.aik_certificate.aik_public.n)

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            FlickerFleet(num_machines=2, seed=1, index_base=-1)
