"""PAL-to-PAL sealed storage and replay protection (paper §4.3)."""

import pytest

from repro.core import FlickerPlatform, PAL
from repro.core.sealed_storage import ReplayProtectedStorage, VersionedBlob
from repro.errors import PALRuntimeError, SealedStorageError, TPMPolicyError
from repro.osim.attacker import Attacker
from repro.tpm.structures import SealedBlob

OWNER_AUTH = b"\x0c" * 20


class StoreSecretPAL(PAL):
    """First PAL: seals a secret for ReadSecretPAL."""

    name = "store-secret"
    modules = ("tpm_utils",)

    target_pcr17: bytes = b""

    def run(self, ctx):
        blob = ctx.tpm.seal_to_pal(b"cross-pal-secret", self.target_pcr17)
        ctx.write_output(blob.encode())


class ReadSecretPAL(PAL):
    """Second PAL: unseals whatever blob it is given."""

    name = "read-secret"
    modules = ("tpm_utils",)

    def run(self, ctx):
        blob = SealedBlob.decode(ctx.inputs)
        ctx.write_output(ctx.tpm.unseal(blob))


class SelfSealPAL(PAL):
    """Seals to itself on 'store', unseals on 'load' (same identity)."""

    name = "self-seal"
    modules = ("tpm_utils",)

    def run(self, ctx):
        if ctx.inputs[0] == 0:
            blob = ctx.tpm.seal_to_pal(ctx.inputs[1:], ctx.self_pcr17)
            ctx.write_output(blob.encode())
        else:
            blob = SealedBlob.decode(ctx.inputs[1:])
            ctx.write_output(ctx.tpm.unseal(blob))


class TestCrossPALSealedStorage:
    def test_seal_for_other_pal(self, platform):
        """§4.3.1: P seals data so only P' (under Flicker) can read it."""
        reader = ReadSecretPAL()
        reader_image = platform.build(reader)
        writer = StoreSecretPAL()
        writer.target_pcr17 = reader_image.pcr17_launch_value

        store_session = platform.execute_pal(writer)
        blob_bytes = store_session.outputs

        read_session = platform.execute_pal(reader, inputs=blob_bytes)
        assert read_session.outputs == b"cross-pal-secret"

    def test_wrong_pal_cannot_unseal(self, platform):
        reader = ReadSecretPAL()
        writer = StoreSecretPAL()
        writer.target_pcr17 = platform.build(reader).pcr17_launch_value
        blob_bytes = platform.execute_pal(writer).outputs

        class ImpostorPAL(PAL):
            name = "impostor"
            modules = ("tpm_utils",)

            def run(self, ctx):
                blob = SealedBlob.decode(ctx.inputs)
                ctx.write_output(ctx.tpm.unseal(blob))

        with pytest.raises(PALRuntimeError):
            platform.execute_pal(ImpostorPAL(), inputs=blob_bytes)

    def test_os_cannot_unseal(self, platform):
        reader = ReadSecretPAL()
        writer = StoreSecretPAL()
        writer.target_pcr17 = platform.build(reader).pcr17_launch_value
        blob_bytes = platform.execute_pal(writer).outputs
        with pytest.raises(TPMPolicyError):
            platform.tqd.driver.unseal(SealedBlob.decode(blob_bytes))

    def test_self_reseal_across_sessions(self, platform):
        pal = SelfSealPAL()
        stored = platform.execute_pal(pal, inputs=b"\x00" + b"multi-session-state")
        loaded = platform.execute_pal(pal, inputs=b"\x01" + stored.outputs)
        assert loaded.outputs == b"multi-session-state"

    def test_tampered_blob_contained(self, platform):
        pal = SelfSealPAL()
        stored = platform.execute_pal(pal, inputs=b"\x00" + b"data")
        blob = SealedBlob.decode(stored.outputs)
        tampered = Attacker(platform.kernel).tamper_blob(blob)
        with pytest.raises(PALRuntimeError):
            platform.execute_pal(pal, inputs=b"\x01" + tampered.encode())


class ReplayStoragePAL(PAL):
    """Drives ReplayProtectedStorage across sessions.

    Commands: 0=create counter+seal v1, 1=reseal new data, 2=unseal.
    """

    name = "replay-protected"
    modules = ("tpm_utils",)

    def run(self, ctx):
        command = ctx.inputs[0]
        payload = ctx.inputs[1:]
        if command == 0:
            storage = ReplayProtectedStorage.create(ctx.tpm, OWNER_AUTH)
            versioned = storage.seal(payload, ctx.self_pcr17)
            ctx.write_output(versioned.encode())
        elif command == 1:
            counter_id = int.from_bytes(payload[:4], "big")
            storage = ReplayProtectedStorage(ctx.tpm, counter_id)
            versioned = storage.seal(payload[4:], ctx.self_pcr17)
            ctx.write_output(versioned.encode())
        else:
            versioned = VersionedBlob.decode(payload)
            storage = ReplayProtectedStorage(ctx.tpm, versioned.counter_id)
            ctx.write_output(storage.unseal(versioned))


@pytest.fixture
def owned_platform():
    platform = FlickerPlatform(seed=555)
    platform.machine.tpm.take_ownership(OWNER_AUTH)
    return platform


class TestReplayProtection:
    def test_current_version_unseals(self, owned_platform):
        platform = owned_platform
        pal = ReplayStoragePAL()
        v1 = platform.execute_pal(pal, inputs=b"\x00" + b"password-db-v1")
        out = platform.execute_pal(pal, inputs=b"\x02" + v1.outputs)
        assert out.outputs == b"password-db-v1"

    def test_stale_version_rejected(self, owned_platform):
        """The §4.3.2 password-rollback attack must fail."""
        platform = owned_platform
        pal = ReplayStoragePAL()
        v1 = platform.execute_pal(pal, inputs=b"\x00" + b"password-db-v1")
        counter_id = VersionedBlob.decode(v1.outputs).counter_id

        # Update to v2 (increments the counter).
        platform.execute_pal(
            pal, inputs=b"\x01" + counter_id.to_bytes(4, "big") + b"password-db-v2"
        )
        # The OS replays v1: the PAL must refuse it.
        replayed = Attacker(platform.kernel).replay_blob(VersionedBlob.decode(v1.outputs))
        with pytest.raises(PALRuntimeError, match="replay"):
            platform.execute_pal(pal, inputs=b"\x02" + replayed.encode())

    def test_latest_version_still_works_after_updates(self, owned_platform):
        platform = owned_platform
        pal = ReplayStoragePAL()
        v1 = platform.execute_pal(pal, inputs=b"\x00" + b"v1")
        counter_id = VersionedBlob.decode(v1.outputs).counter_id
        latest = v1.outputs
        for i in range(2, 5):
            latest = platform.execute_pal(
                pal,
                inputs=b"\x01" + counter_id.to_bytes(4, "big") + f"v{i}".encode(),
            ).outputs
        out = platform.execute_pal(pal, inputs=b"\x02" + latest)
        assert out.outputs == b"v4"

    def test_versioned_blob_encoding(self):
        blob = SealedBlob(ciphertext=b"\x01" * 32, mac=b"\x02" * 20, bound_pcrs=(17,))
        versioned = VersionedBlob(blob=blob, counter_id=3)
        assert VersionedBlob.decode(versioned.encode()).counter_id == 3

    def test_versioned_blob_truncated(self):
        with pytest.raises(SealedStorageError):
            VersionedBlob.decode(b"\x00")

    def test_counter_required(self):
        storage = ReplayProtectedStorage(tpm=None, counter_id=None)
        with pytest.raises(SealedStorageError):
            storage.counter_id
