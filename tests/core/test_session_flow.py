"""Flicker session flow: the Figure 2 timeline end to end."""

import pytest

from repro.core import FlickerPlatform, PAL
from repro.core.layout import SLB_REGION_SIZE, SLBLayout
from repro.errors import FlickerError, PALRuntimeError, SysfsError


class EchoPAL(PAL):
    name = "echo"
    modules = ()

    def run(self, ctx):
        ctx.write_output(b"echo:" + ctx.inputs)


class SecretPAL(PAL):
    name = "secret-holder"
    modules = ()

    def run(self, ctx):
        # Park a recognizable secret in the SLB region (stack area).
        ctx.mem.write(ctx.layout.stack_base, b"THE-PAL-SECRET-VALUE")
        ctx.write_output(b"done")


class FaultyPAL(PAL):
    name = "faulty"
    modules = ()

    def run(self, ctx):
        ctx.mem.write(ctx.layout.stack_base, b"FAULTY-PAL-SECRET")
        raise RuntimeError("deliberate PAL crash")


class TestBasicExecution:
    def test_inputs_reach_pal_and_outputs_return(self, platform):
        result = platform.execute_pal(EchoPAL(), inputs=b"payload")
        assert result.outputs == b"echo:payload"

    def test_sysfs_outputs_entry_matches(self, platform):
        platform.execute_pal(EchoPAL(), inputs=b"x")
        assert platform.kernel.sysfs.read("flicker/outputs") == b"echo:x"

    def test_empty_inputs_ok(self, platform):
        assert platform.execute_pal(EchoPAL()).outputs == b"echo:"

    def test_repeated_sessions(self, platform):
        pal = EchoPAL()
        for i in range(3):
            result = platform.execute_pal(pal, inputs=str(i).encode())
            assert result.outputs == b"echo:" + str(i).encode()

    def test_different_pals_alternate(self, platform):
        assert platform.execute_pal(EchoPAL(), inputs=b"a").outputs == b"echo:a"
        assert platform.execute_pal(SecretPAL()).outputs == b"done"
        assert platform.execute_pal(EchoPAL(), inputs=b"b").outputs == b"echo:b"

    def test_bad_nonce_length_rejected(self, platform):
        with pytest.raises(FlickerError):
            platform.flicker.execute(nonce=b"short")

    def test_control_without_slb_rejected(self, platform):
        fresh = FlickerPlatform(seed=99)
        with pytest.raises(FlickerError):
            fresh.kernel.sysfs.write("flicker/control", b"go")

    def test_unknown_control_command_rejected(self, platform):
        platform.execute_pal(EchoPAL())  # installs an SLB
        with pytest.raises(FlickerError):
            platform.kernel.sysfs.write("flicker/control", b"explode")


class TestOSSuspendResume:
    def test_os_state_restored_after_session(self, platform):
        bsp = platform.machine.cpu.bsp
        cr3_before = bsp.cr3
        gdt_before = bsp.gdt
        platform.execute_pal(EchoPAL())
        assert bsp.interrupts_enabled
        assert bsp.paging_enabled
        assert bsp.cr3 == cr3_before
        assert bsp.gdt is gdt_before
        assert bsp.ring == 0

    def test_aps_resumed(self, platform):
        platform.kernel.spawn("bsp-proc")
        ap_proc = platform.kernel.spawn("ap-proc")
        platform.execute_pal(EchoPAL())
        assert not platform.machine.cpu.cores[1].halted
        assert ap_proc.core_id == 1

    def test_dev_cleared_after_session(self, platform):
        platform.execute_pal(EchoPAL())
        assert len(platform.machine.dev) == 0

    def test_suspend_precedes_skinit_in_trace(self, platform):
        platform.execute_pal(EchoPAL())
        assert platform.machine.trace.ordered_before("os-suspended", "skinit")

    def test_slb_core_exit_precedes_resume(self, platform):
        platform.execute_pal(EchoPAL())
        assert platform.machine.trace.ordered_before("slb-core-exit", "os-resumed")


class TestCleanup:
    def test_secrets_erased_from_slb_region(self, platform):
        platform.execute_pal(SecretPAL())
        hits = platform.machine.memory.find_bytes(b"THE-PAL-SECRET-VALUE")
        assert hits == ()

    def test_slb_region_zeroed(self, platform):
        platform.execute_pal(EchoPAL())
        base = platform.flicker.slb_base
        assert platform.machine.memory.is_zero(base, SLB_REGION_SIZE)

    def test_input_page_zeroed(self, platform):
        # SecretPAL ignores its inputs, so nothing may survive anywhere —
        # neither in the input page nor copied into the (public) outputs.
        platform.execute_pal(SecretPAL(), inputs=b"sensitive-input-data")
        layout = SLBLayout(base=platform.flicker.slb_base)
        assert platform.machine.memory.is_zero(layout.input_page, 4096)
        assert platform.machine.memory.find_bytes(b"sensitive-input-data") == ()


class TestFaultContainment:
    def test_faulty_pal_raises_after_restore(self, platform):
        with pytest.raises(PALRuntimeError, match="deliberate PAL crash"):
            platform.execute_pal(FaultyPAL())
        bsp = platform.machine.cpu.bsp
        assert bsp.interrupts_enabled
        assert bsp.paging_enabled

    def test_faulty_pal_secrets_still_erased(self, platform):
        with pytest.raises(PALRuntimeError):
            platform.execute_pal(FaultyPAL())
        assert platform.machine.memory.find_bytes(b"FAULTY-PAL-SECRET") == ()

    def test_faulty_pal_produces_no_outputs(self, platform):
        with pytest.raises(PALRuntimeError):
            platform.execute_pal(FaultyPAL())
        assert platform.kernel.sysfs.read("flicker/outputs") == b""

    def test_platform_usable_after_fault(self, platform):
        with pytest.raises(PALRuntimeError):
            platform.execute_pal(FaultyPAL())
        assert platform.execute_pal(EchoPAL(), inputs=b"recovered").outputs == b"echo:recovered"


class TestTimings:
    def test_phase_breakdown_present(self, platform):
        result = platform.execute_pal(EchoPAL())
        for phase in ("flicker-session", "suspend-os", "skinit", "slb-init",
                      "pal-exec", "cleanup", "extend-pcr", "resume-os", "restore-os"):
            assert phase in result.phase_ms, phase

    def test_total_covers_phases(self, platform):
        result = platform.execute_pal(EchoPAL())
        assert result.total_ms == pytest.approx(result.phase_ms["flicker-session"])

    def test_optimized_skinit_near_14ms(self, platform):
        """§7.2: the optimization brings SKINIT to ≈14 ms."""
        result = platform.execute_pal(EchoPAL())
        assert result.phase_ms["skinit"] == pytest.approx(14.0, abs=1.0)

    def test_unoptimized_skinit_costs_more_for_big_tcb(self, platform):
        class BigTCB(PAL):
            name = "big"
            modules = ("crypto",)

            def run(self, ctx):
                ctx.write_output(b"x")

        optimized = platform.execute_pal(BigTCB(), optimize=True)
        unoptimized = platform.execute_pal(BigTCB(), optimize=False)
        assert unoptimized.phase_ms["skinit"] > 3 * optimized.phase_ms["skinit"]

    def test_format_phases_renders_timeline(self, platform):
        result = platform.execute_pal(EchoPAL())
        text = result.format_phases()
        assert "skinit" in text
        assert "TOTAL" in text
        assert "senter" not in text  # SVM session has no SENTER phase

    def test_virtual_time_monotonic(self, platform):
        t0 = platform.machine.clock.now()
        platform.execute_pal(EchoPAL())
        assert platform.machine.clock.now() > t0
