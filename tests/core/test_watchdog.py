"""SLB Core watchdog tests (paper §5.1.2: limiting PAL execution time)."""

import pytest

from repro.core import PAL
from repro.errors import PALRuntimeError


class BudgetedPAL(PAL):
    """Charges a configurable amount of work under a 100 ms budget."""

    name = "budgeted"
    modules = ()
    max_work_ms = 100.0
    work_ms = 50.0

    def run(self, ctx):
        ctx.charge(type(self).work_ms, "app-work")
        ctx.write_output(b"within-budget")


class RunawayPAL(PAL):
    """An infinite loop, as a buggy or malicious PAL would run."""

    name = "runaway"
    modules = ()
    max_work_ms = 200.0

    def run(self, ctx):
        while True:  # the watchdog is the only way out
            ctx.charge(50.0, "spinning")


class TPMHeavyPAL(PAL):
    """Tiny work budget but lots of TPM time — must NOT be killed.

    §5.1.2's caveat: 'a PAL may need some minimal amount of time to allow
    TPM operations to complete'; TPM latency is exempt from the budget.
    """

    name = "tpm-heavy"
    modules = ("tpm_utils",)
    max_work_ms = 5.0

    def run(self, ctx):
        blob = ctx.tpm.seal_to_pal(b"x" * 20, ctx.self_pcr17)  # ~10 ms TPM
        ctx.tpm.unseal(blob)  # ~898 ms TPM
        ctx.charge(2.0, "small-cpu-work")
        ctx.write_output(b"tpm-done")


class UnboundedPAL(PAL):
    name = "unbounded"
    modules = ()
    # max_work_ms left as None: no watchdog.

    def run(self, ctx):
        ctx.charge(10_000.0, "huge-but-allowed")
        ctx.write_output(b"ok")


class TestWatchdog:
    def test_within_budget_completes(self, platform):
        assert platform.execute_pal(BudgetedPAL()).outputs == b"within-budget"

    def test_over_budget_terminated(self, platform):
        BudgetedPAL.work_ms = 150.0
        try:
            with pytest.raises(PALRuntimeError, match="watchdog"):
                platform.execute_pal(BudgetedPAL(), optimize=False)
        finally:
            BudgetedPAL.work_ms = 50.0

    def test_runaway_pal_cannot_hold_the_machine(self, platform):
        with pytest.raises(PALRuntimeError, match="watchdog"):
            platform.execute_pal(RunawayPAL())
        # The OS is back and functional.
        bsp = platform.machine.cpu.bsp
        assert bsp.interrupts_enabled and bsp.paging_enabled

    def test_runaway_virtual_time_bounded(self, platform):
        before = platform.machine.clock.now()
        with pytest.raises(PALRuntimeError):
            platform.execute_pal(RunawayPAL())
        elapsed = platform.machine.clock.now() - before
        # The loop charged at most budget + one 50 ms quantum + session
        # overhead — not unbounded time.
        assert elapsed < 400.0

    def test_tpm_time_exempt_from_budget(self, platform):
        result = platform.execute_pal(TPMHeavyPAL())
        assert result.outputs == b"tpm-done"
        assert result.tpm_ms["unseal"] > 800.0  # really did the slow op

    def test_no_watchdog_by_default(self, platform):
        result = platform.execute_pal(UnboundedPAL())
        assert result.outputs == b"ok"

    def test_watchdog_kill_still_cleans_up(self, platform):
        class LeakyRunaway(PAL):
            name = "leaky-runaway"
            modules = ()
            max_work_ms = 50.0

            def run(self, ctx):
                ctx.mem.write(ctx.layout.stack_base, b"RUNAWAY-RESIDUE")
                ctx.charge(100.0, "too-much")

        with pytest.raises(PALRuntimeError):
            platform.execute_pal(LeakyRunaway())
        assert platform.machine.memory.find_bytes(b"RUNAWAY-RESIDUE") == ()
