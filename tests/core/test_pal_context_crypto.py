"""PAL programming model: context capabilities and the crypto module."""

import pytest

from repro.core import PAL, build_slb
from repro.core.modules.crypto_mod import PALCrypto
from repro.errors import PALRuntimeError
from repro.sim.timing import HOST_HP_DC5750


class BarePAL(PAL):
    name = "bare"
    modules = ()

    def run(self, ctx):
        ctx.write_output(b"x")


class TestPALIdentity:
    def test_code_bytes_includes_source(self):
        assert b"class BarePAL" in BarePAL().code_bytes()

    def test_code_bytes_includes_module_manifest(self):
        class Linked(PAL):
            name = "linked"
            modules = ("tpm_utils",)

            def run(self, ctx):
                pass

        assert b"tpm_utils" in Linked().code_bytes()

    def test_run_is_abstract(self):
        with pytest.raises(NotImplementedError):
            PAL().run(None)


class TestContextCapabilities:
    def test_unlinked_capabilities_raise(self, platform):
        observed = {}

        class Probe(PAL):
            name = "probe"
            modules = ()

            def run(self, ctx):
                for attr in ("tpm", "crypto", "heap", "secure_channel"):
                    try:
                        getattr(ctx, attr)
                        observed[attr] = "granted"
                    except PALRuntimeError as exc:
                        observed[attr] = str(exc)
                ctx.write_output(b"done")

        platform.execute_pal(Probe())
        assert "tpm_driver" in observed["tpm"]
        assert "crypto" in observed["crypto"]
        assert "memory_mgmt" in observed["heap"]
        assert "secure_channel" in observed["secure_channel"]

    def test_driver_only_tpm_blocks_seal(self, platform):
        class DriverOnly(PAL):
            name = "driver-only"
            modules = ("tpm_driver",)

            def run(self, ctx):
                ctx.tpm.pcr_read()  # allowed
                ctx.tpm.get_random(8)  # allowed
                ctx.tpm.seal_to_pal(b"x", ctx.self_pcr17)  # must raise

        with pytest.raises(PALRuntimeError, match="tpm_utils"):
            platform.execute_pal(DriverOnly())

    def test_sha1_only_crypto_blocks_rsa(self, platform):
        class HashOnly(PAL):
            name = "hash-only"
            modules = ("crypto_sha1",)

            def run(self, ctx):
                ctx.crypto.sha1(b"fine")
                ctx.crypto.rsa_keygen_1024()  # must raise

        with pytest.raises(PALRuntimeError, match="crypto"):
            platform.execute_pal(HashOnly())

    def test_output_size_limit(self, platform):
        class TooChatty(PAL):
            name = "chatty"
            modules = ()

            def run(self, ctx):
                ctx.write_output(b"x" * 5000)

        with pytest.raises(PALRuntimeError, match="output"):
            platform.execute_pal(TooChatty())

    def test_self_pcr17_matches_image(self, platform):
        seen = {}

        class Identity(PAL):
            name = "identity"
            modules = ()

            def run(self, ctx):
                seen["value"] = ctx.self_pcr17
                ctx.write_output(b"x")

        pal = Identity()
        platform.execute_pal(pal)
        assert seen["value"] == platform.build(pal).pcr17_launch_value

    def test_has_module(self, platform):
        seen = {}

        class Modular(PAL):
            name = "modular"
            modules = ("tpm_utils",)

            def run(self, ctx):
                seen["tpm"] = ctx.has_module("tpm_utils")
                seen["crypto"] = ctx.has_module("crypto")
                ctx.write_output(b"x")

        platform.execute_pal(Modular())
        assert seen == {"tpm": True, "crypto": False}


class TestPALCryptoTiming:
    @pytest.fixture
    def crypto(self):
        charges = []
        c = PALCrypto(
            host=HOST_HP_DC5750,
            charge=lambda ms, label: charges.append((label, ms)),
            entropy=b"\x42" * 32,
            functional_rsa_bits=512,
        )
        return c, charges

    def test_keygen_charges_paper_cost(self, crypto):
        c, charges = crypto
        keypair = c.rsa_keygen_1024()
        assert keypair.private.n.bit_length() == 512  # functional size
        assert ("rsa-keygen", pytest.approx(185.7)) in charges

    def test_decrypt_charges_private_op(self, crypto):
        c, charges = crypto
        keypair = c.rsa_keygen_1024()
        ct = c.rsa_encrypt(keypair.public, b"msg")
        assert c.rsa_decrypt(keypair.private, ct) == b"msg"
        assert ("rsa-decrypt", pytest.approx(4.6)) in charges

    def test_sign_verify_roundtrip(self, crypto):
        c, _ = crypto
        keypair = c.rsa_keygen_1024()
        sig = c.rsa_sign(keypair.private, b"doc")
        assert c.rsa_verify(keypair.public, b"doc", sig)
        assert not c.rsa_verify(keypair.public, b"other", sig)

    def test_hash_charge_scales_with_size(self, crypto):
        c, charges = crypto
        c.sha1(b"x" * 1024)
        c.sha1(b"x" * 10240)
        costs = [ms for label, ms in charges if label == "sha1"]
        assert costs[1] == pytest.approx(10 * costs[0])

    def test_md5crypt_charges(self, crypto):
        c, charges = crypto
        out = c.md5crypt(b"pw", b"salt1234")
        assert out.startswith("$1$salt1234$")
        assert ("md5crypt", pytest.approx(HOST_HP_DC5750.md5crypt_ms)) in charges

    def test_aes_roundtrip_with_charges(self, crypto):
        c, charges = crypto
        ct = c.aes_encrypt_cbc(b"k" * 16, b"bulk data" * 100, b"i" * 16)
        assert c.aes_decrypt_cbc(b"k" * 16, ct, b"i" * 16) == b"bulk data" * 100
        assert any(label == "aes-encrypt" for label, _ in charges)

    def test_deterministic_randomness_from_entropy(self):
        def make():
            return PALCrypto(HOST_HP_DC5750, lambda *_: None, b"\x01" * 32)

        assert make().random_bytes(16) == make().random_bytes(16)

    def test_hash_only_rejects_everything_else(self):
        c = PALCrypto(HOST_HP_DC5750, lambda *_: None, b"\x02" * 32, hash_only=True)
        c.sha1(b"ok")
        c.hmac_sha1(b"k", b"m")
        for op in (lambda: c.rsa_keygen_1024(), lambda: c.md5(b"x"),
                   lambda: c.sha512(b"x"), lambda: c.random_bytes(4),
                   lambda: c.md5crypt(b"p", b"s")):
            with pytest.raises(PALRuntimeError):
                op()
