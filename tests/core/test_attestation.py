"""Attestation and verification tests (paper §4.4.1)."""

from dataclasses import replace

import pytest

from repro.core import FlickerPlatform, PAL
from repro.core.attestation import (
    BOTTOM_MEASUREMENT,
    SENTINEL_MEASUREMENT,
    expected_pcr17,
    io_measurement,
)
from repro.crypto.sha1 import sha1
from repro.errors import AttestationError


class AttestedPAL(PAL):
    name = "attested"
    modules = ()

    def run(self, ctx):
        ctx.write_output(b"attested-output")


class ExtendingPAL(PAL):
    name = "extending"
    modules = ("tpm_driver",)

    def run(self, ctx):
        ctx.tpm.pcr_extend(sha1(b"pal-chose-this"))
        ctx.write_output(b"x")


NONCE = bytes(range(20))


@pytest.fixture
def attested(platform):
    pal = AttestedPAL()
    session = platform.execute_pal(pal, inputs=b"in", nonce=NONCE)
    attestation = platform.attest(NONCE, session)
    return platform, session, attestation


class TestIOMeasurement:
    def test_deterministic(self):
        assert io_measurement(b"a", b"b", b"n" * 20) == io_measurement(b"a", b"b", b"n" * 20)

    def test_no_aliasing_across_boundary(self):
        """(in="ab", out="c") must differ from (in="a", out="bc")."""
        assert io_measurement(b"ab", b"c", b"\x00" * 20) != io_measurement(
            b"a", b"bc", b"\x00" * 20
        )

    def test_nonce_included(self):
        assert io_measurement(b"a", b"b", b"\x01" * 20) != io_measurement(
            b"a", b"b", b"\x02" * 20
        )


class TestHappyPath:
    def test_valid_attestation_verifies(self, attested):
        platform, session, attestation = attested
        report = platform.verifier().verify(attestation, session.image, NONCE)
        assert report.ok, report.failures

    def test_quoted_pcr_matches_expected_chain(self, attested):
        platform, session, attestation = attested
        expected = expected_pcr17(session.image, b"in", b"attested-output", NONCE)
        assert attestation.quote.composite.as_dict()[17] == expected

    def test_event_log_reproduces_pcr(self, attested):
        platform, session, attestation = attested
        from repro.tpm.pcr import simulate_extend_chain

        replayed = simulate_extend_chain(
            b"\x00" * 20, [d for _, d in attestation.event_log]
        )
        assert replayed == attestation.quote.composite.as_dict()[17]

    def test_expected_inputs_check(self, attested):
        platform, session, attestation = attested
        good = platform.verifier().verify(
            attestation, session.image, NONCE, expected_inputs=b"in"
        )
        assert good.ok
        bad = platform.verifier().verify(
            attestation, session.image, NONCE, expected_inputs=b"other"
        )
        assert not bad.ok

    def test_pal_extends_participate(self, platform):
        pal = ExtendingPAL()
        session = platform.execute_pal(pal, inputs=b"", nonce=NONCE)
        attestation = platform.attest(NONCE, session)
        report = platform.verifier().verify(
            attestation, session.image, NONCE,
            pal_extends=[sha1(b"pal-chose-this")],
        )
        assert report.ok, report.failures
        # Without declaring the PAL's extend, the chain cannot match.
        report2 = platform.verifier().verify(attestation, session.image, NONCE)
        assert not report2.ok


class TestForgeryRejection:
    def test_wrong_nonce_rejected(self, attested):
        platform, session, attestation = attested
        report = platform.verifier().verify(attestation, session.image, b"\x99" * 20)
        assert not report.ok
        assert any("nonce" in f for f in report.failures)

    def test_replayed_quote_with_patched_nonce_rejected(self, attested):
        """An OS that re-labels an old quote with a fresh nonce fails the
        signature check."""
        platform, session, attestation = attested
        fresh_nonce = b"\x77" * 20
        forged = replace(attestation, nonce=fresh_nonce,
                         quote=replace(attestation.quote, nonce=fresh_nonce))
        report = platform.verifier().verify(forged, session.image, fresh_nonce)
        assert not report.ok

    def test_tampered_outputs_rejected(self, attested):
        platform, session, attestation = attested
        forged = replace(attestation, outputs=b"forged-output")
        report = platform.verifier().verify(forged, session.image, NONCE)
        assert not report.ok
        assert any("PCR 17" in f for f in report.failures)

    def test_tampered_inputs_rejected(self, attested):
        platform, session, attestation = attested
        forged = replace(attestation, inputs=b"forged-input")
        report = platform.verifier().verify(forged, session.image, NONCE)
        assert not report.ok

    def test_wrong_pal_image_rejected(self, attested):
        platform, session, attestation = attested

        class OtherPAL(PAL):
            name = "other"
            modules = ()

            def run(self, ctx):
                ctx.write_output(b"attested-output")

        other_image = platform.build(OtherPAL())
        report = platform.verifier().verify(attestation, other_image, NONCE)
        assert not report.ok

    def test_foreign_privacy_ca_rejected(self, attested):
        from repro.core.attestation import FlickerVerifier
        from repro.sim.rng import DeterministicRNG
        from repro.tpm.privacy_ca import PrivacyCA

        platform, session, attestation = attested
        rogue_ca = PrivacyCA(DeterministicRNG(1000))
        verifier = FlickerVerifier(rogue_ca.public_key)
        report = verifier.verify(attestation, session.image, NONCE)
        assert not report.ok
        assert any("Privacy CA" in f for f in report.failures)

    def test_tampered_event_log_detected(self, attested):
        platform, session, attestation = attested
        forged_log = tuple(list(attestation.event_log[:-1]) + [("sentinel", b"\x00" * 20)])
        forged = replace(attestation, event_log=forged_log)
        report = platform.verifier().verify(forged, session.image, NONCE)
        assert not report.ok
        assert any("event log" in f for f in report.failures)

    def test_require_raises(self, attested):
        platform, session, attestation = attested
        forged = replace(attestation, outputs=b"bad")
        report = platform.verifier().verify(forged, session.image, NONCE)
        with pytest.raises(AttestationError):
            report.require()


class TestSessionRecordClosure:
    def test_post_session_extends_cannot_impersonate_pal(self, attested):
        """§4.4.1: after the sentinel, other software extending PCR 17
        cannot produce a value the verifier would attribute to the PAL."""
        platform, session, attestation = attested
        driver = platform.tqd.driver
        driver.pcr_extend(17, sha1(b"malicious post-session extend"))
        late = platform.attest(NONCE, session)
        report = platform.verifier().verify(late, session.image, NONCE)
        assert not report.ok

    def test_sentinel_differs_from_bottom(self):
        assert SENTINEL_MEASUREMENT != BOTTOM_MEASUREMENT

    def test_sentinel_revokes_sealed_access(self, platform):
        """Data sealed to the PAL's launch value is unsealable during the
        session but not after the sentinel extend."""
        from repro.errors import TPMPolicyError

        class SealingPAL(PAL):
            name = "sealer"
            modules = ("tpm_utils",)

            def run(self, ctx):
                blob = ctx.tpm.seal_to_pal(b"session secret", ctx.self_pcr17)
                ctx.write_output(blob.encode())

        session = platform.execute_pal(SealingPAL())
        from repro.tpm.structures import SealedBlob

        blob = SealedBlob.decode(session.outputs)
        # The OS (post-session, post-sentinel) cannot unseal.
        with pytest.raises(TPMPolicyError):
            platform.tqd.driver.unseal(blob)
