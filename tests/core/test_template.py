"""Template-clone platform construction: a clone must be byte-identical
to a fresh build — sessions, traces, attestations — while amortizing the
expensive construction work (keygen, kernel image, SLB builds)."""

import pytest

from repro.core import PAL, FlickerPlatform, PlatformTemplate


class EchoPAL(PAL):
    name = "echo"
    modules = ()

    def run(self, ctx):
        ctx.write_output(b"echo:" + ctx.inputs)


NONCE = b"\x5a" * 20


def run_workload(platform):
    """One session + attestation; returns everything observable."""
    session = platform.execute_pal(EchoPAL(), inputs=b"payload", nonce=NONCE)
    attestation = platform.attest(NONCE, session)
    report = platform.verifier().verify(attestation, session.image, NONCE)
    return session, attestation, report


def trace_lines(platform):
    return [str(event) for event in platform.machine.trace]


class TestCloneByteIdentity:
    @pytest.fixture(scope="class")
    def pair(self):
        fresh = FlickerPlatform(seed=31337)
        template = FlickerPlatform.template()
        clone = template.clone(seed=31337)
        fresh_out = run_workload(fresh)
        clone_out = run_workload(clone)
        return fresh, clone, fresh_out, clone_out

    def test_sessions_identical(self, pair):
        _, _, (fresh, _, _), (clone, _, _) = pair
        assert clone.outputs == fresh.outputs
        assert clone.event_log == fresh.event_log
        assert clone.phase_ms == fresh.phase_ms
        assert clone.total_ms == fresh.total_ms
        assert clone.tpm_ms == fresh.tpm_ms
        assert (clone.image.skinit_measurement
                == fresh.image.skinit_measurement)

    def test_attestations_identical(self, pair):
        _, _, (_, fresh, _), (_, clone, _) = pair
        assert clone.quote == fresh.quote
        assert (clone.aik_certificate.aik_public.n
                == fresh.aik_certificate.aik_public.n)
        assert clone.event_log == fresh.event_log

    def test_attestations_verify(self, pair):
        _, _, (_, _, fresh), (_, _, clone) = pair
        assert fresh.ok and clone.ok

    def test_traces_identical(self, pair):
        fresh, clone, _, _ = pair
        assert trace_lines(clone) == trace_lines(fresh)

    def test_eager_identity_clone_matches_lazy(self):
        template = FlickerPlatform.template()
        lazy = template.clone(seed=555)
        eager = template.clone(seed=555, eager_identity=True)
        lazy_out = run_workload(lazy)
        eager_out = run_workload(eager)
        assert lazy_out[0].outputs == eager_out[0].outputs
        assert lazy_out[1].quote == eager_out[1].quote
        assert trace_lines(lazy) == trace_lines(eager)


class TestTemplateAmortization:
    def test_clones_share_the_image_cache(self):
        template = FlickerPlatform.template()
        a = template.clone(seed=1000)
        b = template.clone(seed=1001)
        assert a._image_cache is b._image_cache
        pal = EchoPAL()
        a.execute_pal(pal, inputs=b"x")
        # The second machine reuses the SLB image built by the first.
        assert len(b._image_cache) == 1
        b.execute_pal(pal, inputs=b"x")
        assert len(b._image_cache) == 1

    def test_clones_made_counter(self):
        template = PlatformTemplate()
        assert template.clones_made == 0
        template.clone(seed=1)
        template.clone(seed=2)
        assert template.clones_made == 2

    def test_template_classmethod_carries_config(self):
        template = FlickerPlatform.template(functional_rsa_bits=512,
                                            platform_label="test-host")
        assert template.platform_label == "test-host"
        clone = template.clone(seed=7)
        assert clone.tqd.aik_certificate.platform_label == "test-host"

    def test_same_seed_clones_share_key_material_values(self):
        """Key derivation is a pure function of the seed: two clones of
        one seed produce equal keys (via the keygen memo — no second
        prime search), while distinct seeds produce distinct keys."""
        template = FlickerPlatform.template()
        a = template.clone(seed=42)
        b = template.clone(seed=42)
        c = template.clone(seed=43)
        assert (a.tqd.aik_certificate.aik_public.n
                == b.tqd.aik_certificate.aik_public.n)
        assert (a.tqd.aik_certificate.aik_public.n
                != c.tqd.aik_certificate.aik_public.n)


class TestTPMSnapshot:
    """The TPM half of the clone protocol: PCR banks, NV, counters, and
    key state snapshot and restore."""

    def test_round_trip_restores_pcrs_and_counters(self):
        from repro.tpm.nvram import MonotonicCounter

        platform = FlickerPlatform(seed=77)
        tpm = platform.machine.tpm
        platform.execute_pal(EchoPAL(), inputs=b"x")  # extends PCR 17
        tpm._counters[1] = MonotonicCounter(counter_id=1, label=b"snap",
                                            value=1)
        snapshot = tpm.export_state()
        pcr17 = tpm.pcrs.read(17)

        platform.execute_pal(EchoPAL(), inputs=b"y")
        tpm._counters[1].value += 1
        assert tpm._counters[1].value == 2

        tpm.import_state(snapshot)
        assert tpm.pcrs.read(17) == pcr17
        assert tpm._counters[1].value == 1

    def test_snapshot_seeds_many_tpms_independently(self):
        """One snapshot imports into several TPMs without aliasing:
        mutating one restored TPM never leaks into another."""
        from repro.tpm.nvram import MonotonicCounter

        a = FlickerPlatform(seed=88)
        b = FlickerPlatform(seed=89)
        tpm_a, tpm_b = a.machine.tpm, b.machine.tpm
        tpm_a._counters[1] = MonotonicCounter(counter_id=1, label=b"shared",
                                              value=0)
        snapshot = tpm_a.export_state()

        tpm_b.import_state(snapshot)
        tpm_b._counters[1].value += 1
        assert tpm_b._counters[1].value == 1
        assert tpm_a._counters[1].value == 0

    def test_round_trip_with_an_open_oiap_session(self):
        """Snapshots capture persistent state only: restoring behaves
        like a platform reset, so a session open at export time is gone
        after import — and typed auth errors, not stale handles, greet
        anyone who kept it."""
        from repro.errors import TPMAuthError
        from repro.tpm.driver import TPMSessionDriver

        platform = FlickerPlatform(seed=77)
        tpm = platform.machine.tpm
        session = tpm.start_oiap()
        pcr17 = tpm.pcrs.read(17)
        snapshot = tpm.export_state()
        assert "sessions" not in snapshot  # volatile state is not exported

        tpm.import_state(snapshot)
        assert tpm.pcrs.read(17) == pcr17
        with pytest.raises(TPMAuthError, match="no such session"):
            tpm._session(session.session_id)
        # Fresh sessions work immediately: a driver-level seal/unseal
        # round-trip opens new OIAP sessions against the restored TPM.
        driver = TPMSessionDriver(platform.machine.os_tpm_interface())
        blob = driver.seal(b"post-restore", {})
        assert driver.unseal(blob) == b"post-restore"

    def test_pending_counter_increment_rolls_back(self):
        """An increment issued after the snapshot is not in it: restore
        rewinds the counter, and replaying the increment lands on the
        same value — the idempotence the clone protocol relies on."""
        from repro.tpm.driver import TPMSessionDriver

        owner = b"owner-auth-20-bytes!"
        platform = FlickerPlatform(seed=78)
        tpm = platform.machine.tpm
        tpm.take_ownership(owner)
        driver = TPMSessionDriver(platform.machine.os_tpm_interface())
        cid = driver.create_counter(b"pending", owner)
        driver.increment_counter(cid)
        snapshot = tpm.export_state()

        assert driver.increment_counter(cid) == 2  # pending at restore
        tpm.import_state(snapshot)
        assert driver.read_counter(cid) == 1
        assert driver.increment_counter(cid) == 2

    def test_restored_platform_still_attests(self):
        platform = FlickerPlatform(seed=99)
        tpm = platform.machine.tpm
        session = platform.execute_pal(EchoPAL(), inputs=b"z", nonce=NONCE)
        snapshot = tpm.export_state()
        tpm.import_state(snapshot)
        attestation = platform.attest(NONCE, session)
        report = platform.verifier().verify(attestation, session.image, NONCE)
        assert report.ok
