"""Tenant-tagged work distribution: units carry a tenant, clients run
them inside that tenant's vTPM, and the quorum digest is tenant-keyed."""

import pytest

from repro.core.fleet import FlickerFleet
from repro.dist import JobSpec, QuorumPolicy, WorkDistributionService
from repro.dist.records import UnitRecord

pytestmark = pytest.mark.vtpm

N = 15015 * 1_000_003


def run_service(tenants=None, machines=4, units=8, seed=2008):
    fleet = FlickerFleet(num_machines=machines, seed=seed)
    service = WorkDistributionService(
        fleet,
        JobSpec(n=N, total_units=units, batch_size=4, timeout_ms=60_000.0),
        quorum=QuorumPolicy(base_quorum=2),
        tenants=tenants,
    )
    return service, service.run()


class TestTenantedJob:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_service(tenants=("alice", "bob"))

    def test_all_units_validate(self, outcome):
        _, report = outcome
        assert report.units_validated == 8
        assert report.units_abandoned == 0

    def test_units_alternate_between_tenants(self, outcome):
        service, _ = outcome
        records = sorted(service.db.units.values(), key=lambda r: r.index)
        assert [r.tenant for r in records] == ["alice", "bob"] * 4

    def test_quorum_digests_are_tenant_keyed(self, outcome):
        service, _ = outcome
        by_tenant = {}
        for record in service.db.units.values():
            by_tenant.setdefault(record.tenant, set()).add(record.digest)
        # Adjacent units compute different ranges, but beyond that the
        # digest folds in the tenant name, so the two tenants' digest
        # sets never intersect.
        assert not (by_tenant["alice"] & by_tenant["bob"])

    def test_clients_host_both_tenant_vtpms(self, outcome):
        service, _ = outcome
        hosts = service.fleet.hosts
        assert any("alice" in h.platform.vtpm.tenants for h in hosts)
        assert any("bob" in h.platform.vtpm.tenants for h in hosts)


class TestUntenantedCompatibility:
    def test_untenanted_runs_stay_deterministic(self):
        _, a = run_service(tenants=None)
        _, b = run_service(tenants=None)
        assert a.to_dict() == b.to_dict()
        assert a.units_validated == 8

    def test_record_round_trip_defaults_tenant(self):
        record = UnitRecord(unit_id="u", index=0, n=N, start=2, end=3,
                            batch=0)
        data = record.to_dict()
        del data["tenant"]  # a pre-multi-tenancy dump
        assert UnitRecord.from_dict(data).tenant == ""
