"""vTPM migration: a tenant moves between fleet machines mid-run with
its keys, virtual PCRs, counters, and sealed-storage namespace intact."""

import pytest

from repro.core import PAL
from repro.core.fleet import FlickerFleet
from repro.errors import VTPMError
from repro.vtpm import MIGRATION_SCHEMA

pytestmark = pytest.mark.vtpm

NONCE = b"\x5a" * 20


class EchoPAL(PAL):
    name = "echo"
    modules = ()

    def run(self, ctx):
        ctx.write_output(b"echo:" + ctx.inputs)


def run_session(fleet, host, tenant, payload):
    result = host.platform.execute_pal(EchoPAL(), inputs=payload,
                                       nonce=NONCE, tenant=tenant)
    attestation = host.platform.attest(NONCE, result, tenant=tenant)
    report = fleet.verifier_for(host.machine_id).verify(
        attestation, result.image, NONCE)
    return attestation, report


class TestMidRunMigration:
    @pytest.fixture(scope="class")
    def outcome(self):
        fleet = FlickerFleet(num_machines=2, seed=2008)
        source, destination = fleet.hosts
        vt = source.platform.vtpm.create_tenant("alice")
        cid = vt.create_counter(b"sessions")
        vt.increment_counter(cid)
        before_att, before_report = run_session(fleet, source, "alice",
                                                b"pre-migration")
        pcr17 = vt.pcrs.read(17)

        fleet.migrate_tenant(source.machine_id, destination.machine_id,
                             "alice")
        after_att, after_report = run_session(fleet, destination, "alice",
                                              b"post-migration")
        return (fleet, source, destination, cid, pcr17,
                before_att, before_report, after_att, after_report)

    def test_attestations_verify_on_both_sides(self, outcome):
        _, _, _, _, _, _, before_report, _, after_report = outcome
        assert before_report.ok
        assert after_report.ok

    def test_source_no_longer_hosts_the_tenant(self, outcome):
        _, source, _, _, _, _, _, _, _ = outcome
        with pytest.raises(VTPMError, match="no tenant"):
            source.platform.vtpm.tenant("alice")

    def test_aik_identity_survives_migration(self, outcome):
        _, _, _, _, _, before_att, _, after_att, _ = outcome
        assert (before_att.quote.aik_public.n
                == after_att.quote.aik_public.n)

    def test_counters_survive_migration(self, outcome):
        _, _, destination, cid, _, _, _, _, _ = outcome
        vt = destination.platform.vtpm.tenant("alice")
        assert vt.read_counter(cid) == 1
        assert vt.increment_counter(cid) == 2

    def test_virtual_pcr17_tracks_the_destination_session(self, outcome):
        _, _, destination, _, source_pcr17, _, _, after_att, _ = outcome
        vt = destination.platform.vtpm.tenant("alice")
        # The post-migration session re-mirrored PCR 17: replaying its
        # event log reproduces the register, and the value moved on from
        # the source-side chain (the log folds in the new inputs).
        from repro.tpm.pcr import PCRBank

        shadow = PCRBank()
        shadow.dynamic_reset()
        for _label, measurement in after_att.event_log:
            shadow.extend(17, measurement)
        assert vt.pcrs.read(17) == shadow.read(17)
        assert vt.pcrs.read(17) != source_pcr17


class TestSealedStateCrossesMachines:
    def test_blob_sealed_before_migration_unseals_after(self):
        fleet = FlickerFleet(num_machines=2, seed=7)
        source, destination = fleet.hosts
        vt = source.platform.vtpm.create_tenant("alice")
        blob = vt.seal(b"travelling-secret", {})
        fleet.migrate_tenant(source.machine_id, destination.machine_id,
                             "alice")
        moved = destination.platform.vtpm.tenant("alice")
        assert moved.unseal(blob) == b"travelling-secret"

    def test_other_tenants_on_the_destination_still_cannot_unseal(self):
        fleet = FlickerFleet(num_machines=2, seed=8)
        source, destination = fleet.hosts
        vt = source.platform.vtpm.create_tenant("alice")
        destination.platform.vtpm.create_tenant("eve")
        blob = vt.seal(b"secret", {})
        fleet.migrate_tenant(source.machine_id, destination.machine_id,
                             "alice")
        with pytest.raises(VTPMError, match="namespace"):
            destination.platform.vtpm.tenant("eve").unseal(blob)


class TestSnapshotValidation:
    def test_snapshot_schema_is_tagged(self, platform):
        platform.vtpm.create_tenant("alice")
        snapshot = platform.vtpm.export_tenant("alice")
        assert snapshot["schema"] == MIGRATION_SCHEMA
        assert snapshot["tenant"] == "alice"

    def test_wrong_schema_rejected(self, platform):
        platform.vtpm.create_tenant("alice")
        snapshot = platform.vtpm.export_tenant("alice")
        platform.vtpm.remove_tenant("alice")
        snapshot["schema"] = "bogus/9"
        with pytest.raises(VTPMError, match="schema"):
            platform.vtpm.import_tenant(snapshot)

    def test_payloadless_snapshot_rejected(self, platform):
        with pytest.raises(VTPMError, match="no payload"):
            platform.vtpm.import_tenant({"schema": MIGRATION_SCHEMA})

    def test_import_refuses_to_overwrite_a_resident_tenant(self, platform):
        platform.vtpm.create_tenant("alice")
        snapshot = platform.vtpm.export_tenant("alice")
        with pytest.raises(VTPMError, match="already resident"):
            platform.vtpm.import_tenant(snapshot)

    def test_malformed_payload_rejected(self, platform):
        platform.vtpm.create_tenant("alice")
        snapshot = platform.vtpm.export_tenant("alice")
        platform.vtpm.remove_tenant("alice")
        del snapshot["vtpm"]["rng_state"]
        with pytest.raises(VTPMError, match="malformed"):
            platform.vtpm.import_tenant(snapshot)
