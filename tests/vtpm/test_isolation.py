"""Mutual distrust on one machine: two tenants share the hardware TPM
yet neither can read, unseal, increment, or attest the other's state."""

import pytest

from repro.core import PAL, FlickerPlatform
from repro.errors import TPMAuthError, TPMPolicyError, VTPMError
from repro.tpm.driver import TPMSessionDriver

pytestmark = pytest.mark.vtpm

OWNER = b"owner-auth-20-bytes!"
NONCE = b"\x5a" * 20


class EchoPAL(PAL):
    name = "echo"
    modules = ()

    def run(self, ctx):
        ctx.write_output(b"echo:" + ctx.inputs)


def attested_session(platform, tenant, payload):
    """One full tenant session: execute, attest, verify."""
    result = platform.execute_pal(EchoPAL(), inputs=payload, nonce=NONCE,
                                  tenant=tenant)
    attestation = platform.attest(NONCE, result, tenant=tenant)
    report = platform.verifier().verify(attestation, result.image, NONCE)
    return result, attestation, report


class TestTwoTenantsOneMachine:
    """The headline scenario: mutually-distrusting tenants complete
    attested sessions on one shared machine."""

    @pytest.fixture(scope="class")
    def outcome(self):
        platform = FlickerPlatform(seed=2008)
        platform.vtpm.create_tenant("alice", scenario="discrete")
        platform.vtpm.create_tenant("bob", scenario="mobile")
        alice = attested_session(platform, "alice", b"alice-payload")
        bob = attested_session(platform, "bob", b"bob-payload")
        return platform, alice, bob

    def test_both_attestations_verify(self, outcome):
        _, (_, _, alice_report), (_, _, bob_report) = outcome
        assert alice_report.ok
        assert bob_report.ok

    def test_sessions_carry_their_tenant(self, outcome):
        _, (alice_result, _, _), (bob_result, _, _) = outcome
        assert alice_result.tenant == "alice"
        assert bob_result.tenant == "bob"

    def test_attestations_use_distinct_tenant_aiks(self, outcome):
        platform, (_, alice_att, _), (_, bob_att, _) = outcome
        assert (alice_att.aik_certificate.aik_public.n
                != bob_att.aik_certificate.aik_public.n)
        # And neither is the platform's own AIK.
        host_aik = platform.tqd.aik_certificate.aik_public.n
        assert alice_att.aik_certificate.aik_public.n != host_aik

    def test_certificates_name_the_tenant(self, outcome):
        _, (_, alice_att, _), (_, bob_att, _) = outcome
        assert alice_att.aik_certificate.platform_label.endswith(
            "/tenant/alice")
        assert bob_att.aik_certificate.platform_label.endswith("/tenant/bob")

    def test_cross_tenant_attestation_refused(self, outcome):
        platform, (alice_result, _, _), _ = outcome
        with pytest.raises(VTPMError, match="cross-tenant"):
            platform.vtpm.attest("bob", NONCE, alice_result)


class TestSealedStorageNamespaces:
    def test_cross_tenant_unseal_denied(self, platform):
        alice = platform.vtpm.create_tenant("alice")
        bob = platform.vtpm.create_tenant("bob")
        blob = alice.seal(b"alice-secret", {})
        with pytest.raises(VTPMError, match="namespace"):
            bob.unseal(blob)
        assert alice.unseal(blob) == b"alice-secret"

    def test_policy_binds_to_virtual_pcrs(self, platform):
        alice = platform.vtpm.create_tenant("alice")
        alice.pcr_extend(17, b"\x11" * 20)
        blob = alice.seal(b"bound", {17: alice.pcr_read(17)})
        assert alice.unseal(blob) == b"bound"
        alice.pcr_extend(17, b"\x22" * 20)
        with pytest.raises(TPMPolicyError):
            alice.unseal(blob)


class TestCounterPartition:
    def test_virtual_counters_are_per_tenant(self, platform):
        alice = platform.vtpm.create_tenant("alice")
        bob = platform.vtpm.create_tenant("bob")
        cid = alice.create_counter(b"sessions")
        alice.increment_counter(cid)
        with pytest.raises(VTPMError, match="no counter"):
            bob.read_counter(cid)
        assert alice.read_counter(cid) == 1

    def test_hardware_counters_partition_at_the_chip(self, platform):
        platform.machine.tpm.take_ownership(OWNER)
        platform.vtpm.create_tenant("alice")
        platform.vtpm.create_tenant("bob")
        alice_driver = TPMSessionDriver(
            platform.vtpm.hardware_interface("alice"))
        bob_driver = TPMSessionDriver(
            platform.vtpm.hardware_interface("bob"))
        cid = alice_driver.create_counter(b"alice-hw", OWNER)
        assert alice_driver.increment_counter(cid) == 1
        with pytest.raises(TPMAuthError, match="not owned by tenant"):
            bob_driver.increment_counter(cid)
        with pytest.raises(TPMAuthError, match="not owned by tenant"):
            bob_driver.read_counter(cid)
        # The untenanted hardware-owner view still sees everything.
        owner_driver = TPMSessionDriver(
            platform.machine.os_tpm_interface())
        assert owner_driver.read_counter(cid) == 1


class TestVirtualPCRMirroring:
    def test_session_event_log_mirrors_into_virtual_pcr17(self, platform):
        platform.vtpm.create_tenant("alice")
        result = platform.execute_pal(EchoPAL(), inputs=b"x", nonce=NONCE,
                                      tenant="alice")
        vt = platform.vtpm.tenant("alice")
        # Replaying the event log over a fresh dynamic-reset register
        # reproduces the virtual PCR 17 value exactly.
        from repro.tpm.pcr import PCRBank

        shadow = PCRBank()
        shadow.dynamic_reset()
        for _label, measurement in result.event_log:
            shadow.extend(17, measurement)
        assert vt.pcrs.read(17) == shadow.read(17)

    def test_second_tenant_sessions_do_not_disturb_the_first(self, platform):
        platform.vtpm.create_tenant("alice")
        platform.vtpm.create_tenant("bob")
        platform.execute_pal(EchoPAL(), inputs=b"a", nonce=NONCE,
                             tenant="alice")
        pcr17 = platform.vtpm.tenant("alice").pcrs.read(17)
        platform.execute_pal(EchoPAL(), inputs=b"b", nonce=NONCE,
                             tenant="bob")
        assert platform.vtpm.tenant("alice").pcrs.read(17) == pcr17
