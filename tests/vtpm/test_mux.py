"""vTPM multiplexer basics: tenant lifecycle, latency profiles, and
deterministic per-tenant key derivation."""

import pytest

from repro.core import FlickerPlatform
from repro.errors import VTPMError
from repro.sim.timing import BROADCOM_BCM0102, SIMTPM_MOBILE
from repro.vtpm import TENANT_SCENARIOS

pytestmark = pytest.mark.vtpm


class TestTenantLifecycle:
    def test_create_and_lookup(self, platform):
        vt = platform.vtpm.create_tenant("alice")
        assert platform.vtpm.tenant("alice") is vt
        assert platform.vtpm.tenants == ("alice",)

    def test_tenants_sorted(self, platform):
        platform.vtpm.create_tenant("zoe")
        platform.vtpm.create_tenant("alice")
        assert platform.vtpm.tenants == ("alice", "zoe")

    def test_duplicate_tenant_rejected(self, platform):
        platform.vtpm.create_tenant("alice")
        with pytest.raises(VTPMError, match="already exists"):
            platform.vtpm.create_tenant("alice")

    def test_unknown_tenant_rejected(self, platform):
        with pytest.raises(VTPMError, match="no tenant"):
            platform.vtpm.tenant("nobody")

    def test_unknown_scenario_rejected(self, platform):
        with pytest.raises(VTPMError, match="unknown tenant latency scenario"):
            platform.vtpm.create_tenant("alice", scenario="quantum")

    def test_remove_tenant_evicts(self, platform):
        platform.vtpm.create_tenant("alice")
        platform.vtpm.remove_tenant("alice")
        assert platform.vtpm.tenants == ()
        with pytest.raises(VTPMError):
            platform.vtpm.tenant("alice")

    def test_mux_is_lazy_and_cached(self):
        platform = FlickerPlatform(seed=4242)
        assert platform.vtpm is platform.vtpm


class TestLatencyProfiles:
    def test_scenario_catalogue(self):
        assert TENANT_SCENARIOS["discrete"] is BROADCOM_BCM0102
        assert TENANT_SCENARIOS["mobile"] is SIMTPM_MOBILE

    def test_tenant_ops_charge_the_tenant_profile(self, platform):
        clock = platform.machine.clock
        slow = platform.vtpm.create_tenant("slow", scenario="discrete")
        fast = platform.vtpm.create_tenant("fast", scenario="mobile")

        before = clock.now()
        slow.pcr_extend(17, b"\xab" * 20)
        slow_cost = clock.now() - before

        before = clock.now()
        fast.pcr_extend(17, b"\xab" * 20)
        fast_cost = clock.now() - before

        assert slow_cost == pytest.approx(BROADCOM_BCM0102.extend_ms)
        assert fast_cost == pytest.approx(SIMTPM_MOBILE.extend_ms)
        assert fast_cost < slow_cost

    def test_trace_events_are_tenant_tagged(self, platform):
        platform.vtpm.create_tenant("alice").pcr_read(17)
        events = [e for e in platform.machine.trace
                  if e.source == "vtpm"]
        assert events
        assert all(e.detail.get("tenant") == "alice" for e in events)


class TestDeterministicKeys:
    def test_same_seed_same_tenant_same_keys(self):
        a = FlickerPlatform(seed=2008).vtpm.create_tenant("alice")
        b = FlickerPlatform(seed=2008).vtpm.create_tenant("alice")
        assert a.aik_public.n == b.aik_public.n
        assert a.ek_public.n == b.ek_public.n

    def test_distinct_tenants_get_distinct_keys(self, platform):
        alice = platform.vtpm.create_tenant("alice")
        bob = platform.vtpm.create_tenant("bob")
        assert alice.aik_public.n != bob.aik_public.n

    def test_aik_certificate_enrolls_with_platform_ca(self, platform):
        platform.vtpm.create_tenant("alice")
        cert = platform.vtpm.aik_certificate("alice")
        assert cert.platform_label.endswith("/tenant/alice")
        # Enrolment is cached: same certificate object on re-request.
        assert platform.vtpm.aik_certificate("alice") is cert
