"""The multi-tenant sweep CLI: determinism, sharding, and rendering."""

import json

import pytest

from repro.tools.vtpm import (
    main,
    merge_vtpm_reports,
    render,
    run_vtpm_cell,
    run_vtpm_sweep,
)

pytestmark = pytest.mark.vtpm

CONFIG = dict(machines=4, tenants=2, sessions=2, seed=2008, migrate=True)


def canonical(report):
    return json.dumps(report, sort_keys=True, separators=(", ", ": "))


class TestSweep:
    def test_every_session_verifies(self):
        report = run_vtpm_cell(dict(CONFIG))
        assert report["tenants"] == 8
        assert report["sessions"] == 16
        assert report["verified"] == 16
        assert report["migrations"] == 2

    def test_rerun_is_byte_identical(self):
        assert canonical(run_vtpm_cell(dict(CONFIG))) == canonical(
            run_vtpm_cell(dict(CONFIG)))

    def test_no_migrate_flag(self):
        report = run_vtpm_cell({**CONFIG, "migrate": False})
        assert report["migrations"] == 0
        assert report["verified"] == report["sessions"]

    def test_migrated_tenants_are_flagged(self):
        report = run_vtpm_cell(dict(CONFIG))
        migrated = [r for r in report["per_tenant"] if r["migrated"]]
        assert len(migrated) == 2
        for row in migrated:
            assert row["machine"] != row["home"]
            assert row["verified"] == row["sessions"]

    def test_tenant_counters_count_sessions(self):
        report = run_vtpm_cell(dict(CONFIG))
        assert all(r["counter"] == r["sessions"]
                   for r in report["per_tenant"])


class TestSharding:
    def test_sharded_run_matches_flat_run_per_tenant(self):
        flat = run_vtpm_cell(dict(CONFIG))
        sharded = run_vtpm_sweep(dict(CONFIG), shard_size=2)
        assert sharded["shards"] == 2
        assert sharded["per_tenant"] == flat["per_tenant"]
        assert sharded["verified"] == flat["verified"]
        assert sharded["migrations"] == flat["migrations"]

    def test_workers_do_not_change_the_bytes(self):
        serial = run_vtpm_sweep(dict(CONFIG), workers=1, shard_size=2)
        parallel = run_vtpm_sweep(dict(CONFIG), workers=2, shard_size=2)
        assert canonical(serial) == canonical(parallel)

    def test_odd_shard_size_keeps_migration_pairs_together(self):
        # shard_size=1 would split every migration pair; the sweep rounds
        # it up to 2, so all migrations still complete.
        report = run_vtpm_sweep(dict(CONFIG), shard_size=1)
        assert report["shards"] == 2
        assert report["migrations"] == 2
        assert report["verified"] == report["sessions"]

    def test_merge_is_identity_for_one_group(self):
        report = run_vtpm_cell(dict(CONFIG))
        assert merge_vtpm_reports([report]) is report


class TestRendering:
    def test_render_lists_every_tenant(self):
        report = run_vtpm_cell(dict(CONFIG))
        text = render(report)
        assert "# vTPM multi-tenant sweep" in text
        for row in report["per_tenant"]:
            assert row["tenant"] in text

    def test_shard_count_rendered_when_sharded(self):
        report = run_vtpm_sweep(dict(CONFIG), shard_size=2)
        assert "shard groups:       2" in render(report)


class TestCLI:
    def test_main_prints_report_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "vtpm.json"
        main(["--machines", "2", "--tenants", "1", "--sessions", "1",
              "--json", str(out)])
        captured = capsys.readouterr().out
        assert "# vTPM multi-tenant sweep" in captured
        report = json.loads(out.read_text())
        assert report["verified"] == report["sessions"] == 2

    def test_sharded_cli_output_is_stable(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        base = ["--machines", "4", "--shard-size", "2"]
        main(base + ["--workers", "1", "--json", str(a)])
        main(base + ["--workers", "2", "--json", str(b)])
        assert a.read_bytes() == b.read_bytes()
