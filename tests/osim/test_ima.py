"""IMA trusted-boot baseline tests (the §2.1/§8 comparison target)."""

import pytest

from repro.osim.ima import (
    IMA_PCR,
    IMAVerifier,
    IntegrityMeasurementArchitecture,
)


@pytest.fixture
def ima(kernel):
    arch = IntegrityMeasurementArchitecture(kernel)
    arch.measured_boot()
    return arch


@pytest.fixture
def verifier(ima, kernel):
    v = IMAVerifier()
    # The verifier learns the boot chain's known-good values.
    for entry in ima.log:
        v.known_good[entry.name] = entry.measurement
    return v


NONCE = b"\x21" * 20


class TestMeasurement:
    def test_boot_measures_firmware_chain(self, ima):
        names = [e.name for e in ima.log]
        assert "bios" in names and "bootloader" in names and "kernel" in names

    def test_boot_only_once(self, ima):
        with pytest.raises(RuntimeError):
            ima.measured_boot()

    def test_app_launch_extends_pcr10(self, ima, kernel):
        before = kernel.machine.tpm.pcrs.read(IMA_PCR)
        ima.measure_app_launch("httpd", b"httpd-binary-v2.2")
        assert kernel.machine.tpm.pcrs.read(IMA_PCR) != before
        assert ima.log[-1].name == "app:httpd"

    def test_every_event_logged(self, ima):
        start = len(ima.log)
        ima.measure_app_launch("a", b"bin-a")
        ima.measure_config("/etc/a.conf", b"conf")
        ima.measure_module_load("fuse", b"fuse-text")
        assert len(ima.log) == start + 3


class TestVerification:
    def test_clean_platform_verifies(self, ima, verifier, kernel):
        quote, log = ima.attest(NONCE)
        report = verifier.verify(quote, log, NONCE, kernel.machine.tpm.aik_public)
        assert report.ok, report.failures

    def test_unknown_app_breaks_trust(self, ima, verifier, kernel):
        ima.measure_app_launch("mystery", b"unvetted-binary")
        quote, log = ima.attest(NONCE)
        report = verifier.verify(quote, log, NONCE, kernel.machine.tpm.aik_public)
        assert not report.ok
        assert "app:mystery" in report.unknown_entries

    def test_truncated_log_detected(self, ima, verifier, kernel):
        ima.measure_app_launch("hidden", b"malware")
        quote, log = ima.attest(NONCE)
        # The attacker drops the incriminating entry from the untrusted log.
        censored = [e for e in log if e.name != "app:hidden"]
        report = verifier.verify(quote, censored, NONCE, kernel.machine.tpm.aik_public)
        assert not report.ok
        assert any("reproduce PCR" in f for f in report.failures)

    def test_verifier_burden_grows_with_platform(self, ima, verifier, kernel):
        """§2.1: the verifier must assess everything loaded since boot."""
        for i in range(25):
            binary = f"app-binary-{i}".encode()
            verifier.learn(f"app:app{i}", binary)
            ima.measure_app_launch(f"app{i}", binary)
        quote, log = ima.attest(NONCE)
        report = verifier.verify(quote, log, NONCE, kernel.machine.tpm.aik_public)
        assert report.ok
        assert report.entries_evaluated >= 28  # boot chain + 25 apps

    def test_attestation_leaks_software_inventory(self, ima, verifier, kernel):
        """§3.2 'Meaningful Attestation': IMA reveals the whole inventory;
        Flicker's event log names only the PAL session."""
        ima.measure_app_launch("tax-software", b"bin1")
        ima.measure_app_launch("dating-app", b"bin2")
        quote, log = ima.attest(NONCE)
        report = verifier.verify(quote, log, NONCE, kernel.machine.tpm.aik_public)
        assert "app:tax-software" in report.disclosed_inventory
        assert "app:dating-app" in report.disclosed_inventory

    def test_nonce_replay_rejected(self, ima, verifier, kernel):
        quote, log = ima.attest(NONCE)
        report = verifier.verify(quote, log, b"\x99" * 20, kernel.machine.tpm.aik_public)
        assert not report.ok
