"""Adversary-toolkit tests: each attack must actually change state (so
defence tests elsewhere are meaningful)."""

import pytest

from repro.core import PAL
from repro.crypto.sha1 import sha1
from repro.osim.attacker import Attacker
from repro.osim.kernel import KERNEL_TEXT_BASE, SYSCALL_TABLE_BASE


@pytest.fixture
def attacker(kernel):
    return Attacker(kernel)


def measured_hash(kernel):
    """Hash the kernel's measured regions as the detector would."""
    parts = []
    for _, addr, length in kernel.measured_regions():
        parts.append(kernel.machine.memory.read(addr, length))
    return sha1(b"".join(parts))


class TestRootkits:
    def test_text_patch_changes_measurement(self, kernel, attacker):
        before = measured_hash(kernel)
        addr = attacker.patch_kernel_text()
        assert measured_hash(kernel) != before
        assert kernel.machine.memory.read(addr, 4) == b"\xcc" * 4

    def test_text_patch_bounds_checked(self, attacker):
        with pytest.raises(ValueError):
            attacker.patch_kernel_text(offset=1 << 20)

    def test_syscall_hook_changes_measurement(self, kernel, attacker):
        before = measured_hash(kernel)
        hook = attacker.hook_syscall(59)
        assert measured_hash(kernel) != before
        entry = kernel.machine.memory.read(SYSCALL_TABLE_BASE + 4 * 59, 4)
        assert int.from_bytes(entry, "little") == hook

    def test_malicious_module_changes_measurement(self, kernel, attacker):
        before = measured_hash(kernel)
        attacker.install_malicious_module()
        assert measured_hash(kernel) != before
        assert any(m.name == "evil-lkm" for m in kernel.loaded_modules())

    def test_pristine_hash_unaffected_by_attack(self, kernel, attacker):
        """The known-good value is computed from vendor data, so an attack
        must NOT change it — only the live measurement."""
        known_good = sha1(kernel.pristine_measurement_input())
        attacker.patch_kernel_text()
        assert sha1(kernel.pristine_measurement_input()) == known_good
        assert measured_hash(kernel) != known_good


class TestHardwareProbes:
    def test_dma_probe_reads_unprotected_memory(self, kernel, attacker):
        kernel.machine.memory.write(0x700000, b"kernel data")
        assert attacker.dma_probe(0x700000, 11) == b"kernel data"

    def test_dma_probe_blocked_by_dev(self, kernel, attacker):
        from repro.errors import DMAProtectionError

        kernel.machine.dev.protect_range(0x700000, 4096)
        with pytest.raises(DMAProtectionError):
            attacker.dma_probe(0x700000, 4)

    def test_debugger_probe_follows_debug_flag(self, kernel, attacker):
        from repro.errors import DebugAccessError

        kernel.machine.memory.write(0x710000, b"dbg")
        assert attacker.debugger_probe(0x710000, 3) == b"dbg"
        kernel.machine.cpu.bsp.debug_access_enabled = False
        with pytest.raises(DebugAccessError):
            attacker.debugger_probe(0x710000, 3)

    def test_memory_scan_finds_unerased_secret(self, kernel, attacker):
        kernel.machine.memory.write(0x720000, b"super-secret-key-material")
        hits = attacker.scan_memory_for(b"super-secret-key-material")
        assert 0x720000 in hits

    def test_memory_scan_clean_after_zeroize(self, kernel, attacker):
        kernel.machine.memory.write(0x730000, b"ephemeral-secret")
        kernel.machine.memory.zeroize(0x730000, 16)
        assert attacker.scan_memory_for(b"ephemeral-secret") == []


class TestBlobAttacks:
    def test_tamper_blob_flips_one_bit(self, kernel, attacker):
        from repro.tpm.structures import SealedBlob

        blob = SealedBlob(ciphertext=b"\x00" * 32, mac=b"\x01" * 20, bound_pcrs=(17,))
        tampered = attacker.tamper_blob(blob)
        assert tampered.ciphertext != blob.ciphertext
        diff = [i for i, (a, b) in enumerate(zip(blob.ciphertext, tampered.ciphertext)) if a != b]
        assert len(diff) == 1

    def test_replay_returns_blob_unchanged(self, attacker):
        from repro.tpm.structures import SealedBlob

        blob = SealedBlob(ciphertext=b"\x05" * 32, mac=b"\x06" * 20, bound_pcrs=())
        assert attacker.replay_blob(blob) is blob


class TestBlobAttacksAgainstRealTPM:
    """The storage attacks exercised against genuinely sealed data."""

    @pytest.fixture
    def driver(self, machine):
        from repro.osim.tpm_driver import OSTPMDriver

        return OSTPMDriver(machine.os_tpm_interface())

    def test_tampered_real_blob_is_rejected_by_unseal(self, driver, attacker):
        from repro.errors import TPMError

        blob = driver.seal(b"actual secret", {})
        assert driver.unseal(blob) == b"actual secret"  # sanity
        with pytest.raises(TPMError):
            driver.unseal(attacker.tamper_blob(blob))

    def test_replayed_real_blob_still_unseals(self, driver, attacker):
        """TPM-level replay *succeeds* — that is the §4.3.2 attack surface
        the NV-counter protocol exists to close."""
        old = driver.seal(b"state v1", {})
        driver.seal(b"state v2", {})  # the OS withholds the newer blob
        assert driver.unseal(attacker.replay_blob(old)) == b"state v1"


class MidSessionProbePAL(PAL):
    name = "mid-session-probe"
    modules = ()
    #: Set by the test: a zero-argument callable run inside the session.
    probe = None

    def run(self, ctx):
        type(self).probe()
        ctx.write_output(b"done")


class TestProbesDuringSKINITSession:
    """Regression: both hardware probe vectors must raise (and their
    ``*_checked`` variants must report blocked) while a session is live."""

    @pytest.fixture(autouse=True)
    def reset_probe(self):
        yield
        MidSessionProbePAL.probe = None

    def test_dma_probe_raises_mid_session(self, platform):
        from repro.errors import DMAProtectionError

        attacker = Attacker(platform.kernel)
        observed = {}

        def attack():
            base = platform.flicker.slb_base
            with pytest.raises(DMAProtectionError):
                attacker.dma_probe(base, 64)
            observed["checked"] = attacker.dma_probe_checked(base, 64)

        MidSessionProbePAL.probe = staticmethod(attack)
        platform.execute_pal(MidSessionProbePAL())
        result = observed["checked"]
        assert result.blocked and result.data == b""
        assert "DMAProtectionError" in result.error
        assert platform.machine.dev.blocked_attempts

    def test_debugger_probe_raises_mid_session(self, platform):
        from repro.errors import DebugAccessError

        attacker = Attacker(platform.kernel)
        observed = {}

        def attack():
            base = platform.flicker.slb_base
            with pytest.raises(DebugAccessError):
                attacker.debugger_probe(base, 64)
            observed["checked"] = attacker.debugger_probe_checked(base, 64)

        MidSessionProbePAL.probe = staticmethod(attack)
        platform.execute_pal(MidSessionProbePAL())
        result = observed["checked"]
        assert result.blocked and "DebugAccessError" in result.error

    def test_probes_permitted_again_after_session(self, platform):
        attacker = Attacker(platform.kernel)
        MidSessionProbePAL.probe = staticmethod(lambda: None)
        platform.execute_pal(MidSessionProbePAL())
        platform.machine.memory.write(0x740000, b"post-session")
        assert attacker.dma_probe(0x740000, 12) == b"post-session"
        checked = attacker.debugger_probe_checked(0x740000, 12)
        assert not checked.blocked and checked.data == b"post-session"
