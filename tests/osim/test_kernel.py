"""Untrusted-kernel tests: measured state, scheduler, hotplug, allocator."""

import pytest

from repro.errors import KernelPanic, MemoryFault, ModuleLoadError
from repro.hw.machine import Machine
from repro.hw.memory import PAGE_SIZE
from repro.osim.kernel import (
    KERNEL_TEXT_BASE,
    KERNEL_TEXT_BYTES,
    SYSCALL_TABLE_BASE,
    UntrustedKernel,
)
from repro.osim.modules import KernelModule


class _TestModule(KernelModule):
    name = "test-lkm"
    text = b"\xaa\xbb" * 128

    def __init__(self):
        super().__init__()
        self.load_count = 0
        self.unload_count = 0

    def on_load(self, kernel):
        self.load_count += 1

    def on_unload(self):
        self.unload_count += 1


class TestMeasuredState:
    def test_kernel_text_laid_out_in_memory(self, kernel):
        text = kernel.machine.memory.read(KERNEL_TEXT_BASE, KERNEL_TEXT_BYTES)
        assert text == kernel._pristine_text

    def test_syscall_table_entries_point_into_text(self, kernel):
        table = kernel.machine.memory.read(SYSCALL_TABLE_BASE, kernel.syscall_table_bytes)
        for i in range(0, len(table), 4):
            handler = int.from_bytes(table[i : i + 4], "little")
            assert KERNEL_TEXT_BASE <= handler < KERNEL_TEXT_BASE + KERNEL_TEXT_BYTES

    def test_measured_regions_cover_text_and_table(self, kernel):
        names = [name for name, _, _ in kernel.measured_regions()]
        assert "kernel-text" in names
        assert "syscall-table" in names

    def test_loading_module_extends_measured_regions(self, kernel):
        module = _TestModule()
        kernel.load_module(module)
        names = [name for name, _, _ in kernel.measured_regions()]
        assert "module:test-lkm" in names
        # And the module's text is actually in memory at the claimed spot.
        _, addr, length = [r for r in kernel.measured_regions() if r[0] == "module:test-lkm"][0]
        assert kernel.machine.memory.read(addr, length) == module.text

    def test_pristine_measurement_includes_modules(self, kernel):
        before = kernel.pristine_measurement_input()
        kernel.load_module(_TestModule())
        after = kernel.pristine_measurement_input()
        assert before != after
        assert after.endswith(_TestModule.text)

    def test_kernel_text_is_deterministic_per_seed(self):
        k1 = UntrustedKernel(Machine(seed=7))
        k2 = UntrustedKernel(Machine(seed=7))
        assert k1._pristine_text == k2._pristine_text
        k3 = UntrustedKernel(Machine(seed=8))
        assert k1._pristine_text != k3._pristine_text


class TestModules:
    def test_load_unload_lifecycle(self, kernel):
        module = _TestModule()
        kernel.load_module(module)
        assert module.load_count == 1
        assert module in kernel.loaded_modules()
        kernel.unload_module(module)
        assert module.unload_count == 1
        assert module not in kernel.loaded_modules()

    def test_double_load_rejected(self, kernel):
        module = _TestModule()
        kernel.load_module(module)
        with pytest.raises(ModuleLoadError):
            kernel.load_module(module)

    def test_unload_unloaded_rejected(self, kernel):
        with pytest.raises(ModuleLoadError):
            kernel.unload_module(_TestModule())

    def test_module_without_text_rejected(self, kernel):
        class Empty(KernelModule):
            name = "empty"
            text = b""

        with pytest.raises(ModuleLoadError):
            kernel.load_module(Empty())


class TestAllocator:
    def test_kalloc_page_aligned(self, kernel):
        addr = kernel.kalloc(100)
        assert addr % PAGE_SIZE == 0

    def test_kalloc_alignment_override(self, kernel):
        addr = kernel.kalloc(100, align=64 * 1024)
        assert addr % (64 * 1024) == 0

    def test_kalloc_distinct_regions(self, kernel):
        a = kernel.kalloc(PAGE_SIZE)
        b = kernel.kalloc(PAGE_SIZE)
        assert abs(a - b) >= PAGE_SIZE

    def test_kalloc_rejects_nonpositive(self, kernel):
        with pytest.raises(MemoryFault):
            kernel.kalloc(0)

    def test_kalloc_exhaustion_panics(self, kernel):
        with pytest.raises(KernelPanic):
            for _ in range(100):
                kernel.kalloc(8 * 1024 * 1024)


class TestScheduler:
    def test_spawn_places_on_cores(self, kernel):
        p1 = kernel.spawn("init")
        p2 = kernel.spawn("sshd")
        assert {p1.core_id, p2.core_id} == {0, 1}

    def test_excess_processes_queue(self, kernel):
        for i in range(2):
            kernel.spawn(f"p{i}")
        p3 = kernel.spawn("waiter")
        assert p3.core_id is None

    def test_exit_promotes_queued_process(self, kernel):
        p1 = kernel.spawn("a")
        kernel.spawn("b")
        p3 = kernel.spawn("queued")
        kernel.exit_process(p1.pid)
        assert p3.core_id == p1.core_id

    def test_exit_unknown_pid_panics(self, kernel):
        with pytest.raises(KernelPanic):
            kernel.exit_process(999)

    def test_deschedule_aps_halts_and_queues(self, kernel):
        kernel.spawn("on-bsp")
        ap_proc = kernel.spawn("on-ap")
        assert ap_proc.core_id == 1
        kernel.deschedule_aps()
        assert kernel.machine.cpu.cores[1].halted
        assert ap_proc.core_id is None

    def test_resume_aps_restores(self, kernel):
        kernel.spawn("on-bsp")
        ap_proc = kernel.spawn("on-ap")
        kernel.deschedule_aps()
        kernel.machine.apic.broadcast_init_ipi()
        kernel.resume_aps()
        ap_core = kernel.machine.cpu.cores[1]
        assert not ap_core.halted
        assert not ap_core.received_init_ipi
        assert ap_proc.core_id == 1

    def test_hotplug_enables_skinit_handshake(self, kernel):
        kernel.spawn("busy-ap-process")
        machine = kernel.machine
        assert not machine.cpu.all_aps_quiesced()
        kernel.deschedule_aps()
        machine.apic.broadcast_init_ipi()
        assert machine.cpu.all_aps_quiesced()
