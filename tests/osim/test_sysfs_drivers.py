"""sysfs, OS TPM driver / tqd, network, and storage tests."""

import pytest

from repro.crypto.md5 import md5
from repro.errors import OSError_, SysfsError
from repro.hw.machine import Machine
from repro.osim.kernel import UntrustedKernel
from repro.osim.network import NetworkLink
from repro.osim.storage import BlockDevice, FileStore
from repro.osim.sysfs import Sysfs, SysfsEntry
from repro.osim.tpm_driver import OSTPMDriver, TPMQuoteDaemon
from repro.sim.rng import DeterministicRNG
from repro.tpm.privacy_ca import PrivacyCA


class TestSysfs:
    def test_register_read_write(self):
        fs = Sysfs()
        store = {}
        fs.register("mod/data", SysfsEntry(
            "data",
            read_handler=lambda: store.get("v", b""),
            write_handler=lambda data: store.__setitem__("v", data),
        ))
        fs.write("mod/data", b"value")
        assert fs.read("mod/data") == b"value"

    def test_missing_entry(self):
        fs = Sysfs()
        with pytest.raises(SysfsError):
            fs.read("nope")
        with pytest.raises(SysfsError):
            fs.write("nope", b"")

    def test_write_only_and_read_only(self):
        fs = Sysfs()
        fs.register("w", SysfsEntry("w", write_handler=lambda d: None))
        fs.register("r", SysfsEntry("r", read_handler=lambda: b"x"))
        with pytest.raises(SysfsError):
            fs.read("w")
        with pytest.raises(SysfsError):
            fs.write("r", b"")

    def test_duplicate_registration_rejected(self):
        fs = Sysfs()
        fs.register("a", SysfsEntry("a", read_handler=lambda: b""))
        with pytest.raises(SysfsError):
            fs.register("a", SysfsEntry("a", read_handler=lambda: b""))

    def test_unregister(self):
        fs = Sysfs()
        fs.register("a", SysfsEntry("a", read_handler=lambda: b""))
        fs.unregister("a")
        assert not fs.exists("a")
        with pytest.raises(SysfsError):
            fs.unregister("a")


class TestTQD:
    def test_attest_produces_verifiable_quote(self, kernel):
        ca = PrivacyCA(kernel.machine.rng)
        tqd = TPMQuoteDaemon(kernel, ca)
        nonce = b"\x09" * 20
        quote, cert = tqd.attest(nonce, [17])
        assert cert.verify(ca.public_key)
        assert quote.verify(cert.aik_public)
        assert quote.nonce == nonce

    def test_quote_reflects_pcr_changes(self, kernel):
        ca = PrivacyCA(kernel.machine.rng)
        tqd = TPMQuoteDaemon(kernel, ca)
        q1, _ = tqd.attest(b"\x01" * 20, [17])
        tqd.driver.pcr_extend(17, b"\x44" * 20)
        q2, _ = tqd.attest(b"\x01" * 20, [17])
        assert q1.composite.as_dict()[17] != q2.composite.as_dict()[17]


class TestNetwork:
    def test_send_charges_latency(self):
        machine = Machine(seed=1)
        link = NetworkLink(machine.clock, machine.trace, one_way_ms=4.725)
        before = machine.clock.now()
        link.send("a", "b", b"payload")
        assert machine.clock.now() - before == pytest.approx(4.725)

    def test_round_trip_charges_both_ways(self):
        machine = Machine(seed=2)
        link = NetworkLink(machine.clock, machine.trace, one_way_ms=5.0)
        before = machine.clock.now()
        response = link.round_trip("client", "server", b"ping", lambda req: req + b"-pong")
        assert response == b"ping-pong"
        assert machine.clock.now() - before == pytest.approx(10.0)

    def test_messages_enables_eavesdropping_tests(self):
        machine = Machine(seed=3)
        link = NetworkLink(machine.clock, machine.trace, one_way_ms=1.0)
        link.send("a", "b", b"observable")
        assert link.messages() == [("a", "b", b"observable")]

    def test_message_log_is_bounded(self):
        machine = Machine(seed=5)
        link = NetworkLink(machine.clock, machine.trace, one_way_ms=0.1, max_log=4)
        for i in range(10):
            link.send("a", "b", bytes([i]))
        assert link.messages() == [("a", "b", bytes([i])) for i in range(6, 10)]
        assert link.messages_dropped == 6
        assert link.messages_carried == 10


class TestStorage:
    @pytest.fixture
    def setup(self):
        machine = Machine(seed=4)
        kernel = UntrustedKernel(machine)
        src = BlockDevice(machine, "cdrom", bandwidth_mb_s=10)
        dst = BlockDevice(machine, "usb", bandwidth_mb_s=5)
        store = FileStore(machine)
        return machine, kernel, src, dst, store

    def test_copy_preserves_integrity(self, setup):
        machine, kernel, src, dst, store = setup
        content = DeterministicRNG(5).bytes(700 * 1024)
        src.store_file("big.avi", content)
        store.copy(kernel, src, "big.avi", dst, "copy.avi")
        assert dst.read_file("copy.avi") == content
        assert dst.md5sum("copy.avi") == md5(content)

    def test_copy_charges_bandwidth_time(self, setup):
        machine, kernel, src, dst, store = setup
        src.store_file("f", b"\x00" * (1024 * 1024))
        before = machine.clock.now()
        store.copy(kernel, src, "f", dst, "f2")
        elapsed = machine.clock.now() - before
        # 1 MB at 10 MB/s plus 1 MB at 5 MB/s = 100 + 200 ms.
        assert elapsed == pytest.approx(300.0, rel=0.05)

    def test_short_suspensions_cause_no_errors(self, setup):
        """§7.5: 8.3 s sessions do not produce I/O errors."""
        machine, kernel, src, dst, store = setup
        src.store_file("f", b"\x01" * (512 * 1024))
        store.copy(kernel, src, "f", dst, "f2",
                   suspension_cb=lambda copied: 8300.0)
        assert src.io_errors == [] and dst.io_errors == []
        assert dst.read_file("f2") == b"\x01" * (512 * 1024)

    def test_timeout_long_suspensions_recorded(self, setup):
        machine, kernel, src, dst, store = setup
        src.store_file("f", b"\x02" * (256 * 1024))
        store.copy(kernel, src, "f", dst, "f2",
                   suspension_cb=lambda copied: 45_000.0)  # > 30 s timeout
        assert src.io_errors and dst.io_errors

    def test_missing_file(self, setup):
        _, kernel, src, dst, store = setup
        with pytest.raises(OSError_):
            store.copy(kernel, src, "ghost", dst, "out")

    def test_dma_transfers_go_through_dev(self, setup):
        """A copy stalls with a DMA fault if its buffer page is protected."""
        from repro.errors import DMAProtectionError

        machine, kernel, src, dst, store = setup
        src.store_file("f", b"\x03" * 1024)
        buffer_addr = store._kernel_buffer(kernel)
        machine.dev.protect_range(buffer_addr, 4096)
        with pytest.raises(DMAProtectionError):
            store.copy(kernel, src, "f", dst, "f2")
