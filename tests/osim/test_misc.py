"""Coverage for the smaller osim surfaces: page tables, devices, hosts."""

import pytest

from repro.hw.machine import Machine
from repro.hw.memory import PAGE_SIZE
from repro.osim.kernel import PageTables, Process
from repro.osim.network import RemoteHost
from repro.osim.storage import BlockDevice


class TestPageTables:
    def test_map_unity_covers_range(self):
        tables = PageTables(root=0x400000)
        tables.map_unity(0x10000, 3 * PAGE_SIZE)
        for page in (0x10000 // PAGE_SIZE, 0x10000 // PAGE_SIZE + 2):
            assert tables.mapping[page] == page

    def test_map_unity_partial_page_rounds_up(self):
        tables = PageTables(root=0x400000)
        tables.map_unity(PAGE_SIZE - 1, 2)  # straddles a boundary
        assert 0 in tables.mapping and 1 in tables.mapping

    def test_kernel_installs_cr3_on_all_cores(self, kernel):
        for core in kernel.machine.cpu.cores:
            assert core.cr3 == kernel.page_tables.root


class TestProcess:
    def test_defaults(self):
        process = Process(pid=7, name="sshd")
        assert process.core_id is None


class TestBlockDevice:
    def test_transfer_time_scales_with_bandwidth(self):
        machine = Machine(seed=9)
        fast = BlockDevice(machine, "ssd", bandwidth_mb_s=100)
        slow = BlockDevice(machine, "usb1", bandwidth_mb_s=10)
        nbytes = 10 * 1024 * 1024
        assert slow.transfer_ms(nbytes) == pytest.approx(10 * fast.transfer_ms(nbytes))

    def test_md5sum_matches_content(self):
        from repro.crypto.md5 import md5

        machine = Machine(seed=10)
        device = BlockDevice(machine, "disk")
        device.store_file("f", b"content-bytes")
        assert device.md5sum("f") == md5(b"content-bytes")

    def test_has_file(self):
        machine = Machine(seed=11)
        device = BlockDevice(machine, "disk")
        assert not device.has_file("nope")
        device.store_file("yes", b"1")
        assert device.has_file("yes")


class TestRemoteHost:
    def test_named_endpoint(self):
        assert RemoteHost(name="admin-workstation").name == "admin-workstation"


class TestMachineDMATrace:
    def test_dma_reads_and_writes_traced(self):
        machine = Machine(seed=12)
        nic = machine.attach_dma_device("nic0")
        nic.dma_write(0x9000, b"frame")
        nic.dma_read(0x9000, 5)
        writes = machine.trace.events(kind="dma_write")
        reads = machine.trace.events(kind="dma_read")
        assert writes and writes[0].detail["device"] == "nic0"
        assert reads and reads[0].detail["length"] == 5
