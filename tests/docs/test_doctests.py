"""The documentation is executable.

Every ``>>>`` example in ``docs/*.md`` and in the ``repro.obs`` /
``repro.sim.trace`` docstrings runs here, so the docs cannot drift from
the code.  Equivalent to::

    pytest --doctest-glob='*.md' docs/
    pytest --doctest-modules src/repro/obs src/repro/sim/trace.py
"""

import doctest
import pathlib

import pytest

import repro.obs.export
import repro.obs.metrics
import repro.obs.spans
import repro.sim.trace

pytestmark = pytest.mark.obs

DOCS_DIR = pathlib.Path(__file__).resolve().parents[2] / "docs"

OPTIONFLAGS = doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS

DOCTESTED_MODULES = [
    repro.obs.metrics,
    repro.obs.spans,
    repro.obs.export,
    repro.sim.trace,
]

DOC_PAGES = sorted(DOCS_DIR.glob("*.md"))


def test_docs_directory_found():
    assert DOC_PAGES, f"no markdown pages under {DOCS_DIR}"


@pytest.mark.parametrize(
    "module", DOCTESTED_MODULES, ids=lambda m: m.__name__)
def test_module_docstrings_execute(module):
    results = doctest.testmod(module, optionflags=OPTIONFLAGS, verbose=False)
    assert results.attempted > 0, (
        f"{module.__name__} has no doctests; its docstring examples "
        f"were removed or never written")
    assert results.failed == 0


@pytest.mark.parametrize("page", DOC_PAGES, ids=lambda p: p.name)
def test_markdown_examples_execute(page):
    results = doctest.testfile(
        str(page), module_relative=False, optionflags=OPTIONFLAGS,
        verbose=False)
    assert results.failed == 0


def test_architecture_and_observability_have_examples():
    """The two pages this suite was built for must stay executable —
    an edit that deletes their examples should fail loudly, not skip."""
    for name in ("ARCHITECTURE.md", "OBSERVABILITY.md"):
        results = doctest.testfile(
            str(DOCS_DIR / name), module_relative=False,
            optionflags=OPTIONFLAGS, verbose=False)
        assert results.attempted > 0, f"{name} lost its doctests"
