"""The documentation is executable.

Every ``>>>`` example in ``docs/*.md`` and in the ``repro.obs`` /
``repro.sim.trace`` / ``repro.sim.sched`` docstrings runs here, so the
docs cannot drift from the code.  Equivalent to::

    pytest --doctest-glob='*.md' docs/
    pytest --doctest-modules src/repro/obs src/repro/sim/trace.py \
        src/repro/sim/sched/

The demo scripts under ``examples/`` registered in ``EXECUTED_EXAMPLES``
run end-to-end as well (they assert their own claims inline).
"""

import doctest
import pathlib
import runpy

import pytest

import repro.obs.export
import repro.obs.metrics
import repro.obs.spans
import repro.sim.sched.clock
import repro.sim.sched.events
import repro.sim.sched.process
import repro.sim.trace

pytestmark = pytest.mark.obs

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"

OPTIONFLAGS = doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS

DOCTESTED_MODULES = [
    repro.obs.metrics,
    repro.obs.spans,
    repro.obs.export,
    repro.sim.trace,
    repro.sim.sched.events,
    repro.sim.sched.clock,
    repro.sim.sched.process,
]

#: Examples cheap enough to execute on every test run.
EXECUTED_EXAMPLES = ["fleet_distributed.py"]

DOC_PAGES = sorted(DOCS_DIR.glob("*.md"))


def test_docs_directory_found():
    assert DOC_PAGES, f"no markdown pages under {DOCS_DIR}"


@pytest.mark.parametrize(
    "module", DOCTESTED_MODULES, ids=lambda m: m.__name__)
def test_module_docstrings_execute(module):
    results = doctest.testmod(module, optionflags=OPTIONFLAGS, verbose=False)
    assert results.attempted > 0, (
        f"{module.__name__} has no doctests; its docstring examples "
        f"were removed or never written")
    assert results.failed == 0


@pytest.mark.parametrize("page", DOC_PAGES, ids=lambda p: p.name)
def test_markdown_examples_execute(page):
    results = doctest.testfile(
        str(page), module_relative=False, optionflags=OPTIONFLAGS,
        verbose=False)
    assert results.failed == 0


@pytest.mark.parametrize("script", EXECUTED_EXAMPLES)
def test_examples_execute(script, capsys):
    """Registered demo scripts run to completion (their inline asserts
    are the claims the script text makes to the reader)."""
    runpy.run_path(str(REPO_ROOT / "examples" / script), run_name="__main__")
    assert capsys.readouterr().out  # the demo actually narrated something


def test_architecture_and_observability_have_examples():
    """The pages this suite was built for must stay executable —
    an edit that deletes their examples should fail loudly, not skip."""
    for name in ("ARCHITECTURE.md", "OBSERVABILITY.md", "BENCHMARKS.md",
                 "DISTRIBUTED.md"):
        results = doctest.testfile(
            str(DOCS_DIR / name), module_relative=False,
            optionflags=OPTIONFLAGS, verbose=False)
        assert results.attempted > 0, f"{name} lost its doctests"
