"""The legacy-compatibility property: a one-machine fleet run on the
event scheduler reproduces the legacy serial simulation **bit-for-bit**.

This is the invariant that lets the discrete-event core replace the
virtual-time core without re-calibrating anything: ``ScheduledClock``
never changes how time is *charged* (it subclasses ``VirtualClock``
without overriding ``advance``), only how machines *interleave* — and
with one machine there is nothing to interleave with.

The PAL suite spans the Figure 6 module inventory, so the equality
covers every SLB size (and hence every SKINIT timing) the paper tables
exercise.
"""

from hypothesis import given, settings, strategies as st

from repro.core import FlickerPlatform, PAL
from repro.core.fleet import FlickerFleet


class CoreOnlyPAL(PAL):
    name = "sched-prop-core"
    modules = ()

    def run(self, ctx):
        ctx.write_output(ctx.inputs[::-1])


class OSProtectionPAL(CoreOnlyPAL):
    name = "sched-prop-osp"
    modules = ("os_protection",)


class TPMDriverPAL(CoreOnlyPAL):
    name = "sched-prop-tpmdrv"
    modules = ("tpm_driver",)


class TPMUtilsPAL(CoreOnlyPAL):
    name = "sched-prop-tpmutils"
    modules = ("tpm_utils",)


class CryptoPAL(CoreOnlyPAL):
    name = "sched-prop-crypto"
    modules = ("crypto",)


class MemoryMgmtPAL(CoreOnlyPAL):
    name = "sched-prop-mem"
    modules = ("memory_mgmt",)


class SecureChannelPAL(CoreOnlyPAL):
    name = "sched-prop-chan"
    modules = ("secure_channel",)


class CombinedPAL(CoreOnlyPAL):
    """A multi-module link set that still fits the 60-KB SLB code area
    (crypto and secure_channel — which transitively pulls crypto —
    would overflow it; both have their own single-module PALs above)."""

    name = "sched-prop-combined"
    modules = ("os_protection", "tpm_driver", "tpm_utils", "memory_mgmt")


#: One PAL per Figure 6 module, plus the empty and full link sets.
MODULE_SUITE = (
    CoreOnlyPAL(), OSProtectionPAL(), TPMDriverPAL(), TPMUtilsPAL(),
    CryptoPAL(), MemoryMgmtPAL(), SecureChannelPAL(), CombinedPAL(),
)


def legacy_sessions(seed, pal, payloads):
    """The pre-fleet serial simulation: one platform, direct calls."""
    platform = FlickerPlatform(seed=seed)
    return [platform.execute_pal(pal, inputs=p) for p in payloads]


def fleet_sessions(seed, pal, payloads):
    """The same workload as a process on a one-machine fleet."""
    fleet = FlickerFleet(num_machines=1, machine_seeds=[seed])
    host = fleet.hosts[0]
    results = []

    def proc():
        for payload in payloads:
            yield 0  # a scheduling point between sessions, as real
            #          fleet workloads have
            results.append(host.platform.execute_pal(pal, inputs=payload))

    fleet.spawn(host, proc())
    fleet.run()
    return results


def assert_bit_identical(legacy, scheduled):
    assert len(legacy) == len(scheduled)
    for a, b in zip(legacy, scheduled):
        assert a.phase_ms == b.phase_ms          # exact float equality
        assert a.total_ms == b.total_ms
        assert a.tpm_ms == b.tpm_ms
        assert a.outputs == b.outputs
        assert a.event_log == b.event_log


class TestOneMachineFleetEqualsLegacy:
    def test_figure6_module_suite_bit_identical(self):
        """Every Figure 6 link set, fixed seed: the full sweep."""
        for pal in MODULE_SUITE:
            payloads = [b"alpha", b"beta"]
            assert_bit_identical(
                legacy_sessions(2008, pal, payloads),
                fleet_sessions(2008, pal, payloads),
            )

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        payloads=st.lists(st.binary(min_size=1, max_size=64),
                          min_size=1, max_size=3),
        pal_index=st.integers(min_value=0, max_value=len(MODULE_SUITE) - 1),
    )
    def test_any_seed_any_inputs_bit_identical(self, seed, payloads, pal_index):
        pal = MODULE_SUITE[pal_index]
        assert_bit_identical(
            legacy_sessions(seed, pal, payloads),
            fleet_sessions(seed, pal, payloads),
        )
