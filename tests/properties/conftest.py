"""Hypothesis profile for the property suite.

Pure-Python crypto makes each example relatively expensive; a moderate
example count keeps the suite minutes-fast while still exploring the input
space well beyond hand-written cases.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
