"""Property test: the TPM idempotent-read cache is coherent under any
interleaving of software reads, software extends, and *direct hardware*
PCR-bank writes.

The hardware path (SKINIT/TXT measuring into PCR 17, see
:func:`repro.hw.skinit.skinit`) bypasses the TPM command layer entirely,
so cache invalidation cannot hang off command dispatch — it hangs off the
:class:`~repro.tpm.pcr.PCRBank` ``generation`` counter, which every
mutating bank operation bumps.  This test pins that contract from PR 4:
whatever interleaving hypothesis generates, a software ``pcr_read`` must
always agree with a pure-Python shadow of the extend chain.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRNG
from repro.sim.timing import BROADCOM_BCM0102
from repro.sim.trace import EventTrace
from repro.tpm.pcr import extend_value
from repro.tpm.tpm import TPM

pytestmark = pytest.mark.fuzz

_PCRS = (4, 17, 18)

_step = st.one_of(
    st.tuples(st.just("read"), st.sampled_from(_PCRS)),
    st.tuples(st.just("extend_sw"), st.sampled_from(_PCRS)),
    st.tuples(st.just("extend_hw"), st.sampled_from(_PCRS)),
)


def _fresh_tpm() -> TPM:
    return TPM(VirtualClock(), EventTrace(), DeterministicRNG(42),
               BROADCOM_BCM0102, key_bits=512)


@given(steps=st.lists(_step, max_size=24))
@settings(max_examples=25, deadline=None)
def test_reads_always_coherent_under_interleaving(steps):
    tpm = _fresh_tpm()
    iface = tpm.interface(0)
    shadow = {index: iface.pcr_read(index) for index in _PCRS}
    for i, (kind, index) in enumerate(steps):
        measurement = bytes([i % 256]) * 20
        if kind == "read":
            assert iface.pcr_read(index) == shadow[index]
        elif kind == "extend_sw":
            iface.pcr_extend(index, measurement)
            shadow[index] = extend_value(shadow[index], measurement)
        else:  # extend_hw: the SKINIT path, bypassing the command layer
            tpm.pcrs.extend(index, measurement)
            shadow[index] = extend_value(shadow[index], measurement)
        # The cache may serve any number of hits, but never a stale value.
        assert iface.pcr_read(index) == shadow[index]


@given(index=st.sampled_from(_PCRS),
       hardware_writes=st.integers(min_value=1, max_value=8))
@settings(max_examples=25, deadline=None)
def test_generation_counts_every_hardware_write(index, hardware_writes):
    tpm = _fresh_tpm()
    before = tpm.pcrs.generation
    for i in range(hardware_writes):
        tpm.pcrs.extend(index, bytes([i]) * 20)
    assert tpm.pcrs.generation == before + hardware_writes


@given(steps=st.lists(_step, min_size=1, max_size=16))
@settings(max_examples=15, deadline=None)
def test_cache_still_earns_hits_between_writes(steps):
    """Coherence must not be bought by disabling the cache outright."""
    tpm = _fresh_tpm()
    iface = tpm.interface(0)
    for kind, index in steps:
        if kind == "read":
            iface.pcr_read(index)
            iface.pcr_read(index)
        elif kind == "extend_sw":
            iface.pcr_extend(index, b"\x01" * 20)
        else:
            tpm.pcrs.extend(index, b"\x02" * 20)
    iface.pcr_read(17)
    iface.pcr_read(17)
    assert tpm.read_cache_info()["hits"] >= 1
