"""Property-based tests at the session level: arbitrary inputs flow
through Flicker sessions with the core invariants intact."""

from hypothesis import given, settings, strategies as st

from repro.core import FlickerPlatform, PAL
from repro.core.attestation import expected_pcr17
from repro.core.layout import MAX_PARAM_BYTES
from repro.tpm.structures import SealedBlob

# One long-lived platform: hypothesis drives many sessions through it,
# which doubles as a stress test of repeated suspend/resume cycles.
PLATFORM = FlickerPlatform(seed=31415)


class PropertyEchoPAL(PAL):
    name = "property-echo"
    modules = ()

    def run(self, ctx):
        ctx.write_output(ctx.inputs[::-1])


class PropertySealPAL(PAL):
    name = "property-seal"
    modules = ("tpm_utils",)

    def run(self, ctx):
        if ctx.inputs[0] == 0:
            blob = ctx.tpm.seal_to_pal(ctx.inputs[1:], ctx.self_pcr17)
            ctx.write_output(blob.encode())
        else:
            ctx.write_output(ctx.tpm.unseal(SealedBlob.decode(ctx.inputs[1:])))


ECHO = PropertyEchoPAL()
SEALER = PropertySealPAL()


class TestSessionProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.binary(max_size=MAX_PARAM_BYTES))
    def test_inputs_roundtrip_exactly(self, payload):
        result = PLATFORM.execute_pal(ECHO, inputs=payload)
        assert result.outputs == payload[::-1]

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=256), st.binary(min_size=20, max_size=20))
    def test_attestation_verifies_for_any_io(self, payload, nonce):
        session = PLATFORM.execute_pal(ECHO, inputs=payload, nonce=nonce)
        attestation = PLATFORM.attest(nonce, session)
        report = PLATFORM.verifier().verify(attestation, session.image, nonce)
        assert report.ok, report.failures

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=256), st.binary(min_size=1, max_size=64))
    def test_forged_outputs_always_rejected(self, payload, forgery):
        from dataclasses import replace

        nonce = b"\x55" * 20
        session = PLATFORM.execute_pal(ECHO, inputs=payload, nonce=nonce)
        if forgery == session.outputs:
            return
        forged = replace(PLATFORM.attest(nonce, session), outputs=forgery)
        assert not PLATFORM.verifier().verify(forged, session.image, nonce).ok

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=1, max_size=512))
    def test_seal_unseal_roundtrip_across_sessions(self, secret):
        stored = PLATFORM.execute_pal(SEALER, inputs=b"\x00" + secret)
        loaded = PLATFORM.execute_pal(SEALER, inputs=b"\x01" + stored.outputs)
        assert loaded.outputs == secret

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=8, max_size=128))
    def test_no_session_residue(self, secret):
        """Whatever goes in, nothing recognizable remains in memory after
        the session (inputs are erased; outputs here are the reversed
        bytes, excluded from the scan)."""
        class_marker = b"\xa5PALSECRET" + secret
        PLATFORM.execute_pal(ECHO, inputs=class_marker)
        hits = PLATFORM.machine.memory.find_bytes(class_marker)
        # The only legitimate copy would be in the output page — but the
        # echo reverses, so the exact marker must be gone entirely.
        assert hits == ()

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_expected_pcr17_injective_in_io(self, in1, in2):
        nonce = b"\x66" * 20
        image = PLATFORM.build(ECHO)
        if in1 == in2:
            return
        assert expected_pcr17(image, in1, b"out", nonce) != expected_pcr17(
            image, in2, b"out", nonce
        )
