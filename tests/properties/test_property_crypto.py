"""Property-based tests for the crypto substrate."""

import hashlib

from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES128
from repro.crypto.hmac import constant_time_equal, hmac_sha1
from repro.crypto.md5 import md5
from repro.crypto.md5crypt import md5crypt, md5crypt_verify
from repro.crypto.mpi import gcd, mod_inverse, mod_pow
from repro.crypto.pkcs1 import pkcs1_decrypt, pkcs1_encrypt, pkcs1_sign_sha1, pkcs1_verify_sha1
from repro.crypto.rc4 import RC4
from repro.crypto.rsa import generate_rsa_keypair
from repro.crypto.sha1 import SHA1, sha1
from repro.crypto.sha512 import sha512
from repro.sim.rng import DeterministicRNG

# One module-scoped keypair: hypothesis drives many examples through it.
KEYPAIR = generate_rsa_keypair(512, DeterministicRNG(404))


class TestHashProperties:
    @given(st.binary(max_size=2048))
    def test_sha1_oracle(self, data):
        assert sha1(data) == hashlib.sha1(data).digest()

    @given(st.binary(max_size=2048))
    def test_sha512_oracle(self, data):
        assert sha512(data) == hashlib.sha512(data).digest()

    @given(st.binary(max_size=2048))
    def test_md5_oracle(self, data):
        assert md5(data) == hashlib.md5(data).digest()

    @given(st.binary(max_size=1024), st.integers(min_value=1, max_value=64))
    def test_sha1_chunking_invariance(self, data, chunk):
        h = SHA1()
        for i in range(0, len(data), chunk):
            h.update(data[i : i + chunk])
        assert h.digest() == sha1(data)

    @given(st.binary(min_size=0, max_size=128), st.binary(min_size=0, max_size=512))
    def test_hmac_oracle(self, key, message):
        import hmac as std_hmac

        assert hmac_sha1(key, message) == std_hmac.new(key, message, hashlib.sha1).digest()


class TestCipherProperties:
    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    def test_aes_block_roundtrip(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(
        st.binary(min_size=16, max_size=16),
        st.binary(max_size=512),
        st.binary(min_size=16, max_size=16),
    )
    def test_aes_cbc_roundtrip(self, key, plaintext, iv):
        cipher = AES128(key)
        assert cipher.decrypt_cbc(cipher.encrypt_cbc(plaintext, iv), iv) == plaintext

    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=512))
    def test_rc4_symmetry(self, key, data):
        assert RC4(key).process(RC4(key).process(data)) == data

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=1, max_size=256))
    def test_aes_ciphertext_differs_from_plaintext(self, key, plaintext):
        ct = AES128(key).encrypt_cbc(plaintext, b"\x00" * 16)
        assert ct != plaintext
        assert len(ct) % 16 == 0
        assert len(ct) >= len(plaintext)


class TestNumberTheoryProperties:
    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=1, max_value=10**9))
    def test_mod_pow_oracle(self, base, exp, mod):
        assert mod_pow(base, exp, mod) == pow(base, exp, mod)

    @given(st.integers(min_value=1, max_value=10**9), st.integers(min_value=1, max_value=10**9))
    def test_gcd_divides_both(self, a, b):
        g = gcd(a, b)
        assert a % g == 0 and b % g == 0

    @given(st.integers(min_value=2, max_value=10**6))
    def test_mod_inverse_property(self, m):
        # Pick an a coprime to m.
        a = 1
        for candidate in range(2, 200):
            if gcd(candidate, m) == 1:
                a = candidate
                break
        if a == 1:
            return
        assert (a * mod_inverse(a, m)) % m == 1


class TestPKCS1Properties:
    @settings(deadline=None, max_examples=25)
    @given(st.binary(max_size=53), st.integers(min_value=0, max_value=2**32))
    def test_encrypt_decrypt_roundtrip(self, message, seed):
        rng = DeterministicRNG(seed)
        ct = pkcs1_encrypt(KEYPAIR.public, message, rng)
        assert pkcs1_decrypt(KEYPAIR.private, ct) == message

    @settings(deadline=None, max_examples=25)
    @given(st.binary(max_size=256))
    def test_sign_verify_roundtrip(self, message):
        sig = pkcs1_sign_sha1(KEYPAIR.private, message)
        assert pkcs1_verify_sha1(KEYPAIR.public, message, sig)

    @settings(deadline=None, max_examples=25)
    @given(st.binary(min_size=1, max_size=256), st.binary(min_size=1, max_size=256))
    def test_signature_does_not_transfer(self, m1, m2):
        if m1 == m2:
            return
        sig = pkcs1_sign_sha1(KEYPAIR.private, m1)
        assert not pkcs1_verify_sha1(KEYPAIR.public, m2, sig)


SALT_ALPHABET = "./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"


class TestMD5CryptProperties:
    @settings(deadline=None, max_examples=30)
    @given(
        st.binary(min_size=0, max_size=32),
        st.text(alphabet=SALT_ALPHABET, min_size=1, max_size=8),
    )
    def test_verify_accepts_own_output(self, password, salt):
        crypt_string = md5crypt(password, salt.encode("ascii"))
        assert md5crypt_verify(password, crypt_string)

    @settings(deadline=None, max_examples=30)
    @given(st.binary(min_size=1, max_size=16), st.binary(min_size=1, max_size=16))
    def test_different_passwords_different_hashes(self, p1, p2):
        if p1 == p2:
            return
        assert md5crypt(p1, b"fixedsal") != md5crypt(p2, b"fixedsal")


class TestConstantTimeEqual:
    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_matches_builtin_equality(self, a, b):
        assert constant_time_equal(a, b) == (a == b)
