"""Property tests for the fault-injection subsystem.

The two paper-level invariants:

1. **No fault plan ever leaks a secret.**  Whatever combination of SLB
   bit-flips, TPM faults, probes, and skew a seed generates, the outcome
   class is never ``secret-leaked`` — faults cost availability or get
   detected, they never breach isolation.
2. **Unseal never succeeds after an SLB bit-flip.**  A single flipped bit
   anywhere in the measured SLB changes PCR 17, so the TPM refuses to
   release PAL-sealed data for the tampered code.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PAL, FlickerPlatform
from repro.errors import PALRuntimeError
from repro.faults import FaultInjector, FaultPlan, FaultSpec, run_scenario
from repro.tpm.structures import SealedBlob

# Multi-seed adversarial campaigns: skipped by the default CI job
# (-m "not slow"), run in full by the nightly workflow.
pytestmark = [pytest.mark.faults, pytest.mark.slow]


class SealPAL(PAL):
    name = "prop-seal"
    modules = ("tpm_driver", "tpm_utils")

    def run(self, ctx):
        if not ctx.inputs:
            blob = ctx.tpm.seal_to_pal(b"property-secret", ctx.self_pcr17)
            ctx.write_output(blob.encode())
        else:
            ctx.write_output(ctx.tpm.unseal(SealedBlob.decode(ctx.inputs)))


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=15)
def test_no_fault_plan_ever_leaks_a_secret(seed):
    # rootkit is the cheapest full attest-and-verify scenario; every fault
    # kind the plan generator emits can strike it.
    record = run_scenario("rootkit", FaultPlan.generate(seed))
    assert record["outcome"] != "secret-leaked"
    assert record["leaks"] == []


@given(magnitude=st.integers(min_value=0, max_value=2**20))
@settings(max_examples=15)
def test_unseal_never_succeeds_after_slb_bit_flip(magnitude):
    platform = FlickerPlatform(seed=1234)
    blob = platform.execute_pal(SealPAL()).outputs
    plan = FaultPlan(
        seed=0,
        specs=(FaultSpec(kind="slb-bit-flip", session=0,
                         magnitude=magnitude),),
    )
    FaultInjector(plan).install(platform)
    with pytest.raises(PALRuntimeError):
        platform.execute_pal(SealPAL(), inputs=blob)


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10)
def test_scenario_records_are_reproducible(seed):
    plan = FaultPlan.generate(seed)
    assert run_scenario("rootkit", plan) == run_scenario("rootkit", plan)
