"""Property test: a single-byte tamper *anywhere* in a sealed blob —
header, ciphertext, or MAC — always fails unseal with a typed error, and
the error text never leaks plaintext or replay-counter values.

This pins the fuzzer-found MAC gap (tests/fuzz/corpus/seal-header-tamper
.json): before the fix the MAC covered only the ciphertext, so header
bytes could be rewritten undetected.  The MAC now covers the full framing
(:meth:`repro.tpm.structures.SealedBlob.authenticated_bytes`), making
every byte of the encoding tamper-evident.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TPMError
from repro.hw.machine import Machine
from repro.tpm.driver import TPMSessionDriver
from repro.tpm.structures import SealedBlob

pytestmark = pytest.mark.fuzz

SECRET = b"property-tamper-secret"


@pytest.fixture(scope="module")
def sealed():
    """One sealed blob per module: tampering never mutates TPM state."""
    machine = Machine(seed=99)
    driver = TPMSessionDriver(machine.os_tpm_interface())
    blob = driver.seal(SECRET, {17: driver.pcr_read(17)})
    return driver, blob.encode()


@given(offset=st.integers(min_value=0, max_value=10 ** 6),
       mask=st.integers(min_value=1, max_value=255))
@settings(max_examples=60, deadline=None)
def test_any_single_byte_tamper_fails_typed(sealed, offset, mask):
    driver, encoding = sealed
    tampered = bytearray(encoding)
    tampered[offset % len(tampered)] ^= mask
    with pytest.raises(TPMError) as excinfo:
        blob = SealedBlob.decode(bytes(tampered))
        data = driver.unseal(blob)
        raise AssertionError(
            f"tampered blob unsealed to {len(data)} bytes"  # pragma: no cover
        )
    message = str(excinfo.value)
    assert SECRET.decode("ascii") not in message
    assert SECRET.hex() not in message


@given(offset=st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=30, deadline=None)
def test_tamper_region_does_not_matter(sealed, offset):
    """Header bytes (PCR selection, lengths) are as protected as the
    ciphertext and the MAC itself."""
    driver, encoding = sealed
    for region_offset in (
        offset % 6,                        # header: count + pcr index + ct_len
        6 + offset % (len(encoding) - 26),  # ciphertext body
        len(encoding) - 1 - offset % 20,    # MAC tail
    ):
        tampered = bytearray(encoding)
        tampered[region_offset] ^= 0x01
        with pytest.raises(TPMError):
            driver.unseal(SealedBlob.decode(bytes(tampered)))


def test_untampered_blob_still_unseals(sealed):
    driver, encoding = sealed
    assert driver.unseal(SealedBlob.decode(encoding)) == SECRET
