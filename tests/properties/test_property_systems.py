"""Property-based tests for core system invariants: memory, heap, PCRs,
DEV, and the SLB measurement chain."""

from hypothesis import assume, given, settings, strategies as st

from repro.core.modules.memory_mgmt import PALHeap
from repro.crypto.sha1 import sha1
from repro.hw.dev import DeviceExclusionVector
from repro.hw.memory import PAGE_SIZE, PhysicalMemory
from repro.tpm.pcr import PCRBank, simulate_extend_chain

MEM_SIZE = 1 << 20


class TestMemoryProperties:
    @given(
        st.integers(min_value=0, max_value=MEM_SIZE - 4096),
        st.binary(min_size=1, max_size=4096),
    )
    def test_write_read_roundtrip(self, addr, data):
        assume(addr + len(data) <= MEM_SIZE)
        mem = PhysicalMemory(MEM_SIZE)
        mem.write(addr, data)
        assert mem.read(addr, len(data)) == data

    @given(
        st.integers(min_value=0, max_value=MEM_SIZE - 8192),
        st.binary(min_size=1, max_size=4096),
    )
    def test_zeroize_erases_exactly_the_range(self, addr, data):
        mem = PhysicalMemory(MEM_SIZE)
        mem.write(addr, data)
        mem.write(addr + len(data), b"\xee")  # sentinel just past the range
        mem.zeroize(addr, len(data))
        assert mem.is_zero(addr, len(data))
        assert mem.read(addr + len(data), 1) == b"\xee"

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=MEM_SIZE - 64),
        st.binary(min_size=1, max_size=64),
    ), max_size=8))
    def test_non_overlapping_writes_independent(self, writes):
        mem = PhysicalMemory(MEM_SIZE)
        placed = []
        for addr, data in writes:
            if any(addr < a + len(d) and a < addr + len(data) for a, d in placed):
                continue
            mem.write(addr, data)
            placed.append((addr, data))
        for addr, data in placed:
            assert mem.read(addr, len(data)) == data


class TestDEVProperties:
    @given(
        st.integers(min_value=0, max_value=MEM_SIZE - 1),
        st.integers(min_value=1, max_value=128 * 1024),
        st.integers(min_value=0, max_value=MEM_SIZE - 1),
    )
    def test_protection_is_page_complete(self, start, length, probe):
        dev = DeviceExclusionVector()
        dev.protect_range(start, length)
        probe_page = probe // PAGE_SIZE
        protected_pages = set(PhysicalMemory.page_range(start, length))
        from repro.errors import DMAProtectionError

        try:
            dev.check_dma(probe, 1, "probe")
            blocked = False
        except DMAProtectionError:
            blocked = True
        assert blocked == (probe_page in protected_pages)

    @given(st.integers(min_value=0, max_value=MEM_SIZE - 1),
           st.integers(min_value=1, max_value=64 * 1024))
    def test_unprotect_inverts_protect(self, start, length):
        dev = DeviceExclusionVector()
        dev.protect_range(start, length)
        dev.unprotect_range(start, length)
        assert len(dev) == 0


class TestPCRProperties:
    @given(st.lists(st.binary(min_size=20, max_size=20), min_size=1, max_size=10))
    def test_extend_chain_equals_fold(self, measurements):
        bank = PCRBank()
        bank.dynamic_reset()
        for m in measurements:
            bank.extend(17, m)
        assert bank.read(17) == simulate_extend_chain(b"\x00" * 20, measurements)

    @given(st.lists(st.binary(min_size=20, max_size=20), min_size=2, max_size=6))
    def test_prefix_chains_differ(self, measurements):
        """Any strict prefix of an extend chain yields a different value —
        PCRs commit to the *whole* history."""
        full = simulate_extend_chain(b"\x00" * 20, measurements)
        for cut in range(len(measurements)):
            prefix = simulate_extend_chain(b"\x00" * 20, measurements[:cut])
            assert prefix != full

    @given(st.binary(min_size=20, max_size=20), st.binary(min_size=20, max_size=20))
    def test_extend_never_returns_to_reset_value(self, m1, m2):
        bank = PCRBank()
        bank.dynamic_reset()
        bank.extend(17, m1)
        assert bank.read(17) != b"\x00" * 20
        bank.extend(17, m2)
        assert bank.read(17) != b"\x00" * 20


class TestHeapProperties:
    @settings(deadline=None, max_examples=40)
    @given(st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(min_value=1, max_value=512)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=15)),
        ),
        max_size=30,
    ))
    def test_allocator_never_corrupts(self, operations):
        """Random malloc/free interleavings keep every live allocation's
        contents intact and the heap walkable."""
        mem = PhysicalMemory(MEM_SIZE)
        heap = PALHeap(mem, base=0x10000, size=32 * 1024)
        live = {}  # addr -> fill byte
        from repro.errors import PALRuntimeError

        fill = 1
        for op, arg in operations:
            if op == "malloc":
                try:
                    addr = heap.malloc(arg)
                except PALRuntimeError:
                    continue
                mem.write(addr, bytes([fill % 256]) * arg)
                live[addr] = (fill % 256, arg)
                fill += 1
            else:
                if not live:
                    continue
                addr = sorted(live)[arg % len(live)]
                byte, size = live.pop(addr)
                assert mem.read(addr, size) == bytes([byte]) * size
                heap.free(addr)
        for addr, (byte, size) in live.items():
            assert mem.read(addr, size) == bytes([byte]) * size
        # The heap remains structurally sound.
        assert heap.allocated_blocks() == len(live)

    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.integers(min_value=1, max_value=256), min_size=1, max_size=12))
    def test_free_all_restores_capacity(self, sizes):
        mem = PhysicalMemory(MEM_SIZE)
        heap = PALHeap(mem, base=0x10000, size=32 * 1024)
        capacity = heap.free_bytes()
        from repro.errors import PALRuntimeError

        addrs = []
        for size in sizes:
            try:
                addrs.append(heap.malloc(size))
            except PALRuntimeError:
                break
        for addr in addrs:
            heap.free(addr)
        assert heap.free_bytes() == capacity


class TestMeasurementProperties:
    @given(st.binary(min_size=4, max_size=512), st.binary(min_size=4, max_size=512))
    def test_distinct_code_distinct_measurement(self, code1, code2):
        assume(code1 != code2)
        assert sha1(code1) != sha1(code2)
