"""Event-queue hygiene: cancelled-event accounting and periodic heap
compaction.

A long-lived fleet scheduler cancels far more timers than it fires
(retry timers that a prompt reply makes moot, timeouts raced by
responses).  The heap must shed those tombstones — without ever
perturbing execution order, which the ``(time_ms, seq)`` total order
guarantees across any heapify."""

from repro.sim.sched.events import EventScheduler


def noop():
    pass


class TestCancelAccounting:
    def test_pending_events_excludes_cancelled(self):
        sched = EventScheduler(seed=1)
        events = [sched.at(float(i), noop) for i in range(10)]
        assert sched.pending_events == 10
        for event in events[:4]:
            sched.cancel(event)
        assert sched.pending_events == 6

    def test_double_cancel_counts_once(self):
        sched = EventScheduler(seed=1)
        event = sched.at(1.0, noop)
        sched.at(2.0, noop)
        sched.cancel(event)
        sched.cancel(event)
        assert sched.pending_events == 1

    def test_cancel_after_fire_is_a_noop(self):
        sched = EventScheduler(seed=1)
        event = sched.at(1.0, noop)
        sched.at(2.0, noop)
        sched.run()
        before = sched.pending_events
        sched.cancel(event)
        assert sched.pending_events == before


class TestCompaction:
    def test_compaction_triggers_at_threshold(self):
        sched = EventScheduler(seed=1)
        # 65 live + 128 doomed: cancelling 128 crosses both the absolute
        # floor (64) and the 50% fraction.
        live = [sched.at(1000.0 + i, noop) for i in range(65)]
        doomed = [sched.at(float(i), noop) for i in range(128)]
        assert sched.compactions == 0
        for event in doomed:
            sched.cancel(event)
        assert sched.compactions >= 1
        # The rebuild shed the tombstones cancelled before it fired (later
        # cancels re-accumulate until the next threshold crossing).
        assert len(sched._heap) < len(live) + len(doomed)
        assert sched.pending_events == len(live)

    def test_no_compaction_below_absolute_floor(self):
        sched = EventScheduler(seed=1)
        doomed = [sched.at(float(i), noop) for i in range(20)]
        for event in doomed:
            sched.cancel(event)
        # 100% cancelled but under COMPACT_MIN_CANCELLED: no rebuild.
        assert sched.compactions == 0

    def test_no_compaction_below_fraction(self):
        sched = EventScheduler(seed=1)
        [sched.at(1000.0 + i, noop) for i in range(1000)]
        doomed = [sched.at(float(i), noop) for i in range(70)]
        for event in doomed:
            sched.cancel(event)
        # 70 cancelled is over the floor but well under half the heap.
        assert sched.compactions == 0
        assert sched.pending_events == 1000

    def test_execution_order_survives_compaction(self):
        """Interleave cancels (forcing a compaction) with live timers and
        check the firing order is byte-identical to a scheduler that
        never saw the cancelled events at all."""
        def run(with_cancels):
            sched = EventScheduler(seed=9)
            log = []
            for i in range(100):
                sched.at(float(i), lambda i=i: log.append(i))
            if with_cancels:
                doomed = [sched.at(float(i) + 0.5, noop) for i in range(200)]
                for event in doomed:
                    sched.cancel(event)
                assert sched.compactions >= 1
            sched.run()
            return log

        assert run(with_cancels=True) == run(with_cancels=False)

    def test_popping_cancelled_events_decrements_counter(self):
        sched = EventScheduler(seed=1)
        doomed = [sched.at(float(i), noop) for i in range(40)]
        [sched.at(100.0 + i, noop) for i in range(5)]
        for event in doomed:
            sched.cancel(event)
        assert sched.compactions == 0  # under the absolute floor
        sched.run()
        # All tombstones were dropped at pop time, not left miscounted.
        assert sched.pending_events == 0
        assert len(sched._heap) == 0
