"""The discrete-event core: scheduler ordering, per-machine clocks,
cooperative processes, and mailboxes."""

import pytest

from repro.sim.sched import (
    Delay,
    EventScheduler,
    Mailbox,
    Process,
    ScheduledClock,
    SchedulerError,
)


class TestEventScheduler:
    def test_events_fire_in_time_order(self):
        sched = EventScheduler()
        order = []
        sched.at(5.0, lambda: order.append("late"))
        sched.at(1.0, lambda: order.append("early"))
        sched.at(3.0, lambda: order.append("mid"))
        assert sched.run() == 5.0
        assert order == ["early", "mid", "late"]

    def test_ties_break_by_insertion_order(self):
        sched = EventScheduler()
        order = []
        for name in ("a", "b", "c", "d"):
            sched.at(2.0, lambda n=name: order.append(n))
        sched.run()
        assert order == ["a", "b", "c", "d"]

    def test_scheduling_in_the_past_is_an_error(self):
        sched = EventScheduler()
        sched.at(10.0, lambda: sched.at(3.0, lambda: None))
        with pytest.raises(SchedulerError):
            sched.run()

    def test_events_may_schedule_more_events(self):
        sched = EventScheduler()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                sched.after(1.0, lambda: chain(n + 1))

        sched.at(0.0, lambda: chain(0))
        assert sched.run() == 3.0
        assert seen == [0, 1, 2, 3]

    def test_cancelled_events_never_fire(self):
        sched = EventScheduler()
        fired = []
        event = sched.at(1.0, lambda: fired.append("cancelled"))
        sched.at(2.0, lambda: fired.append("kept"))
        sched.cancel(event)
        sched.run()
        assert fired == ["kept"]

    def test_run_until_stops_on_time(self):
        sched = EventScheduler()
        fired = []
        sched.at(1.0, lambda: fired.append(1))
        sched.at(10.0, lambda: fired.append(10))
        sched.run(until_ms=5.0)
        assert fired == [1]
        assert not sched.idle
        sched.run()
        assert fired == [1, 10]
        assert sched.idle

    def test_rng_streams_are_seeded_and_labelled(self):
        a = EventScheduler(seed=7).rng("net").randbits(32)
        b = EventScheduler(seed=7).rng("net").randbits(32)
        c = EventScheduler(seed=7).rng("other").randbits(32)
        assert a == b
        assert a != c


class TestScheduledClock:
    def test_sync_to_accounts_idle_time(self):
        sched = EventScheduler()
        clock = ScheduledClock(sched, machine_id="m0")
        clock.sync_to(10.0)
        clock.advance(5.0)
        assert clock.now() == 15.0
        assert clock.idle_ms == 10.0
        assert clock.busy_ms == 5.0
        assert clock.utilization == pytest.approx(5.0 / 15.0)

    def test_sync_to_never_rewinds(self):
        sched = EventScheduler()
        clock = ScheduledClock(sched, machine_id="m0")
        clock.advance(8.0)
        clock.sync_to(3.0)
        assert clock.now() == 8.0
        assert clock.idle_ms == 0.0

    def test_clocks_register_with_scheduler(self):
        sched = EventScheduler()
        clock = ScheduledClock(sched, machine_id="m0")
        assert clock in sched.clocks


class TestProcess:
    def test_generator_delays_advance_local_clock(self):
        sched = EventScheduler()
        clock = ScheduledClock(sched, machine_id="m0")
        trail = []

        def proc():
            yield 5.0
            trail.append(clock.now())
            yield Delay(2.5)
            trail.append(clock.now())

        p = Process(sched, clock, proc(), name="p")
        sched.run()
        assert p.done
        assert trail == [5.0, 7.5]

    def test_local_work_is_atomic_between_yields(self):
        """Synchronous clock.advance between yields never interleaves:
        the other machine only runs at scheduling points."""
        sched = EventScheduler()
        a_clock = ScheduledClock(sched, machine_id="a")
        b_clock = ScheduledClock(sched, machine_id="b")
        order = []

        def a():
            a_clock.advance(100.0)  # atomic local burst
            order.append(("a", sched.now()))
            yield 0

        def b():
            order.append(("b", sched.now()))
            yield 0

        Process(sched, a_clock, a(), name="a")
        Process(sched, b_clock, b(), name="b")
        sched.run()
        # Both first steps fire at global time 0 in spawn order; a's
        # 100 ms of local work does not delay b's start.
        assert order == [("a", 0.0), ("b", 0.0)]
        assert a_clock.now() == 100.0
        assert b_clock.now() == 0.0

    def test_process_result_is_generator_return_value(self):
        sched = EventScheduler()
        clock = ScheduledClock(sched, machine_id="m0")

        def proc():
            yield 1.0
            return "finished"

        p = Process(sched, clock, proc(), name="p")
        sched.run()
        assert p.done and p.result == "finished"


class TestMailbox:
    def test_receive_blocks_until_put(self):
        sched = EventScheduler()
        clock = ScheduledClock(sched, machine_id="m0")
        box = Mailbox(sched, name="box")
        got = []

        def consumer():
            item = yield box.receive()
            got.append((item, clock.now()))

        Process(sched, clock, consumer(), name="consumer")
        sched.at(7.0, lambda: box.put("hello"))
        sched.run()
        assert got == [("hello", 7.0)]

    def test_put_before_receive_is_queued(self):
        sched = EventScheduler()
        clock = ScheduledClock(sched, machine_id="m0")
        box = Mailbox(sched, name="box")
        box.put("queued")
        got = []

        def consumer():
            item = yield box.receive()
            got.append(item)

        Process(sched, clock, consumer(), name="consumer")
        sched.run()
        assert got == ["queued"]
        assert box.delivered == 1

    def test_items_deliver_in_fifo_order(self):
        sched = EventScheduler()
        clock = ScheduledClock(sched, machine_id="m0")
        box = Mailbox(sched, name="box")
        got = []

        def consumer():
            for _ in range(3):
                got.append((yield box.receive()))

        Process(sched, clock, consumer(), name="consumer")
        for i, t in enumerate((2.0, 4.0, 6.0)):
            sched.at(t, lambda i=i: box.put(i))
        sched.run()
        assert got == [0, 1, 2]


class TestDeterminism:
    def test_identical_runs_replay_identically(self):
        def build_and_run():
            sched = EventScheduler(seed=99)
            clocks = [ScheduledClock(sched, machine_id=f"m{i}") for i in range(3)]
            box = Mailbox(sched, name="box")
            log = []

            def producer(i, clock):
                yield float(i)
                box.put(i)
                log.append(("sent", i, sched.now()))

            def consumer():
                for _ in range(3):
                    item = yield box.receive()
                    log.append(("got", item, sched.now()))

            Process(sched, clocks[0], producer(0, clocks[0]), name="p0")
            Process(sched, clocks[1], producer(1, clocks[1]), name="p1")
            Process(sched, clocks[2], producer(2, clocks[2]), name="p2")
            Process(sched, clocks[0], consumer(), name="c")
            sched.run()
            return log, sched.events_executed

        assert build_and_run() == build_and_run()
