"""Virtual clock, deterministic RNG, and event-trace tests."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRNG
from repro.sim.trace import EventTrace


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(start_ms=42.5).now() == 42.5

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start_ms=-1)

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(10)
        clock.advance(2.5)
        assert clock.now() == 12.5

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_elapsed_since(self):
        clock = VirtualClock()
        clock.advance(5)
        mark = clock.now()
        clock.advance(7)
        assert clock.elapsed_since(mark) == 7

    def test_span_attribution(self):
        clock = VirtualClock()
        with clock.span("a"):
            clock.advance(3)
        clock.advance(10)  # unattributed
        with clock.span("a"):
            clock.advance(4)
        assert clock.span_totals()["a"] == 7

    def test_nested_spans_attribute_to_both(self):
        clock = VirtualClock()
        with clock.span("outer"):
            clock.advance(1)
            with clock.span("inner"):
                clock.advance(2)
        totals = clock.span_totals()
        assert totals["outer"] == 3
        assert totals["inner"] == 2

    def test_span_log_records_boundaries(self):
        clock = VirtualClock()
        with clock.span("phase"):
            clock.advance(5)
        ((name, start, end),) = clock.span_log()
        assert name == "phase" and start == 0 and end == 5

    def test_reset_spans_keeps_time(self):
        clock = VirtualClock()
        with clock.span("x"):
            clock.advance(5)
        clock.reset_spans()
        assert clock.span_totals() == {}
        assert clock.now() == 5

    def test_span_closed_on_exception(self):
        clock = VirtualClock()
        with pytest.raises(RuntimeError):
            with clock.span("broken"):
                clock.advance(1)
                raise RuntimeError("boom")
        # A later advance must not be attributed to the closed span.
        clock.advance(10)
        assert clock.span_totals()["broken"] == 1


class TestDeterministicRNG:
    def test_same_seed_same_stream(self):
        assert DeterministicRNG(7).bytes(100) == DeterministicRNG(7).bytes(100)

    def test_different_seed_different_stream(self):
        assert DeterministicRNG(7).bytes(100) != DeterministicRNG(8).bytes(100)

    def test_bytes_length(self):
        rng = DeterministicRNG(1)
        for n in (0, 1, 7, 8, 9, 1000):
            assert len(rng.bytes(n)) == n

    def test_bytes_negative_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRNG(1).bytes(-1)

    def test_randint_bounds(self):
        rng = DeterministicRNG(2)
        for _ in range(500):
            v = rng.randint(10, 20)
            assert 10 <= v <= 20

    def test_randint_covers_range(self):
        rng = DeterministicRNG(3)
        seen = {rng.randint(0, 3) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_randint_empty_range_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRNG(1).randint(2, 1)

    def test_randbits_width(self):
        rng = DeterministicRNG(4)
        for k in (1, 8, 63, 64, 100):
            assert rng.randbits(k) < (1 << k)

    def test_odd_integer_shape(self):
        rng = DeterministicRNG(5)
        for bits in (8, 64, 512):
            v = rng.odd_integer(bits)
            assert v.bit_length() == bits
            assert v % 2 == 1

    def test_fork_streams_are_independent(self):
        parent = DeterministicRNG(6)
        a = parent.fork("a")
        b = parent.fork("b")
        assert a.bytes(32) != b.bytes(32)

    def test_fork_same_label_after_same_draws(self):
        p1 = DeterministicRNG(9)
        p2 = DeterministicRNG(9)
        assert p1.fork("x").bytes(16) == p2.fork("x").bytes(16)

    def test_shuffle_is_permutation(self):
        rng = DeterministicRNG(10)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # vanishingly unlikely to be identity

    def test_gauss_moments(self):
        rng = DeterministicRNG(11)
        samples = [rng.gauss(5.0, 2.0) for _ in range(2000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert abs(mean - 5.0) < 0.2
        assert abs(var - 4.0) < 0.6


class TestEventTrace:
    def test_emit_and_filter(self):
        trace = EventTrace()
        trace.emit(1.0, "cpu", "skinit", slb_base=0x1000)
        trace.emit(2.0, "tpm", "pcr_extend", pcr=17)
        trace.emit(3.0, "tpm", "quote")
        assert len(trace) == 3
        assert len(trace.events(source="tpm")) == 2
        assert trace.events(kind="skinit")[0].detail["slb_base"] == 0x1000

    def test_predicate_filter(self):
        trace = EventTrace()
        trace.emit(1.0, "tpm", "pcr_extend", pcr=17)
        trace.emit(2.0, "tpm", "pcr_extend", pcr=18)
        hits = trace.events(kind="pcr_extend", predicate=lambda e: e.detail["pcr"] == 17)
        assert len(hits) == 1

    def test_last(self):
        trace = EventTrace()
        assert trace.last() is None
        trace.emit(1.0, "a", "x")
        trace.emit(2.0, "b", "y")
        assert trace.last().kind == "y"
        assert trace.last(kind="x").time_ms == 1.0

    def test_ordered_before(self):
        trace = EventTrace()
        trace.emit(1.0, "flicker", "cleanup")
        trace.emit(2.0, "flicker", "os-resumed")
        assert trace.ordered_before("cleanup", "os-resumed")
        assert not trace.ordered_before("os-resumed", "cleanup")
        assert not trace.ordered_before("cleanup", "never-happened")

    def test_clear(self):
        trace = EventTrace()
        trace.emit(1.0, "a", "x")
        trace.clear()
        assert len(trace) == 0

    def test_format_timeline_contains_events(self):
        trace = EventTrace()
        trace.emit(1.5, "cpu", "skinit", length=4736)
        text = trace.format_timeline()
        assert "skinit" in text and "4736" in text
