"""The seeded-map executor: order, worker resolution, parallel identity."""

import pytest

from repro.sim.parallel import map_seeded, resolve_workers


def square(x):
    """Module-level so a worker process can unpickle it."""
    return x * x


def seeded_digest(seed):
    """A deterministic 'simulation': hash of a seeded byte pattern."""
    from repro.crypto.sha1 import sha1

    return sha1(bytes((seed * i) & 0xFF for i in range(64))).hex()


class TestResolveWorkers:
    def test_none_and_zero_mean_one_per_cpu(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)

    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestMapSeeded:
    def test_inline_mode_preserves_order(self):
        assert map_seeded(square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_items(self):
        assert map_seeded(square, []) == []
        assert map_seeded(square, [], workers=4) == []

    def test_single_item_runs_inline_even_with_workers(self):
        assert map_seeded(square, [7], workers=8) == [49]

    def test_parallel_results_identical_to_serial(self):
        seeds = list(range(8))
        serial = map_seeded(seeded_digest, seeds, workers=1)
        parallel = map_seeded(seeded_digest, seeds, workers=2)
        assert parallel == serial

    def test_parallel_preserves_input_order(self):
        items = [5, 3, 8, 1, 9, 2]
        assert map_seeded(square, items, workers=2) == [square(i) for i in items]


class TestShardGroups:
    def test_even_split(self):
        from repro.sim.parallel import shard_groups
        assert shard_groups(8, 4) == [(0, 4), (4, 4)]

    def test_ragged_tail(self):
        from repro.sim.parallel import shard_groups
        assert shard_groups(10, 4) == [(0, 4), (4, 4), (8, 2)]

    def test_single_group_when_shard_covers(self):
        from repro.sim.parallel import shard_groups
        assert shard_groups(3, 100) == [(0, 3)]

    def test_groups_cover_exactly_once(self):
        from repro.sim.parallel import shard_groups
        groups = shard_groups(10_000, 256)
        covered = [i for base, count in groups
                   for i in range(base, base + count)]
        assert covered == list(range(10_000))

    def test_invalid_arguments_rejected(self):
        from repro.sim.parallel import shard_groups
        with pytest.raises(ValueError):
            shard_groups(-1, 4)
        with pytest.raises(ValueError):
            shard_groups(10, 0)
