"""Timing-profile calibration tests: the constants must reproduce the
paper's microbenchmarks (within rounding)."""

import pytest

from repro.sim.timing import (
    BROADCOM_BCM0102,
    DEFAULT_PROFILE,
    HOST_HP_DC5750,
    INFINEON_1_2,
    INFINEON_PROFILE,
)


class TestSkinitModel:
    """Table 2: SKINIT latency vs SLB size."""

    @pytest.mark.parametrize(
        "kb,expected_ms,tolerance",
        [(0, 0.0, 1.0), (4, 11.9, 0.8), (16, 45.0, 1.0), (32, 89.2, 1.0), (64, 177.5, 1.0)],
    )
    def test_table2_points(self, kb, expected_ms, tolerance):
        assert BROADCOM_BCM0102.skinit_ms(kb * 1024) == pytest.approx(
            expected_ms, abs=tolerance
        )

    def test_linear_growth(self):
        t = BROADCOM_BCM0102
        delta1 = t.skinit_ms(32 * 1024) - t.skinit_ms(16 * 1024)
        delta2 = t.skinit_ms(64 * 1024) - t.skinit_ms(48 * 1024)
        assert delta1 == pytest.approx(delta2)

    def test_optimized_stub_lands_near_14ms(self):
        """§7.2: the 4736-byte stub SKINITs in ≈14 ms."""
        assert BROADCOM_BCM0102.skinit_ms(4736) == pytest.approx(14.0, abs=1.0)


class TestTPMCommandModel:
    def test_table1_constants(self):
        assert BROADCOM_BCM0102.quote_ms == pytest.approx(972.7)
        assert BROADCOM_BCM0102.extend_ms == pytest.approx(1.2)

    def test_table4_unseal(self):
        """Table 4: Unseal of the 20-byte distributed-computing key."""
        assert BROADCOM_BCM0102.unseal_ms(20) == pytest.approx(898.3, abs=0.5)

    def test_fig9_seal(self):
        assert BROADCOM_BCM0102.seal_ms(0) == pytest.approx(10.2)

    def test_fig9_unseal_larger_blob(self):
        """Figure 9(b): Unseal of the SSH private key is slightly more
        expensive than the 20-byte key unseal (905.4 vs 898.3 ms)."""
        small = BROADCOM_BCM0102.unseal_ms(20)
        larger = BROADCOM_BCM0102.unseal_ms(300)
        assert larger > small
        assert larger == pytest.approx(905.4, abs=2.0)

    def test_getrandom_128_bytes(self):
        """§7.4.1: TPM_GetRandom of 128 bytes averages 1.3 ms."""
        assert BROADCOM_BCM0102.getrandom_ms(128) == pytest.approx(1.3, abs=0.1)

    def test_infineon_is_faster(self):
        """§7.2/§7.4.1: Infineon quotes in <331 ms, unseals in <391 ms."""
        assert INFINEON_1_2.quote_ms == pytest.approx(331.0)
        assert INFINEON_1_2.unseal_ms(20) == pytest.approx(391.0, abs=1.0)
        assert INFINEON_1_2.quote_ms < BROADCOM_BCM0102.quote_ms
        assert INFINEON_1_2.unseal_ms(100) < BROADCOM_BCM0102.unseal_ms(100)


class TestHostModel:
    def test_kernel_hash_matches_table1(self):
        """Table 1: hashing the kernel's ~2820 KB takes 22.0 ms."""
        assert HOST_HP_DC5750.sha1_ms_per_kb * 2820 == pytest.approx(22.0, abs=0.1)

    def test_rsa_keygen_matches_fig9(self):
        assert HOST_HP_DC5750.rsa1024_keygen_ms == pytest.approx(185.7)

    def test_rsa_private_op_matches_fig9(self):
        assert HOST_HP_DC5750.rsa1024_private_op_ms == pytest.approx(4.6)

    def test_network_matches_section71(self):
        """§7.1: 12 hops, average ping 9.45 ms."""
        assert HOST_HP_DC5750.network_hops == 12
        assert 2 * HOST_HP_DC5750.network_one_way_ms == pytest.approx(9.45)

    def test_kernel_build_matches_table3(self):
        """Table 3: baseline kernel build of 7 m 22.6 s."""
        assert HOST_HP_DC5750.kernel_build_ms == pytest.approx(442_600.0)


class TestProfileComposition:
    def test_default_profile_uses_broadcom(self):
        assert DEFAULT_PROFILE.tpm is BROADCOM_BCM0102
        assert DEFAULT_PROFILE.host is HOST_HP_DC5750

    def test_with_tpm_swaps_chip_only(self):
        swapped = DEFAULT_PROFILE.with_tpm(INFINEON_1_2)
        assert swapped.tpm is INFINEON_1_2
        assert swapped.host is DEFAULT_PROFILE.host

    def test_infineon_profile(self):
        assert INFINEON_PROFILE.tpm is INFINEON_1_2
