"""Compare gate: params exact, virtual exact, wall within tolerance."""

from repro.bench import compare_results, strip_volatile
from repro.bench.compare import WALL_SLACK_SECONDS, CompareFinding


def doc(params=None, virtual=None, wall=None, schema="repro-bench/1"):
    return {
        "schema": schema,
        "params": params or {"n": 2},
        "virtual": virtual or {"ms": 10.0},
        "wall": wall or {"wall_seconds": 5.0},
    }


def kinds(findings):
    return [f.kind for f in findings]


class TestSchemaTier:
    def test_schema_mismatch_short_circuits(self):
        findings = compare_results(
            doc(schema="repro-bench/2", virtual={"ms": 999.0}), doc(), 20.0)
        assert kinds(findings) == ["schema-mismatch"]


class TestParamsTier:
    def test_params_mismatch_short_circuits(self):
        findings = compare_results(
            doc(params={"n": 50}, virtual={"ms": 999.0}), doc(), 20.0)
        assert kinds(findings) == ["params-mismatch"]
        assert "quick vs full" in findings[0].message

    def test_equal_params_pass(self):
        assert compare_results(doc(), doc(), 20.0) == []


class TestVirtualTier:
    def test_any_virtual_drift_fails(self):
        findings = compare_results(doc(virtual={"ms": 10.000001}), doc(), 20.0)
        assert kinds(findings) == ["virtual-drift"]

    def test_drift_reported_per_leaf_with_dotted_path(self):
        cur = doc(virtual={"a": {"x": 1, "y": 2}, "b": 3})
        base = doc(virtual={"a": {"x": 1, "y": 9}, "b": 8})
        findings = compare_results(cur, base, 20.0)
        assert [f.path for f in findings] == ["a.y", "b"]
        assert kinds(findings) == ["virtual-drift", "virtual-drift"]

    def test_disappeared_and_new_metrics_both_fail(self):
        findings = compare_results(
            doc(virtual={"new": 1}), doc(virtual={"old": 1}), 20.0)
        assert kinds(findings) == ["virtual-drift", "virtual-drift"]

    def test_list_leaves_compared_by_index(self):
        findings = compare_results(
            doc(virtual={"xs": [1, 2, 3]}), doc(virtual={"xs": [1, 9, 3]}), 20.0)
        assert [f.path for f in findings] == ["xs[1]"]


class TestWallTier:
    def test_regression_needs_both_percentage_and_absolute_slack(self):
        base = doc(wall={"wall_seconds": 5.0})
        # +30% and +1.5s: both thresholds exceeded -> fail.
        findings = compare_results(doc(wall={"wall_seconds": 6.5}), base, 20.0)
        assert kinds(findings) == ["wall-regression"]
        # +30% but only +0.15s on a sub-second bench: absolute slack saves it.
        small = doc(wall={"wall_seconds": 0.5})
        assert compare_results(doc(wall={"wall_seconds": 0.65}), small, 20.0) == []
        # +10% (+5s) on a long bench: percentage gate saves it.
        long_base = doc(wall={"wall_seconds": 50.0})
        assert compare_results(doc(wall={"wall_seconds": 55.0}), long_base, 20.0) == []

    def test_speedups_never_fail(self):
        assert compare_results(
            doc(wall={"wall_seconds": 0.1}), doc(wall={"wall_seconds": 50.0}), 20.0) == []

    def test_non_seconds_wall_leaves_are_informational(self):
        findings = compare_results(
            doc(wall={"wall_seconds": 5.0, "per_op_ns": 9000.0}),
            doc(wall={"wall_seconds": 5.0, "per_op_ns": 1.0}), 20.0)
        assert findings == []

    def test_wall_leaf_missing_from_baseline_is_ignored(self):
        findings = compare_results(
            doc(wall={"wall_seconds": 5.0, "extra_seconds": 100.0}),
            doc(wall={"wall_seconds": 5.0}), 20.0)
        assert findings == []

    def test_slack_constant_is_one_second(self):
        assert WALL_SLACK_SECONDS == 1.0


class TestStripVolatile:
    def test_drops_wall_and_meta_only(self):
        result = {"schema": "s", "name": "n", "quick": True, "params": {},
                  "virtual": {"ms": 1}, "wall": {"wall_seconds": 2},
                  "meta": {"git_sha": "x"}}
        stripped = strip_volatile(result)
        assert sorted(stripped) == ["name", "params", "quick", "schema", "virtual"]


def test_finding_renders_as_one_line():
    finding = CompareFinding("virtual-drift", "a.b", "1 -> 2")
    assert str(finding) == "[virtual-drift] at a.b: 1 -> 2"
    assert str(CompareFinding("params-mismatch", "", "boom")).startswith(
        "[params-mismatch]: ")
