"""The runner CLI: writing results, the perf gate, exit codes."""

import json

import pytest

from repro.bench import register, result_filename, result_json
from repro.bench.registry import unregister
from repro.tools.bench import main


@pytest.fixture
def fake_bench():
    """A deterministic scratch benchmark the CLI can run in microseconds."""
    def fn(n=4):
        return {"virtual": {"sum": sum(range(n)), "n": n},
                "wall": {"per_op_ns": 1.0}}

    register("cli_scratch", fn, params={"n": 100}, quick_params={"n": 4},
             description="CLI test fixture")
    yield "cli_scratch"
    unregister("cli_scratch")


def run_cli(*argv):
    """Invoke main() without importing the real benchmarks package."""
    return main(list(argv), run_discovery=False)


class TestRunAndWrite:
    def test_quick_run_writes_schema_valid_result(self, fake_bench, tmp_path):
        rc = run_cli("--quick", "--only", fake_bench, "--out-dir", str(tmp_path))
        assert rc == 0
        result = json.loads((tmp_path / result_filename(fake_bench)).read_text())
        assert result["schema"] == "repro-bench/1"
        assert result["quick"] is True
        assert result["params"] == {"n": 4}
        assert result["virtual"] == {"sum": 6, "n": 4}
        assert "wall_seconds" in result["wall"]

    def test_full_mode_uses_full_params(self, fake_bench, tmp_path):
        run_cli("--only", fake_bench, "--out-dir", str(tmp_path))
        result = json.loads((tmp_path / result_filename(fake_bench)).read_text())
        assert result["quick"] is False
        assert result["params"] == {"n": 100}

    def test_no_write_leaves_directory_empty(self, fake_bench, tmp_path):
        rc = run_cli("--quick", "--only", fake_bench, "--no-write",
                     "--out-dir", str(tmp_path))
        assert rc == 0
        assert list(tmp_path.iterdir()) == []

    def test_list_mode_prints_without_running(self, fake_bench, tmp_path, capsys):
        rc = run_cli("--list", "--only", fake_bench, "--out-dir", str(tmp_path))
        assert rc == 0
        assert fake_bench in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_empty_registry_exits_2(self, tmp_path, monkeypatch):
        from repro.bench import registry
        monkeypatch.setattr(registry, "_REGISTRY", {})
        assert run_cli("--out-dir", str(tmp_path)) == 2


class TestPerfGate:
    def write_baseline(self, fake_bench, tmp_path, **virtual_overrides):
        """A quick-mode baseline, optionally with doctored virtual metrics."""
        run_cli("--quick", "--only", fake_bench, "--out-dir", str(tmp_path))
        path = tmp_path / result_filename(fake_bench)
        if virtual_overrides:
            doc = json.loads(path.read_text())
            doc["virtual"].update(virtual_overrides)
            path.write_text(result_json(doc), encoding="utf-8")
        return path

    def test_matching_baseline_passes(self, fake_bench, tmp_path):
        self.write_baseline(fake_bench, tmp_path)
        rc = run_cli("--quick", "--only", fake_bench, "--no-write",
                     "--compare", str(tmp_path))
        assert rc == 0

    def test_injected_virtual_regression_fails(self, fake_bench, tmp_path, capsys):
        self.write_baseline(fake_bench, tmp_path, sum=999)
        rc = run_cli("--quick", "--only", fake_bench, "--no-write",
                     "--compare", str(tmp_path), "--fail-over", "20")
        assert rc == 1
        out = capsys.readouterr()
        assert "virtual-drift" in out.out
        assert "PERF GATE FAILED" in out.err

    def test_quick_run_against_full_baseline_fails_loudly(self, fake_bench,
                                                          tmp_path, capsys):
        run_cli("--only", fake_bench, "--out-dir", str(tmp_path))  # full mode
        rc = run_cli("--quick", "--only", fake_bench, "--no-write",
                     "--compare", str(tmp_path))
        assert rc == 1
        assert "params-mismatch" in capsys.readouterr().out

    def test_missing_baseline_fails(self, fake_bench, tmp_path, capsys):
        rc = run_cli("--quick", "--only", fake_bench, "--no-write",
                     "--compare", str(tmp_path))
        assert rc == 1
        assert "missing-baseline" in capsys.readouterr().out

    def test_single_file_baseline(self, fake_bench, tmp_path):
        path = self.write_baseline(fake_bench, tmp_path)
        rc = run_cli("--quick", "--only", fake_bench, "--no-write",
                     "--compare", str(path))
        assert rc == 0


class TestEndToEnd:
    def test_real_fig6_benchmark_through_the_cli(self, tmp_path):
        """Full path: discovery, run, write, self-compare — one real bench."""
        rc = main(["--quick", "--only", "fig6_modules",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        rc = main(["--quick", "--only", "fig6_modules", "--no-write",
                   "--compare", str(tmp_path), "--fail-over", "20"])
        assert rc == 0
