"""Result-document schema: build, validate, canonical serialization."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    SchemaError,
    build_result,
    result_filename,
    result_json,
    validate_result,
)
from repro.bench.schema import REQUIRED_KEYS, git_sha, host_fingerprint


def make_result(**overrides):
    result = build_result(
        name="unit", params={"n": 2, "sizes": (1, 4)},
        metrics={"virtual": {"ms": 1.5}, "wall": {"per_op_ns": 12.0}},
        quick=True, wall_seconds=0.123456,
    )
    result.update(overrides)
    return result


class TestBuildResult:
    def test_built_result_is_schema_valid(self):
        result = make_result()
        validate_result(result)  # does not raise
        assert result["schema"] == SCHEMA_VERSION
        assert tuple(sorted(result)) == tuple(sorted(REQUIRED_KEYS))

    def test_runner_wall_seconds_merged_and_rounded(self):
        result = make_result()
        assert result["wall"]["wall_seconds"] == 0.123
        assert result["wall"]["per_op_ns"] == 12.0

    def test_tuples_become_lists(self):
        result = make_result()
        assert result["params"]["sizes"] == [1, 4]
        json.dumps(result)  # fully serializable

    def test_meta_records_provenance(self):
        meta = make_result()["meta"]
        assert set(meta) == {"git_sha", "host", "tool"}
        assert meta["host"] == host_fingerprint()

    def test_git_sha_in_repo_is_hex(self):
        sha = git_sha()
        assert sha == "unknown" or (len(sha) == 40 and int(sha, 16) >= 0)

    def test_git_sha_outside_repo_is_unknown(self, tmp_path):
        assert git_sha(tmp_path) == "unknown"


class TestValidateResult:
    def test_missing_key_rejected(self):
        result = make_result()
        del result["virtual"]
        with pytest.raises(SchemaError, match="missing keys"):
            validate_result(result)

    def test_unknown_key_rejected(self):
        with pytest.raises(SchemaError, match="unknown keys"):
            validate_result(make_result(bogus=1))

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(SchemaError, match="schema"):
            validate_result(make_result(schema="repro-bench/999"))

    def test_non_bool_quick_rejected(self):
        with pytest.raises(SchemaError, match="quick"):
            validate_result(make_result(quick="yes"))

    def test_non_dict_section_rejected(self):
        with pytest.raises(SchemaError, match="'virtual' section"):
            validate_result(make_result(virtual=[1, 2]))

    def test_unserializable_result_rejected(self):
        with pytest.raises(SchemaError, match="JSON"):
            validate_result(make_result(virtual={"obj": object()}))


class TestCanonicalJson:
    def test_identical_content_identical_bytes(self):
        a = {"b": 1, "a": {"y": 2, "x": 3}}
        b = {"a": {"x": 3, "y": 2}, "b": 1}
        assert result_json(a) == result_json(b)

    def test_trailing_newline(self):
        assert result_json({}).endswith("\n")

    def test_round_trips(self):
        result = make_result()
        assert json.loads(result_json(result)) == result


def test_result_filename():
    assert result_filename("fleet") == "BENCH_fleet.json"
