"""Registry API: register/unregister, lookup, discovery, run contract."""

import pytest

from repro.bench import (
    all_benchmarks,
    discover,
    get_benchmark,
    register,
    registered,
)
from repro.bench.registry import unregister


@pytest.fixture
def scratch_bench():
    """Register a throwaway benchmark and clean it up afterwards."""
    names = []

    def _register(name, fn, **kwargs):
        names.append(name)
        return register(name, fn, **kwargs)

    yield _register
    for name in names:
        unregister(name)


def returns_virtual(**_params):
    return {"virtual": {"value": 1}}


class TestRegister:
    def test_registered_benchmark_is_listed_and_retrievable(self, scratch_bench):
        bench = scratch_bench("scratch_listed", returns_virtual,
                              params={"n": 3}, description="scratch")
        assert "scratch_listed" in registered()
        assert get_benchmark("scratch_listed") is bench
        assert bench in all_benchmarks()

    def test_duplicate_name_raises(self, scratch_bench):
        scratch_bench("scratch_dup", returns_virtual)
        with pytest.raises(ValueError, match="already registered"):
            register("scratch_dup", returns_virtual)

    def test_unknown_name_raises_with_roster(self):
        with pytest.raises(KeyError, match="no benchmark"):
            get_benchmark("no-such-benchmark")

    def test_registered_names_are_sorted(self, scratch_bench):
        scratch_bench("scratch_zz", returns_virtual)
        scratch_bench("scratch_aa", returns_virtual)
        names = registered()
        assert names == sorted(names)

    def test_params_are_copied_not_aliased(self, scratch_bench):
        params = {"n": 1}
        bench = scratch_bench("scratch_copy", returns_virtual, params=params)
        params["n"] = 999
        assert bench.parameters() == {"n": 1}


class TestParameters:
    def test_quick_falls_back_to_full_params(self, scratch_bench):
        bench = scratch_bench("scratch_fallback", returns_virtual,
                              params={"n": 5})
        assert bench.parameters(quick=True) == {"n": 5}

    def test_quick_params_selected_when_given(self, scratch_bench):
        bench = scratch_bench("scratch_quick", returns_virtual,
                              params={"n": 50}, quick_params={"n": 5})
        assert bench.parameters(quick=False) == {"n": 50}
        assert bench.parameters(quick=True) == {"n": 5}

    def test_run_passes_selected_params(self, scratch_bench):
        seen = {}

        def fn(n=0):
            seen["n"] = n
            return {"virtual": {"n": n}}

        bench = scratch_bench("scratch_pass", fn,
                              params={"n": 50}, quick_params={"n": 5})
        assert bench.run(quick=True)["virtual"]["n"] == 5
        assert seen["n"] == 5


class TestRunContract:
    def test_missing_virtual_section_raises(self, scratch_bench):
        bench = scratch_bench("scratch_bad", lambda: {"wall": {}})
        with pytest.raises(TypeError, match="'virtual' section"):
            bench.run()

    def test_non_dict_return_raises(self, scratch_bench):
        bench = scratch_bench("scratch_none", lambda: None)
        with pytest.raises(TypeError):
            bench.run()


class TestDiscover:
    def test_discover_imports_every_bench_module(self):
        imported = discover()
        assert imported == sorted(imported)
        assert "bench_fig6_modules" in imported
        assert "bench_fleet" in imported
        assert "bench_fault_campaign" in imported

    def test_discover_registers_the_shipped_benchmarks(self):
        discover()
        names = registered()
        for expected in ("fig6_modules", "table1_rootkit", "table2_skinit",
                         "obs_overhead", "fleet", "fault_campaign"):
            assert expected in names

    def test_discover_is_idempotent(self):
        # Second import pass must not re-run registrations (which would
        # raise on the duplicate names).
        discover()
        discover()
