"""Determinism: same seed, byte-identical result modulo wall/meta.

These tests run the real registered benchmarks twice and require the
canonical serialization of the non-volatile portion (everything except
``wall`` and ``meta`` — see :func:`repro.bench.strip_volatile`) to be
byte-for-byte identical.  This is the property the CI perf gate's
"virtual metrics compare exactly" rule rests on.
"""

import pytest

from repro.bench import (
    build_result,
    discover,
    get_benchmark,
    result_json,
    strip_volatile,
)


def stripped_bytes(name: str) -> str:
    """One quick run of benchmark ``name``, canonicalized and stripped."""
    bench = get_benchmark(name)
    result = build_result(
        name=bench.name, params=bench.parameters(quick=True),
        metrics=bench.run(quick=True), quick=True, wall_seconds=0.0,
    )
    return result_json(strip_volatile(result))


@pytest.fixture(scope="module", autouse=True)
def _discovered():
    discover()


@pytest.mark.parametrize("name", [
    "fig6_modules",
    "table1_rootkit",
    "table2_skinit",
    "obs_overhead",
])
def test_quick_run_is_byte_deterministic(name):
    assert stripped_bytes(name) == stripped_bytes(name)


@pytest.mark.slow
@pytest.mark.parametrize("name", ["fleet", "fault_campaign"])
def test_campaign_scale_benchmarks_are_byte_deterministic(name):
    assert stripped_bytes(name) == stripped_bytes(name)


def test_wall_and_meta_are_the_only_volatile_sections():
    bench = get_benchmark("fig6_modules")
    result = build_result(
        name=bench.name, params=bench.parameters(quick=True),
        metrics=bench.run(quick=True), quick=True, wall_seconds=1.0,
    )
    stripped = strip_volatile(result)
    assert set(result) - set(stripped) == {"wall", "meta"}
