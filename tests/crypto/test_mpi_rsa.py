"""Multi-precision arithmetic, RSA, and PKCS#1 tests."""

import pytest

from repro.crypto.mpi import (
    bytes_to_int,
    extended_gcd,
    gcd,
    generate_prime,
    int_to_bytes,
    is_probable_prime,
    mod_inverse,
    mod_pow,
    mod_pow_reference,
)
from repro.crypto.pkcs1 import (
    pkcs1_decrypt,
    pkcs1_encrypt,
    pkcs1_sign_sha1,
    pkcs1_verify_sha1,
)
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey, generate_rsa_keypair
from repro.errors import ReproError
from repro.sim.rng import DeterministicRNG


@pytest.fixture(scope="module")
def keypair():
    return generate_rsa_keypair(512, DeterministicRNG(99))


class TestMPI:
    def test_mod_pow_matches_builtin(self):
        for base, exp, mod in [(2, 10, 1000), (12345, 6789, 99991), (0, 5, 7), (5, 0, 7)]:
            assert mod_pow(base, exp, mod) == pow(base, exp, mod)

    def test_mod_pow_rejects_bad_inputs(self):
        with pytest.raises(ReproError):
            mod_pow(2, 3, 0)
        with pytest.raises(ReproError):
            mod_pow(2, -1, 5)

    def test_mod_pow_reference_agrees_with_fast_path(self):
        """The spelled-out square-and-multiply is pinned equal to the
        ``pow``-backed fast path across edge cases and wide operands."""
        cases = [
            (0, 0, 1), (7, 0, 1), (2, 10, 1), (0, 5, 7), (5, 0, 7),
            (2, 10, 1000), (12345, 6789, 99991),
            (2**64 + 1, 2**32 + 5, 2**61 - 1),
            (3, 2**16 + 1, (2**89 - 1) * (2**107 - 1)),
        ]
        for base, exp, mod in cases:
            assert mod_pow_reference(base, exp, mod) == mod_pow(base, exp, mod)

    def test_mod_pow_reference_rejects_bad_inputs(self):
        with pytest.raises(ReproError):
            mod_pow_reference(2, 3, 0)
        with pytest.raises(ReproError):
            mod_pow_reference(2, -1, 5)

    def test_gcd(self):
        assert gcd(12, 18) == 6
        assert gcd(17, 5) == 1
        assert gcd(0, 5) == 5

    def test_extended_gcd_bezout(self):
        for a, b in [(240, 46), (17, 5), (100, 75)]:
            g, x, y = extended_gcd(a, b)
            assert a * x + b * y == g == gcd(a, b)

    def test_mod_inverse(self):
        assert (3 * mod_inverse(3, 11)) % 11 == 1
        assert (17 * mod_inverse(17, 3120)) % 3120 == 1

    def test_mod_inverse_nonexistent(self):
        with pytest.raises(ReproError):
            mod_inverse(6, 9)

    def test_miller_rabin_known_primes(self):
        rng = DeterministicRNG(1)
        for p in (2, 3, 5, 7, 97, 7919, 104729, (1 << 61) - 1):
            assert is_probable_prime(p, rng)

    def test_miller_rabin_known_composites(self):
        rng = DeterministicRNG(2)
        # Including Carmichael numbers, which fool Fermat but not MR.
        for n in (1, 4, 561, 1105, 6601, 8911, 2821, 104730):
            assert not is_probable_prime(n, rng)

    def test_generate_prime_properties(self):
        rng = DeterministicRNG(3)
        p = generate_prime(64, rng)
        assert p.bit_length() == 64
        assert p % 2 == 1
        assert is_probable_prime(p, rng)

    def test_int_bytes_roundtrip(self):
        for value in (0, 1, 255, 256, 2**64 - 1):
            assert bytes_to_int(int_to_bytes(value, 16)) == value

    def test_int_to_bytes_rejects_negative(self):
        with pytest.raises(ReproError):
            int_to_bytes(-1, 4)


class TestRSA:
    def test_keypair_relations(self, keypair):
        priv = keypair.private
        assert priv.p * priv.q == priv.n
        assert priv.n.bit_length() == 512
        # e*d ≡ 1 mod φ(n)
        phi = (priv.p - 1) * (priv.q - 1)
        assert (priv.e * priv.d) % phi == 1

    def test_raw_roundtrip(self, keypair):
        m = 0x1234567890ABCDEF
        c = keypair.public.raw_encrypt(m)
        assert keypair.private.raw_decrypt(c) == m

    def test_crt_matches_plain_exponentiation(self, keypair):
        priv = keypair.private
        c = 0xDEADBEEF
        assert priv.raw_decrypt(c) == pow(c, priv.d, priv.n)

    def test_out_of_range_rejected(self, keypair):
        with pytest.raises(ReproError):
            keypair.public.raw_encrypt(keypair.public.n)
        with pytest.raises(ReproError):
            keypair.private.raw_decrypt(-1)

    def test_public_key_encode_decode(self, keypair):
        encoded = keypair.public.encode()
        decoded = RSAPublicKey.decode(encoded)
        assert decoded == keypair.public

    def test_private_key_encode_decode(self, keypair):
        encoded = keypair.private.encode()
        decoded = RSAPrivateKey.decode(encoded)
        assert decoded == keypair.private

    def test_decode_rejects_garbage(self):
        with pytest.raises(ReproError):
            RSAPublicKey.decode(b"\x00\x00")
        with pytest.raises(ReproError):
            RSAPrivateKey.decode(b"\xff" * 7)

    def test_decode_rejects_trailing_bytes(self, keypair):
        with pytest.raises(ReproError):
            RSAPublicKey.decode(keypair.public.encode() + b"extra")

    def test_fingerprint_is_stable_and_distinct(self, keypair):
        other = generate_rsa_keypair(512, DeterministicRNG(100))
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert keypair.public.fingerprint() != other.public.fingerprint()

    def test_keygen_rejects_bad_sizes(self):
        rng = DeterministicRNG(4)
        with pytest.raises(ReproError):
            generate_rsa_keypair(63, rng)
        with pytest.raises(ReproError):
            generate_rsa_keypair(129, rng)


class TestPKCS1:
    def test_encrypt_decrypt_roundtrip(self, keypair):
        rng = DeterministicRNG(5)
        for message in (b"", b"x", b"secret password", b"m" * 53):
            ct = pkcs1_encrypt(keypair.public, message, rng)
            assert len(ct) == keypair.public.modulus_bytes
            assert pkcs1_decrypt(keypair.private, ct) == message

    def test_encryption_is_randomized(self, keypair):
        rng = DeterministicRNG(6)
        c1 = pkcs1_encrypt(keypair.public, b"same", rng)
        c2 = pkcs1_encrypt(keypair.public, b"same", rng)
        assert c1 != c2

    def test_message_too_long(self, keypair):
        rng = DeterministicRNG(7)
        with pytest.raises(ReproError):
            pkcs1_encrypt(keypair.public, b"m" * 54, rng)

    def test_tampered_ciphertext_rejected(self, keypair):
        rng = DeterministicRNG(8)
        ct = bytearray(pkcs1_encrypt(keypair.public, b"payload", rng))
        ct[10] ^= 0x40
        with pytest.raises(ReproError):
            pkcs1_decrypt(keypair.private, bytes(ct))

    def test_wrong_length_ciphertext_rejected(self, keypair):
        with pytest.raises(ReproError):
            pkcs1_decrypt(keypair.private, b"\x00" * 10)

    def test_sign_verify(self, keypair):
        sig = pkcs1_sign_sha1(keypair.private, b"signed message")
        assert pkcs1_verify_sha1(keypair.public, b"signed message", sig)

    def test_verify_rejects_wrong_message(self, keypair):
        sig = pkcs1_sign_sha1(keypair.private, b"original")
        assert not pkcs1_verify_sha1(keypair.public, b"forged", sig)

    def test_verify_rejects_wrong_key(self, keypair):
        other = generate_rsa_keypair(512, DeterministicRNG(11))
        sig = pkcs1_sign_sha1(keypair.private, b"message")
        assert not pkcs1_verify_sha1(other.public, b"message", sig)

    def test_verify_rejects_mangled_signature(self, keypair):
        sig = bytearray(pkcs1_sign_sha1(keypair.private, b"message"))
        sig[0] ^= 1
        assert not pkcs1_verify_sha1(keypair.public, b"message", bytes(sig))
        assert not pkcs1_verify_sha1(keypair.public, b"message", b"short")
