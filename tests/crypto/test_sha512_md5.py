"""SHA-512 and MD5 known-answer and behavioural tests."""

import hashlib

import pytest

from repro.crypto.md5 import MD5, md5
from repro.crypto.sha512 import SHA512, sha512


class TestSHA512:
    @pytest.mark.parametrize(
        "message,expected",
        [
            (
                b"abc",
                "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
                "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f",
            ),
            (
                b"",
                "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
                "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e",
            ),
        ],
    )
    def test_known_answer(self, message, expected):
        assert sha512(message).hex() == expected

    @pytest.mark.parametrize(
        "data",
        [b"x", b"block" * 99, bytes(range(256)) * 5, b"\x00" * 1024],
    )
    def test_matches_hashlib(self, data):
        assert sha512(data) == hashlib.sha512(data).digest()

    def test_padding_boundaries(self):
        # 111/112/127/128/129 bytes straddle SHA-512's padding edges.
        for n in (111, 112, 127, 128, 129, 239, 240):
            data = b"p" * n
            assert sha512(data) == hashlib.sha512(data).digest()

    def test_incremental(self):
        h = SHA512()
        for chunk in (b"one", b"two", b"three" * 50):
            h.update(chunk)
        assert h.digest() == hashlib.sha512(b"onetwo" + b"three" * 50).digest()

    def test_digest_is_idempotent(self):
        h = SHA512(b"state")
        assert h.digest() == h.digest()

    def test_copy_is_independent(self):
        h = SHA512(b"base")
        clone = h.copy()
        clone.update(b"-fork")
        assert h.digest() == sha512(b"base")
        assert clone.digest() == sha512(b"base-fork")


class TestMD5:
    @pytest.mark.parametrize(
        "message,expected",
        [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
        ],
    )
    def test_rfc1321_vectors(self, message, expected):
        assert md5(message).hex() == expected

    @pytest.mark.parametrize(
        "data",
        [b"y" * 55, b"y" * 56, b"y" * 64, bytes(range(256)) * 9],
    )
    def test_matches_hashlib(self, data):
        assert md5(data) == hashlib.md5(data).digest()

    def test_incremental(self):
        h = MD5()
        h.update(b"incre")
        h.update(b"mental")
        assert h.digest() == hashlib.md5(b"incremental").digest()

    def test_copy_is_independent(self):
        h = MD5(b"root")
        clone = h.copy()
        h.update(b"1")
        clone.update(b"2")
        assert h.digest() == md5(b"root1")
        assert clone.digest() == md5(b"root2")

    def test_digest_is_idempotent(self):
        h = MD5(b"same")
        assert h.digest() == h.digest()
