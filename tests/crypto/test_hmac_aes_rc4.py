"""HMAC, AES-128, and RC4 tests against published vectors."""

import hashlib
import hmac as std_hmac

import pytest

from repro.crypto.aes import AES128
from repro.crypto.hmac import constant_time_equal, hmac_md5, hmac_sha1
from repro.crypto.rc4 import RC4
from repro.errors import ReproError


class TestHMAC:
    def test_rfc2202_sha1_case1(self):
        key = b"\x0b" * 20
        assert hmac_sha1(key, b"Hi There").hex() == (
            "b617318655057264e28bc0b6fb378c8ef146be00"
        )

    def test_rfc2202_sha1_case2(self):
        assert hmac_sha1(b"Jefe", b"what do ya want for nothing?").hex() == (
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        )

    def test_rfc2202_md5_case1(self):
        key = b"\x0b" * 16
        assert hmac_md5(key, b"Hi There").hex() == "9294727a3638bb1c13f48ef8158bfc9d"

    @pytest.mark.parametrize("key_len", [0, 1, 20, 64, 65, 200])
    def test_matches_stdlib_across_key_sizes(self, key_len):
        key = bytes(range(256))[:key_len]
        msg = b"the quick brown fox" * 7
        assert hmac_sha1(key, msg) == std_hmac.new(key, msg, hashlib.sha1).digest()
        assert hmac_md5(key, msg) == std_hmac.new(key, msg, hashlib.md5).digest()

    def test_constant_time_equal(self):
        assert constant_time_equal(b"same", b"same")
        assert not constant_time_equal(b"same", b"diff")
        assert not constant_time_equal(b"short", b"longer")
        assert constant_time_equal(b"", b"")


class TestAES128:
    FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
    FIPS_CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

    def test_fips197_encrypt(self):
        assert AES128(self.FIPS_KEY).encrypt_block(self.FIPS_PT) == self.FIPS_CT

    def test_fips197_decrypt(self):
        assert AES128(self.FIPS_KEY).decrypt_block(self.FIPS_CT) == self.FIPS_PT

    def test_sp800_38a_ecb_vector(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        assert AES128(key).encrypt_block(pt).hex() == "3ad77bb40d7a3660a89ecaf32466ef97"

    def test_sp800_38a_cbc_four_block_vector(self):
        """NIST SP 800-38A F.2.1 (CBC-AES128.Encrypt), all four blocks."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411e5fbc1191a0a52ef"
            "f69f2445df4f9b17ad2b417be66c3710"
        )
        expected = (
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2"
            "73bed6b8e3c1743b7116e69e22229516"
            "3ff1caa1681fac09120eca307586e1a7"
        )
        # Our CBC appends a PKCS#7 padding block; the spec vector covers
        # the four data blocks.
        ciphertext = AES128(key).encrypt_cbc(plaintext, iv)
        assert ciphertext[:64].hex() == expected
        assert AES128(key).decrypt_cbc(ciphertext, iv) == plaintext

    def test_block_roundtrip_random_keys(self):
        for i in range(8):
            key = bytes([i]) * 16
            cipher = AES128(key)
            block = bytes(range(i, i + 16))
            assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_cbc_roundtrip_various_lengths(self):
        cipher = AES128(b"k" * 16)
        iv = b"\x01" * 16
        for n in (0, 1, 15, 16, 17, 100, 4096):
            data = bytes(range(256))[: n % 256] * (n // 256 + 1)
            data = data[:n]
            assert cipher.decrypt_cbc(cipher.encrypt_cbc(data, iv), iv) == data

    def test_cbc_wrong_iv_fails_or_garbles(self):
        cipher = AES128(b"k" * 16)
        ct = cipher.encrypt_cbc(b"secret payload here!", b"\x01" * 16)
        try:
            out = cipher.decrypt_cbc(ct, b"\x02" * 16)
        except ReproError:
            return  # padding check caught the corruption
        assert out != b"secret payload here!"

    def test_cbc_tampered_ciphertext_detected_or_garbled(self):
        cipher = AES128(b"k" * 16)
        ct = bytearray(cipher.encrypt_cbc(b"integrity matters", b"\x00" * 16))
        ct[5] ^= 0xFF
        try:
            out = cipher.decrypt_cbc(bytes(ct), b"\x00" * 16)
        except ReproError:
            return
        assert out != b"integrity matters"

    def test_bad_key_length_rejected(self):
        with pytest.raises(ReproError):
            AES128(b"short")

    def test_bad_block_length_rejected(self):
        cipher = AES128(b"k" * 16)
        with pytest.raises(ReproError):
            cipher.encrypt_block(b"tooshort")
        with pytest.raises(ReproError):
            cipher.decrypt_cbc(b"not-a-multiple-of-16!", b"\x00" * 16)


class TestRC4:
    def test_classic_vectors(self):
        assert RC4(b"Key").process(b"Plaintext").hex() == "bbf316e8d940af0ad3"
        assert RC4(b"Wiki").process(b"pedia").hex() == "1021bf0420"
        assert RC4(b"Secret").process(b"Attack at dawn").hex() == (
            "45a01f645fc35b383552544b9bf5"
        )

    def test_rfc6229_40bit_key_stream(self):
        stream = RC4(bytes.fromhex("0102030405")).keystream(16)
        assert stream.hex() == "b2396305f03dc027ccc3524a0a1118a8"

    def test_encrypt_decrypt_symmetry(self):
        data = b"round trip data" * 10
        assert RC4(b"k1").decrypt(RC4(b"k1").encrypt(data)) == data

    def test_keystream_is_stateful(self):
        cipher = RC4(b"stateful")
        first = cipher.keystream(32)
        second = cipher.keystream(32)
        assert first != second
        fresh = RC4(b"stateful").keystream(64)
        assert fresh == first + second

    def test_key_length_limits(self):
        with pytest.raises(ReproError):
            RC4(b"")
        with pytest.raises(ReproError):
            RC4(b"x" * 257)
