"""SHA-1 known-answer and behavioural tests."""

import hashlib

import pytest

from repro.crypto.sha1 import SHA1, sha1, sha1_cached

# FIPS 180-1 / RFC 3174 known-answer vectors.
KAT = [
    (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
    (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
    ),
    (b"a" * 1_000_000, "34aa973cd4c4daa4f61eeb2bdbad27316534016f"),
]


@pytest.mark.parametrize("message,expected", KAT[:3])
def test_known_answer_vectors(message, expected):
    assert sha1(message).hex() == expected


def test_million_a_vector():
    assert sha1(KAT[3][0]).hex() == KAT[3][1]


@pytest.mark.parametrize(
    "data",
    [b"", b"x", b"block" * 100, bytes(range(256)) * 17, b"\x00" * 4096],
)
def test_matches_hashlib(data):
    assert sha1(data) == hashlib.sha1(data).digest()


def test_incremental_equals_one_shot():
    h = SHA1()
    h.update(b"hello ")
    h.update(b"world")
    assert h.digest() == sha1(b"hello world")


def test_incremental_odd_chunk_boundaries():
    data = bytes(range(256)) * 3
    h = SHA1()
    for i in range(0, len(data), 13):
        h.update(data[i : i + 13])
    assert h.digest() == hashlib.sha1(data).digest()


def test_digest_does_not_consume_state():
    h = SHA1(b"partial")
    first = h.digest()
    second = h.digest()
    assert first == second
    h.update(b"-more")
    assert h.digest() == sha1(b"partial-more")


def test_copy_is_independent():
    h = SHA1(b"shared-prefix")
    clone = h.copy()
    h.update(b"-a")
    clone.update(b"-b")
    assert h.digest() == sha1(b"shared-prefix-a")
    assert clone.digest() == sha1(b"shared-prefix-b")


def test_hexdigest_matches_digest():
    h = SHA1(b"hex")
    assert bytes.fromhex(h.hexdigest()) == h.digest()


def test_exact_block_boundary_padding():
    # 55, 56, 63, 64, 65 bytes straddle the padding edge cases.
    for n in (55, 56, 63, 64, 65, 119, 120):
        data = b"q" * n
        assert sha1(data) == hashlib.sha1(data).digest()


def test_cached_variant_agrees_and_caches():
    blob = b"z" * 70000
    assert sha1_cached(blob) == sha1(blob)
    assert sha1_cached(blob) == hashlib.sha1(blob).digest()


def test_digest_size_constant():
    assert SHA1.digest_size == 20
    assert len(sha1(b"anything")) == 20
