"""md5crypt and DRBG tests."""

import pytest

from repro.crypto.drbg import HashDRBG
from repro.crypto.md5crypt import md5crypt, md5crypt_verify
from repro.errors import ReproError


class TestMD5Crypt:
    # Vectors produced by glibc crypt(3) with $1$ salts.
    VECTORS = [
        (b"password", b"abcd1234", "$1$abcd1234$Kx528z52Ohx1JLSzliZmw0"),
    ]

    @pytest.mark.parametrize("password,salt,expected", VECTORS)
    def test_glibc_vector(self, password, salt, expected):
        assert md5crypt(password, salt) == expected

    def test_salt_prefix_stripping(self):
        # A "$1$salt$..." style salt argument is tolerated.
        direct = md5crypt(b"pw", b"saltsalt")
        prefixed = md5crypt(b"pw", b"$1$saltsalt$whatever")
        assert direct == prefixed

    def test_salt_truncated_to_8(self):
        assert md5crypt(b"pw", b"12345678") == md5crypt(b"pw", b"123456789abc")

    def test_output_format(self):
        out = md5crypt(b"secret", b"mysalt")
        parts = out.split("$")
        assert parts[1] == "1"
        assert parts[2] == "mysalt"
        assert len(parts[3]) == 22

    def test_different_passwords_differ(self):
        assert md5crypt(b"alpha", b"s1") != md5crypt(b"beta", b"s1")

    def test_different_salts_differ(self):
        assert md5crypt(b"same", b"salt1") != md5crypt(b"same", b"salt2")

    def test_verify_roundtrip(self):
        crypt_string = md5crypt(b"hunter2", b"qrst")
        assert md5crypt_verify(b"hunter2", crypt_string)
        assert not md5crypt_verify(b"hunter3", crypt_string)

    def test_verify_rejects_non_md5crypt(self):
        with pytest.raises(ReproError):
            md5crypt_verify(b"pw", "$6$sha512-crypt$xyz")

    def test_empty_salt_rejected(self):
        with pytest.raises(ReproError):
            md5crypt(b"pw", b"")

    def test_string_arguments_accepted(self):
        assert md5crypt("password", "abcd1234") == self.VECTORS[0][2]


class TestHashDRBG:
    def test_deterministic_for_same_seed(self):
        a = HashDRBG(b"seed-material-0000")
        b = HashDRBG(b"seed-material-0000")
        assert a.generate(64) == b.generate(64)

    def test_different_seeds_diverge(self):
        a = HashDRBG(b"seed-material-0000")
        b = HashDRBG(b"seed-material-0001")
        assert a.generate(64) != b.generate(64)

    def test_stream_advances(self):
        drbg = HashDRBG(b"advancing-seed-xx")
        assert drbg.generate(32) != drbg.generate(32)

    def test_reseed_changes_output(self):
        a = HashDRBG(b"common-seed-00000")
        b = HashDRBG(b"common-seed-00000")
        b.reseed(b"fresh entropy")
        assert a.generate(32) != b.generate(32)

    def test_short_seed_rejected(self):
        with pytest.raises(ReproError):
            HashDRBG(b"short")

    def test_generate_negative_rejected(self):
        drbg = HashDRBG(b"valid-seed-123456")
        with pytest.raises(ReproError):
            drbg.generate(-1)

    def test_generate_zero(self):
        drbg = HashDRBG(b"valid-seed-123456")
        assert drbg.generate(0) == b""

    def test_randint_range(self):
        drbg = HashDRBG(b"randint-seed-0000")
        values = {drbg.randint(1, 6) for _ in range(200)}
        assert values <= set(range(1, 7))
        assert len(values) == 6  # all faces appear in 200 rolls

    def test_randint_empty_range_rejected(self):
        drbg = HashDRBG(b"randint-seed-0000")
        with pytest.raises(ReproError):
            drbg.randint(5, 4)

    def test_byte_distribution_sanity(self):
        drbg = HashDRBG(b"distribution-seed")
        data = drbg.generate(4096)
        # Every byte value class should be roughly populated.
        assert len(set(data)) > 200
