"""The SKINIT instruction (AMD SVM late launch).

Paper §2.4 specifies the semantics this function implements:

1. SKINIT is privileged: only ring-0 code may issue it, and only on the
   Boot Strap Processor; every Application Processor must already have
   taken an INIT IPI (enforced via a handshake — modelled by
   :meth:`CPU.all_aps_quiesced`).
2. The 64-KB region starting at the SLB base is added to the Device
   Exclusion Vector, blocking DMA.
3. Interrupts are disabled so previously executing code cannot regain
   control; debugging access is disabled, even for hardware debuggers.
4. The TPM's dynamic PCRs 17–23 are reset to zero via the CPU-only
   hardware command, and the SLB contents (up to 64 KB; exactly the
   ``length`` declared in the SLB header) are transmitted to the TPM,
   hashed, and extended into PCR 17.
5. The CPU enters flat 32-bit protected mode (paging disabled) and jumps
   to the SLB's declared entry point.

The cost charged to the virtual clock is
:meth:`~repro.sim.timing.TPMTimings.skinit_ms`, which reproduces Table 2's
linear growth with SLB size.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Any

from repro.crypto.sha1 import sha1_cached as sha1
from repro.errors import SkinitError, SLBFormatError
from repro.hw.memory import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.hw.machine import Machine

#: Size of the region SKINIT protects and (by default) measures.
SLB_REGION_SIZE = 64 * 1024

#: PCR into which the SLB measurement is extended.
SLB_MEASUREMENT_PCR = 17


def parse_slb_header(header: bytes) -> tuple:
    """Parse the SLB's first two 16-bit words: (length, entry_point)."""
    if len(header) < 4:
        raise SLBFormatError("SLB header requires at least 4 bytes")
    length, entry = struct.unpack("<HH", header[:4])
    return length, entry


def skinit(machine: "Machine", core_id: int, slb_base: int) -> Any:
    """Execute SKINIT on ``core_id`` with the SLB at ``slb_base``.

    Returns whatever the SLB's registered entry routine returns (the SLB
    Core's session result in this reproduction).  All architectural
    protections are applied *before* any SLB code runs; the caller (the
    flicker-module) is responsible for restoring OS state afterwards — the
    instruction itself saves nothing (paper §4.2, "Suspend OS").
    """
    core = machine.cpu.cores[core_id]
    core.require_ring(0, "SKINIT")
    if not core.is_bsp:
        raise SkinitError("SKINIT can only be run on the Boot Strap Processor")
    if not machine.multicore_isolation and not machine.cpu.all_aps_quiesced():
        # Next-generation hardware (the §7.5 recommendation from [19])
        # isolates the secure session to one core and lets the APs keep
        # running the untrusted OS; current hardware requires the INIT
        # handshake with every AP.
        raise SkinitError(
            "SKINIT handshake failed: not all APs are idle with INIT received"
        )
    if slb_base % PAGE_SIZE:
        raise SkinitError(f"SLB base {slb_base:#x} is not page aligned")
    if slb_base + SLB_REGION_SIZE > machine.memory.size_bytes:
        raise SkinitError("SLB region extends past the end of physical memory")

    header = machine.memory.read(slb_base, 4)
    length, entry = parse_slb_header(header)
    if length < 4 or length > SLB_REGION_SIZE:
        raise SLBFormatError(f"SLB length {length} outside 4..{SLB_REGION_SIZE}")
    if entry >= length:
        raise SLBFormatError(f"SLB entry point {entry:#x} outside measured region")

    # Injection point: the image sits in DMA-reachable memory until the DEV
    # bits are set below, so a fault here models corruption in that window.
    # SKINIT measures whatever bytes are present afterwards — tampering
    # changes the measurement, never what PCR 17 reports about it.
    machine.fire_fault("skinit.pre-measure", slb_base=slb_base, length=length)

    # --- hardware protections (step 2-3) ---------------------------------
    machine.dev.protect_range(slb_base, SLB_REGION_SIZE)
    core.interrupts_enabled = False
    core.debug_access_enabled = False
    core.paging_enabled = False
    core.ring = 0

    # --- TPM interaction (step 4) ----------------------------------------
    cpu_tpm = machine.cpu_tpm_interface
    cpu_tpm.dynamic_pcr_reset()
    measured = machine.memory.read(slb_base, length)
    measurement = sha1(measured)
    # The hash/extend happens inside the TPM as part of SKINIT; its cost is
    # part of the modelled SKINIT latency, so extend the PCR directly on the
    # bank rather than double-charging a TPM_Extend command.
    machine.tpm.pcrs.extend(SLB_MEASUREMENT_PCR, measurement)

    with machine.clock.span("skinit"):
        machine.clock.advance(machine.profile.tpm.skinit_ms(length))
    obs = machine.obs
    if obs is not None:
        obs.registry.counter("skinit_total", "SKINIT launches").inc()
        obs.registry.histogram(
            "skinit_ms", "SKINIT latency (Table 2: linear in SLB size)"
        ).observe(machine.profile.tpm.skinit_ms(length))
        obs.registry.histogram(
            "skinit_measured_bytes", "Measured SLB prefix length",
            buckets=(4096.0, 8192.0, 16384.0, 32768.0, 65536.0),
        ).observe(length)
        obs.event("skinit.measured", category="cpu",
                  length=length, measurement=measurement.hex())
    machine.trace.emit(
        machine.clock.now(),
        "cpu",
        "skinit",
        slb_base=slb_base,
        length=length,
        entry=entry,
        measurement=measurement.hex(),
    )

    # --- jump to the SLB entry point (step 5) ------------------------------
    entry_routine = machine.lookup_executable(measurement)
    if entry_routine is None:
        raise SkinitError(
            f"no executable registered for SLB measurement {measurement.hex()[:16]}…"
        )
    return entry_routine(machine, core, slb_base)
