"""The assembled platform: CPU + memory + TPM + DEV + devices + clock.

A :class:`Machine` is the root object of every simulation.  It owns the
virtual clock and event trace, constructs the TPM (keeping the locality-4
CPU interface private), and mediates every DMA transfer through the Device
Exclusion Vector.

"Executing" an SLB is modelled by a registry that maps the SHA-1
measurement of an SLB image to a Python entry routine: SKINIT measures the
bytes actually present in memory and dispatches on that digest, so any
tampering with the in-memory image changes the measurement — the tampered
code may run, but PCR 17 will record what *actually* ran, which is
precisely the property the paper's attestation relies on.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.crypto.sha1 import sha1_cached as sha1
from repro.errors import DMAProtectionError, ReproError
from repro.hw.apic import APIC
from repro.hw.cpu import CPU, GDT
from repro.hw.dev import DeviceExclusionVector
from repro.hw.devices import DMADevice, HardwareDebugger
from repro.hw.memory import PhysicalMemory
from repro.hw import skinit as skinit_mod
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRNG
from repro.sim.timing import DEFAULT_PROFILE, TimingProfile
from repro.sim.trace import EventTrace
from repro.tpm.tpm import LOCALITY_CPU, LOCALITY_OS, TPM, TPMInterface

#: Default physical memory: 128 MB is plenty for the simulated workloads.
DEFAULT_MEMORY_BYTES = 128 * 1024 * 1024

#: Entry routine type for registered SLB executables.
EntryRoutine = Callable[["Machine", Any, int], Any]


class Machine:
    """One simulated SVM-capable computer with a v1.2 TPM."""

    def __init__(
        self,
        profile: TimingProfile = DEFAULT_PROFILE,
        memory_bytes: int = DEFAULT_MEMORY_BYTES,
        num_cores: int = 2,
        seed: int = 2008,
        tpm_key_bits: int = 512,
        intel_acm_authority=None,
        multicore_isolation: bool = False,
        tpm_jitter_fraction: float = 0.0,
        clock: Optional[VirtualClock] = None,
        machine_id: Optional[str] = None,
    ) -> None:
        self.profile = profile
        #: The machine's clock: a plain :class:`VirtualClock` by default
        #: (one serial timeline), or a caller-supplied
        #: :class:`~repro.sim.sched.ScheduledClock` when this machine is
        #: one of many on a shared event schedule.
        self.clock = clock if clock is not None else VirtualClock()
        #: Fleet identity (``None`` on standalone machines).  Stamped into
        #: observability spans/events so exported traces get one track per
        #: machine, and used to address fault-injection specs per machine.
        self.machine_id = machine_id
        self.trace = EventTrace()
        self.rng = DeterministicRNG(seed)
        self.memory = PhysicalMemory(memory_bytes)
        self.dev = DeviceExclusionVector()
        self.cpu = CPU(num_cores=num_cores)
        self.apic = APIC(self.cpu)
        self.tpm = TPM(
            clock=self.clock,
            trace=self.trace,
            rng=self.rng,
            timings=profile.tpm,
            key_bits=tpm_key_bits,
            jitter_fraction=tpm_jitter_fraction,
        )
        #: Locality-4 TPM interface; held by the machine, never by software.
        self.cpu_tpm_interface: TPMInterface = self.tpm.interface(LOCALITY_CPU)
        #: Optional fault injector (:class:`repro.faults.FaultInjector`).
        #: ``None`` means the platform runs fault-free; components signal
        #: injection points through :meth:`fire_fault` regardless.
        self.fault_injector = None
        #: Optional observability hub (:class:`repro.obs.ObservabilityHub`).
        #: ``None`` (the default) disables all instrumentation at the cost
        #: of one attribute test per site; see :meth:`enable_observability`.
        self.obs = None
        self.tpm.fault_hook = self.fire_fault
        self.debugger = HardwareDebugger(self)
        self._dma_devices: Dict[str, DMADevice] = {}
        self._executables: Dict[bytes, EntryRoutine] = {}
        #: Intel TXT support: the ACM authority whose key is fused into the
        #: chipset (None on AMD-only machines; see :mod:`repro.hw.txt`).
        self._intel_acm_authority = intel_acm_authority
        #: Next-generation hardware mode (the paper's §7.5 recommendation
        #: from [19]): secure execution on a subset of cores, letting the
        #: untrusted OS keep running on the others during a session.
        self.multicore_isolation = multicore_isolation

        # Power-on: flat segments covering all of memory on every core.
        boot_gdt = GDT.flat(self.memory.size_bytes, name="boot-gdt")
        for core in self.cpu.cores:
            core.load_gdt(boot_gdt)
            for register in ("cs", "ds", "ss"):
                core.load_segment(register, register)

    # -- observability -----------------------------------------------------------

    #: Hub factory registered by :mod:`repro.obs` when it is imported.
    #: Dependency inversion keeps the observability layer out of the TCB:
    #: hardware code never imports ``repro.obs`` (enforced by TCB001).
    _hub_factory = None

    @classmethod
    def register_hub_factory(cls, factory) -> None:
        """Called by :mod:`repro.obs` to provide the ObservabilityHub
        constructor without the TCB importing the observability layer."""
        cls._hub_factory = factory

    def enable_observability(self):
        """Attach an :class:`repro.obs.ObservabilityHub` and wire it in.

        Every ``clock.span(...)`` becomes a recorded hierarchical span,
        every TPM command a child span plus a latency-histogram sample,
        and the hardware layers start counting SKINITs and DEV-blocked
        DMA.  Idempotent; returns the hub.  Call
        :meth:`disable_observability` to unwire it again.

        Requires :mod:`repro.obs` to have been imported (it registers
        the hub factory); the public entry points that enable
        observability do so.
        """
        if self.obs is None:
            if Machine._hub_factory is None:
                raise ReproError(
                    "observability requires 'import repro.obs' (it registers "
                    "the hub factory; the TCB does not import it itself)"
                )
            self.obs = Machine._hub_factory(self.clock, machine=self.machine_id)
            self.clock.set_span_listener(self.obs)
            self.tpm.obs = self.obs
        return self.obs

    def disable_observability(self) -> None:
        """Detach the hub: instrumentation reverts to zero-overhead mode."""
        self.obs = None
        self.clock.set_span_listener(None)
        self.tpm.obs = None

    # -- fault injection ---------------------------------------------------------

    def fire_fault(self, point: str, **context: Any) -> Any:
        """Signal a named injection point to the installed fault injector.

        Returns whatever the injector's handler returns (``None`` when no
        injector is installed or the point is not armed).  Handlers may
        raise typed errors to model the fault, or return replacement data
        (e.g. corrupted NV contents)."""
        if self.fault_injector is None:
            return None
        return self.fault_injector.fire(point, self, **context)

    # -- software-visible TPM access -------------------------------------------

    def os_tpm_interface(self) -> TPMInterface:
        """A locality-0 TPM interface, as used by OS drivers and PALs."""
        return self.tpm.interface(LOCALITY_OS)

    # -- DMA bridge --------------------------------------------------------------

    def attach_dma_device(self, name: str) -> DMADevice:
        """Attach a DMA-capable peripheral and return its handle."""
        device = DMADevice(self, name)
        self._dma_devices[name] = device
        return device

    def dma_read(self, device: DMADevice, addr: int, length: int) -> bytes:
        """DMA read on behalf of ``device``; consults the DEV."""
        try:
            self.dev.check_dma(addr, length, device.name)
        except DMAProtectionError:
            self.trace.emit(self.clock.now(), "dev", "dma_blocked",
                            device=device.name, addr=addr, length=length)
            if self.obs is not None:
                self.obs.registry.counter(
                    "dev_dma_blocked_total", "DMA transfers denied by the DEV"
                ).inc(device=device.name, direction="read")
            raise
        self.trace.emit(self.clock.now(), "dev", "dma_read",
                        device=device.name, addr=addr, length=length)
        if self.obs is not None:
            self.obs.registry.counter(
                "dev_dma_total", "DMA transfers allowed through the DEV"
            ).inc(device=device.name, direction="read")
        return self.memory.read(addr, length)

    def dma_write(self, device: DMADevice, addr: int, data: bytes) -> None:
        """DMA write on behalf of ``device``; consults the DEV."""
        try:
            self.dev.check_dma(addr, len(data), device.name)
        except DMAProtectionError:
            self.trace.emit(self.clock.now(), "dev", "dma_blocked",
                            device=device.name, addr=addr, length=len(data))
            if self.obs is not None:
                self.obs.registry.counter(
                    "dev_dma_blocked_total", "DMA transfers denied by the DEV"
                ).inc(device=device.name, direction="write")
            raise
        self.trace.emit(self.clock.now(), "dev", "dma_write",
                        device=device.name, addr=addr, length=len(data))
        if self.obs is not None:
            self.obs.registry.counter(
                "dev_dma_total", "DMA transfers allowed through the DEV"
            ).inc(device=device.name, direction="write")
        self.memory.write(addr, data)

    # -- SLB executable registry ---------------------------------------------------

    def register_executable(self, image: bytes, entry_routine: EntryRoutine) -> bytes:
        """Register the entry routine for an SLB image.

        The registry key is the SHA-1 of the *measured* portion of the
        image (its declared length), mirroring how real hardware would
        simply execute whatever bytes are present: dispatch is by content,
        so replacing the bytes in memory changes what runs.
        Returns the measurement.
        """
        length, _ = skinit_mod.parse_slb_header(image)
        measurement = sha1(image[:length])
        self._executables[measurement] = entry_routine
        return measurement

    def lookup_executable(self, measurement: bytes) -> Optional[EntryRoutine]:
        """Entry routine for a measured SLB, or ``None`` if unknown."""
        return self._executables.get(measurement)

    # -- instructions ---------------------------------------------------------------

    def skinit(self, core_id: int, slb_base: int) -> Any:
        """Execute the SKINIT instruction (see :mod:`repro.hw.skinit`)."""
        return skinit_mod.skinit(self, core_id, slb_base)

    @property
    def intel_acm_key(self):
        """The chipset-fused ACM verification key, or ``None`` on machines
        without TXT support."""
        if self._intel_acm_authority is None:
            return None
        return self._intel_acm_authority.public_key

    def senter(self, core_id: int, acm, mle_base: int) -> Any:
        """Execute GETSEC[SENTER] (see :mod:`repro.hw.txt`)."""
        from repro.hw import txt as txt_mod

        return txt_mod.senter(self, core_id, acm, mle_base)

    # -- host-CPU work accounting ------------------------------------------------------

    def charge_host_sha1(self, num_bytes: int, label: str = "sha1") -> None:
        """Charge virtual time for hashing ``num_bytes`` on the host CPU."""
        self.clock.advance(self.profile.host.sha1_ms_per_kb * num_bytes / 1024.0)
        self.trace.emit(self.clock.now(), "cpu", "hash", label=label, nbytes=num_bytes)

    def charge_work(self, ms: float, label: str) -> None:
        """Charge arbitrary application work time to the virtual clock."""
        self.clock.advance(ms)
        self.trace.emit(self.clock.now(), "cpu", "work", label=label, ms=ms)

    # -- lifecycle ------------------------------------------------------------------------

    def reboot(self) -> None:
        """Power-cycle the platform.

        Static PCRs reset to zero and dynamic PCRs to −1 (paper §2.3), the
        DEV clears, and all cores return to ring 0 with interrupts enabled.
        Physical memory is *not* cleared — cold-boot remanence is part of
        the TCG threat model's exclusions, and keeping it makes the
        simulation's "secrets must be erased before exit" tests honest.
        """
        self.tpm.reboot()
        self.dev.clear()
        for core in self.cpu.cores:
            core.ring = 0
            core.interrupts_enabled = True
            core.debug_access_enabled = True
            core.paging_enabled = True
            core.halted = False
            core.received_init_ipi = False
        self.trace.emit(self.clock.now(), "cpu", "reboot")
