"""CPU model: cores, privilege rings, segmentation, paging state.

The model is *functional*, not cycle-accurate: it tracks exactly the
architectural state Flicker's correctness and security depend on —

* which core is the Boot Strap Processor (SKINIT may only run there);
* whether each Application Processor is idle and has taken an INIT IPI
  (SKINIT's multi-core handshake requirement);
* the current privilege ring of each core (SKINIT is a ring-0 instruction;
  the OS-Protection module drops the PAL to ring 3);
* the active GDT and segment registers (the SLB Core's segment-base trick
  that lets non-position-independent PAL code believe it starts at 0);
* paging state (CR3 and whether paging is enabled — SKINIT enters flat
  32-bit protected mode with paging disabled);
* the interrupt and debug-access flags SKINIT clears.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import PrivilegeError, SegmentationFault


@dataclass
class SegmentDescriptor:
    """A simplified GDT segment descriptor: base, limit, and DPL."""

    name: str
    base: int
    limit: int  # size in bytes; valid offsets are [0, limit)
    dpl: int = 0  # descriptor privilege level
    executable: bool = False

    def translate(self, offset: int, length: int = 1) -> int:
        """Translate a segment offset to a physical address, enforcing the
        segment limit.  Raises :class:`SegmentationFault` on overflow."""
        if offset < 0 or offset + length > self.limit:
            raise SegmentationFault(
                f"offset [{offset:#x}, {offset + length:#x}) exceeds limit "
                f"{self.limit:#x} of segment {self.name!r}"
            )
        return self.base + offset


class GDT:
    """Global Descriptor Table: a small named collection of descriptors."""

    def __init__(self, name: str = "gdt") -> None:
        self.name = name
        self._entries: Dict[str, SegmentDescriptor] = {}

    def install(self, descriptor: SegmentDescriptor) -> None:
        """Add or replace a descriptor."""
        self._entries[descriptor.name] = descriptor

    def lookup(self, name: str) -> SegmentDescriptor:
        """Fetch a descriptor; raises :class:`SegmentationFault` if absent."""
        try:
            return self._entries[name]
        except KeyError:
            raise SegmentationFault(f"no descriptor {name!r} in {self.name}") from None

    def names(self) -> List[str]:
        """Installed descriptor names."""
        return sorted(self._entries)

    @classmethod
    def flat(cls, memory_size: int, name: str = "flat-gdt") -> "GDT":
        """A GDT whose code/data/stack segments cover all of memory — the
        configuration the untrusted OS runs with."""
        gdt = cls(name)
        gdt.install(SegmentDescriptor("cs", 0, memory_size, dpl=0, executable=True))
        gdt.install(SegmentDescriptor("ds", 0, memory_size, dpl=0))
        gdt.install(SegmentDescriptor("ss", 0, memory_size, dpl=0))
        return gdt


@dataclass
class TaskStateSegment:
    """Skeleton TSS: enough to model the ring-3 → ring-0 return path that
    the OS-Protection module uses (paper §5.1.2)."""

    ring0_stack_base: int = 0
    ring0_entry: str = ""  # symbolic label of the SLB Core re-entry point


@dataclass
class CPUCore:
    """One core of the simulated processor."""

    core_id: int
    is_bsp: bool
    ring: int = 0
    interrupts_enabled: bool = True
    debug_access_enabled: bool = True
    paging_enabled: bool = True
    cr3: int = 0
    halted: bool = False
    received_init_ipi: bool = False
    gdt: Optional[GDT] = None
    segments: Dict[str, str] = field(default_factory=dict)  # reg -> descriptor name
    tss: Optional[TaskStateSegment] = None

    # -- privilege ------------------------------------------------------------

    def require_ring(self, max_ring: int, what: str) -> None:
        """Raise unless the core is at privilege level ``max_ring`` or
        better (numerically lower)."""
        if self.ring > max_ring:
            raise PrivilegeError(
                f"{what} requires CPL<={max_ring}, core {self.core_id} is at CPL={self.ring}"
            )

    def load_gdt(self, gdt: GDT) -> None:
        """LGDT: make ``gdt`` the active descriptor table."""
        self.gdt = gdt

    def load_segment(self, register: str, descriptor_name: str) -> None:
        """Load a segment register (cs/ds/ss/...) with a descriptor from the
        active GDT."""
        if self.gdt is None:
            raise SegmentationFault("no GDT loaded")
        self.gdt.lookup(descriptor_name)  # validate existence
        self.segments[register] = descriptor_name

    def active_segment(self, register: str) -> SegmentDescriptor:
        """The descriptor currently loaded in ``register``."""
        if self.gdt is None:
            raise SegmentationFault("no GDT loaded")
        name = self.segments.get(register)
        if name is None:
            raise SegmentationFault(f"segment register {register!r} not loaded")
        return self.gdt.lookup(name)

    # -- saved-state snapshots --------------------------------------------------

    def snapshot(self) -> Dict:
        """Capture the state the flicker-module must restore after a session."""
        return {
            "ring": self.ring,
            "interrupts_enabled": self.interrupts_enabled,
            "paging_enabled": self.paging_enabled,
            "cr3": self.cr3,
            "gdt": self.gdt,
            "segments": dict(self.segments),
            "debug_access_enabled": self.debug_access_enabled,
        }

    def restore(self, snapshot: Dict) -> None:
        """Restore a snapshot taken with :meth:`snapshot`."""
        self.ring = snapshot["ring"]
        self.interrupts_enabled = snapshot["interrupts_enabled"]
        self.paging_enabled = snapshot["paging_enabled"]
        self.cr3 = snapshot["cr3"]
        self.gdt = snapshot["gdt"]
        self.segments = dict(snapshot["segments"])
        self.debug_access_enabled = snapshot["debug_access_enabled"]


class CPU:
    """A multi-core SVM-capable processor.

    Core 0 is the Boot Strap Processor; the rest are Application
    Processors.  The paper's test machine is a dual-core Athlon64 X2, so the
    default is two cores.
    """

    def __init__(self, num_cores: int = 2) -> None:
        if num_cores < 1:
            raise PrivilegeError("a CPU needs at least one core")
        self.cores: List[CPUCore] = [
            CPUCore(core_id=i, is_bsp=(i == 0)) for i in range(num_cores)
        ]

    @property
    def bsp(self) -> CPUCore:
        """The Boot Strap Processor (core 0)."""
        return self.cores[0]

    @property
    def aps(self) -> List[CPUCore]:
        """The Application Processors (all cores except the BSP)."""
        return self.cores[1:]

    def all_aps_quiesced(self) -> bool:
        """True when every AP is halted and has acknowledged an INIT IPI —
        the precondition SKINIT's handshake verifies."""
        return all(core.halted and core.received_init_ipi for core in self.aps)
