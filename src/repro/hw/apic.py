"""Advanced Programmable Interrupt Controller (IPI delivery).

The flicker-module sends INIT inter-processor interrupts to the Application
Processors after descheduling them (paper §4.2, "Suspend OS"): SKINIT's
handshake requires every AP to have taken an INIT IPI.  A busy AP (one still
running a process) cannot take the IPI — the OS must use CPU hotplug first.
"""

from __future__ import annotations

from repro.errors import SkinitError
from repro.hw.cpu import CPU


class APIC:
    """Minimal APIC model: INIT IPI broadcast and per-core delivery."""

    def __init__(self, cpu: CPU) -> None:
        self._cpu = cpu

    def send_init_ipi(self, core_id: int) -> None:
        """Deliver an INIT IPI to one AP.

        Raises :class:`SkinitError` if the target is the BSP (the BSP must
        keep running to execute SKINIT) or if the AP is still executing
        processes (it has not been descheduled).
        """
        core = self._cpu.cores[core_id]
        if core.is_bsp:
            raise SkinitError("cannot send INIT IPI to the BSP")
        if not core.halted:
            raise SkinitError(
                f"AP {core_id} is still executing; deschedule it (CPU hotplug) "
                "before sending INIT"
            )
        core.received_init_ipi = True

    def broadcast_init_ipi(self) -> None:
        """Send INIT to every AP (what the flicker-module does)."""
        for core in self._cpu.aps:
            self.send_init_ipi(core.core_id)

    def release_aps(self) -> None:
        """Clear INIT state when the OS resumes and reschedules the APs."""
        for core in self._cpu.aps:
            core.received_init_ipi = False
