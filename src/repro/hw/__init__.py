"""Simulated hardware platform: an SVM-capable x86 machine.

This package models the hardware Flicker depends on, at the level of
abstraction the paper's security argument needs:

* :mod:`repro.hw.memory` — sparse physical memory with page-granular
  accounting.
* :mod:`repro.hw.dev` — the Device Exclusion Vector that blocks DMA to
  protected pages.
* :mod:`repro.hw.cpu` — CPU cores with privilege rings, GDT/TSS
  segmentation, paging state, and interrupt control; the BSP/AP distinction
  that SKINIT's multi-core handshake requires.
* :mod:`repro.hw.apic` — INIT inter-processor interrupts.
* :mod:`repro.hw.devices` — DMA-capable peripherals (NIC, block devices)
  and a hardware debugger, used by tests to *attack* protected memory.
* :mod:`repro.hw.skinit` — the SKINIT instruction semantics.
* :mod:`repro.hw.machine` — the assembled platform (CPU + memory + TPM +
  devices + virtual clock + trace).
"""

from repro.hw.memory import PAGE_SIZE, PhysicalMemory
from repro.hw.dev import DeviceExclusionVector
from repro.hw.cpu import CPU, CPUCore, SegmentDescriptor, GDT, TaskStateSegment
from repro.hw.apic import APIC
from repro.hw.devices import DMADevice, HardwareDebugger
from repro.hw.machine import Machine

__all__ = [
    "PAGE_SIZE",
    "PhysicalMemory",
    "DeviceExclusionVector",
    "CPU",
    "CPUCore",
    "SegmentDescriptor",
    "GDT",
    "TaskStateSegment",
    "APIC",
    "DMADevice",
    "HardwareDebugger",
    "Machine",
]
