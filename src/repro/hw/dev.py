"""Device Exclusion Vector (DEV).

AMD SVM's DEV is a bitmap over physical pages; a set bit blocks all DMA to
that page.  When the processor executes SKINIT it sets the DEV bits for the
64-KB region starting at the SLB base (paper §2.4); preparatory code inside
the SLB may extend protection to further pages before touching them (paper
§4.2, "SKINIT and the SLB Core").
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.errors import DMAProtectionError
from repro.hw.memory import PAGE_SIZE, PhysicalMemory


class DeviceExclusionVector:
    """Page-granular DMA protection bitmap."""

    def __init__(self) -> None:
        self._protected: Set[int] = set()
        #: Chronological record of blocked transfers as
        #: ``(device_name, addr, length)`` tuples (diagnostics / fault
        #: campaigns; the DEV itself is stateless about failures).
        self.blocked_attempts: List[Tuple[str, int, int]] = []

    def protect_range(self, addr: int, length: int) -> None:
        """Set DEV bits for all pages overlapping [addr, addr+length)."""
        self._protected.update(PhysicalMemory.page_range(addr, length))

    def unprotect_range(self, addr: int, length: int) -> None:
        """Clear DEV bits for all pages overlapping [addr, addr+length)."""
        self._protected.difference_update(PhysicalMemory.page_range(addr, length))

    def clear(self) -> None:
        """Clear the entire vector (OS resume path)."""
        self._protected.clear()

    def is_page_protected(self, page_index: int) -> bool:
        """True if the DEV bit for ``page_index`` is set."""
        return page_index in self._protected

    def protected_pages(self) -> Set[int]:
        """Copy of the protected page set (diagnostics)."""
        return set(self._protected)

    def check_dma(self, addr: int, length: int, device_name: str) -> None:
        """Raise :class:`DMAProtectionError` if any page in the range is
        protected.  Called by the machine's DMA bridge on every transfer."""
        for page in PhysicalMemory.page_range(addr, length):
            if page in self._protected:
                self.blocked_attempts.append((device_name, addr, length))
                raise DMAProtectionError(
                    f"DEV blocked DMA by {device_name!r} to page {page:#x} "
                    f"(range [{addr:#x}, {addr + length:#x}))"
                )

    def __len__(self) -> int:
        return len(self._protected)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DeviceExclusionVector({len(self._protected)} pages protected)"
