"""Intel TXT late launch: GETSEC[SENTER].

Paper §2.4: "Intel offers similar capabilities with their Trusted
eXecution Technology (TXT, formerly LaGrande Technology) … Intel's TXT
technology functions analogously."  The reproduction includes the TXT
variant so the claim is demonstrable, with the architectural differences
that matter modelled:

* SENTER does not jump directly to user code: it first loads an
  *Authenticated Code Module* (the SINIT ACM) whose signature must verify
  against the Intel public key fused into the chipset; the ACM then
  launches the *Measured Launch Environment* (MLE) — the TXT analogue of
  the SLB.
* Measurements land in two registers: the SINIT ACM's identity is
  extended into PCR 17 and the MLE's into PCR 18 (the DRTM layout of the
  TXT specification), so a TXT verifier checks a two-register composite
  where an SVM verifier checks one.
* The same protections engage: DMA is blocked (Intel's analogue of the
  DEV is VT-d protected ranges; we reuse the machine's DEV), interrupts
  and debug access are disabled, and the APs must have taken INIT.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.crypto.pkcs1 import pkcs1_sign_sha1, pkcs1_verify_sha1
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, generate_rsa_keypair
from repro.crypto.sha1 import sha1_cached as sha1
from repro.errors import SkinitError, SLBFormatError
from repro.hw.memory import PAGE_SIZE
from repro.sim.rng import DeterministicRNG

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.hw.machine import Machine

#: PCR receiving the SINIT ACM measurement.
ACM_PCR = 17

#: PCR receiving the MLE measurement.
MLE_PCR = 18

#: Size of the region SENTER protects around the MLE (as for SKINIT).
MLE_REGION_SIZE = 64 * 1024


class SINITModule:
    """An SINIT Authenticated Code Module: chipset-specific launch code
    signed by Intel."""

    def __init__(self, code: bytes, signature: bytes, signer: RSAPublicKey) -> None:
        self.code = code
        self.signature = signature
        self.signer = signer

    @property
    def measurement(self) -> bytes:
        """SHA-1 identity of the ACM code."""
        return sha1(self.code)

    def verify(self, chipset_key: RSAPublicKey) -> bool:
        """The processor's check before executing any ACM byte."""
        if self.signer != chipset_key:
            return False
        return pkcs1_verify_sha1(chipset_key, self.code, self.signature)


class IntelACMAuthority:
    """Stand-in for Intel's ACM signing infrastructure.

    One instance per simulated chipset generation: its public key is
    "fused" into the chipset, and only ACMs it signed will SENTER.
    """

    def __init__(self, seed: int = 0x1A7E1) -> None:
        self._keys: RSAKeyPair = generate_rsa_keypair(
            512, DeterministicRNG(seed).fork("intel-acm")
        )

    @property
    def public_key(self) -> RSAPublicKey:
        """The chipset-fused verification key."""
        return self._keys.public

    def sign_acm(self, code: bytes) -> SINITModule:
        """Produce a production-signed SINIT module."""
        return SINITModule(
            code=code,
            signature=pkcs1_sign_sha1(self._keys.private, code),
            signer=self._keys.public,
        )


def senter(machine: "Machine", core_id: int, acm: SINITModule, mle_base: int) -> Any:
    """Execute GETSEC[SENTER]: authenticate the ACM, engage protections,
    measure ACM and MLE, and jump into the MLE.

    Mirrors :func:`repro.hw.skinit.skinit` with TXT's two-stage launch.
    The MLE at ``mle_base`` uses the same header format as an SLB (16-bit
    length and entry words) and dispatches through the machine's
    executable registry keyed on the MLE measurement.
    """
    core = machine.cpu.cores[core_id]
    core.require_ring(0, "GETSEC[SENTER]")
    if not core.is_bsp:
        raise SkinitError("SENTER can only be run on the bootstrap processor (ILP)")
    if not machine.cpu.all_aps_quiesced():
        raise SkinitError("SENTER rendezvous failed: APs not idle with INIT received")
    if mle_base % PAGE_SIZE:
        raise SkinitError(f"MLE base {mle_base:#x} is not page aligned")

    # Stage 1: the processor authenticates the ACM before running it.
    chipset_key = machine.intel_acm_key
    if chipset_key is None:
        raise SkinitError("this machine's chipset has no TXT support (no ACM key)")
    if not acm.verify(chipset_key):
        raise SkinitError("SINIT ACM signature rejected by the chipset")

    from repro.hw.skinit import parse_slb_header

    header = machine.memory.read(mle_base, 4)
    length, entry = parse_slb_header(header)
    if length < 4 or length > MLE_REGION_SIZE:
        raise SLBFormatError(f"MLE length {length} outside 4..{MLE_REGION_SIZE}")
    if entry >= length:
        raise SLBFormatError("MLE entry point outside measured region")

    # Protections (VT-d ranges modelled via the DEV, as for SVM).
    machine.dev.protect_range(mle_base, MLE_REGION_SIZE)
    core.interrupts_enabled = False
    core.debug_access_enabled = False
    core.paging_enabled = False
    core.ring = 0

    # Measurements: ACM → PCR 17, MLE → PCR 18.
    machine.cpu_tpm_interface.dynamic_pcr_reset()
    machine.tpm.pcrs.extend(ACM_PCR, acm.measurement)
    mle_bytes = machine.memory.read(mle_base, length)
    mle_measurement = sha1(mle_bytes)
    machine.tpm.pcrs.extend(MLE_PCR, mle_measurement)

    # Cost: the ACM plus the MLE stream to the TPM (same transfer-rate
    # model as SKINIT; TXT-era chipsets were comparable).
    with machine.clock.span("senter"):
        machine.clock.advance(
            machine.profile.tpm.skinit_ms(len(acm.code) + length)
        )
    machine.trace.emit(
        machine.clock.now(), "cpu", "senter",
        mle_base=mle_base, length=length,
        acm=acm.measurement.hex(), mle=mle_measurement.hex(),
    )

    entry_routine = machine.lookup_executable(mle_measurement)
    if entry_routine is None:
        raise SkinitError(
            f"no executable registered for MLE measurement {mle_measurement.hex()[:16]}…"
        )
    return entry_routine(machine, core, mle_base)
