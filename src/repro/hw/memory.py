"""Sparse physical memory.

Memory is modelled as a flat physical address space backed by 4-KB pages
allocated on first touch.  All reads and writes are bounds-checked; access
*policy* (DEV, segment limits, debug lockout) is enforced by the callers
that mediate each access path — the CPU, the DMA bridge in
:class:`~repro.hw.machine.Machine`, and the PAL memory views in
:mod:`repro.core`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import MemoryFault

#: x86 page size.
PAGE_SIZE = 4096


class PhysicalMemory:
    """Byte-addressable physical memory with sparse page allocation."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes <= 0 or size_bytes % PAGE_SIZE:
            raise MemoryFault("memory size must be a positive multiple of the page size")
        self.size_bytes = size_bytes
        self._pages: Dict[int, bytearray] = {}

    # -- bounds and page helpers ----------------------------------------------

    def _check_range(self, addr: int, length: int) -> None:
        if length < 0:
            raise MemoryFault("negative access length")
        if addr < 0 or addr + length > self.size_bytes:
            raise MemoryFault(
                f"access [{addr:#x}, {addr + length:#x}) outside physical memory "
                f"of {self.size_bytes:#x} bytes"
            )

    def _page(self, index: int) -> bytearray:
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    @staticmethod
    def page_range(addr: int, length: int) -> Iterator[int]:
        """Page indices covered by the byte range [addr, addr+length)."""
        if length <= 0:
            return iter(())
        first = addr // PAGE_SIZE
        last = (addr + length - 1) // PAGE_SIZE
        return iter(range(first, last + 1))

    # -- raw access (policy-free; mediated by callers) -------------------------

    def read(self, addr: int, length: int) -> bytes:
        """Read ``length`` bytes at physical address ``addr``."""
        self._check_range(addr, length)
        out = bytearray()
        remaining = length
        cursor = addr
        while remaining:
            page_index, offset = divmod(cursor, PAGE_SIZE)
            chunk = min(remaining, PAGE_SIZE - offset)
            page = self._pages.get(page_index)
            if page is None:
                out += b"\x00" * chunk
            else:
                out += page[offset : offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` at physical address ``addr``."""
        self._check_range(addr, len(data))
        cursor = addr
        view = memoryview(data)
        while view:
            page_index, offset = divmod(cursor, PAGE_SIZE)
            chunk = min(len(view), PAGE_SIZE - offset)
            self._page(page_index)[offset : offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

    def zeroize(self, addr: int, length: int) -> None:
        """Overwrite a range with zeros (the SLB Core's cleanup step)."""
        self._check_range(addr, length)
        cursor = addr
        remaining = length
        while remaining:
            page_index, offset = divmod(cursor, PAGE_SIZE)
            chunk = min(remaining, PAGE_SIZE - offset)
            page = self._pages.get(page_index)
            if page is not None:
                page[offset : offset + chunk] = b"\x00" * chunk
            cursor += chunk
            remaining -= chunk

    def is_zero(self, addr: int, length: int) -> bool:
        """True if every byte in the range is zero (used by tests to check
        that secrets were erased)."""
        return self.read(addr, length) == b"\x00" * length

    # -- introspection ---------------------------------------------------------

    def allocated_pages(self) -> int:
        """Number of pages that have been touched (for tests/diagnostics)."""
        return len(self._pages)

    def find_bytes(self, needle: bytes) -> Tuple[int, ...]:
        """Physical addresses where ``needle`` occurs in *allocated* pages.

        A forensic helper used by tests that play the adversary: after a
        Flicker session ends, no trace of a PAL secret may remain anywhere
        in RAM.  Matches that straddle page boundaries are found as well.
        """
        if not needle:
            raise MemoryFault("cannot search for an empty pattern")
        hits = []
        overlap = len(needle) - 1
        for index in sorted(self._pages):
            base = index * PAGE_SIZE
            hay = bytes(self._pages[index])
            nxt = self._pages.get(index + 1)
            if overlap and nxt is not None:
                hay += bytes(nxt[:overlap])
            start = 0
            while True:
                pos = hay.find(needle, start)
                if pos < 0:
                    break
                hits.append(base + pos)
                start = pos + 1
        return tuple(sorted(set(hits)))
