"""DMA-capable peripherals and the hardware debugger.

The paper's adversary controls "DMA-enabled devices" such as a compromised
Ethernet card on the PCI bus (§3.1), and may attach a hardware debugger —
but SKINIT disables debug access, "even for hardware debuggers" (§2.4).
These classes give the test suite concrete attack vehicles: a
:class:`DMADevice` issues transfers through the machine's DMA bridge (which
consults the DEV), and a :class:`HardwareDebugger` probes memory through the
debug port (which SKINIT locks out).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import DebugAccessError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.hw.machine import Machine


class DMADevice:
    """A bus-mastering peripheral (e.g. a malicious NIC).

    All accesses go through :meth:`Machine.dma_read` /
    :meth:`Machine.dma_write`, so the Device Exclusion Vector is always
    consulted — exactly the hardware path the paper relies on.
    """

    def __init__(self, machine: "Machine", name: str) -> None:
        self._machine = machine
        self.name = name

    def dma_read(self, addr: int, length: int) -> bytes:
        """Issue a DMA read; raises DMAProtectionError on protected pages."""
        return self._machine.dma_read(self, addr, length)

    def dma_write(self, addr: int, data: bytes) -> None:
        """Issue a DMA write; raises DMAProtectionError on protected pages."""
        self._machine.dma_write(self, addr, data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DMADevice({self.name!r})"


class HardwareDebugger:
    """An attached hardware debugger probing through the debug port."""

    def __init__(self, machine: "Machine") -> None:
        self._machine = machine

    def probe(self, addr: int, length: int) -> bytes:
        """Read memory via the debug interface.

        Raises :class:`DebugAccessError` while a Flicker session has debug
        access disabled.
        """
        if not self._machine.cpu.bsp.debug_access_enabled:
            raise DebugAccessError(
                "hardware debug access is disabled (SKINIT protections active)"
            )
        return self._machine.memory.read(addr, length)
