"""The benchmark registry and its discovery mechanism.

A benchmark is a plain function plus two pinned parameter sets::

    def run(*, sizes=(1, 4, 16)):
        ...
        return {"virtual": {...}, "wall": {...}}

    register("fleet", run,
             params={"sizes": (1, 4, 16, 64)},
             quick_params={"sizes": (1, 4, 16)})

The function must return a dict with a ``virtual`` section containing
only deterministic, JSON-serializable metrics (same parameters and seeds
produce the same values on every host) and an optional ``wall`` section
for host-dependent measurements.  Seeds belong in the parameter set so
the result file records them.

Registration is import-time: :func:`discover` imports every
``benchmarks/bench_*.py`` module once, and whatever registered becomes
runnable.  Modules that only define pytest-benchmark tests simply do not
register and are ignored by the runner.
"""

from __future__ import annotations

import importlib
import pkgutil
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Name of the package scanned by :func:`discover`.
BENCHMARKS_PACKAGE = "benchmarks"

#: Module-name prefix a benchmark module must carry to be imported.
MODULE_PREFIX = "bench_"

_REGISTRY: Dict[str, "Benchmark"] = {}


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark: a callable plus pinned parameters."""

    name: str
    fn: Callable[..., Dict]
    #: Full-fidelity parameter set (local deep runs).
    params: Dict = field(default_factory=dict)
    #: Smaller parameter set used by ``--quick`` and the committed
    #: baselines; defaults to ``params`` when not given.
    quick_params: Optional[Dict] = None
    description: str = ""

    def parameters(self, quick: bool = False) -> Dict:
        """The parameter set selected by ``quick``."""
        if quick and self.quick_params is not None:
            return dict(self.quick_params)
        return dict(self.params)

    def run(self, quick: bool = False) -> Dict:
        """Execute the benchmark; returns its raw metrics dict."""
        metrics = self.fn(**self.parameters(quick))
        if not isinstance(metrics, dict) or "virtual" not in metrics:
            raise TypeError(
                f"benchmark {self.name!r} must return a dict with a "
                f"'virtual' section, got {type(metrics).__name__}")
        return metrics


def register(
    name: str,
    fn: Callable[..., Dict],
    params: Optional[Dict] = None,
    quick_params: Optional[Dict] = None,
    description: str = "",
) -> Benchmark:
    """Register ``fn`` as the benchmark ``name``; returns the record.

    Raises ``ValueError`` on duplicate names — two modules claiming the
    same benchmark is always a bug.
    """
    if name in _REGISTRY:
        raise ValueError(f"benchmark {name!r} is already registered")
    bench = Benchmark(name=name, fn=fn, params=dict(params or {}),
                      quick_params=None if quick_params is None else dict(quick_params),
                      description=description)
    _REGISTRY[name] = bench
    return bench


def unregister(name: str) -> None:
    """Drop a registration (tests use this to clean up fixtures)."""
    _REGISTRY.pop(name, None)


def registered() -> List[str]:
    """Sorted names of every registered benchmark."""
    return sorted(_REGISTRY)


def get_benchmark(name: str) -> Benchmark:
    """Look up one benchmark by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no benchmark {name!r}; registered: {registered()}") from None


def all_benchmarks() -> List[Benchmark]:
    """Every registered benchmark, sorted by name."""
    return [_REGISTRY[name] for name in registered()]


def discover(package: str = BENCHMARKS_PACKAGE) -> List[str]:
    """Import every ``bench_*`` module of ``package`` so registrations run.

    Returns the imported module names.  Modules already imported are not
    re-imported (registration happens exactly once per process).
    """
    pkg = importlib.import_module(package)
    imported = []
    for info in sorted(pkgutil.iter_modules(pkg.__path__), key=lambda i: i.name):
        if info.name.startswith(MODULE_PREFIX):
            importlib.import_module(f"{package}.{info.name}")
            imported.append(info.name)
    return imported
