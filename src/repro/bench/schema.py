"""The ``BENCH_<name>.json`` result schema.

Version ``repro-bench/1``.  A result document has exactly these
top-level keys:

``schema``
    The literal version string (bump on incompatible change).
``name``
    The registered benchmark name.
``quick``
    Whether the quick parameter set was used.
``params``
    The exact parameters (including seeds) the run used.
``virtual``
    Deterministic metrics — virtual-time measurements, counts, digests.
    Byte-identical across hosts and runs for the same parameters; the
    compare gate requires *exact* equality here.
``wall``
    Host-dependent metrics (wall seconds, throughput per wall second).
    Gated within a tolerance percentage.
``meta``
    Provenance: git sha, host fingerprint, tool name.  Never compared.

Canonical serialization (:func:`result_json`) sorts keys and pins
separators/indentation, so identical content is identical bytes.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from pathlib import Path
from typing import Dict, Optional

#: Current schema version tag.
SCHEMA_VERSION = "repro-bench/1"

#: Top-level keys every result document carries, in canonical order.
REQUIRED_KEYS = ("schema", "name", "quick", "params", "virtual", "wall", "meta")


class SchemaError(ValueError):
    """A result document violates the ``repro-bench/1`` schema."""


def git_sha(repo_root: Optional[Path] = None) -> str:
    """Current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def host_fingerprint() -> Dict[str, str]:
    """Where the numbers came from — recorded, never compared."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def build_result(
    name: str,
    params: Dict,
    metrics: Dict,
    quick: bool,
    wall_seconds: float,
    repo_root: Optional[Path] = None,
) -> Dict:
    """Assemble a schema-valid result document from a benchmark run.

    ``metrics`` is what the benchmark function returned: a ``virtual``
    section plus an optional ``wall`` section, which is merged with the
    runner-measured ``wall_seconds``.
    """
    wall = dict(metrics.get("wall", {}))
    wall["wall_seconds"] = round(wall_seconds, 3)
    result = {
        "schema": SCHEMA_VERSION,
        "name": name,
        "quick": quick,
        "params": _jsonify(params),
        "virtual": _jsonify(metrics["virtual"]),
        "wall": _jsonify(wall),
        "meta": {
            "git_sha": git_sha(repo_root),
            "host": host_fingerprint(),
            "tool": "python -m repro.tools.bench",
        },
    }
    validate_result(result)
    return result


def validate_result(result: Dict) -> None:
    """Raise :class:`SchemaError` unless ``result`` is schema-valid."""
    if not isinstance(result, dict):
        raise SchemaError(f"result must be a dict, got {type(result).__name__}")
    missing = [k for k in REQUIRED_KEYS if k not in result]
    if missing:
        raise SchemaError(f"result is missing keys {missing}")
    extra = [k for k in result if k not in REQUIRED_KEYS]
    if extra:
        raise SchemaError(f"result has unknown keys {extra}")
    if result["schema"] != SCHEMA_VERSION:
        raise SchemaError(
            f"schema {result['schema']!r} != expected {SCHEMA_VERSION!r}")
    if not isinstance(result["name"], str) or not result["name"]:
        raise SchemaError("result name must be a non-empty string")
    if not isinstance(result["quick"], bool):
        raise SchemaError("quick flag must be a bool")
    for section in ("params", "virtual", "wall", "meta"):
        if not isinstance(result[section], dict):
            raise SchemaError(f"{section!r} section must be a dict")
    try:
        json.dumps(result, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"result is not JSON-serializable: {exc}") from None


def result_json(result: Dict) -> str:
    """Canonical encoding: identical content produces identical bytes."""
    return json.dumps(result, sort_keys=True, indent=2,
                      separators=(",", ": ")) + "\n"


def result_filename(name: str) -> str:
    """``BENCH_<name>.json`` (benchmark names are filename-safe slugs)."""
    return f"BENCH_{name}.json"


def _jsonify(value):
    """Round-trip-stable JSON shape: tuples become lists, keys strings."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, bytes):
        return value.hex()
    return value
