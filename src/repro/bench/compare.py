"""Baseline comparison — the CI perf-regression gate.

Two documents compare in three tiers:

* ``params`` must match exactly — otherwise the two runs measured
  different workloads and any comparison is meaningless (this catches
  quick-vs-full mixups before they produce confusing diffs).
* ``virtual`` must match exactly, leaf by leaf.  Virtual-time results
  are deterministic by construction; *any* drift is a behavior change,
  not noise.
* ``wall`` leaves named ``*_seconds`` and present in both documents must
  not regress past ``fail_over_pct`` percent *plus* an absolute slack of
  :data:`WALL_SLACK_SECONDS` — sub-second benchmarks jitter far beyond
  any percentage on shared CI hosts, and the slack keeps the gate about
  real slowdowns rather than scheduler noise.  Other wall leaves (e.g.
  nanosecond guard prices) are informational and never gated.

>>> from repro.bench.compare import compare_results
>>> base = {"params": {"n": 2}, "virtual": {"ms": 10.0}, "wall": {"wall_seconds": 1.0}}
>>> cur = {"params": {"n": 2}, "virtual": {"ms": 10.0}, "wall": {"wall_seconds": 1.1}}
>>> compare_results(cur, base, fail_over_pct=20.0)
[]
>>> cur["virtual"]["ms"] = 11.0
>>> [f.kind for f in compare_results(cur, base, fail_over_pct=20.0)]
['virtual-drift']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Absolute headroom added on top of the percentage gate for wall
#: metrics: a run must be both ``fail_over_pct`` percent slower *and*
#: this many seconds slower before the gate fails.
WALL_SLACK_SECONDS = 1.0


@dataclass(frozen=True)
class CompareFinding:
    """One comparison failure, renderable as a single report line."""

    #: ``params-mismatch`` | ``virtual-drift`` | ``wall-regression`` |
    #: ``missing-baseline`` | ``schema-mismatch``
    kind: str
    #: Dotted path of the offending leaf (empty for document-level kinds).
    path: str
    message: str

    def __str__(self) -> str:
        where = f" at {self.path}" if self.path else ""
        return f"[{self.kind}]{where}: {self.message}"


def strip_volatile(result: Dict) -> Dict:
    """The byte-deterministic portion of a result document.

    Drops the ``wall`` and ``meta`` sections — everything that may
    legitimately differ between two runs of the same benchmark at the
    same commit.  Determinism tests compare these stripped documents.
    """
    return {k: v for k, v in result.items() if k not in ("wall", "meta")}


def _leaves(value, path: str = "") -> List[Tuple[str, object]]:
    """Flatten nested dicts/lists to (dotted-path, leaf) pairs."""
    if isinstance(value, dict):
        out: List[Tuple[str, object]] = []
        for key in sorted(value):
            out.extend(_leaves(value[key], f"{path}.{key}" if path else str(key)))
        return out
    if isinstance(value, list):
        out = []
        for i, item in enumerate(value):
            out.extend(_leaves(item, f"{path}[{i}]"))
        return out
    return [(path, value)]


def compare_results(current: Dict, baseline: Dict,
                    fail_over_pct: float) -> List[CompareFinding]:
    """Gate ``current`` against ``baseline``; returns failures (empty = pass)."""
    findings: List[CompareFinding] = []

    cur_schema = current.get("schema")
    base_schema = baseline.get("schema")
    if cur_schema != base_schema and (cur_schema or base_schema):
        findings.append(CompareFinding(
            "schema-mismatch", "",
            f"current schema {cur_schema!r} vs baseline {base_schema!r} "
            f"(regenerate the baseline)"))
        return findings

    if current.get("params") != baseline.get("params"):
        findings.append(CompareFinding(
            "params-mismatch", "",
            f"current params {current.get('params')!r} != baseline "
            f"{baseline.get('params')!r} — was the baseline generated in a "
            f"different mode (quick vs full)?"))
        return findings

    cur_virtual = dict(_leaves(current.get("virtual", {})))
    base_virtual = dict(_leaves(baseline.get("virtual", {})))
    for path in sorted(set(cur_virtual) | set(base_virtual)):
        if path not in cur_virtual:
            findings.append(CompareFinding(
                "virtual-drift", path, "metric disappeared from current run"))
        elif path not in base_virtual:
            findings.append(CompareFinding(
                "virtual-drift", path,
                "new metric absent from baseline (refresh the baseline)"))
        elif cur_virtual[path] != base_virtual[path]:
            findings.append(CompareFinding(
                "virtual-drift", path,
                f"{base_virtual[path]!r} -> {cur_virtual[path]!r} "
                f"(virtual metrics must match exactly)"))

    cur_wall = dict(_leaves(current.get("wall", {})))
    base_wall = dict(_leaves(baseline.get("wall", {})))
    for path in sorted(set(cur_wall) & set(base_wall)):
        if not path.split(".")[-1].endswith("_seconds"):
            continue  # informational wall metric, never gated
        cur_v, base_v = cur_wall[path], base_wall[path]
        if not _numeric(cur_v) or not _numeric(base_v):
            continue
        if base_v == 0:
            continue  # nothing to take a percentage of
        delta_pct = (cur_v - base_v) / abs(base_v) * 100.0
        delta_abs = cur_v - base_v
        if delta_pct > fail_over_pct and delta_abs > WALL_SLACK_SECONDS:
            findings.append(CompareFinding(
                "wall-regression", path,
                f"{base_v} -> {cur_v} (+{delta_pct:.1f}% > "
                f"{fail_over_pct:.0f}% gate and +{delta_abs:.2f}s > "
                f"{WALL_SLACK_SECONDS:.1f}s slack)"))
    return findings


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
