"""Unified benchmark framework.

The repository's benchmarks live in ``benchmarks/bench_*.py``.  Each
module may call :func:`register` at import time to expose a *runnable*
benchmark — a plain function returning JSON-friendly metrics — to the
unified runner (``python -m repro.tools.bench``).  The runner

* discovers every registered benchmark by importing the ``benchmarks``
  package,
* runs each with its pinned parameters (``--quick`` selects the smaller
  parameter set committed baselines are generated with),
* emits one schema-versioned ``BENCH_<name>.json`` per benchmark whose
  ``virtual`` section is byte-deterministic (same seed, same bytes on
  any host) while host-dependent numbers live under ``wall``/``meta``,
* and, with ``--compare BASELINE --fail-over PCT``, exits non-zero when
  a virtual metric drifts *at all* or a wall metric regresses by more
  than the gate percentage.

>>> from repro.bench import Benchmark, register, registered
>>> bench = register("doctest-demo", lambda trials: {"virtual": {"t": trials}},
...                  params={"trials": 4}, quick_params={"trials": 2})
>>> bench.run(quick=True)["virtual"]
{'t': 2}
>>> "doctest-demo" in registered()
True
>>> from repro.bench.registry import unregister
>>> unregister("doctest-demo")
"""

from repro.bench.compare import CompareFinding, compare_results, strip_volatile
from repro.bench.registry import (
    Benchmark,
    all_benchmarks,
    discover,
    get_benchmark,
    register,
    registered,
)
from repro.bench.schema import (
    SCHEMA_VERSION,
    SchemaError,
    build_result,
    result_filename,
    result_json,
    validate_result,
)

__all__ = [
    "Benchmark",
    "CompareFinding",
    "SCHEMA_VERSION",
    "SchemaError",
    "all_benchmarks",
    "build_result",
    "compare_results",
    "discover",
    "get_benchmark",
    "register",
    "registered",
    "result_filename",
    "result_json",
    "strip_volatile",
    "validate_result",
]
