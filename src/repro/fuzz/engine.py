"""The campaign engine: seeded, sharded, coverage-guided fuzzing.

A campaign splits its execution budget over a *fixed* number of shards
(default 8) regardless of worker count.  Each shard is a self-contained
coverage-guided loop — its own RNG fork, its own corpus of interesting
cases, its own edge map — executed via
:func:`repro.sim.parallel.map_seeded` and merged in shard order.  Because
shard results are pure functions of ``(campaign seed, shard index)`` and
the merge is ordered, the final report is **byte-identical at any worker
count** — the property the acceptance tests pin.

Within a shard the classic AFL loop applies: pick a parent from the
interesting set (biased toward recent additions), apply 1–4 mutations,
execute under the edge collector, and keep the child if it covered new
edges.  Counterexamples are minimized immediately, in-shard, so the
merged report only ever contains minimal reproducers.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.fuzz.case import TARGETS, FuzzCase
from repro.fuzz.coverage import CoverageMap, EdgeCollector
from repro.fuzz.minimize import minimize_case
from repro.fuzz.mutators import mutate, seed_corpus
from repro.fuzz.targets import run_case
from repro.sim.rng import DeterministicRNG

DEFAULT_SHARDS = 8


def _reset_hot_caches() -> None:
    """Pin every shard's starting cache state to that of a fresh process.

    Edge coverage is sensitive to process-global memoization: a warm
    :data:`repro.crypto.rsa._KEYGEN_CACHE` or ``sha1_cached`` entry skips
    lines a cold one executes, so a shard's edges would depend on what ran
    earlier in the same process — breaking the byte-identical-at-any-
    worker-count guarantee.  Clearing both at shard entry makes shard
    output a pure function of (campaign seed, shard index).
    """
    import importlib

    # importlib.import_module dodges the package attribute shadowing the
    # sha1 *function* over the sha1 *module* in ``import a.b as m`` form.
    rsa_mod = importlib.import_module("repro.crypto.rsa")
    sha1_mod = importlib.import_module("repro.crypto.sha1")
    rsa_mod._KEYGEN_CACHE.clear()
    sha1_mod.sha1_cached.cache_clear()


def _run_shard(args: tuple) -> dict:
    """One shard's fuzz loop (module-level: must pickle for map_seeded)."""
    seed, shard_index, executions, targets, backend = args
    _reset_hot_caches()
    rng = DeterministicRNG(seed).fork(f"fuzz-shard:{shard_index}")
    collector = EdgeCollector(backend=backend)
    coverage = CoverageMap()
    timeline: List[int] = []
    counterexamples: List[dict] = []
    executed = 0
    rejected = 0
    by_target: Dict[str, int] = {t: 0 for t in targets}

    # Interesting set: seed cases first, coverage-increasing children after.
    pool: List[FuzzCase] = []
    for target in targets:
        pool.extend(seed_corpus(target))

    queue: List[FuzzCase] = list(pool)
    while executed < executions:
        if queue:
            case = queue.pop(0)
        else:
            # Bias parent choice toward recent (coverage-increasing) finds.
            span = len(pool)
            index = span - 1 - min(rng.randint(0, span - 1),
                                   rng.randint(0, span - 1))
            case = pool[index]
            for _ in range(1 + rng.randint(0, 3)):
                case = mutate(case, rng)
        executed += 1
        by_target[case.target] = by_target.get(case.target, 0) + 1
        result, edges = collector.collect(lambda: run_case(case))
        new_edges = coverage.observe(edges)
        timeline.append(coverage.edge_count)
        if result.status == "rejected":
            rejected += 1
        if result.status == "counterexample":
            small, small_result = minimize_case(case, result)
            counterexamples.append({
                "case": small.to_dict(),
                "digest": small.digest(),
                "oracle": small_result.oracle,
                "detail": small_result.detail,
                "shard": shard_index,
            })
        elif new_edges and len(pool) < 512:
            pool.append(case)

    return {
        "shard": shard_index,
        "executions": executed,
        "rejected": rejected,
        "by_target": by_target,
        "edges": coverage.sorted_edges(),
        "edge_timeline": timeline,
        "counterexamples": counterexamples,
    }


class FuzzCampaign:
    """A full deterministic campaign over the four security targets."""

    def __init__(
        self,
        seed: int = 2008,
        executions: int = 400,
        targets: Sequence[str] = TARGETS,
        shards: int = DEFAULT_SHARDS,
        workers: int = 1,
        backend: Optional[str] = None,
    ) -> None:
        for target in targets:
            if target not in TARGETS:
                raise ValueError(f"unknown fuzz target: {target!r}")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.seed = seed
        self.executions = executions
        self.targets = tuple(targets)
        self.shards = shards
        self.workers = workers
        self.backend = backend

    def _shard_budgets(self) -> List[int]:
        base, extra = divmod(self.executions, self.shards)
        return [base + (1 if i < extra else 0) for i in range(self.shards)]

    def run(self) -> dict:
        """Execute the campaign; returns the canonical report dict."""
        from repro.sim.parallel import map_seeded

        budgets = self._shard_budgets()
        jobs = [
            (self.seed, i, budgets[i], self.targets, self.backend)
            for i in range(self.shards)
            if budgets[i] > 0
        ]
        shard_reports = map_seeded(_run_shard, jobs, workers=self.workers)

        coverage = CoverageMap()
        cumulative: List[int] = []
        counterexamples: List[dict] = []
        by_target: Dict[str, int] = {t: 0 for t in self.targets}
        executed = 0
        rejected = 0
        for report in shard_reports:  # shard order == input order (ordered merge)
            coverage.observe(tuple(edge) for edge in report["edges"])
            cumulative.append(coverage.edge_count)
            counterexamples.extend(report["counterexamples"])
            executed += report["executions"]
            rejected += report["rejected"]
            for target, count in report["by_target"].items():
                by_target[target] = by_target.get(target, 0) + count

        # Deduplicate minimized counterexamples by case digest.
        unique: Dict[str, dict] = {}
        for finding in counterexamples:
            unique.setdefault(finding["digest"], finding)

        return {
            "campaign": {
                "seed": self.seed,
                "executions": self.executions,
                "shards": self.shards,
                "targets": sorted(self.targets),
            },
            "coverage": {
                "edges": coverage.edge_count,
                "digest": coverage.digest(),
                "modules": coverage.modules_covered(),
                "cumulative_by_shard": cumulative,
                "shard_timelines": [
                    report["edge_timeline"] for report in shard_reports
                ],
            },
            "executions": {
                "total": executed,
                "rejected": rejected,
                "by_target": {t: by_target[t] for t in sorted(by_target)},
            },
            "counterexamples": [
                unique[digest] for digest in sorted(unique)
            ],
            "summary": {
                "counterexamples": len(unique),
                "clean": not unique,
            },
        }

    @staticmethod
    def report_json(report: dict) -> str:
        """Canonical JSON encoding — byte-identical for identical reports."""
        return json.dumps(report, sort_keys=True, indent=2) + "\n"


def edge_monotonicity(report: dict) -> bool:
    """True when every edge timeline in the report is non-decreasing."""
    series: List[List[int]] = list(report["coverage"]["shard_timelines"])
    series.append(report["coverage"]["cumulative_by_shard"])
    return all(
        all(b >= a for a, b in zip(line, line[1:])) for line in series
    )
