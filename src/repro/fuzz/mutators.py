"""Seed corpora and mutation operators for the five fuzz targets.

Mutation is structure-aware: instead of flipping bits in an opaque
buffer, operators edit the JSON-shaped payload — duplicate a TPM
command, nudge an integer toward an interesting boundary value, flip a
byte of a hex field, drop a fault spec.  All randomness flows from the
caller's :class:`~repro.sim.rng.DeterministicRNG`, so a mutation chain
is a pure function of the campaign seed.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.fuzz.case import FuzzCase, get_bytes
from repro.sim.rng import DeterministicRNG

#: Boundary values that historically break parsers and index arithmetic.
INTERESTING_INTS = (
    -(2 ** 31), -65536, -4096, -256, -20, -5, -1, 0, 1, 4, 5, 16, 17, 20,
    23, 24, 255, 256, 4095, 4096, 4097, 65535, 65536, 2 ** 31 - 1, 2 ** 32,
)

#: Size caps keeping cases replayable in milliseconds.
MAX_BYTES = 256
MAX_COMMANDS = 12
MAX_SPECS = 5
MAX_LIST = 8

_TPM_OPS = (
    "pcr_read", "pcr_extend", "extend_hw", "get_random", "get_capability",
    "seal", "unseal", "quote", "nv_define", "nv_write", "nv_read",
    "counter_create", "counter_increment", "counter_read",
    "dynamic_reset", "reboot",
)

_FAULT_KINDS = (
    "slb-bit-flip", "tpm-transient", "tpm-permanent", "nv-corrupt",
    "dma-probe", "debug-probe", "clock-skew", "pal-exception", "bogus-kind",
)

_FAULT_OPS = ("", "seal", "unseal", "get_random", "pcr_extend", "quote",
              "nv_write", "nv_read", "bogus-op")

_VTPM_OPS = (
    "pcr_read", "pcr_extend", "dynamic_reset", "quote", "seal", "unseal",
    "counter_create", "counter_increment", "counter_read",
    "hw_counter_create", "hw_counter_increment", "migrate",
)

_VTPM_TENANTS = ("t0", "t1", "mallory")


def seed_corpus(target: str) -> List[FuzzCase]:
    """Handcrafted starting points covering each target's happy paths and
    the known-nasty corners the mutators should explore outward from."""
    if target == "tpm":
        return [
            FuzzCase("tpm", {"commands": [
                {"op": "pcr_read", "index": 17},
                {"op": "seal", "bind": True},
                {"op": "unseal", "which": 0, "tamper": -1},
            ]}),
            FuzzCase("tpm", {"commands": [
                {"op": "seal", "bind": True},
                {"op": "unseal", "which": 0, "tamper": 2, "xor": 1},
            ]}),
            FuzzCase("tpm", {"commands": [
                {"op": "extend_hw", "index": 17, "data": b"\xab" * 20},
                {"op": "pcr_read", "index": 17},
                {"op": "quote", "nonce": b"n"},
            ]}),
            FuzzCase("tpm", {"commands": [
                {"op": "get_random", "n": 20},
                {"op": "nv_define", "index": 16, "size": 8},
                {"op": "nv_write", "index": 16, "data": b"\x00" * 8},
                {"op": "nv_read", "index": 16},
            ]}),
            FuzzCase("tpm", {"commands": [
                {"op": "counter_create"},
                {"op": "counter_increment", "id": 1},
                {"op": "reboot"},
                {"op": "counter_read", "id": 1},
                {"op": "dynamic_reset"},
            ]}),
        ]
    if target == "skinit":
        return [
            FuzzCase("skinit", {"base": 4096, "length": 64, "entry": 4,
                                "body": b"\x90" * 60}),
            FuzzCase("skinit", {"base": 4097, "length": 64, "entry": 4,
                                "body": b"\x90" * 60}),
            FuzzCase("skinit", {"base": 4096, "length": 64, "entry": 4,
                                "body": b"\x90" * 60, "quiesce": False}),
            FuzzCase("skinit", {"base": 4096, "length": 64, "entry": 4,
                                "body": b"\x90" * 60, "tamper_bit": 77}),
            FuzzCase("skinit", {"base": 4096, "length": 3, "entry": 0,
                                "body": b""}),
        ]
    if target == "seal":
        return [
            FuzzCase("seal", {"bind": True, "tampers": [], "extends": []}),
            FuzzCase("seal", {"bind": True,
                              "tampers": [{"offset": 2, "xor": 1}]}),
            FuzzCase("seal", {"bind": True,
                              "tampers": [{"offset": 9, "xor": 5},
                                          {"offset": 9, "xor": 5}]}),
            FuzzCase("seal", {"bind": True,
                              "extends": [{"data": b"\xcd" * 20}]}),
            FuzzCase("seal", {"mode": "versioned", "reseals": 3, "present": 0}),
            FuzzCase("seal", {"mode": "versioned", "reseals": 3, "present": 2}),
        ]
    if target == "vtpm":
        return [
            FuzzCase("vtpm", {"commands": [
                {"op": "seal", "tenant": "t0", "bind": True},
                {"op": "unseal", "tenant": "t0", "which": 0},
            ]}),
            FuzzCase("vtpm", {"commands": [
                {"op": "seal", "tenant": "t0", "bind": True},
                {"op": "unseal", "tenant": "t1", "which": 0},
            ]}),
            FuzzCase("vtpm", {"commands": [
                {"op": "pcr_extend", "tenant": "t0", "index": 17,
                 "data": b"\xab" * 20},
                {"op": "pcr_read", "tenant": "t1", "index": 17},
                {"op": "quote", "tenant": "t0", "nonce": b"n"},
            ]}),
            FuzzCase("vtpm", {"commands": [
                {"op": "hw_counter_create", "tenant": "t0"},
                {"op": "hw_counter_increment", "tenant": "t1", "id": 1},
            ]}),
            FuzzCase("vtpm", {"commands": [
                {"op": "counter_create", "tenant": "t0"},
                {"op": "counter_increment", "tenant": "t0", "id": 1},
                {"op": "migrate", "tenant": "t0"},
                {"op": "quote", "tenant": "t0", "nonce": b"m"},
                {"op": "counter_read", "tenant": "t0", "id": 1},
            ]}),
        ]
    if target == "faults":
        return [
            FuzzCase("faults", {"app": "rootkit", "seed": 1, "specs": [
                {"kind": "tpm-transient", "op": "seal", "count": 1},
            ]}),
            FuzzCase("faults", {"app": "rootkit", "seed": 2, "specs": [
                {"kind": "slb-bit-flip", "session": 0, "magnitude": 12345},
            ]}),
            FuzzCase("faults", {"app": "rootkit", "seed": 3, "specs": [
                {"kind": "dma-probe", "session": 0},
                {"kind": "debug-probe", "session": 0},
            ]}),
        ]
    raise ValueError(f"unknown fuzz target: {target!r}")


# -- mutation operators ---------------------------------------------------------


def _choice(rng: DeterministicRNG, seq):
    return seq[rng.randint(0, len(seq) - 1)]


def _mutate_int(value: int, rng: DeterministicRNG) -> int:
    roll = rng.randint(0, 3)
    if roll == 0:
        return _choice(rng, INTERESTING_INTS)
    if roll == 1:
        return value + rng.randint(-16, 16)
    if roll == 2:
        return value ^ (1 << rng.randint(0, 31))
    return -value


def _mutate_bytes(data: bytes, rng: DeterministicRNG) -> bytes:
    buf = bytearray(data[:MAX_BYTES])
    roll = rng.randint(0, 3)
    if roll == 0 and buf:
        buf[rng.randint(0, len(buf) - 1)] ^= 1 << rng.randint(0, 7)
    elif roll == 1 and len(buf) < MAX_BYTES:
        buf.insert(rng.randint(0, len(buf)), rng.randint(0, 255))
    elif roll == 2 and buf:
        del buf[rng.randint(0, len(buf) - 1)]
    else:
        buf = buf[: rng.randint(0, len(buf))]
    return bytes(buf)


def _mutate_value(value: Any, rng: DeterministicRNG) -> Any:
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return _mutate_int(value, rng)
    if isinstance(value, dict) and "hex" in value:
        raw = get_bytes({"k": value}, "k")
        return _mutate_bytes(raw, rng)
    if isinstance(value, str):
        pools = {"op": _TPM_OPS, "kind": _FAULT_KINDS, "mode": ("raw", "versioned"),
                 "app": ("ca", "ssh", "rootkit", "distributed", "bogus"),
                 "vtpm_op": _VTPM_OPS, "tenant": _VTPM_TENANTS}
        for pool in pools.values():
            if value in pool:
                return _choice(rng, pool)
        return value
    return value


def _mutate_list(items: List[Any], rng: DeterministicRNG, cap: int) -> List[Any]:
    out = list(items)
    roll = rng.randint(0, 3)
    if roll == 0 and out:
        out.pop(rng.randint(0, len(out) - 1))
    elif roll == 1 and out and len(out) < cap:
        out.insert(rng.randint(0, len(out)), out[rng.randint(0, len(out) - 1)])
    elif roll == 2 and len(out) >= 2:
        i = rng.randint(0, len(out) - 2)
        out[i], out[i + 1] = out[i + 1], out[i]
    elif out:
        i = rng.randint(0, len(out) - 1)
        out[i] = _mutate_payload(out[i], rng) if isinstance(out[i], dict) \
            else _mutate_value(out[i], rng)
    return out[:cap]


def _mutate_payload(payload: Dict[str, Any], rng: DeterministicRNG) -> Dict[str, Any]:
    out = dict(payload)
    keys = sorted(out)
    if not keys:
        return out
    key = _choice(rng, keys)
    value = out[key]
    if isinstance(value, list):
        cap = {"commands": MAX_COMMANDS, "specs": MAX_SPECS}.get(key, MAX_LIST)
        out[key] = _mutate_list(value, rng, cap)
    else:
        out[key] = _mutate_value(value, rng)
    return out


def mutate(case: FuzzCase, rng: DeterministicRNG) -> FuzzCase:
    """One bounded mutation step; always returns a structurally valid case."""
    payload = _mutate_payload(case.payload, rng)
    return FuzzCase(target=case.target, payload=payload)
