"""The replayable counterexample corpus (``tests/fuzz/corpus/``).

Every counterexample the fuzzer ever finds is minimized and committed
here as one JSON file.  Each entry records the oracle that fired and a
verdict:

``open``
    The underlying defect is not fixed yet — replaying the case must
    still produce the recorded oracle violation (the bug is pinned).
``fixed``
    The defect was fixed — replaying must now yield a clean (``ok`` or
    typed-``rejected``) run.  A fixed entry regressing back to its
    oracle is the strongest possible signal the fix was undone.

The corpus is the fuzzer's non-regression contract: findings get fixed
or pinned, never ignored, and either way they stay executable forever.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple

from repro.fuzz.case import FuzzCase, FuzzCaseError
from repro.fuzz.targets import TargetResult, run_case

FORMAT = "repro-fuzz-case/1"

VERDICTS = ("open", "fixed")


class CorpusError(ValueError):
    """Raised for malformed corpus files."""


@dataclass(frozen=True)
class CorpusEntry:
    """One committed counterexample."""

    name: str
    case: FuzzCase
    oracle: str
    verdict: str  # "open" | "fixed"
    notes: str = ""

    def to_dict(self) -> dict:
        return {
            "format": FORMAT,
            "name": self.name,
            "case": self.case.to_dict(),
            "oracle": self.oracle,
            "verdict": self.verdict,
            "notes": self.notes,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        if not isinstance(data, dict) or data.get("format") != FORMAT:
            raise CorpusError(f"not a {FORMAT} file")
        if data.get("verdict") not in VERDICTS:
            raise CorpusError(f"verdict must be one of {VERDICTS}")
        try:
            case = FuzzCase.from_dict(data["case"])
        except (KeyError, FuzzCaseError) as exc:
            raise CorpusError(f"bad case: {exc}") from exc
        return cls(
            name=str(data.get("name", "")),
            case=case,
            oracle=str(data.get("oracle", "")),
            verdict=data["verdict"],
            notes=str(data.get("notes", "")),
        )

    def replay(self) -> Tuple[bool, TargetResult]:
        """Re-execute; returns (verdict still holds?, live result).

        * ``open``  holds when the recorded oracle still fires.
        * ``fixed`` holds when the run is now clean (no counterexample).
        """
        result = run_case(self.case)
        if self.verdict == "open":
            return (
                result.status == "counterexample" and result.oracle == self.oracle,
                result,
            )
        return result.status != "counterexample", result


def load_corpus(directory: Path) -> List[CorpusEntry]:
    """Load every ``*.json`` entry, sorted by filename for determinism."""
    entries = []
    for path in sorted(Path(directory).glob("*.json")):
        entries.append(CorpusEntry.from_dict(json.loads(path.read_text())))
    return entries


def default_corpus_dir() -> Path:
    """The committed corpus location, found relative to the repo root."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "tests" / "fuzz" / "corpus"
        if candidate.is_dir():
            return candidate
    return Path("tests/fuzz/corpus")
