"""Edge-coverage harvesting restricted to the pinned TCB modules.

The fuzzer's guidance signal is AFL-style edge coverage: each observed
transition ``(module, previous_line, line)`` is one edge.  Collection is
restricted to the TCB closure pinned in ``ANALYSIS_tcb.json`` — coverage
of untrusted-OS simulation code would only dilute the signal, since the
point of the campaign is to exercise the *trusted* surface.

Two interchangeable backends:

* ``monitoring`` — :mod:`sys.monitoring` (PEP 669, Python 3.12+).  Code
  objects outside the TCB return ``DISABLE`` so the interpreter stops
  delivering their events entirely; ``restart_events()`` re-arms them for
  the next collection window.
* ``settrace`` — classic :func:`sys.settrace` for older interpreters.
  The prior tracer is saved and restored so the collector composes with
  debuggers and ``coverage.py`` itself.

Edges are plain tuples in a set; :class:`CoverageMap` canonicalizes them
(sorted) before digesting, so merged maps digest identically regardless
of observation order.
"""

from __future__ import annotations

import importlib
import json
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.crypto.sha1 import sha1

#: An observed control-flow edge: (module name, previous line, line).
Edge = Tuple[str, int, int]

#: Pseudo-line marking function entry (the edge source for the first line).
ENTRY_LINE = 0

_TCB_REPORT = "ANALYSIS_tcb.json"


def tcb_module_names(report_path: Optional[str] = None) -> Tuple[str, ...]:
    """The pinned TCB module closure, sorted.

    Reads the committed ``ANALYSIS_tcb.json`` (searching upward from this
    file for the repo root, unless an explicit path is given).  Falls back
    to scanning :data:`repro.analysis.tcb.TCB_ALLOWED_PREFIXES` when no
    report is present — e.g. in a stripped installation.
    """
    candidates: List[Path] = []
    if report_path is not None:
        candidates.append(Path(report_path))
    else:
        here = Path(__file__).resolve()
        candidates.extend(parent / _TCB_REPORT for parent in here.parents)
    for candidate in candidates:
        if candidate.is_file():
            report = json.loads(candidate.read_text())
            return tuple(sorted(report["closure"]))
    import pkgutil

    import repro
    from repro.analysis.tcb import TCB_ALLOWED_PREFIXES

    names = set()
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(info.name == p or info.name.startswith(p + ".")
               for p in TCB_ALLOWED_PREFIXES):
            names.add(info.name)
    return tuple(sorted(names))


def _file_map(module_names: Iterable[str]) -> Dict[str, str]:
    """Map source filenames to TCB module names, importing as needed."""
    mapping: Dict[str, str] = {}
    for name in module_names:
        module = sys.modules.get(name)
        if module is None:
            try:
                module = importlib.import_module(name)
            except ImportError:  # pragma: no cover - stripped installs
                continue
        filename = getattr(module, "__file__", None)
        if filename:
            mapping[filename] = name
    return mapping


class CoverageMap:
    """A monotonically growing set of observed edges.

    ``observe`` reports how many of the offered edges were *new*, which is
    the fuzzer's "interesting input" signal; the map itself never shrinks,
    so the campaign's edge count is monotonically non-decreasing by
    construction.
    """

    def __init__(self, edges: Optional[Iterable[Edge]] = None) -> None:
        self._edges: Set[Edge] = set(edges or ())

    @property
    def edge_count(self) -> int:
        """Number of distinct edges observed so far."""
        return len(self._edges)

    def observe(self, edges: Iterable[Edge]) -> int:
        """Fold in ``edges``; returns how many were previously unseen."""
        new = 0
        for edge in edges:
            if edge not in self._edges:
                self._edges.add(edge)
                new += 1
        return new

    def merge(self, other: "CoverageMap") -> int:
        """Fold another map in; returns the number of new edges."""
        return self.observe(other._edges)

    def sorted_edges(self) -> List[Edge]:
        """Edges in canonical (sorted) order."""
        return sorted(self._edges)

    def digest(self) -> str:
        """SHA-1 over the canonical edge list — order-independent."""
        lines = "".join(
            f"{module}:{prev}:{line}\n" for module, prev, line in self.sorted_edges()
        )
        return sha1(lines.encode("ascii")).hex()

    def modules_covered(self) -> List[str]:
        """Sorted list of TCB modules with at least one observed edge."""
        return sorted({module for module, _, _ in self._edges})

    def to_dict(self) -> dict:
        """Canonical JSON-ready form (summary only — edges stay local)."""
        return {
            "edges": self.edge_count,
            "digest": self.digest(),
            "modules": self.modules_covered(),
        }


class EdgeCollector:
    """Harvests TCB edges around a callable, via the best available backend.

    Usage::

        collector = EdgeCollector()
        edges = collector.collect(lambda: run_case(case))
    """

    def __init__(
        self,
        module_names: Optional[Iterable[str]] = None,
        backend: Optional[str] = None,
    ) -> None:
        names = tuple(module_names) if module_names is not None else tcb_module_names()
        self._files = _file_map(names)
        if backend is None:
            backend = "monitoring" if hasattr(sys, "monitoring") else "settrace"
        if backend not in ("monitoring", "settrace"):
            raise ValueError(f"unknown coverage backend: {backend!r}")
        self.backend = backend

    # -- settrace backend ---------------------------------------------------------

    def _collect_settrace(self, fn):
        edges: Set[Edge] = set()
        files = self._files

        def global_trace(frame, event, arg):
            if event != "call":
                return None
            module = files.get(frame.f_code.co_filename)
            if module is None:
                return None
            prev = [ENTRY_LINE]

            def local_trace(frame, event, arg):
                if event == "line":
                    line = frame.f_lineno
                    edges.add((module, prev[0], line))
                    prev[0] = line
                return local_trace

            return local_trace

        prior = sys.gettrace()
        sys.settrace(global_trace)
        try:
            result = fn()
        finally:
            sys.settrace(prior)
        return result, edges

    # -- sys.monitoring backend ---------------------------------------------------

    def _collect_monitoring(self, fn):  # pragma: no cover - needs Python 3.12+
        mon = sys.monitoring
        edges: Set[Edge] = set()
        files = self._files
        last_line: Dict[str, int] = {}

        def on_start(code, _offset):
            module = files.get(code.co_filename)
            if module is None:
                return mon.DISABLE
            last_line[module] = ENTRY_LINE
            return None

        def on_line(code, line):
            module = files.get(code.co_filename)
            if module is None:
                return mon.DISABLE
            edges.add((module, last_line.get(module, ENTRY_LINE), line))
            last_line[module] = line
            return None

        tool_id = None
        for candidate in range(6):
            if mon.get_tool(candidate) is None:
                tool_id = candidate
                break
        if tool_id is None:
            # Every slot taken (e.g. under a profiler + debugger + coverage
            # stack): fall back rather than fight over a tool id.
            return self._collect_settrace(fn)
        mon.use_tool_id(tool_id, "repro-fuzz")
        try:
            mon.register_callback(tool_id, mon.events.PY_START, on_start)
            mon.register_callback(tool_id, mon.events.LINE, on_line)
            mon.set_events(tool_id, mon.events.PY_START | mon.events.LINE)
            mon.restart_events()
            result = fn()
        finally:
            mon.set_events(tool_id, 0)
            mon.register_callback(tool_id, mon.events.PY_START, None)
            mon.register_callback(tool_id, mon.events.LINE, None)
            mon.free_tool_id(tool_id)
        return result, edges

    def collect(self, fn):
        """Run ``fn()`` under tracing; returns ``(result, edges)``."""
        if self.backend == "monitoring":
            return self._collect_monitoring(fn)
        return self._collect_settrace(fn)
