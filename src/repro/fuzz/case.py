"""Fuzz-case representation: a target name plus a structured payload.

A :class:`FuzzCase` is the unit the fuzzer mutates, executes, minimizes,
and commits to the corpus.  Payloads are plain JSON-able dicts (bytes
encoded as lowercase hex) so cases round-trip through the corpus files
and the parallel executor without custom pickling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict

from repro.crypto.sha1 import sha1

#: The five fuzzed surfaces, in canonical order.
TARGETS = ("tpm", "skinit", "seal", "faults", "vtpm")


class FuzzCaseError(ValueError):
    """Raised for structurally invalid cases (bad target, bad payload)."""


def _canonical(obj: Any) -> Any:
    """Recursively canonicalize payload values for hashing/serialization."""
    if isinstance(obj, dict):
        return {str(k): _canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, bytes):
        return {"hex": obj.hex()}
    if isinstance(obj, bool) or obj is None:
        return obj
    if isinstance(obj, int):
        return obj
    if isinstance(obj, str):
        return obj
    raise FuzzCaseError(f"unsupported payload value: {type(obj).__name__}")


@dataclass(frozen=True)
class FuzzCase:
    """One fuzz input: ``target`` names the executor, ``payload`` its data.

    Instances are canonical on construction — the payload is normalized
    (keys sorted, bytes hex-wrapped) so equal cases serialize and digest
    identically no matter how they were built.
    """

    target: str
    payload: Dict[str, Any]

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise FuzzCaseError(f"unknown fuzz target: {self.target!r}")
        object.__setattr__(self, "payload", _canonical(self.payload))

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {"target": self.target, "payload": self.payload}

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        """Inverse of :meth:`to_dict`."""
        if not isinstance(data, dict) or "target" not in data:
            raise FuzzCaseError("fuzz case must be a dict with a 'target' key")
        return cls(target=data["target"], payload=dict(data.get("payload") or {}))

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys, 2-space indent)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-1 of the canonical JSON — the case's identity."""
        return sha1(self.to_json().encode("utf-8")).hex()


def get_bytes(payload: Dict[str, Any], key: str, default: bytes = b"") -> bytes:
    """Read a hex-wrapped bytes field back out of a canonical payload."""
    value = payload.get(key, {"hex": default.hex()})
    if isinstance(value, dict) and "hex" in value:
        try:
            return bytes.fromhex(str(value["hex"]))
        except ValueError:
            return default
    return default
