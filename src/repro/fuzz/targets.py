"""Fuzz-target executors: run one case, judge it against the oracles.

Each target builds a fresh deterministic :class:`~repro.hw.machine.Machine`
(fixed seed — the *case* is the only variable), drives the surface under
test with the case's payload, and classifies the outcome:

``ok``
    The case executed and every oracle held.
``rejected``
    The case was refused with a *typed* error — expected behavior for
    hostile input; typed rejections are the TCB doing its job.
``counterexample``
    An oracle was violated: a secret leaked, tampered data unsealed,
    a forged quote verified, SKINIT succeeded on an invalid platform
    state, or an untyped exception escaped the trust boundary.

The oracles mirror the paper's guarantees: secrets never leak (§4.3),
unseal fails after tamper (§2.4), attestation rejects forgeries (§4.4.1),
and the PAL boundary only ever surfaces typed errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.crypto.sha1 import sha1
from repro.errors import (
    FaultPlanError,
    FlickerError,
    HardwareError,
    ReproError,
    TPMError,
)
from repro.fuzz.case import FuzzCase, get_bytes
from repro.hw.machine import Machine
from repro.hw.skinit import PAGE_SIZE, SLB_REGION_SIZE
from repro.tpm.driver import TPMSessionDriver
from repro.tpm.pcr import (
    DYNAMIC_PCRS,
    PCR_COUNT,
    PCR_DYNAMIC_BOOT_VALUE,
    PCR_DYNAMIC_RESET_VALUE,
    PCR_STATIC_BOOT_VALUE,
    extend_value,
)
from repro.tpm.structures import Quote, SealedBlob
from repro.tpm.tpm import command_digest

#: Deterministic machine seed — the fuzz case is the only varying input.
MACHINE_SEED = 77

#: The marker secret sealed by fuzz cases; oracles scan error text for it.
SECRET = b"fuzz-canary-secret"

_OWNER = b"fuzz-owner-auth-20b!"  # 20 bytes

#: Exceptions the trust boundary is allowed to surface.
_TYPED = (TPMError, HardwareError, FlickerError, FaultPlanError)


@dataclass(frozen=True)
class TargetResult:
    """Verdict for one executed case."""

    status: str  # "ok" | "rejected" | "counterexample"
    oracle: str  # the oracle that fired ("" when status != counterexample)
    detail: str

    def to_dict(self) -> dict:
        return {"status": self.status, "oracle": self.oracle, "detail": self.detail}


def _secret_in_text(text: str) -> bool:
    """Does error text leak the canary secret (ASCII or hex)?"""
    return SECRET.decode("ascii") in text or SECRET.hex() in text


def _untyped(exc: BaseException) -> TargetResult:
    return TargetResult(
        status="counterexample",
        oracle="typed-errors",
        detail=f"untyped {type(exc).__name__} escaped: {exc}",
    )


def _leak(where: str, text: str) -> TargetResult:
    return TargetResult(
        status="counterexample",
        oracle="no-secret-in-message",
        detail=f"secret material surfaced in {where} error text: {text[:80]}",
    )


# -- tpm: raw command streams ---------------------------------------------------


def _clamp_index(value: Any) -> int:
    return int(value) if isinstance(value, int) else 0


def _run_tpm(case: FuzzCase) -> TargetResult:
    machine = Machine(seed=MACHINE_SEED)
    machine.tpm.take_ownership(_OWNER)
    driver = TPMSessionDriver(machine.os_tpm_interface())
    interface = driver.interface

    # Shadow PCR model: what software *should* observe, maintained purely
    # in Python.  Any divergence from the TPM's answer is a coherence
    # counterexample (this pins the PCRBank.generation read-cache contract).
    shadow: Dict[int, bytes] = {
        i: interface.pcr_read(i) for i in range(PCR_COUNT)
    }
    sealed: List[Tuple[SealedBlob, Dict[int, bytes]]] = []

    commands = case.payload.get("commands")
    if not isinstance(commands, list):
        return TargetResult("rejected", "", "payload has no command list")

    for step, cmd in enumerate(commands[:16]):
        if not isinstance(cmd, dict):
            continue
        op = cmd.get("op")
        try:
            if op == "pcr_read":
                index = _clamp_index(cmd.get("index"))
                value = driver.pcr_read(index)
                if 0 <= index < PCR_COUNT and value != shadow[index]:
                    return TargetResult(
                        "counterexample", "cache-coherent",
                        f"step {step}: PCR {index} read {value.hex()[:12]} "
                        f"!= shadow {shadow[index].hex()[:12]}",
                    )
            elif op == "pcr_extend":
                index = _clamp_index(cmd.get("index"))
                measurement = get_bytes(cmd, "data")
                driver.pcr_extend(index, measurement)
                if 0 <= index < PCR_COUNT and len(measurement) == 20:
                    shadow[index] = extend_value(shadow[index], measurement)
            elif op == "extend_hw":
                # Direct hardware write to the PCR bank (SKINIT's path):
                # must invalidate the idempotent-read cache via generation.
                index = _clamp_index(cmd.get("index"))
                measurement = get_bytes(cmd, "data")
                machine.tpm.pcrs.extend(index, measurement)
                if 0 <= index < PCR_COUNT and len(measurement) == 20:
                    shadow[index] = extend_value(shadow[index], measurement)
            elif op == "get_random":
                driver.get_random(_clamp_index(cmd.get("n")))
            elif op == "get_capability":
                interface.get_capability()
            elif op == "seal":
                policy = {17: shadow[17]} if cmd.get("bind") else {}
                blob = driver.seal(SECRET, policy)
                sealed.append((blob, dict(policy)))
            elif op == "unseal":
                if not sealed:
                    continue
                blob, policy = sealed[_clamp_index(cmd.get("which")) % len(sealed)]
                tamper = _clamp_index(cmd.get("tamper", -1))
                encoded = bytearray(blob.encode())
                if tamper >= 0:
                    encoded[tamper % len(encoded)] ^= (
                        _clamp_index(cmd.get("xor", 1)) % 256 or 1
                    )
                presented = SealedBlob.decode(bytes(encoded))
                policy_live = all(shadow.get(i) == v for i, v in policy.items())
                data = driver.unseal(presented)
                if tamper >= 0:
                    return TargetResult(
                        "counterexample", "unseal-rejects-tamper",
                        f"step {step}: unseal accepted a blob tampered at "
                        f"byte {tamper % len(encoded)}",
                    )
                if not policy_live:
                    return TargetResult(
                        "counterexample", "unseal-honors-policy",
                        f"step {step}: unseal released data after the bound "
                        "PCR changed",
                    )
                if data != SECRET:
                    return TargetResult(
                        "counterexample", "unseal-roundtrip",
                        f"step {step}: unseal returned wrong plaintext",
                    )
            elif op == "quote":
                nonce = sha1(get_bytes(cmd, "nonce", b"fuzz-nonce"))
                session = interface.start_oiap()
                nonce_odd = sha1(b"fuzz-quote" + bytes([step]))
                digest = command_digest("TPM_Quote", nonce, bytes((17,)))
                proof = session.compute_proof(interface.aik_auth, digest, nonce_odd)
                quote = interface.quote(nonce, (17,), session, nonce_odd, proof)
                if not quote.verify(interface.aik_public):
                    return TargetResult(
                        "counterexample", "attestation-accepts-genuine",
                        f"step {step}: genuine quote failed verification",
                    )
                forged_sig = bytes([quote.signature[0] ^ 0x01]) + quote.signature[1:]
                forged = Quote(
                    composite=quote.composite, nonce=quote.nonce,
                    signature=forged_sig, aik_public=quote.aik_public,
                )
                wrong_nonce = Quote(
                    composite=quote.composite, nonce=sha1(b"forged-nonce"),
                    signature=quote.signature, aik_public=quote.aik_public,
                )
                if forged.verify(interface.aik_public) or wrong_nonce.verify(
                    interface.aik_public
                ):
                    return TargetResult(
                        "counterexample", "attestation-rejects-forgery",
                        f"step {step}: a forged quote verified",
                    )
            elif op == "nv_define":
                driver.define_nv_space(
                    _clamp_index(cmd.get("index")),
                    _clamp_index(cmd.get("size", 8)),
                    _OWNER,
                )
            elif op == "nv_write":
                driver.nv_write(_clamp_index(cmd.get("index")), get_bytes(cmd, "data"))
            elif op == "nv_read":
                driver.nv_read(_clamp_index(cmd.get("index")))
            elif op == "counter_create":
                driver.create_counter(get_bytes(cmd, "label", b"fuzz"), _OWNER)
            elif op == "counter_increment":
                driver.increment_counter(_clamp_index(cmd.get("id")))
            elif op == "counter_read":
                driver.read_counter(_clamp_index(cmd.get("id")))
            elif op == "dynamic_reset":
                # Locality 0 must refuse this (CPU-only command) — a typed
                # TPMLocalityError is the expected, correct outcome.
                interface.dynamic_pcr_reset()
                for i in DYNAMIC_PCRS:
                    shadow[i] = PCR_DYNAMIC_RESET_VALUE
            elif op == "reboot":
                machine.tpm.reboot()
                for i in range(PCR_COUNT):
                    shadow[i] = (
                        PCR_DYNAMIC_BOOT_VALUE if i in DYNAMIC_PCRS
                        else PCR_STATIC_BOOT_VALUE
                    )
            # unknown ops are skipped: mutation may invent them freely
        except _TYPED as exc:
            if _secret_in_text(str(exc)):
                return _leak(f"tpm step {step} ({op})", str(exc))
        except ReproError as exc:
            if _secret_in_text(str(exc)):
                return _leak(f"tpm step {step} ({op})", str(exc))
        except Exception as exc:  # noqa: BLE001 - the oracle itself
            return _untyped(exc)
    return TargetResult("ok", "", f"{len(commands)} commands executed")


# -- skinit: launch preconditions ----------------------------------------------


def _marker_entry(machine, core, slb_base):
    return "pal-entered"


def _run_skinit(case: FuzzCase) -> TargetResult:
    payload = case.payload
    machine = Machine(seed=MACHINE_SEED)
    base = _clamp_index(payload.get("base", PAGE_SIZE))
    length = _clamp_index(payload.get("length", 64))
    entry = _clamp_index(payload.get("entry", 4))
    ring = _clamp_index(payload.get("ring", 0))
    core_id = _clamp_index(payload.get("core", 0)) % len(machine.cpu.cores)
    quiesce = bool(payload.get("quiesce", True))
    register = bool(payload.get("register", True))
    tamper_bit = _clamp_index(payload.get("tamper_bit", -1))
    body = get_bytes(payload, "body", b"\x90" * 60)

    image = (
        (length & 0xFFFF).to_bytes(2, "little")
        + (entry & 0xFFFF).to_bytes(2, "little")
        + body
    )

    if quiesce:
        for core in machine.cpu.cores:
            if not core.is_bsp:
                core.halted = True
                core.received_init_ipi = True
    machine.cpu.cores[core_id].ring = ring

    wrote = False
    try:
        machine.memory.write(base, image)
        wrote = True
        if tamper_bit >= 0:
            span = machine.memory.read(base, len(image))
            flipped = bytearray(span)
            flipped[(tamper_bit // 8) % len(flipped)] ^= 1 << (tamper_bit % 8)
            machine.memory.write(base, bytes(flipped))
    except HardwareError:
        pass  # out-of-range base: SKINIT itself must also fail typed
    except Exception as exc:  # noqa: BLE001
        return _untyped(exc)

    if register:
        try:
            machine.register_executable(image, _marker_entry)
        except _TYPED:
            register = False
        except Exception as exc:  # noqa: BLE001
            return _untyped(exc)

    eff_length = length & 0xFFFF
    eff_entry = entry & 0xFFFF
    valid = (
        wrote
        and ring == 0
        and machine.cpu.cores[core_id].is_bsp
        and quiesce
        and base % PAGE_SIZE == 0
        and 0 <= base
        and base + SLB_REGION_SIZE <= machine.memory.size_bytes
        and 4 <= eff_length <= SLB_REGION_SIZE
        and eff_entry < eff_length
        and eff_length <= len(image)
        and register
        and tamper_bit < 0
    )

    try:
        result = machine.skinit(core_id, base)
    except _TYPED as exc:
        if valid:
            return TargetResult(
                "counterexample", "skinit-fail-closed",
                f"SKINIT refused a fully valid launch: {exc}",
            )
        return TargetResult("rejected", "", f"typed refusal: {type(exc).__name__}")
    except Exception as exc:  # noqa: BLE001
        return _untyped(exc)

    if not valid:
        return TargetResult(
            "counterexample", "skinit-fail-closed",
            "SKINIT succeeded despite an invalid precondition",
        )
    if result != "pal-entered":
        return TargetResult(
            "counterexample", "skinit-dispatch",
            f"SKINIT dispatched to the wrong routine: {result!r}",
        )

    # Measurement honesty: PCR 17 must equal extend(reset, SHA1(measured)).
    measured = machine.memory.read(base, eff_length)
    expected = extend_value(PCR_DYNAMIC_RESET_VALUE, sha1(measured))
    live = machine.tpm.pcrs.read(17)
    if live != expected:
        return TargetResult(
            "counterexample", "measurement-honesty",
            f"PCR 17 {live.hex()[:12]} != measured-code chain "
            f"{expected.hex()[:12]}",
        )

    # The DEV must block DMA into the measured region after launch.
    device = machine.attach_dma_device("fuzz-probe")
    try:
        machine.dma_read(device, base, 4)
        return TargetResult(
            "counterexample", "dev-protects-slb",
            "DMA read of the SLB region succeeded after SKINIT",
        )
    except HardwareError:
        pass
    except Exception as exc:  # noqa: BLE001
        return _untyped(exc)
    return TargetResult("ok", "", "valid launch measured and protected")


# -- seal: sealed-blob bytes and replay schedules -------------------------------


def _run_seal(case: FuzzCase) -> TargetResult:
    payload = case.payload
    machine = Machine(seed=MACHINE_SEED)
    machine.tpm.take_ownership(_OWNER)
    driver = TPMSessionDriver(machine.os_tpm_interface())

    extends = payload.get("extends") or []
    tampers = payload.get("tampers") or []
    mode = payload.get("mode", "raw")

    if mode == "versioned":
        return _run_seal_versioned(machine, payload)

    policy = {17: driver.pcr_read(17)} if payload.get("bind", True) else {}
    try:
        blob = driver.seal(SECRET, policy)
    except _TYPED as exc:
        if _secret_in_text(str(exc)):
            return _leak("seal", str(exc))
        return TargetResult("rejected", "", f"seal refused: {type(exc).__name__}")
    except Exception as exc:  # noqa: BLE001
        return _untyped(exc)

    policy_still_holds = True
    for item in extends[:4]:
        measurement = get_bytes(item if isinstance(item, dict) else {}, "data")
        try:
            driver.pcr_extend(17, measurement)
            if len(measurement) == 20 and policy:
                policy_still_holds = False
        except _TYPED:
            pass
        except Exception as exc:  # noqa: BLE001
            return _untyped(exc)

    encoded = bytearray(blob.encode())
    net: Dict[int, int] = {}
    for item in tampers[:8]:
        if not isinstance(item, dict):
            continue
        offset = _clamp_index(item.get("offset")) % len(encoded)
        mask = _clamp_index(item.get("xor", 1)) % 256
        encoded[offset] ^= mask
        net[offset] = net.get(offset, 0) ^ mask
    effective_tamper = any(mask for mask in net.values())

    try:
        presented = SealedBlob.decode(bytes(encoded))
        data = driver.unseal(presented)
    except _TYPED as exc:
        text = str(exc)
        if _secret_in_text(text):
            return _leak("unseal", text)
        if not effective_tamper and policy_still_holds:
            return TargetResult(
                "counterexample", "unseal-roundtrip",
                f"unseal of an untampered blob failed: {type(exc).__name__}",
            )
        return TargetResult("rejected", "", f"typed refusal: {type(exc).__name__}")
    except Exception as exc:  # noqa: BLE001
        return _untyped(exc)

    if effective_tamper:
        return TargetResult(
            "counterexample", "unseal-rejects-tamper",
            f"unseal accepted a blob with net tamper at offsets "
            f"{sorted(o for o, m in net.items() if m)}",
        )
    if not policy_still_holds:
        return TargetResult(
            "counterexample", "unseal-honors-policy",
            "unseal released data after PCR 17 moved",
        )
    if data != SECRET:
        return TargetResult(
            "counterexample", "unseal-roundtrip", "unseal returned wrong plaintext"
        )
    return TargetResult("ok", "", "seal/unseal round trip held")


def _run_seal_versioned(machine: Machine, payload: Dict[str, Any]) -> TargetResult:
    from repro.core.modules.tpm_utils import PALTPMInterface
    from repro.core.sealed_storage import ReplayProtectedStorage

    tpm = PALTPMInterface(machine.os_tpm_interface())
    pcr17 = tpm.pcr_read(17)
    reseals = max(1, min(5, _clamp_index(payload.get("reseals", 2))))
    present = _clamp_index(payload.get("present", 0)) % reseals

    try:
        storage = ReplayProtectedStorage.create(tpm, _OWNER)
        versions = [
            storage.seal(SECRET + bytes([i]), pcr17) for i in range(reseals)
        ]
        data = storage.unseal(versions[present])
    except _TYPED as exc:
        text = str(exc)
        if _secret_in_text(text):
            return _leak("versioned unseal", text)
        if any(ch.isdigit() for ch in text):
            return TargetResult(
                "counterexample", "no-counter-in-message",
                f"replay rejection text contains numerals: {text[:80]}",
            )
        if present == reseals - 1:
            return TargetResult(
                "counterexample", "replay-accepts-newest",
                f"newest version was rejected: {type(exc).__name__}",
            )
        return TargetResult("rejected", "", "stale version refused")
    except Exception as exc:  # noqa: BLE001
        return _untyped(exc)

    if present != reseals - 1:
        return TargetResult(
            "counterexample", "replay-protection",
            f"stale version {present} of {reseals} unsealed successfully",
        )
    if data != SECRET + bytes([present]):
        return TargetResult(
            "counterexample", "unseal-roundtrip", "versioned unseal returned wrong data"
        )
    return TargetResult("ok", "", "replay protection held")


# -- faults: adversarial schedules over the 8 injection points ------------------


def _run_faults(case: FuzzCase) -> TargetResult:
    from repro.faults import FaultPlan, FaultSpec, run_scenario
    from repro.faults.campaign import APPS

    payload = case.payload
    app = payload.get("app", "rootkit")
    if app not in APPS:
        app = "rootkit"
    raw_specs = payload.get("specs") or []
    specs = []
    try:
        for item in raw_specs[:5]:
            if not isinstance(item, dict):
                continue
            specs.append(FaultSpec(
                kind=str(item.get("kind", "tpm-transient")),
                session=_clamp_index(item.get("session", -1)),
                op=str(item.get("op", "")),
                count=_clamp_index(item.get("count", 1)),
                magnitude=_clamp_index(item.get("magnitude", 0)),
            ))
        plan = FaultPlan(seed=_clamp_index(payload.get("seed", 0)),
                         specs=tuple(specs))
    except FaultPlanError as exc:
        return TargetResult("rejected", "", f"invalid plan: {exc}")
    except Exception as exc:  # noqa: BLE001
        return _untyped(exc)

    try:
        record = run_scenario(app, plan)
    except Exception as exc:  # noqa: BLE001
        return _untyped(exc)

    if record.get("outcome") == "secret-leaked" or record.get("leaks"):
        return TargetResult(
            "counterexample", "no-secret-leak",
            f"fault schedule leaked: outcome={record.get('outcome')} "
            f"leaks={record.get('leaks')}",
        )
    return TargetResult("ok", "", f"outcome {record.get('outcome')}")


# -- vtpm: cross-tenant command streams against the multiplexer -----------------

#: The two mutually-distrusting tenants every vtpm case runs against.
_VTPM_TENANTS = ("t0", "t1")


def _run_vtpm(case: FuzzCase) -> TargetResult:
    """Replay a mutated cross-tenant command stream against the vTPM
    multiplexer.  Oracles: no cross-tenant unseal or counter access ever
    succeeds, one tenant's ops never move another tenant's virtual PCRs,
    migration preserves tenant state exactly, and the boundary only
    surfaces typed errors that name no plaintext."""
    from repro.core.session import FlickerPlatform
    from repro.vtpm.mux import migrate_tenant

    platform = FlickerPlatform(seed=MACHINE_SEED)
    platform.machine.tpm.take_ownership(_OWNER)
    mux = platform.vtpm
    mux.create_tenant("t0", scenario="discrete")
    mux.create_tenant("t1", scenario="mobile")
    spare = None  # second platform, built on the first migrate op

    #: tenant → its current platform (migrations flip entries).
    where = {name: platform for name in _VTPM_TENANTS}
    #: Shadow virtual-PCR model per tenant (the isolation oracle).
    shadow: Dict[str, Dict[int, bytes]] = {
        name: {i: mux.tenant(name).pcrs.read(i) for i in range(PCR_COUNT)}
        for name in _VTPM_TENANTS
    }
    counters: Dict[str, Dict[int, int]] = {name: {} for name in _VTPM_TENANTS}
    #: All sealed blobs ever made: (blob, owner, policy-at-seal).
    sealed: List[Tuple[SealedBlob, str, Dict[int, bytes]]] = []
    hw_drivers: Dict[str, TPMSessionDriver] = {}
    hw_owner: Dict[int, str] = {}

    def inst(name):
        return where[name].vtpm.tenant(name)

    commands = case.payload.get("commands")
    if not isinstance(commands, list):
        return TargetResult("rejected", "", "payload has no command list")

    for step, cmd in enumerate(commands[:12]):
        if not isinstance(cmd, dict):
            continue
        op = cmd.get("op")
        name = cmd.get("tenant")
        name = name if name in _VTPM_TENANTS else "t0"
        try:
            if op == "pcr_extend":
                index = _clamp_index(cmd.get("index"))
                measurement = get_bytes(cmd, "data")
                inst(name).pcr_extend(index, measurement)
                shadow[name][index] = extend_value(
                    shadow[name][index], measurement)
            elif op == "pcr_read":
                index = _clamp_index(cmd.get("index"))
                value = inst(name).pcr_read(index)
                if 0 <= index < PCR_COUNT and value != shadow[name][index]:
                    return TargetResult(
                        "counterexample", "vtpm-pcr-isolation",
                        f"step {step}: tenant {name} PCR {index} "
                        f"{value.hex()[:12]} != shadow "
                        f"{shadow[name][index].hex()[:12]}",
                    )
            elif op == "dynamic_reset":
                inst(name).dynamic_reset()
                for i in DYNAMIC_PCRS:
                    shadow[name][i] = PCR_DYNAMIC_RESET_VALUE
            elif op == "quote":
                nonce = sha1(get_bytes(cmd, "nonce", b"vtpm-nonce"))
                vt = inst(name)
                quote = vt.quote(nonce, (17,))
                if not quote.verify(vt.aik_public):
                    return TargetResult(
                        "counterexample", "attestation-accepts-genuine",
                        f"step {step}: tenant {name}'s own quote failed",
                    )
                other = inst("t1" if name == "t0" else "t0")
                if quote.verify(other.aik_public):
                    return TargetResult(
                        "counterexample", "vtpm-key-isolation",
                        f"step {step}: tenant {name}'s quote verified "
                        "under another tenant's AIK",
                    )
            elif op == "seal":
                policy = ({17: shadow[name][17]} if cmd.get("bind") else {})
                blob = inst(name).seal(SECRET, policy)
                sealed.append((blob, name, dict(policy)))
            elif op == "unseal":
                if not sealed:
                    continue
                blob, owner, policy = sealed[
                    _clamp_index(cmd.get("which")) % len(sealed)]
                data = inst(name).unseal(blob)
                if owner != name:
                    return TargetResult(
                        "counterexample", "vtpm-namespace-isolation",
                        f"step {step}: tenant {name} unsealed tenant "
                        f"{owner}'s blob",
                    )
                if any(shadow[name].get(i) != v for i, v in policy.items()):
                    return TargetResult(
                        "counterexample", "unseal-honors-policy",
                        f"step {step}: unseal released data after the "
                        "bound virtual PCR moved",
                    )
                if data != SECRET:
                    return TargetResult(
                        "counterexample", "unseal-roundtrip",
                        f"step {step}: unseal returned wrong plaintext",
                    )
            elif op == "counter_create":
                cid = inst(name).create_counter(get_bytes(cmd, "label", b"f"))
                counters[name][cid] = 0
            elif op == "counter_increment":
                cid = _clamp_index(cmd.get("id"))
                value = inst(name).increment_counter(cid)
                expected = counters[name].get(cid, 0) + 1
                if cid in counters[name] and value != expected:
                    return TargetResult(
                        "counterexample", "vtpm-counter-state",
                        f"step {step}: tenant {name} counter {cid} is "
                        f"{value}, expected {expected}",
                    )
                counters[name][cid] = value
            elif op == "counter_read":
                cid = _clamp_index(cmd.get("id"))
                value = inst(name).read_counter(cid)
                if cid in counters[name] and value != counters[name][cid]:
                    return TargetResult(
                        "counterexample", "vtpm-counter-state",
                        f"step {step}: tenant {name} counter {cid} read "
                        f"{value}, expected {counters[name][cid]}",
                    )
            elif op == "hw_counter_create":
                if name not in hw_drivers:
                    hw_drivers[name] = TPMSessionDriver(
                        where[name].vtpm.hardware_interface(name))
                cid = hw_drivers[name].create_counter(
                    get_bytes(cmd, "label", b"f"), _OWNER)
                hw_owner[cid] = name
            elif op == "hw_counter_increment":
                if name not in hw_drivers:
                    continue
                cid = _clamp_index(cmd.get("id"))
                hw_drivers[name].increment_counter(cid)
                if cid in hw_owner and hw_owner[cid] != name:
                    return TargetResult(
                        "counterexample", "vtpm-counter-partition",
                        f"step {step}: tenant {name} incremented tenant "
                        f"{hw_owner[cid]}'s hardware counter {cid}",
                    )
            elif op == "migrate":
                if spare is None:
                    spare = FlickerPlatform(seed=MACHINE_SEED + 1)
                source = where[name]
                destination = spare if source is platform else platform
                before_pcrs = dict(shadow[name])
                before_counters = dict(counters[name])
                migrate_tenant(source, destination, name)
                where[name] = destination
                vt = inst(name)
                if any(vt.pcrs.read(i) != v for i, v in before_pcrs.items()):
                    return TargetResult(
                        "counterexample", "migration-fidelity",
                        f"step {step}: tenant {name}'s virtual PCRs "
                        "changed across migration",
                    )
                if any(vt.read_counter(c) != v
                       for c, v in before_counters.items()):
                    return TargetResult(
                        "counterexample", "migration-fidelity",
                        f"step {step}: tenant {name}'s counters changed "
                        "across migration",
                    )
            # unknown ops are skipped: mutation may invent them freely
        except _TYPED as exc:
            if _secret_in_text(str(exc)):
                return _leak(f"vtpm step {step} ({op})", str(exc))
        except ReproError as exc:
            if _secret_in_text(str(exc)):
                return _leak(f"vtpm step {step} ({op})", str(exc))
        except Exception as exc:  # noqa: BLE001 - the oracle itself
            return _untyped(exc)

    # Closing isolation sweep: both tenants' virtual banks must match
    # their shadows — no cross-tenant write ever landed.
    for name in _VTPM_TENANTS:
        vt = where[name].vtpm.tenant(name)
        for index in range(PCR_COUNT):
            if vt.pcrs.read(index) != shadow[name][index]:
                return TargetResult(
                    "counterexample", "vtpm-pcr-isolation",
                    f"final sweep: tenant {name} PCR {index} diverged "
                    "from its shadow",
                )
    return TargetResult("ok", "", f"{len(commands)} commands executed")


_RUNNERS = {
    "tpm": _run_tpm,
    "skinit": _run_skinit,
    "seal": _run_seal,
    "faults": _run_faults,
    "vtpm": _run_vtpm,
}


def run_case(case: FuzzCase) -> TargetResult:
    """Execute one case under its target's oracles."""
    return _RUNNERS[case.target](case)
