"""Coverage-guided adversarial fuzzer over the Flicker security surface.

The paper's central claim is that the security-critical surface is small
enough to reason about exhaustively — so this package hammers exactly
that surface.  Four mutation targets cover the trust boundary:

* ``tpm``    — raw TPM command streams against :mod:`repro.tpm.tpm`
* ``skinit`` — SKINIT precondition/platform state (:mod:`repro.hw.skinit`)
* ``seal``   — sealed-blob bytes and replay schedules
  (:mod:`repro.core.sealed_storage`)
* ``faults`` — fault-plan schedules over the eight injection points

Executions are guided by edge coverage harvested from the TCB modules
pinned in ``ANALYSIS_tcb.json`` and checked against the repo's standing
oracles: secrets never leak, unseal fails after tamper, attestation
rejects forgeries, and no unhandled exception escapes the PAL boundary.
Campaigns are seeded and deterministic — the same seed yields a
byte-identical report at any worker count — and every counterexample is
auto-minimized into ``tests/fuzz/corpus/``.
"""

from repro.fuzz.case import TARGETS, FuzzCase
from repro.fuzz.corpus import CorpusEntry, load_corpus
from repro.fuzz.coverage import CoverageMap, EdgeCollector, tcb_module_names
from repro.fuzz.engine import FuzzCampaign
from repro.fuzz.minimize import minimize_case
from repro.fuzz.mutators import mutate, seed_corpus
from repro.fuzz.targets import TargetResult, run_case

__all__ = [
    "TARGETS",
    "FuzzCase",
    "CorpusEntry",
    "load_corpus",
    "CoverageMap",
    "EdgeCollector",
    "tcb_module_names",
    "FuzzCampaign",
    "minimize_case",
    "mutate",
    "seed_corpus",
    "TargetResult",
    "run_case",
]
