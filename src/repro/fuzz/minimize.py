"""Deterministic counterexample minimization.

Greedy structural shrinking in the ddmin spirit: repeatedly try the
smallest edit that keeps the case failing with the *same oracle* —
dropping list elements, truncating byte fields, pulling integers toward
zero — until a full pass produces no progress or the evaluation budget
runs out.  Everything is ordered (fields sorted, candidates tried in a
fixed sequence), so minimization of a given counterexample is a pure
function of the case.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.fuzz.case import FuzzCase
from repro.fuzz.targets import TargetResult, run_case

#: Hard cap on candidate executions per minimization.
MAX_EVALS = 200


def _variants(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Candidate simplifications of ``payload``, smallest-edit first."""
    out: List[Dict[str, Any]] = []
    for key in sorted(payload):
        value = payload[key]
        if isinstance(value, list) and value:
            for i in range(len(value)):
                slimmer = dict(payload)
                slimmer[key] = value[:i] + value[i + 1:]
                out.append(slimmer)
            for i, item in enumerate(value):
                if isinstance(item, dict):
                    for sub in _variants(item):
                        slimmer = dict(payload)
                        slimmer[key] = value[:i] + [sub] + value[i + 1:]
                        out.append(slimmer)
        elif isinstance(value, dict) and "hex" in value:
            raw = bytes.fromhex(value["hex"]) if value["hex"] else b""
            for cut in (len(raw) // 2, len(raw) - 1):
                if 0 <= cut < len(raw):
                    slimmer = dict(payload)
                    slimmer[key] = {"hex": raw[:cut].hex()}
                    out.append(slimmer)
        elif isinstance(value, int) and not isinstance(value, bool):
            for smaller in (0, value // 2):
                if smaller != value:
                    slimmer = dict(payload)
                    slimmer[key] = smaller
                    out.append(slimmer)
    return out


def minimize_case(
    case: FuzzCase, result: TargetResult, max_evals: int = MAX_EVALS
) -> Tuple[FuzzCase, TargetResult]:
    """Shrink ``case`` while it still fails with ``result``'s oracle.

    Returns the smallest case found and its (re-verified) result.  Safe
    to call on any counterexample: a case that stops reproducing under
    every candidate edit is returned unchanged.
    """
    if result.status != "counterexample":
        return case, result
    best, best_result = case, result
    evals = 0
    progress = True
    while progress and evals < max_evals:
        progress = False
        for candidate_payload in _variants(best.payload):
            if evals >= max_evals:
                break
            evals += 1
            try:
                candidate = FuzzCase(best.target, candidate_payload)
                verdict = run_case(candidate)
            except Exception:  # noqa: BLE001 - malformed candidate: skip
                continue
            if (
                verdict.status == "counterexample"
                and verdict.oracle == best_result.oracle
                and len(candidate.to_json()) < len(best.to_json())
            ):
                best, best_result = candidate, verdict
                progress = True
                break
    return best, best_result
