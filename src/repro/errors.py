"""Exception hierarchy for the Flicker reproduction.

Every error raised by the simulated platform derives from :class:`ReproError`
so that callers can distinguish simulation faults from programming errors.
The sub-hierarchies mirror the layers of the system: hardware protection
violations, TPM command failures, OS faults, and Flicker-session errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the reproduction."""


# ---------------------------------------------------------------------------
# Hardware layer
# ---------------------------------------------------------------------------

class HardwareError(ReproError):
    """Base class for simulated-hardware errors."""


class MemoryFault(HardwareError):
    """An access touched physical memory outside the installed range."""


class ProtectionFault(HardwareError):
    """An access violated a hardware protection (ring, segment, or DEV)."""


class DMAProtectionError(ProtectionFault):
    """A DMA transfer targeted memory protected by the Device Exclusion
    Vector."""


class SegmentationFault(ProtectionFault):
    """A memory access fell outside the active segment limit."""


class PrivilegeError(ProtectionFault):
    """An instruction required a more privileged CPU ring."""


class SkinitError(HardwareError):
    """SKINIT could not be executed (wrong core, bad SLB, busy APs...)."""


class DebugAccessError(ProtectionFault):
    """A hardware debugger probed memory while debug access was disabled."""


# ---------------------------------------------------------------------------
# TPM layer
# ---------------------------------------------------------------------------

class TPMError(ReproError):
    """Base class for TPM command failures."""


class TPMAuthError(TPMError):
    """Authorization (OIAP/OSAP/owner-auth) failed."""


class TPMPolicyError(TPMError):
    """A PCR-bound operation was attempted in the wrong platform state
    (e.g. Unseal with non-matching PCR values)."""


class TPMNVError(TPMError):
    """Non-volatile storage command failed (undefined space, bad size...)."""


class TPMLocalityError(TPMError):
    """A command required a locality the caller does not hold (e.g. the
    dynamic-PCR reset that only the CPU may issue)."""


class TPMTransientError(TPMError):
    """A TPM command failed transiently (glitched bus, busy chip).

    Retryable: issuing the same command again may succeed.  The platform's
    retry policy (:class:`repro.core.session.RetryPolicy`) handles these."""


class TPMPermanentError(TPMError):
    """A TPM command failed permanently (dead NV cell, broken engine).

    Never retryable: callers must fail closed
    (:class:`SessionAbortedError` at the platform layer)."""


# ---------------------------------------------------------------------------
# OS layer
# ---------------------------------------------------------------------------

class OSError_(ReproError):
    """Base class for simulated-OS errors (named with a trailing underscore
    to avoid shadowing the builtin :class:`OSError`)."""


class KernelPanic(OSError_):
    """The simulated kernel reached an unrecoverable state."""


class SysfsError(OSError_):
    """Invalid interaction with a sysfs entry."""


class ModuleLoadError(OSError_):
    """A kernel module could not be loaded or initialised."""


# ---------------------------------------------------------------------------
# Flicker layer
# ---------------------------------------------------------------------------

class FlickerError(ReproError):
    """Base class for Flicker-session errors."""


class SLBFormatError(FlickerError):
    """The Secure Loader Block image is malformed (bad length/entry,
    oversized PAL...)."""


class PALRuntimeError(FlickerError):
    """The PAL faulted during execution inside the Flicker session."""

    #: Whether the underlying failure is retryable (set when the PAL died
    #: on a :class:`TPMTransientError`).
    transient: bool = False

    #: Name of the exception type the PAL actually raised, when known.
    error_type: str = ""


class SessionAbortedError(PALRuntimeError):
    """A Flicker session failed closed: a permanent fault, or a transient
    one that survived every retry.  The OS was restored and no PAL output
    was released."""


class AttestationError(FlickerError):
    """A TPM quote or its event log failed verification."""


class SealedStorageError(FlickerError):
    """Sealed-storage blob was rejected (wrong PAL, replay detected...)."""


class SecureChannelError(FlickerError):
    """Secure-channel protocol violation (bad nonce, bad padding...)."""


class VTPMError(FlickerError):
    """vTPM multiplexer failure (unknown tenant, cross-tenant access,
    malformed migration snapshot...).  Lives under the Flicker layer
    because the multiplexer is untrusted software outside the PAL TCB."""


class FaultPlanError(ReproError):
    """A fault plan is malformed (unknown kind, bad injection point...)."""


class ExtractionError(ReproError):
    """The PAL-extraction (automation) tool could not slice the target
    function out of its host program."""
