"""Building Secure Loader Block images.

``build_slb`` plays the role of the paper's linker script (§5.1.2): it
lays the SLB Core first, then the linked modules, then the PAL's code, and
emits a flat binary with the SLB header (16-bit length and entry-point
words) in front.

Two build modes correspond to §7.2's "SKINIT Optimization":

* **unoptimized** — the header's length covers the whole code image, so
  SKINIT streams all of it to the TPM (Table 2's linear cost).
* **optimized** (default) — the image starts with the 4736-byte
  hash-then-extend bootstrap stub; SKINIT measures only the stub, and the
  stub then hashes the full 64-KB region on the main CPU and extends the
  result into PCR 17.  PCR 17 thus still binds every byte of the region,
  but the slow TPM transfer shrinks to 4736 bytes (≈14 ms).

The module also computes the PCR-17 values a verifier (or a Seal policy)
expects after a given image launches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.layout import OPTIMIZED_STUB_BYTES, SLB_MAX_CODE, SLB_REGION_SIZE
from repro.core.modules import MODULE_REGISTRY, modules_total_bytes, resolve_modules
from repro.core.pal import PAL
from repro.crypto.sha1 import sha1_cached as sha1
from repro.errors import SLBFormatError
from repro.sim.rng import DeterministicRNG
from repro.tpm.pcr import PCR_DYNAMIC_RESET_VALUE, simulate_extend_chain

#: Global registry of built images, keyed by SKINIT measurement, so the
#: flicker-module can recover the :class:`SLBImage` for raw bytes written
#: to its sysfs ``slb`` entry.
_IMAGE_REGISTRY: Dict[bytes, "SLBImage"] = {}


def _module_binary(name: str) -> bytes:
    """Deterministic stand-in bytes for a module's compiled code.

    Derived from the module name only, so a module's binary is identical
    across machines and builds — like shipping the same ``.o`` file.
    """
    descriptor = MODULE_REGISTRY[name]
    rng = DeterministicRNG(0xC0DE)
    return rng.fork(f"module:{name}").bytes(descriptor.size_bytes)


def _bootstrap_stub() -> bytes:
    """The 4736-byte measure-then-extend stub (including the 4-byte
    header); its body is SHA-1 code plus a minimal TPM extend driver."""
    rng = DeterministicRNG(0x57AB)
    return rng.fork("hash-extend-stub").bytes(OPTIMIZED_STUB_BYTES - 4)


@dataclass(frozen=True)
class SLBImage:
    """A built, measurable SLB image.

    Measurement digests are memoized per instance: the image bytes of a
    frozen :class:`SLBImage` never change, so ``skinit_measurement``,
    ``region_measurement``, and ``pcr17_launch_value`` are computed once
    and cached (every SKINIT of the same image re-reads them on the
    session hot path).  The underlying :func:`sha1_cached` additionally
    memoizes by content hash across *instances*, so rebuilding an
    identical image costs no re-hash either — while any differing byte
    necessarily produces a fresh digest (the invalidation tests pin
    this).
    """

    pal: PAL
    linked_modules: Tuple[str, ...]
    #: The full 64-KB region contents as installed in memory.
    image: bytes
    #: Number of bytes SKINIT streams to the TPM (the header length word).
    measured_length: int
    #: Whether the hash-then-extend stub is in use.
    optimized: bool

    def _memo(self, key: str, compute):
        cached = self.__dict__.get(key)
        if cached is None:
            cached = compute()
            # Direct __dict__ write: the dataclass is frozen, but the memo
            # is derived state, invisible to __eq__/__repr__.
            object.__setattr__(self, key, cached)
        return cached

    @property
    def skinit_measurement(self) -> bytes:
        """SHA-1 of the SKINIT-measured prefix — what hardware extends
        into PCR 17."""
        return self._memo(
            "_skinit_measurement",
            lambda: sha1(self.image[: self.measured_length]))

    @property
    def region_measurement(self) -> bytes:
        """SHA-1 of the full 64-KB region — what the optimization stub
        extends (only meaningful when ``optimized``)."""
        return self._memo("_region_measurement", lambda: sha1(self.image))

    def launch_measurements(self) -> List[Tuple[str, bytes]]:
        """The (label, digest) extends that reach PCR 17 by the time the
        PAL starts executing."""
        measurements = [("skinit-slb", self.skinit_measurement)]
        if self.optimized:
            measurements.append(("slb-region", self.region_measurement))
        return measurements

    @property
    def pcr17_launch_value(self) -> bytes:
        """PCR 17 at the moment the PAL gains control: the value Seal
        policies bind to (§4.3.1's V = H(0…0 ‖ H(P)))."""
        return self._memo(
            "_pcr17_launch_value",
            lambda: simulate_extend_chain(
                PCR_DYNAMIC_RESET_VALUE,
                [digest for _, digest in self.launch_measurements()],
            ))

    @property
    def code_size(self) -> int:
        """Bytes of actual code in the image (header + core + modules +
        PAL), excluding padding/stack."""
        return 4 + modules_total_bytes(self.linked_modules) + len(self.pal.code_bytes()) + (
            OPTIMIZED_STUB_BYTES - 4 if self.optimized else 0
        )


def build_slb(pal: PAL, optimize: bool = True) -> SLBImage:
    """Link ``pal`` against the SLB Core and its modules into an SLB image.

    Raises :class:`SLBFormatError` if the code would overflow the 60-KB
    code area (Figure 3 reserves the top 4 KB for the stack).
    """
    linked = resolve_modules(pal.modules)
    pal_code = pal.code_bytes()

    parts: List[bytes] = []
    if optimize:
        parts.append(_bootstrap_stub())
    for name in linked:
        parts.append(_module_binary(name))
    parts.append(pal_code)
    body = b"".join(parts)

    total_code = 4 + len(body)
    if total_code > SLB_MAX_CODE:
        raise SLBFormatError(
            f"SLB code of {total_code} bytes exceeds the {SLB_MAX_CODE}-byte code area"
        )

    measured_length = OPTIMIZED_STUB_BYTES if optimize else total_code
    entry_point = 4
    header = measured_length.to_bytes(2, "little") + entry_point.to_bytes(2, "little")
    image = (header + body).ljust(SLB_REGION_SIZE, b"\x00")

    slb = SLBImage(
        pal=pal,
        linked_modules=linked,
        image=image,
        measured_length=measured_length,
        optimized=optimize,
    )
    # Content-keyed memo: concurrent builders insert identical values
    # under identical hash keys, reads are by exact key, and nothing
    # iterates the dict — insertion order is unobservable.
    measurement = slb.skinit_measurement if not optimize else slb.region_measurement
    _IMAGE_REGISTRY[measurement] = slb  # repro: noqa[RACE001]
    _IMAGE_REGISTRY[sha1(image)] = slb  # repro: noqa[RACE001]
    return slb


def lookup_image(raw_image: bytes) -> SLBImage:
    """Recover the :class:`SLBImage` for raw bytes (sysfs ``slb`` writes).

    Raises :class:`SLBFormatError` for bytes that no build produced — the
    simulation cannot 'execute' arbitrary binaries, though SKINIT would
    still faithfully measure them.
    """
    slb = _IMAGE_REGISTRY.get(sha1(raw_image.ljust(SLB_REGION_SIZE, b"\x00")))
    if slb is None:
        raise SLBFormatError("unrecognized SLB image (was it built with build_slb?)")
    return slb


def expected_pcr17_after_launch(image: SLBImage) -> bytes:
    """Alias for :attr:`SLBImage.pcr17_launch_value` with a paper-facing
    name; used when sealing data for a future PAL (§4.3.1)."""
    return image.pcr17_launch_value


def measurement_cache_info():
    """Hit/miss statistics of the cross-instance measurement-hash memo
    (the content-keyed SHA-1 cache backing every SLB digest)."""
    return sha1.cache_info()


def clear_measurement_cache() -> None:
    """Drop the content-keyed measurement memo (tests use this to start
    from a cold cache; correctness never depends on it)."""
    sha1.cache_clear()
