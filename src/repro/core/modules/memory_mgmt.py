"""Memory-management module: malloc/free/realloc over an in-SLB heap.

Paper §5.1: "We have implemented a small version of malloc/free/realloc
for use by applications.  The memory region used as the heap is simply a
large global buffer."  The reproduction implements a real first-fit
allocator with block headers, splitting, and coalescing, operating on a
region of simulated physical memory inside the SLB — so allocations live
in the protected region and are erased by the SLB Core's cleanup phase
like everything else.

Block format (all fields big-endian, 8-byte header)::

    +0  u32  block size, including the header
    +4  u8   1 = allocated, 0 = free
    +5  u8[3] padding
    +8  payload...
"""

from __future__ import annotations

from repro.errors import PALRuntimeError
from repro.hw.memory import PhysicalMemory

_HEADER = 8
_MIN_BLOCK = _HEADER + 8


class PALHeap:
    """A first-fit heap allocator over ``[base, base+size)``."""

    def __init__(self, memory: PhysicalMemory, base: int, size: int) -> None:
        if size < _MIN_BLOCK:
            raise PALRuntimeError("heap region too small")
        self._memory = memory
        self.base = base
        self.size = size
        self._write_header(base, size, allocated=False)

    # -- header I/O --------------------------------------------------------------

    def _read_header(self, addr: int) -> tuple:
        raw = self._memory.read(addr, _HEADER)
        return int.from_bytes(raw[:4], "big"), bool(raw[4])

    def _write_header(self, addr: int, block_size: int, allocated: bool) -> None:
        self._memory.write(
            addr,
            block_size.to_bytes(4, "big") + bytes([1 if allocated else 0]) + b"\x00" * 3,
        )

    def _blocks(self):
        addr = self.base
        end = self.base + self.size
        while addr < end:
            block_size, allocated = self._read_header(addr)
            if block_size < _MIN_BLOCK or addr + block_size > end:
                raise PALRuntimeError(f"heap corruption at {addr:#x}")
            yield addr, block_size, allocated
            addr += block_size

    # -- public API ----------------------------------------------------------------

    def malloc(self, nbytes: int) -> int:
        """Allocate ``nbytes``; returns the payload address.

        Raises :class:`PALRuntimeError` when the heap is exhausted — PALs
        have no OS to page for them, exactly like the paper's environment.
        """
        if nbytes <= 0:
            raise PALRuntimeError("malloc of non-positive size")
        needed = _HEADER + ((nbytes + 7) & ~7)
        for addr, block_size, allocated in self._blocks():
            if allocated or block_size < needed:
                continue
            remainder = block_size - needed
            if remainder >= _MIN_BLOCK:
                self._write_header(addr, needed, allocated=True)
                self._write_header(addr + needed, remainder, allocated=False)
            else:
                self._write_header(addr, block_size, allocated=True)
            return addr + _HEADER
        raise PALRuntimeError(f"heap exhausted allocating {nbytes} bytes")

    def free(self, payload_addr: int) -> None:
        """Release an allocation; coalesces adjacent free blocks."""
        addr = payload_addr - _HEADER
        block_size, allocated = self._validated_block(addr)
        if not allocated:
            raise PALRuntimeError(f"double free at {payload_addr:#x}")
        self._write_header(addr, block_size, allocated=False)
        self._coalesce()

    def realloc(self, payload_addr: int, nbytes: int) -> int:
        """Resize an allocation, moving it if necessary."""
        addr = payload_addr - _HEADER
        block_size, allocated = self._validated_block(addr)
        if not allocated:
            raise PALRuntimeError("realloc of a free block")
        old_payload = block_size - _HEADER
        if nbytes <= old_payload:
            return payload_addr
        data = self._memory.read(payload_addr, old_payload)
        self.free(payload_addr)
        new_addr = self.malloc(nbytes)
        self._memory.write(new_addr, data)
        return new_addr

    # -- internals --------------------------------------------------------------------

    def _validated_block(self, addr: int) -> tuple:
        for block_addr, block_size, allocated in self._blocks():
            if block_addr == addr:
                return block_size, allocated
        raise PALRuntimeError(f"{addr + _HEADER:#x} is not a heap allocation")

    def _coalesce(self) -> None:
        merged = True
        while merged:
            merged = False
            previous = None
            for addr, block_size, allocated in list(self._blocks()):
                if previous is not None:
                    prev_addr, prev_size, prev_alloc = previous
                    if not prev_alloc and not allocated:
                        self._write_header(prev_addr, prev_size + block_size, allocated=False)
                        merged = True
                        break
                previous = (addr, block_size, allocated)

    # -- diagnostics --------------------------------------------------------------------

    def free_bytes(self) -> int:
        """Total payload capacity currently free."""
        return sum(
            block_size - _HEADER
            for _, block_size, allocated in self._blocks()
            if not allocated
        )

    def allocated_blocks(self) -> int:
        """Number of live allocations."""
        return sum(1 for _, _, allocated in self._blocks() if allocated)
