"""OS-Protection module: confine the PAL, not just protect it.

Paper §5.1.2: Flicker's default protections run the PAL at ring 0 with
access to all physical memory; the OS-Protection module instead creates
segment descriptors whose base is the start of the PAL's region and whose
limit is the end of the memory the OS allocated, and runs the PAL in ring
3.  A misbehaving PAL then cannot read or clobber the rest of the system.

:class:`PALMemoryView` is the access path every PAL uses for memory; the
two factory functions build the unrestricted (default) and restricted
(OS-Protection) variants.
"""

from __future__ import annotations

from repro.core.layout import SLBLayout
from repro.errors import SegmentationFault
from repro.hw.cpu import SegmentDescriptor
from repro.hw.memory import PhysicalMemory


class PALMemoryView:
    """Memory access as seen by a running PAL.

    Reads and writes are expressed in *physical* addresses for
    convenience; a restricted view translates them through a segment
    descriptor that enforces the allowed window, mirroring how the real
    module uses segmentation rather than paging.
    """

    def __init__(self, memory: PhysicalMemory, segment: SegmentDescriptor, ring: int) -> None:
        self._memory = memory
        self.segment = segment
        self.ring = ring

    def read(self, addr: int, length: int) -> bytes:
        """Read physical memory through the active segment."""
        physical = self.segment.translate(addr - self.segment.base, length)
        return self._memory.read(physical, length)

    def write(self, addr: int, data: bytes) -> None:
        """Write physical memory through the active segment."""
        physical = self.segment.translate(addr - self.segment.base, len(data))
        self._memory.write(physical, data)

    def zeroize(self, addr: int, length: int) -> None:
        """Zero a range through the active segment."""
        physical = self.segment.translate(addr - self.segment.base, length)
        self._memory.zeroize(physical, length)


def unrestricted_view(memory: PhysicalMemory) -> PALMemoryView:
    """The default: ring-0 PAL with a flat segment over all of memory
    ("by default … a PAL can access the machine's entire physical memory",
    §4.2)."""
    segment = SegmentDescriptor("pal-flat", base=0, limit=memory.size_bytes, dpl=0)
    return PALMemoryView(memory, segment, ring=0)


def restricted_view(memory: PhysicalMemory, layout: SLBLayout) -> PALMemoryView:
    """The OS-Protection configuration: ring-3 PAL confined to the SLB
    region plus its input/output pages."""
    segment = SegmentDescriptor(
        "pal-restricted",
        base=layout.pal_window_start,
        limit=layout.pal_window_end - layout.pal_window_start,
        dpl=3,
    )
    return PALMemoryView(memory, segment, ring=3)


def check_window(view: PALMemoryView, addr: int, length: int) -> None:
    """Explicit window check (used by context helpers before bulk
    operations).  Raises :class:`SegmentationFault` if out of range."""
    view.segment.translate(addr - view.segment.base, length)
