"""PAL-side secure-channel endpoint (``ctx.secure_channel``).

Implements the PAL half of §4.4.2: the first session generates an
asymmetric keypair inside Flicker protection, seals the private key to a
future invocation of the *same* PAL, and outputs the public key; a later
session unseals the key and decrypts messages the remote party encrypted
to it.  The remote-party half lives in :mod:`repro.core.secure_channel`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.errors import SecureChannelError
from repro.tpm.structures import SealedBlob

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.pal import PALContext


def encode_channel_output(public: RSAPublicKey, sealed: SealedBlob) -> bytes:
    """Serialize the establish-session output: public key ‖ sealed key."""
    pub = public.encode()
    blob = sealed.encode()
    return (
        len(pub).to_bytes(4, "big") + pub
        + len(blob).to_bytes(4, "big") + blob
    )


def decode_channel_output(data: bytes) -> Tuple[RSAPublicKey, SealedBlob]:
    """Inverse of :func:`encode_channel_output`."""
    if len(data) < 8:
        raise SecureChannelError("truncated channel-establishment output")
    pub_len = int.from_bytes(data[:4], "big")
    public = RSAPublicKey.decode(data[4 : 4 + pub_len])
    off = 4 + pub_len
    blob_len = int.from_bytes(data[off : off + 4], "big")
    sealed = SealedBlob.decode(data[off + 4 : off + 4 + blob_len])
    if off + 4 + blob_len != len(data):
        raise SecureChannelError("trailing bytes in channel-establishment output")
    return public, sealed


class PALSecureChannelEndpoint:
    """The capability object PALs reach via ``ctx.secure_channel``."""

    def __init__(self, ctx: "PALContext") -> None:
        self._ctx = ctx

    def establish(self) -> bytes:
        """First Flicker session: generate K_PAL, seal K⁻¹_PAL to this
        PAL's own launch PCR-17 value, and return the output payload
        (public key + sealed private key) for ``ctx.write_output``.

        The sealed blob travels through untrusted storage — that is safe,
        because only this PAL, relaunched under Flicker, can unseal it."""
        ctx = self._ctx
        keypair = ctx.crypto.rsa_keygen_1024()
        sealed = ctx.tpm.seal_to_pal(keypair.private.encode(), ctx.self_pcr17)
        return encode_channel_output(keypair.public, sealed)

    def open(self, sdata: bytes, ciphertext: bytes) -> bytes:
        """Later Flicker session: recover K⁻¹_PAL from ``sdata`` (the
        sealed blob, handed back by untrusted code) and decrypt one
        message from the remote party.

        Raises :class:`SecureChannelError` on malformed input; the TPM
        itself refuses the unseal if the wrong PAL is running."""
        ctx = self._ctx
        try:
            sealed = SealedBlob.decode(sdata)
        except Exception as exc:
            raise SecureChannelError(f"bad sealed key data: {exc}") from exc
        private = RSAPrivateKey.decode(ctx.tpm.unseal(sealed))
        return ctx.crypto.rsa_decrypt(private, ciphertext)

    def unseal_private_key(self, sdata: bytes) -> RSAPrivateKey:
        """Recover the channel private key without decrypting anything —
        used by PALs that *sign* with it (the CA) rather than decrypt."""
        sealed = SealedBlob.decode(sdata)
        return RSAPrivateKey.decode(self._ctx.tpm.unseal(sealed))
