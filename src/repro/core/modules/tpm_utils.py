"""PAL-side TPM driver and utilities (``ctx.tpm``).

Paper Figure 6 splits TPM support into a minimal memory-mapped-I/O driver
(216 LOC) and the utilities that implement useful operations over it:
GetCapability, PCR Read, PCR Extend, GetRandom, Seal, Unseal, and the
OIAP/OSAP session handling that authorizes Seal and Unseal.

The reproduction's equivalent wraps the locality-0
:class:`~repro.tpm.tpm.TPMInterface` with the same session plumbing the
OS-side driver uses, plus Flicker-specific conveniences: sealing data to a
*future PAL's* PCR-17 value (§4.3.1) and the end-of-session extends.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.crypto.sha1 import sha1
from repro.tpm.driver import TPMSessionDriver
from repro.tpm.structures import SealedBlob
from repro.tpm.tpm import TPMInterface

#: The PCR that records the Flicker session (reset by SKINIT, §2.3).
FLICKER_PCR = 17


class PALTPMInterface:
    """The TPM capability handed to PALs that link TPM modules.

    Linking only the minimal ``tpm_driver`` (Figure 6: 216 LOC) grants the
    unauthorized commands — PCR read/extend, GetRandom, GetCapability.
    The richer operations (Seal/Unseal, NV storage, counters) need the
    OIAP/OSAP machinery of ``tpm_utils`` (889 LOC) and raise
    :class:`PALRuntimeError` without it, mirroring the link-time split the
    paper's module inventory implies.
    """

    def __init__(self, interface: TPMInterface, utils_linked: bool = True) -> None:
        self._driver = TPMSessionDriver(interface, nonce_seed=b"pal-tpm-utils")
        self._utils_linked = utils_linked

    def _require_utils(self, operation: str) -> None:
        if not self._utils_linked:
            from repro.errors import PALRuntimeError

            raise PALRuntimeError(
                f"{operation} requires the 'tpm_utils' module; this PAL "
                "linked only 'tpm_driver'"
            )

    # -- basic operations -------------------------------------------------------

    def pcr_read(self, index: int = FLICKER_PCR) -> bytes:
        """TPM_PCRRead (defaults to PCR 17)."""
        return self._driver.pcr_read(index)

    def pcr_extend(self, measurement: bytes, index: int = FLICKER_PCR) -> bytes:
        """TPM_Extend (defaults to PCR 17)."""
        return self._driver.pcr_extend(index, measurement)

    def get_random(self, num_bytes: int) -> bytes:
        """TPM_GetRandom — the PAL's entropy source."""
        return self._driver.get_random(num_bytes)

    def get_capability(self) -> Dict[str, object]:
        """TPM_GetCapability."""
        return self._driver.interface.get_capability()

    # -- sealed storage ------------------------------------------------------------

    def seal_to_pal(self, data: bytes, pal_pcr17_value: bytes) -> SealedBlob:
        """Seal ``data`` so it unseals only when PCR 17 holds
        ``pal_pcr17_value`` — i.e. only inside a Flicker session of the
        intended PAL, before its output extends (§4.3.1)."""
        self._require_utils("TPM_Seal")
        return self._driver.seal(data, {FLICKER_PCR: pal_pcr17_value})

    def seal_to_policy(self, data: bytes, pcr_policy: Dict[int, bytes]) -> SealedBlob:
        """Seal to an arbitrary PCR policy.  TXT-launched sessions use this
        with a two-register policy — PCR 17 (SINIT ACM) *and* PCR 18 (MLE)
        — because on Intel hardware the PAL's identity spans both."""
        self._require_utils("TPM_Seal")
        return self._driver.seal(data, pcr_policy)

    def seal(self, data: bytes, pcr_policy: Dict[int, bytes]) -> SealedBlob:
        """General TPM_Seal with an explicit PCR policy."""
        self._require_utils("TPM_Seal")
        return self._driver.seal(data, pcr_policy)

    def unseal(self, blob: SealedBlob) -> bytes:
        """TPM_Unseal; the TPM enforces the blob's PCR policy against the
        live PCR values of *this* session."""
        self._require_utils("TPM_Unseal")
        return self._driver.unseal(blob)

    # -- NV storage & counters (replay protection, §4.3.2) ----------------------------

    def nv_read(self, index: int) -> bytes:
        """TPM_NV_ReadValue."""
        self._require_utils("TPM_NV_ReadValue")
        return self._driver.nv_read(index)

    def nv_write(self, index: int, data: bytes) -> None:
        """TPM_NV_WriteValue."""
        self._require_utils("TPM_NV_WriteValue")
        self._driver.nv_write(index, data)

    def define_nv_space(self, index: int, size: int, owner_auth: bytes,
                        read_pcr_policy: Optional[Dict[int, bytes]] = None,
                        write_pcr_policy: Optional[Dict[int, bytes]] = None):
        """TPM_NV_DefineSpace — needs the 20-byte owner authorization,
        which a remote party can deliver over a secure channel (§4.3.2)."""
        self._require_utils("TPM_NV_DefineSpace")
        return self._driver.define_nv_space(
            index, size, owner_auth, read_pcr_policy, write_pcr_policy
        )

    def create_counter(self, label: bytes, owner_auth: bytes) -> int:
        """Create a monotonic counter (owner-authorized)."""
        self._require_utils("TPM_CreateCounter")
        return self._driver.create_counter(label, owner_auth)

    def increment_counter(self, counter_id: int) -> int:
        """TPM_IncrementCounter."""
        self._require_utils("TPM_IncrementCounter")
        return self._driver.increment_counter(counter_id)

    def read_counter(self, counter_id: int) -> int:
        """TPM_ReadCounter."""
        self._require_utils("TPM_ReadCounter")
        return self._driver.read_counter(counter_id)

    # -- measurement helpers ------------------------------------------------------------

    @staticmethod
    def measure(data: bytes) -> bytes:
        """SHA-1 measurement of arbitrary data (no TPM round-trip)."""
        return sha1(data)
