"""PAL-linkable modules (paper Figure 6).

Only the SLB Core is mandatory; every other module is opt-in, and each one
a PAL links adds its lines of code to that PAL's TCB and its bytes to the
SLB binary.  The registry below carries the paper's own LOC/size numbers
so the reproduction's SLB images have realistic sizes (which drive the
SKINIT latency model) and so the Figure 6 bench can print the inventory.

At runtime, linking a module grants the PAL the corresponding capability
on its :class:`~repro.core.pal.PALContext`:

=================  ====================================================
module             capability
=================  ====================================================
``slb_core``       (always present; no context attribute)
``os_protection``  PAL runs at ring 3 with segment-limited memory
``tpm_driver``     raw TPM access (required by ``tpm_utils``)
``tpm_utils``      ``ctx.tpm`` — Seal/Unseal/GetRandom/Extend/NV/counters
``crypto``         ``ctx.crypto`` — RSA/AES/SHA/md5crypt with modelled cost
``crypto_sha1``    ``ctx.crypto`` — hash-only subset (smaller TCB)
``memory_mgmt``    ``ctx.heap`` — malloc/free/realloc over the SLB heap
``secure_channel`` ``ctx.secure_channel`` — the §4.4.2 endpoint
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import SLBFormatError


@dataclass(frozen=True)
class ModuleDescriptor:
    """Static description of a linkable module."""

    name: str
    description: str
    lines_of_code: int
    size_bytes: int
    #: Modules this one requires (linker dependency closure).
    requires: Tuple[str, ...] = ()


#: The module inventory.  LOC and sizes for the paper's modules are taken
#: from Figure 6 (sizes converted from KB); ``crypto_sha1`` is the
#: hash-only subset this reproduction factors out so hash-using PALs (like
#: the rootkit detector) need not link all 2262 crypto lines.
MODULE_REGISTRY: Dict[str, ModuleDescriptor] = {
    descriptor.name: descriptor
    for descriptor in (
        ModuleDescriptor(
            name="slb_core",
            description="Prepare environment, execute PAL, clean environment, resume OS",
            lines_of_code=94,
            size_bytes=320,  # 0.312 KB
        ),
        ModuleDescriptor(
            name="os_protection",
            description="Memory protection, ring 3 PAL execution",
            lines_of_code=5,
            size_bytes=47,  # 0.046 KB
        ),
        ModuleDescriptor(
            name="tpm_driver",
            description="Communication with the TPM",
            lines_of_code=216,
            size_bytes=845,  # 0.825 KB
        ),
        ModuleDescriptor(
            name="tpm_utils",
            description="TPM operations: Seal, Unseal, GetRand, PCR Extend, OIAP/OSAP",
            lines_of_code=889,
            size_bytes=9653,  # 9.427 KB
            requires=("tpm_driver",),
        ),
        ModuleDescriptor(
            name="crypto",
            description="General-purpose crypto: RSA, SHA-1, SHA-512, MD5, AES, RC4",
            lines_of_code=2262,
            size_bytes=32133,  # 31.380 KB
        ),
        ModuleDescriptor(
            name="crypto_sha1",
            description="Hash-only crypto subset (SHA-1)",
            lines_of_code=214,
            size_bytes=3584,
        ),
        ModuleDescriptor(
            name="memory_mgmt",
            description="malloc/free/realloc over a static in-SLB heap",
            lines_of_code=657,
            size_bytes=12811,  # 12.511 KB
        ),
        ModuleDescriptor(
            name="secure_channel",
            description="Generate keypair, seal private key, return public key",
            lines_of_code=292,
            size_bytes=2069,  # 2.021 KB
            requires=("tpm_utils", "crypto"),
        ),
    )
}


def resolve_modules(names) -> Tuple[str, ...]:
    """Expand a PAL's module list with dependencies; ``slb_core`` first.

    Raises :class:`SLBFormatError` for unknown names or conflicting
    crypto variants.
    """
    resolved = ["slb_core"]

    def add(name: str) -> None:
        if name in resolved:
            return
        descriptor = MODULE_REGISTRY.get(name)
        if descriptor is None:
            raise SLBFormatError(f"unknown PAL module {name!r}")
        for dependency in descriptor.requires:
            add(dependency)
        resolved.append(name)

    for name in names:
        add(name)
    if "crypto" in resolved and "crypto_sha1" in resolved:
        resolved.remove("crypto_sha1")  # full crypto subsumes the subset
    return tuple(resolved)


def modules_total_bytes(names) -> int:
    """Summed binary size of a resolved module list."""
    return sum(MODULE_REGISTRY[name].size_bytes for name in names)
