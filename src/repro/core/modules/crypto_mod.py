"""Crypto module capability (``ctx.crypto``).

Bridges the from-scratch algorithms in :mod:`repro.crypto` into the PAL
execution environment, charging each operation's *modelled* host-CPU cost
to the virtual clock (calibrated from §7.4.1: RSA-1024 key generation
185.7 ms, private-key ops ≈ 4.6 ms, etc.).

Functional key sizes are decoupled from modelled ones: the simulation can
generate a small RSA key (fast in pure Python) while charging the paper's
1024-bit costs, because all reported latencies come from the virtual
clock.  The default functional size is set by the platform.
"""

from __future__ import annotations

from typing import Callable

from repro.crypto.aes import AES128
from repro.crypto.drbg import HashDRBG
from repro.crypto.hmac import hmac_sha1
from repro.crypto.md5 import md5
from repro.crypto.md5crypt import md5crypt
from repro.crypto.pkcs1 import (
    pkcs1_decrypt,
    pkcs1_encrypt,
    pkcs1_sign_sha1,
    pkcs1_verify_sha1,
)
from repro.crypto.rsa import RSAKeyPair, RSAPrivateKey, RSAPublicKey, generate_rsa_keypair
from repro.crypto.sha1 import sha1
from repro.crypto.sha512 import sha512
from repro.sim.rng import DeterministicRNG
from repro.sim.timing import HostTimings


class PALCrypto:
    """Crypto operations with modelled latencies, for use inside a PAL.

    ``charge`` is a callback ``(ms, label) -> None`` provided by the PAL
    context; ``entropy`` supplies seed material (PALs draw it from
    TPM_GetRandom, per §7.4.1).
    """

    def __init__(
        self,
        host: HostTimings,
        charge: Callable[[float, str], None],
        entropy: bytes,
        functional_rsa_bits: int = 512,
        hash_only: bool = False,
    ) -> None:
        self._host = host
        self._charge = charge
        self._drbg = HashDRBG(entropy)
        self._rng = DeterministicRNG(int.from_bytes(self._drbg.generate(8), "big"))
        self.functional_rsa_bits = functional_rsa_bits
        self.hash_only = hash_only

    def _full(self, operation: str) -> None:
        if self.hash_only:
            from repro.errors import PALRuntimeError

            raise PALRuntimeError(
                f"{operation} requires the full 'crypto' module; this PAL "
                "linked only 'crypto_sha1'"
            )

    # -- hashing (available in both variants) -------------------------------------

    def sha1(self, data: bytes) -> bytes:
        """SHA-1 with modelled host throughput."""
        self._charge(self._host.sha1_ms_per_kb * len(data) / 1024.0, "sha1")
        return sha1(data)

    def sha512(self, data: bytes) -> bytes:
        """SHA-512 (charged at twice the SHA-1 rate, as on real hardware of
        the era)."""
        self._full("SHA-512")
        self._charge(2.0 * self._host.sha1_ms_per_kb * len(data) / 1024.0, "sha512")
        return sha512(data)

    def md5(self, data: bytes) -> bytes:
        """MD5 (slightly cheaper than SHA-1)."""
        self._full("MD5")
        self._charge(0.7 * self._host.sha1_ms_per_kb * len(data) / 1024.0, "md5")
        return md5(data)

    def hmac_sha1(self, key: bytes, message: bytes) -> bytes:
        """HMAC-SHA1 (two hash passes plus fixed overhead)."""
        self._charge(
            2.0 * self._host.sha1_ms_per_kb * len(message) / 1024.0
            + self._host.hmac_overhead_ms,
            "hmac-sha1",
        )
        return hmac_sha1(key, message)

    # -- randomness ---------------------------------------------------------------

    def random_bytes(self, n: int) -> bytes:
        """DRBG output seeded from the PAL's TPM entropy."""
        self._full("DRBG")
        return self._drbg.generate(n)

    # -- RSA ------------------------------------------------------------------------

    def rsa_keygen_1024(self) -> RSAKeyPair:
        """Generate an RSA keypair, charging the paper's 1024-bit cost."""
        self._full("RSA keygen")
        self._charge(self._host.rsa1024_keygen_ms, "rsa-keygen")
        return generate_rsa_keypair(self.functional_rsa_bits, self._rng)

    def rsa_decrypt(self, private: RSAPrivateKey, ciphertext: bytes) -> bytes:
        """PKCS#1 v1.5 decryption (private-key op, ≈4.6 ms modelled)."""
        self._full("RSA decrypt")
        self._charge(self._host.rsa1024_private_op_ms, "rsa-decrypt")
        return pkcs1_decrypt(private, ciphertext)

    def rsa_encrypt(self, public: RSAPublicKey, message: bytes) -> bytes:
        """PKCS#1 v1.5 encryption (public-key op)."""
        self._full("RSA encrypt")
        self._charge(self._host.rsa1024_public_op_ms, "rsa-encrypt")
        return pkcs1_encrypt(public, message, self._rng)

    def rsa_sign(self, private: RSAPrivateKey, message: bytes) -> bytes:
        """PKCS#1 v1.5 / SHA-1 signature (private-key op, ≈4.7 ms)."""
        self._full("RSA sign")
        self._charge(self._host.rsa1024_private_op_ms + 0.1, "rsa-sign")
        return pkcs1_sign_sha1(private, message)

    def rsa_verify(self, public: RSAPublicKey, message: bytes, signature: bytes) -> bool:
        """PKCS#1 v1.5 / SHA-1 verification (public-key op)."""
        self._full("RSA verify")
        self._charge(self._host.rsa1024_public_op_ms, "rsa-verify")
        return pkcs1_verify_sha1(public, message, signature)

    # -- symmetric ------------------------------------------------------------------

    def aes_encrypt_cbc(self, key: bytes, plaintext: bytes, iv: bytes) -> bytes:
        """AES-128-CBC encryption with modelled throughput."""
        self._full("AES")
        self._charge(self._host.aes_ms_per_kb * len(plaintext) / 1024.0, "aes-encrypt")
        return AES128(key).encrypt_cbc(plaintext, iv)

    def aes_decrypt_cbc(self, key: bytes, ciphertext: bytes, iv: bytes) -> bytes:
        """AES-128-CBC decryption with modelled throughput."""
        self._full("AES")
        self._charge(self._host.aes_ms_per_kb * len(ciphertext) / 1024.0, "aes-decrypt")
        return AES128(key).decrypt_cbc(ciphertext, iv)

    # -- password hashing --------------------------------------------------------------

    def md5crypt(self, password: bytes, salt: bytes) -> str:
        """md5crypt — what the SSH PAL computes (Figure 7's
        ``md5crypt(salt, password)``)."""
        self._full("md5crypt")
        self._charge(self._host.md5crypt_ms, "md5crypt")
        return md5crypt(password, salt)
