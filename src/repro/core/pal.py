"""The PAL programming model.

A PAL (Piece of Application Logic) is the security-sensitive code a
Flicker session executes (paper §4.1).  In the reproduction a PAL is a
class with a :meth:`PAL.run` method; its *code identity* — what SKINIT
measures — is the source text of that class plus the names of the modules
it links, so editing the PAL's logic (or its TCB) changes its measurement
exactly as recompiling the C PAL would.

At run time the PAL receives a :class:`PALContext`: its inputs, an output
writer, and one capability per linked module (``ctx.tpm``, ``ctx.crypto``,
``ctx.heap``, ``ctx.secure_channel``, plus the memory view configured by
``os_protection``).  Accessing a capability whose module was not linked
raises :class:`PALRuntimeError` — the simulation's equivalent of an
unresolved symbol at link time.
"""

from __future__ import annotations

import inspect
from typing import Callable, Optional, Tuple

from repro.core.layout import MAX_PARAM_BYTES, SLBLayout
from repro.core.modules import resolve_modules
from repro.core.modules.crypto_mod import PALCrypto
from repro.core.modules.memory_mgmt import PALHeap
from repro.core.modules.os_protection import PALMemoryView
from repro.core.modules.tpm_utils import PALTPMInterface
from repro.errors import PALRuntimeError


class PAL:
    """Base class for Pieces of Application Logic.

    Subclass, set :attr:`name` and :attr:`modules`, and implement
    :meth:`run`.  Keep the class small: everything in it is inside the
    session's TCB and is measured into PCR 17.
    """

    #: Human-readable PAL name (appears in traces and event logs).
    name: str = "pal"

    #: Modules to link beyond the mandatory SLB Core (see
    #: :data:`repro.core.modules.MODULE_REGISTRY`).
    modules: Tuple[str, ...] = ()

    #: Optional watchdog: maximum virtual milliseconds of *application*
    #: work this PAL may charge before the SLB Core terminates it.  Paper
    #: §5.1.2: "We are also investigating techniques to limit a PAL's
    #: execution time using timer interrupts in the SLB Core", with the
    #: caveat that TPM operations need time to complete — accordingly the
    #: budget counts only CPU work, never TPM command latency.  ``None``
    #: disables the watchdog.
    max_work_ms = None

    def run(self, ctx: "PALContext") -> None:
        """Application-specific logic.  Read ``ctx.inputs``, do the work,
        call ``ctx.write_output``."""
        raise NotImplementedError

    # -- identity ---------------------------------------------------------------

    def code_bytes(self) -> bytes:
        """The PAL's measured code: its source text plus linked-module
        names.  Any change to the logic or the TCB changes this value and
        therefore the SLB measurement."""
        try:
            source = inspect.getsource(type(self))
        except (OSError, TypeError):
            raise PALRuntimeError(
                f"cannot obtain source of PAL {self.name!r}; define it in a file"
            ) from None
        manifest = ",".join(resolve_modules(self.modules))
        return source.encode("utf-8") + b"\x00" + manifest.encode("ascii")


class PALContext:
    """Everything a PAL can touch while it runs.

    Constructed by the SLB Core; fields reflect the linked modules.
    """

    def __init__(
        self,
        inputs: bytes,
        layout: SLBLayout,
        mem: PALMemoryView,
        linked_modules: Tuple[str, ...],
        self_pcr17: bytes,
        charge: Callable[[float, str], None],
        charge_hash: Optional[Callable[[int, str], None]] = None,
        tpm: Optional[PALTPMInterface] = None,
        crypto: Optional[PALCrypto] = None,
        heap: Optional[PALHeap] = None,
    ) -> None:
        self.inputs = inputs
        self.layout = layout
        self.mem = mem
        self.linked_modules = linked_modules
        #: PCR-17 value right after this PAL's launch — what a *future*
        #: invocation of the same PAL presents at Unseal time (§4.3.1).
        self.self_pcr17 = self_pcr17
        #: PCR policy identifying a future launch of this same PAL — what
        #: Seal operations should bind to.  On SVM launches this is
        #: ``{17: self_pcr17}``; on Intel TXT launches the identity spans
        #: PCR 17 (SINIT ACM) and PCR 18 (MLE), so the policy has both.
        self.self_seal_policy: dict = {17: self_pcr17}
        self.charge = charge
        #: Charge virtual time for hashing ``n`` bytes at the host's SHA-1
        #: throughput: ``ctx.charge_hash(n, label)``.  Lets PALs whose
        #: measured data is modelled larger than its functional stand-in
        #: (the rootkit detector's kernel regions) account honestly.
        self.charge_hash = charge_hash or (lambda _n, _label: None)
        self._tpm = tpm
        self._crypto = crypto
        self._heap = heap
        self._output: bytes = b""

    # -- output ---------------------------------------------------------------

    def write_output(self, data: bytes) -> None:
        """Stage the PAL's output (written to ``PAL_OUT`` — the page above
        the SLB — when the PAL returns)."""
        if len(data) > MAX_PARAM_BYTES:
            raise PALRuntimeError(
                f"output of {len(data)} bytes exceeds the output page "
                f"({MAX_PARAM_BYTES} bytes)"
            )
        self._output = bytes(data)

    def staged_output(self) -> bytes:
        """The output staged so far (read by the SLB Core)."""
        return self._output

    # -- capabilities ------------------------------------------------------------

    def _require(self, value, module_name: str):
        if value is None:
            raise PALRuntimeError(
                f"PAL did not link module {module_name!r}; add it to PAL.modules"
            )
        return value

    @property
    def tpm(self) -> PALTPMInterface:
        """TPM operations.  Linking ``tpm_driver`` grants the unauthorized
        commands (PCR read/extend, GetRandom); ``tpm_utils`` additionally
        unlocks Seal/Unseal, NV storage, and counters."""
        return self._require(self._tpm, "tpm_driver")

    @property
    def crypto(self) -> PALCrypto:
        """Cryptographic operations (requires ``crypto`` or
        ``crypto_sha1``)."""
        return self._require(self._crypto, "crypto")

    @property
    def heap(self) -> PALHeap:
        """malloc/free/realloc (requires ``memory_mgmt``)."""
        return self._require(self._heap, "memory_mgmt")

    @property
    def secure_channel(self):
        """Secure-channel endpoint (requires ``secure_channel``)."""
        if "secure_channel" not in self.linked_modules:
            raise PALRuntimeError(
                "PAL did not link module 'secure_channel'; add it to PAL.modules"
            )
        from repro.core.modules.secure_channel import PALSecureChannelEndpoint

        return PALSecureChannelEndpoint(self)

    def has_module(self, name: str) -> bool:
        """Whether a module is linked into this PAL."""
        return name in self.linked_modules
