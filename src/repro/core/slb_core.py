"""The SLB Core: the mandatory ~250-line TCB of every Flicker session.

This module is the reproduction of the paper's central artifact (§4.2,
Figure 6 row one): the code that runs between SKINIT's jump and the
resumption of the untrusted OS.  Its phases, in order:

* **Initialization** — (optimized images only) hash the full 64-KB region
  and extend the digest into PCR 17; build the SLB GDT with segments based
  at the SLB base; load segment registers; if the OS-Protection module is
  linked, drop to ring 3 behind a limit-checked segment.
* **Execute PAL** — construct the :class:`~repro.core.pal.PALContext`
  with exactly the linked capabilities and call the PAL.
* **Cleanup** — zeroize the SLB region and the input page so no secret
  survives into untrusted execution.
* **Extend PCR** — extend the result-integrity measurement (inputs,
  outputs, nonce) and then the public sentinel constant, closing the
  PCR-17 session record and revoking sealed-storage access.
* **Resume OS** — rebuild skeleton page tables, restore the kernel's CR3
  and GDT, and return to the flicker-module.

A PAL that raises is contained: cleanup, the closing extends, and the OS
resume all still run, and the error is reported to the caller only after
the platform is back in a safe state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.attestation import SENTINEL_MEASUREMENT, io_measurement
from repro.core.layout import (
    PARAM_PAGE_SIZE,
    SLB_MAX_CODE,
    SLB_REGION_SIZE,
    SLBLayout,
    decode_param,
    encode_param,
)
from repro.core.modules.crypto_mod import PALCrypto
from repro.core.modules.memory_mgmt import PALHeap
from repro.core.modules.os_protection import restricted_view, unrestricted_view
from repro.core.modules.tpm_utils import FLICKER_PCR, PALTPMInterface
from repro.core.pal import PALContext
from repro.core.slb import SLBImage
from repro.crypto.sha1 import sha1_cached as sha1
from repro.errors import PALRuntimeError, TPMTransientError
from repro.hw.cpu import CPUCore, GDT, SegmentDescriptor, TaskStateSegment
from repro.hw.machine import Machine

#: Modelled fixed costs of SLB Core phases (sub-millisecond bookkeeping the
#: paper folds into its "<1 ms" remainders).
INIT_MS = 0.05
CLEANUP_MS = 0.05
RESUME_MS = 0.20


@dataclass
class SavedKernelState:
    """What the flicker-module saves before SKINIT (§4.2, "Suspend OS")."""

    cr3: int
    gdt: GDT
    segments: dict
    nonce: bytes
    #: Launch technology: ``"svm"`` (SKINIT) or ``"txt"`` (SENTER).
    launch: str = "svm"
    #: For TXT launches: the SINIT ACM's measurement (PAL identity spans
    #: PCR 17 = ACM and PCR 18 = MLE on Intel hardware).
    acm_measurement: bytes = b""


@dataclass
class SLBCoreResult:
    """What a completed session hands back to the flicker-module."""

    outputs: bytes
    #: Ordered (label, measurement) pairs extended into PCR 17.
    event_log: Tuple[Tuple[str, bytes], ...]
    #: Set when the PAL raised; the OS was still restored safely.
    pal_error: Optional[str] = None
    #: Labels of extends the PAL performed itself (subset of event_log).
    pal_extend_count: int = 0
    #: Exception type name behind ``pal_error`` (e.g. ``"TPMTransientError"``).
    pal_error_type: str = ""
    #: True when the PAL died on a retryable fault (transient TPM error).
    pal_error_transient: bool = False


def _build_slb_gdt(layout: SLBLayout, restrict: bool) -> GDT:
    """The SLB Core's GDT: segments based at the SLB base so the PAL can
    be linked at address 0 (§4.2, "Initialize the SLB")."""
    gdt = GDT(name="slb-gdt")
    limit = (
        layout.pal_window_end - layout.base
        if restrict
        else SLB_REGION_SIZE + 3 * PARAM_PAGE_SIZE
    )
    dpl = 3 if restrict else 0
    gdt.install(SegmentDescriptor("cs", layout.base, limit, dpl=dpl, executable=True))
    gdt.install(SegmentDescriptor("ds", layout.base, limit, dpl=dpl))
    gdt.install(SegmentDescriptor("ss", layout.base, limit, dpl=dpl))
    # Call gate back to ring 0 for the OS-Protection return path and the
    # OS-resume transition (§4.2, "Resume OS").
    gdt.install(SegmentDescriptor("callgate-cs", 0, 2 ** 32, dpl=0, executable=True))
    return gdt


def execute_slb(
    machine: Machine,
    core: CPUCore,
    slb_base: int,
    image: SLBImage,
    saved_state: SavedKernelState,
    functional_rsa_bits: int = 512,
) -> SLBCoreResult:
    """Run one Flicker session's protected phase (post-SKINIT).

    Entered via the machine's executable registry when SKINIT jumps to the
    SLB entry point.  Returns an :class:`SLBCoreResult`; never leaves the
    platform suspended, even on PAL failure.
    """
    clock = machine.clock
    layout = SLBLayout(base=slb_base)
    tpm_if = machine.os_tpm_interface()
    pal_tpm = PALTPMInterface(
        tpm_if, utils_linked="tpm_utils" in image.linked_modules
    )
    if saved_state.launch == "txt":
        # SENTER measured the ACM into PCR 17 and the MLE (= this SLB)
        # into PCR 18; the session record accumulates in PCR 17 on top of
        # the ACM measurement.
        event_log: List[Tuple[str, bytes]] = [("sinit-acm", saved_state.acm_measurement)]
    else:
        event_log = list(image.launch_measurements())

    with clock.span("slb-init"):
        if image.optimized:
            # The bootstrap stub hashes the entire 64-KB region on the main
            # CPU and extends the digest (§7.2, "SKINIT Optimization").
            region = machine.memory.read(slb_base, SLB_REGION_SIZE)
            machine.charge_host_sha1(len(region), label="slb-region-hash")
            tpm_if.pcr_extend(FLICKER_PCR, sha1(region))
        restrict = "os_protection" in image.linked_modules
        gdt = _build_slb_gdt(layout, restrict)
        core.load_gdt(gdt)
        for register in ("cs", "ds", "ss"):
            core.load_segment(register, register)
        core.tss = TaskStateSegment(
            ring0_stack_base=layout.stack_base, ring0_entry="slb-core-exit"
        )
        clock.advance(INIT_MS)

    inputs = decode_param(machine.memory.read(layout.input_page, PARAM_PAGE_SIZE))

    # Optional §5.1.2 watchdog: a charge callback that terminates the PAL
    # once its *CPU work* budget is exhausted.  TPM latency never counts —
    # "a PAL may need some minimal amount of time to allow TPM operations
    # to complete before the PAL can accomplish any meaningful work".
    charge = machine.charge_work
    if image.pal.max_work_ms is not None:
        budget = {"remaining_ms": float(image.pal.max_work_ms)}

        def charge(ms: float, label: str, _budget=budget) -> None:
            _budget["remaining_ms"] -= ms
            if _budget["remaining_ms"] < 0:
                raise PALRuntimeError(
                    f"SLB Core watchdog: PAL exceeded its "
                    f"{image.pal.max_work_ms} ms work budget at {label!r}"
                )
            machine.charge_work(ms, label)

    # Assemble the PAL's context from the linked modules.
    mem_view = (
        restricted_view(machine.memory, layout)
        if restrict
        else unrestricted_view(machine.memory)
    )
    crypto: Optional[PALCrypto] = None
    if "crypto" in image.linked_modules or "crypto_sha1" in image.linked_modules:
        if "tpm_driver" in image.linked_modules:
            entropy = pal_tpm.get_random(32)
        else:
            entropy = sha1(image.skinit_measurement + b"entropy") + b"\x00" * 12
        crypto = PALCrypto(
            host=machine.profile.host,
            charge=charge,
            entropy=entropy,
            functional_rsa_bits=functional_rsa_bits,
            hash_only="crypto" not in image.linked_modules,
        )
    heap: Optional[PALHeap] = None
    if "memory_mgmt" in image.linked_modules:
        heap_base = (slb_base + image.code_size + 15) & ~15
        heap = PALHeap(machine.memory, heap_base, slb_base + SLB_MAX_CODE - heap_base)

    if saved_state.launch == "txt":
        from repro.tpm.pcr import PCR_DYNAMIC_RESET_VALUE, simulate_extend_chain

        self_pcr17 = simulate_extend_chain(
            PCR_DYNAMIC_RESET_VALUE, [saved_state.acm_measurement]
        )
        seal_policy = {
            17: self_pcr17,
            18: simulate_extend_chain(
                PCR_DYNAMIC_RESET_VALUE, [image.skinit_measurement]
            ),
        }
    else:
        self_pcr17 = image.pcr17_launch_value
        seal_policy = {17: self_pcr17}

    ctx = PALContext(
        inputs=inputs,
        layout=layout,
        mem=mem_view,
        linked_modules=image.linked_modules,
        self_pcr17=self_pcr17,
        charge=charge,
        charge_hash=machine.charge_host_sha1,
        tpm=pal_tpm if "tpm_driver" in image.linked_modules else None,
        crypto=crypto,
        heap=heap,
    )
    ctx.self_seal_policy = seal_policy

    pal_error: Optional[str] = None
    pal_error_type = ""
    pal_error_transient = False
    trace_mark = len(machine.trace)
    machine.fire_fault("pal.enter", pal=image.pal.name, layout=layout)
    with clock.span("pal-exec"):
        if restrict:
            core.ring = 3  # IRET into the confined PAL (§5.1.2)
        try:
            # Faults raised at these points land in the same containment
            # path as a buggy PAL: cleanup and the closing extends still
            # run, so the session fails closed rather than wedged.
            machine.fire_fault("session.mid", pal=image.pal.name, layout=layout)
            machine.fire_fault("pal.exception", pal=image.pal.name)
            image.pal.run(ctx)
        except Exception as exc:  # contain the PAL; OS must still resume
            pal_error = f"{type(exc).__name__}: {exc}"
            pal_error_type = type(exc).__name__
            pal_error_transient = isinstance(exc, TPMTransientError)
        finally:
            core.ring = 0  # call gate + TSS return to the SLB Core
            machine.fire_fault("pal.exit", pal=image.pal.name)

    # Collect the PAL's own PCR-17 extends for the event log.
    pal_extends = [
        bytes.fromhex(event.detail["measurement"])
        for event in list(machine.trace)[trace_mark:]
        if event.kind == "pcr_extend" and event.detail.get("pcr") == FLICKER_PCR
    ]
    event_log.extend(("pal-extend", digest) for digest in pal_extends)

    outputs = b"" if pal_error else ctx.staged_output()
    machine.memory.write(layout.output_page, encode_param(outputs))

    with clock.span("cleanup"):
        # Erase every secret the PAL may have left behind: the whole SLB
        # region (code, heap, stack) and the input page.
        machine.memory.zeroize(slb_base, SLB_REGION_SIZE)
        machine.memory.zeroize(layout.input_page, PARAM_PAGE_SIZE)
        clock.advance(CLEANUP_MS)

    with clock.span("extend-pcr"):
        result_measurement = io_measurement(inputs, outputs, saved_state.nonce)
        tpm_if.pcr_extend(FLICKER_PCR, result_measurement)
        event_log.append(("io", result_measurement))
        tpm_if.pcr_extend(FLICKER_PCR, SENTINEL_MEASUREMENT)
        event_log.append(("sentinel", SENTINEL_MEASUREMENT))

    with clock.span("resume-os"):
        # Skeleton page tables with a unity mapping for the resume stub,
        # then the kernel's own tables and descriptor state (§4.2).
        core.paging_enabled = True
        core.cr3 = saved_state.cr3
        core.load_gdt(saved_state.gdt)
        for register, descriptor in saved_state.segments.items():
            core.load_segment(register, descriptor)
        core.debug_access_enabled = True
        clock.advance(RESUME_MS)

    machine.trace.emit(machine.clock.now(), "flicker", "slb-core-exit",
                       pal=image.pal.name, error=pal_error or "")
    return SLBCoreResult(
        outputs=outputs,
        event_log=tuple(event_log),
        pal_error=pal_error,
        pal_extend_count=len(pal_extends),
        pal_error_type=pal_error_type,
        pal_error_transient=pal_error_transient,
    )
