"""PAL extraction tool (paper §5.2), reimplemented over Python ``ast``.

The paper's tool uses CIL to slice a target function — say
``rsa_keygen()`` — out of a large C program: it "parses the program's call
graph and extracts any functions that the target depends on, along with
relevant type definitions, etc., to create a standalone C program", and
"indicates which additional functions from standard libraries must be
eliminated or replaced" (``printf``, ``malloc``...).

This module does the same for Python source: given a program's source text
and a target function name, it computes the call-graph closure of the
target over the program's top-level functions and classes, collects the
module-level constants they reference, and emits a standalone program.
Calls to names that are neither in the closure nor in the PAL-safe builtin
whitelist are reported as *disallowed dependencies* the programmer must
eliminate or replace with a Flicker module (``print`` → eliminate,
``malloc``-ish allocation → link ``memory_mgmt``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.errors import ExtractionError

#: Builtins considered safe inside a PAL (pure computation).
PAL_SAFE_BUILTINS = frozenset({
    "abs", "all", "any", "bool", "bytes", "bytearray", "chr", "dict",
    "divmod", "enumerate", "filter", "float", "frozenset", "hex", "int",
    "isinstance", "issubclass", "iter", "len", "list", "map", "max", "min",
    "next", "ord", "pow", "range", "repr", "reversed", "round", "set",
    "slice", "sorted", "str", "sum", "tuple", "zip", "ValueError",
    "TypeError", "KeyError", "IndexError", "RuntimeError", "StopIteration",
    "Exception", "NotImplementedError",
})

#: Builtins that exist but must be *replaced* before PAL inclusion, with
#: the suggested replacement (mirrors the paper's printf/malloc guidance).
PAL_REPLACEMENTS = {
    "print": "eliminate (no console inside a Flicker session)",
    "open": "eliminate (no filesystem inside a Flicker session)",
    "input": "eliminate (no console inside a Flicker session)",
    "malloc": "link the memory_mgmt module",
    "free": "link the memory_mgmt module",
    "realloc": "link the memory_mgmt module",
}


@dataclass
class ExtractionResult:
    """Outcome of extracting a target function into a standalone PAL."""

    target: str
    #: Names of functions/classes pulled into the standalone program.
    included: Tuple[str, ...]
    #: Module-level constant names carried along.
    constants: Tuple[str, ...]
    #: name → guidance for calls that must be eliminated or replaced.
    disallowed: Dict[str, str] = field(default_factory=dict)
    #: The standalone program's source text.
    standalone_source: str = ""

    @property
    def clean(self) -> bool:
        """True when no disallowed dependencies remain."""
        return not self.disallowed


class _CallCollector(ast.NodeVisitor):
    """Collects the names referenced in Call/Name positions, including
    attribute calls rooted at a simple name (``socket.create_connection``
    records root ``socket`` as an attribute call)."""

    def __init__(self) -> None:
        self.called: Set[str] = set()
        self.loaded: Set[str] = set()
        #: root name → dotted call path, for calls through attributes.
        self.attribute_calls: Dict[str, Set[str]] = {}

    @staticmethod
    def _dotted(node: ast.Attribute):
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return node.id, ".".join(reversed(parts))
        return None, None

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name):
            self.called.add(node.func.id)
        elif isinstance(node.func, ast.Attribute):
            root, dotted = self._dotted(node.func)
            if root is not None:
                self.attribute_calls.setdefault(root, set()).add(dotted)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.loaded.add(node.id)
        self.generic_visit(node)


def _top_level_definitions(tree: ast.Module):
    """Maps of name → AST node for top-level defs/classes, constants, and
    the set of imported module names."""
    functions: Dict[str, ast.AST] = {}
    constants: Dict[str, ast.AST] = {}
    imported: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            functions[node.name] = node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = node
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            constants[node.target.id] = node
        elif isinstance(node, ast.Import):
            for alias in node.names:
                imported.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                imported.add(alias.asname or alias.name)
    return functions, constants, imported


def extract_pal_source(program_source: str, target: str) -> ExtractionResult:
    """Slice ``target`` (and its dependency closure) out of a program.

    Raises :class:`ExtractionError` if the target is not a top-level
    function of the program.  The result's ``disallowed`` mapping lists
    every referenced name the standalone PAL cannot satisfy, with
    replacement guidance — extraction still succeeds so the programmer can
    iterate, exactly like the paper's workflow ("the programmer can simply
    eliminate the call").
    """
    try:
        tree = ast.parse(program_source)
    except SyntaxError as exc:
        raise ExtractionError(f"cannot parse program: {exc}") from exc

    functions, constants, imported_modules = _top_level_definitions(tree)
    if target not in functions:
        raise ExtractionError(
            f"target {target!r} is not a top-level function of the program"
        )

    # Breadth-first closure over the call graph.
    included: List[str] = []
    pending = [target]
    needed_constants: Set[str] = set()
    disallowed: Dict[str, str] = {}
    seen: Set[str] = set()

    while pending:
        name = pending.pop(0)
        if name in seen:
            continue
        seen.add(name)
        node = functions[name]
        included.append(name)

        collector = _CallCollector()
        collector.visit(node)
        local_names = {
            n.id
            for n in ast.walk(node)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
        }
        local_names.update(a.arg for a in _all_args(node))

        for ref in sorted(collector.called | collector.loaded):
            if ref in functions:
                if ref not in seen:
                    pending.append(ref)
            elif ref in constants:
                needed_constants.add(ref)
            elif ref in local_names or ref == name:
                continue
            elif ref in PAL_SAFE_BUILTINS:
                continue
            elif ref in PAL_REPLACEMENTS:
                disallowed[ref] = PAL_REPLACEMENTS[ref]
            elif ref in collector.called:
                disallowed[ref] = "unresolved call: define it or link a module providing it"
            # bare Name loads of unknown origin (e.g. module attributes)
            # are tolerated; only *calls* must resolve.

        # Calls through imported modules (socket.connect, os.getpid, ...)
        # cannot be satisfied inside a Flicker session either — the PAL
        # has no OS to call into.
        for root, dotted_calls in sorted(collector.attribute_calls.items()):
            if root in local_names or root in functions or root in constants:
                continue
            if root in imported_modules:
                calls = ", ".join(sorted(dotted_calls))
                disallowed[root] = (
                    f"module dependency ({calls}): no OS services inside a "
                    "Flicker session — eliminate or move outside the PAL"
                )

    # Emit the standalone program: constants first, then definitions in
    # dependency-friendly order (dependencies before dependents).
    ordered = list(reversed(included))
    pieces: List[str] = ['"""Standalone PAL extracted by repro.core.automation."""', ""]
    for const in sorted(needed_constants):
        pieces.append(ast.unparse(constants[const]))
    if needed_constants:
        pieces.append("")
    for name in ordered:
        pieces.append(ast.unparse(functions[name]))
        pieces.append("")
    pieces.append(f"PAL_ENTRY = {target}")

    return ExtractionResult(
        target=target,
        included=tuple(included),
        constants=tuple(sorted(needed_constants)),
        disallowed=disallowed,
        standalone_source="\n".join(pieces),
    )


def _all_args(node: ast.AST):
    """All argument nodes of a function definition (incl. kw-only etc.)."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    args = node.args
    out = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg:
        out.append(args.vararg)
    if args.kwarg:
        out.append(args.kwarg)
    return out
