"""The flicker-module: the untrusted Linux kernel module driving sessions.

Paper §4.1–4.2: applications interact with four sysfs entries —
``control``, ``inputs``, ``outputs``, and ``slb``.  Writing an SLB binary
to ``slb`` allocates kernel memory for it; writing to ``inputs`` stages
PAL inputs; writing to ``control`` runs the session; reading ``outputs``
retrieves the results.

The module is *not* in the PAL's TCB: everything it does is either
verified (the SLB it loads is measured by SKINIT) or harmless to the
session's security (suspend bookkeeping).  A malicious flicker-module can
deny service but cannot forge an attested session.
"""

from __future__ import annotations

from typing import Optional

from repro.core import slb as slb_mod
from repro.core.layout import PARAM_PAGE_SIZE, SLBLayout, encode_param, decode_param
from repro.core.slb import SLBImage
from repro.core.slb_core import SavedKernelState, SLBCoreResult, execute_slb
from repro.errors import FlickerError, PALRuntimeError, SLBFormatError
from repro.osim.kernel import UntrustedKernel
from repro.osim.modules import KernelModule
from repro.osim.sysfs import SysfsEntry
from repro.sim.rng import DeterministicRNG

#: sysfs mount point for the module's entries.
SYSFS_ROOT = "flicker"

#: Modelled cost of the module's setup work per session (sub-ms kernel
#: bookkeeping: hotplug, IPIs, state save).
SUSPEND_MS = 0.5
RESTORE_MS = 0.3

#: Default session nonce when no remote challenge is in play.
DEFAULT_NONCE = b"\x00" * 20


class FlickerModule(KernelModule):
    """The loadable kernel module (``flicker-module`` in the paper)."""

    name = "flicker_module"
    text = DeterministicRNG(0xF11C).fork("flicker-module-text").bytes(18 * 1024)

    def __init__(self, functional_rsa_bits: int = 512, launch: str = "svm",
                 acm=None) -> None:
        super().__init__()
        if launch not in ("svm", "txt"):
            raise FlickerError(f"unknown launch technology {launch!r}")
        if launch == "txt" and acm is None:
            raise FlickerError("TXT launch requires a SINIT ACM")
        self.functional_rsa_bits = functional_rsa_bits
        #: Launch technology: AMD SVM (SKINIT) or Intel TXT (SENTER).
        self.launch = launch
        #: The SINIT ACM used for TXT launches.
        self.acm = acm
        self._slb_image: Optional[SLBImage] = None
        self._slb_base: Optional[int] = None
        self._inputs: bytes = b""
        self._outputs: bytes = b""
        self._nonce: bytes = DEFAULT_NONCE
        self._last_result: Optional[SLBCoreResult] = None

    # -- module lifecycle ----------------------------------------------------------

    def on_load(self, kernel: UntrustedKernel) -> None:
        """Register the four sysfs entries (paper §4.2)."""
        kernel.sysfs.register(
            f"{SYSFS_ROOT}/slb",
            SysfsEntry("slb", write_handler=self.write_slb),
        )
        kernel.sysfs.register(
            f"{SYSFS_ROOT}/inputs",
            SysfsEntry("inputs", write_handler=self.write_inputs),
        )
        kernel.sysfs.register(
            f"{SYSFS_ROOT}/outputs",
            SysfsEntry("outputs", read_handler=self.read_outputs),
        )
        kernel.sysfs.register(
            f"{SYSFS_ROOT}/control",
            SysfsEntry("control", write_handler=self.write_control),
        )

    def on_unload(self) -> None:
        """Remove the sysfs entries."""
        for entry in ("slb", "inputs", "outputs", "control"):
            self.kernel.sysfs.unregister(f"{SYSFS_ROOT}/{entry}")

    # -- sysfs handlers ----------------------------------------------------------------

    def write_slb(self, raw_image: bytes) -> None:
        """Accept an uninitialized SLB: allocate kernel memory and stage it."""
        image = slb_mod.lookup_image(raw_image)
        self.install_slb(image)

    def write_inputs(self, data: bytes) -> None:
        """Stage PAL inputs for the next session."""
        self._inputs = bytes(data)

    def read_outputs(self) -> bytes:
        """PAL outputs of the most recent session."""
        return self._outputs

    def write_control(self, data: bytes) -> None:
        """``go`` (optionally ``go:<hex nonce>``) launches a session."""
        text = data.decode("ascii", errors="replace")
        if text.startswith("go:"):
            nonce = bytes.fromhex(text[3:])
        elif text == "go":
            nonce = DEFAULT_NONCE
        else:
            raise FlickerError(f"unknown control command {text!r}")
        self.execute(nonce=nonce)

    # -- direct (in-kernel) API -----------------------------------------------------------

    def install_slb(self, image: SLBImage) -> int:
        """Allocate kernel memory for an SLB image and register it for
        execution.  Returns ``slb_base``."""
        if self.kernel is None:
            raise FlickerError("flicker-module is not loaded")
        layout_bytes = 64 * 1024 + 3 * PARAM_PAGE_SIZE
        base = self.kernel.kalloc(layout_bytes, align=64 * 1024)
        self._slb_image = image
        self._slb_base = base

        machine = self.kernel.machine

        def entry_routine(machine_, core, slb_base):
            return execute_slb(
                machine_,
                core,
                slb_base,
                image,
                self._pending_state,
                functional_rsa_bits=self.functional_rsa_bits,
            )

        machine.register_executable(image.image, entry_routine)
        return base

    def execute(self, nonce: bytes = DEFAULT_NONCE) -> SLBCoreResult:
        """Run one Flicker session with the staged SLB and inputs.

        Follows the Figure 2 timeline: initialize SLB → suspend OS →
        SKINIT (which runs the SLB Core and PAL) → restore OS → publish
        outputs.  Raises :class:`PALRuntimeError` *after* the OS is
        restored if the PAL faulted.
        """
        if self._slb_image is None or self._slb_base is None:
            raise FlickerError("no SLB installed")
        if len(nonce) != 20:
            raise FlickerError("session nonce must be 20 bytes")
        if self.launch == "txt" and self._slb_image.optimized:
            # SENTER measures the full MLE itself; the hash-then-extend
            # stub is an SVM-only trick (Intel's ACM already runs at
            # chipset speed).
            raise FlickerError("TXT launches require an unoptimized SLB image")
        self._nonce = nonce

        kernel = self.kernel
        machine = kernel.machine
        clock = machine.clock
        layout = SLBLayout(base=self._slb_base)

        with clock.span("flicker-session"):
            with clock.span("init-slb"):
                # (Re)write the SLB image — the previous session's cleanup
                # zeroized the region — and stage the parameter pages.
                machine.memory.write(self._slb_base, self._slb_image.image)
                machine.memory.write(layout.input_page, encode_param(self._inputs))
                machine.memory.zeroize(layout.output_page, PARAM_PAGE_SIZE)

            with clock.span("suspend-os"):
                bsp = machine.cpu.bsp
                snapshot = bsp.snapshot()
                self._pending_state = SavedKernelState(
                    cr3=bsp.cr3,
                    gdt=snapshot["gdt"],
                    segments=snapshot["segments"],
                    nonce=nonce,
                    launch=self.launch,
                    acm_measurement=self.acm.measurement if self.acm else b"",
                )
                machine.memory.write(
                    layout.saved_state_page,
                    bsp.cr3.to_bytes(8, "big") + nonce,
                )
                if not machine.multicore_isolation:
                    # Today's hardware: hotplug the APs off and INIT them
                    # so SKINIT's handshake succeeds (§4.2, "Suspend OS").
                    kernel.deschedule_aps()
                    machine.apic.broadcast_init_ipi()
                bsp.interrupts_enabled = False
                clock.advance(SUSPEND_MS)
                machine.trace.emit(clock.now(), "flicker", "os-suspended",
                                   aps_suspended=not machine.multicore_isolation)

            if self.launch == "txt":
                result: SLBCoreResult = machine.senter(0, self.acm, self._slb_base)
            else:
                result = machine.skinit(0, self._slb_base)

            with clock.span("restore-os"):
                bsp = machine.cpu.bsp
                bsp.interrupts_enabled = True
                if not machine.multicore_isolation:
                    kernel.resume_aps()
                    machine.apic.release_aps()
                machine.dev.unprotect_range(self._slb_base, 64 * 1024)
                self._outputs = decode_param(
                    machine.memory.read(layout.output_page, PARAM_PAGE_SIZE)
                )
                clock.advance(RESTORE_MS)
                machine.trace.emit(clock.now(), "flicker", "os-resumed")

        self._last_result = result
        if result.pal_error is not None:
            error = PALRuntimeError(f"PAL faulted (OS restored): {result.pal_error}")
            error.error_type = result.pal_error_type
            error.transient = result.pal_error_transient
            raise error
        return result

    # -- introspection ---------------------------------------------------------------------

    @property
    def slb_base(self) -> Optional[int]:
        """Physical base of the installed SLB, if any."""
        return self._slb_base

    @property
    def installed_image(self) -> Optional[SLBImage]:
        """The currently installed SLB image, if any."""
        return self._slb_image

    @property
    def last_result(self) -> Optional[SLBCoreResult]:
        """Result of the most recent session (even a faulted one)."""
        return self._last_result
