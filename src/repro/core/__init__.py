"""Flicker core: minimal-TCB isolated execution sessions.

The package implements the paper's architecture (§4):

* :mod:`repro.core.layout` — the Figure 3 memory layout of the Secure
  Loader Block and its parameter pages.
* :mod:`repro.core.pal` — the PAL (Piece of Application Logic)
  programming model and its execution context.
* :mod:`repro.core.modules` — the PAL-linkable modules of Figure 6
  (OS Protection, TPM driver/utilities, crypto, memory management, secure
  channel).
* :mod:`repro.core.slb` — building and measuring SLB images, including
  the §7.2 hash-then-extend SKINIT optimization.
* :mod:`repro.core.slb_core` — the SLB Core: environment setup, PAL
  dispatch, cleanup, PCR-17 bookkeeping, OS resume.
* :mod:`repro.core.flicker_module` — the untrusted kernel module with its
  sysfs control surface.
* :mod:`repro.core.session` — one-call session orchestration plus the
  Figure 2 timeline.
* :mod:`repro.core.fleet` — many platforms on one discrete-event
  schedule (the §6.2 many-untrusted-hosts deployment).
* :mod:`repro.core.template` — template-clone platform construction:
  build one configuration, stamp out byte-identical machines cheaply.
* :mod:`repro.core.attestation` — quote verification for remote parties.
* :mod:`repro.core.sealed_storage` — PAL-to-PAL sealed storage with the
  Figure 4 replay-protection protocol.
* :mod:`repro.core.secure_channel` — the §4.4.2 secure-channel protocol.
* :mod:`repro.core.automation` — the §5.2 PAL extraction tool, over
  Python's ``ast`` instead of CIL.
"""

from repro.core.layout import SLBLayout
from repro.core.pal import PAL, PALContext
from repro.core.modules import MODULE_REGISTRY, ModuleDescriptor
from repro.core.slb import SLBImage, build_slb, expected_pcr17_after_launch
from repro.core.flicker_module import FlickerModule
from repro.core.fleet import FleetHost, FlickerFleet, MachineReport
from repro.core.session import FlickerPlatform, SessionResult
from repro.core.template import PlatformTemplate
from repro.core.attestation import FlickerVerifier, Attestation, SENTINEL_MEASUREMENT
from repro.core.sealed_storage import ReplayProtectedStorage
from repro.core.secure_channel import SecureChannelClient, generate_channel_keypair
from repro.core.automation import extract_pal_source

__all__ = [
    "SLBLayout",
    "PAL",
    "PALContext",
    "MODULE_REGISTRY",
    "ModuleDescriptor",
    "SLBImage",
    "build_slb",
    "expected_pcr17_after_launch",
    "FlickerModule",
    "FlickerPlatform",
    "PlatformTemplate",
    "FlickerFleet",
    "FleetHost",
    "MachineReport",
    "SessionResult",
    "FlickerVerifier",
    "Attestation",
    "SENTINEL_MEASUREMENT",
    "ReplayProtectedStorage",
    "SecureChannelClient",
    "generate_channel_keypair",
    "extract_pal_source",
]
