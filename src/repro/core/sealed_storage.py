"""Replay-protected sealed storage (paper §4.3 and Figure 4).

TPM Seal/Unseal guarantee that only the intended PAL can *read* a blob,
but the untrusted OS stores the ciphertexts and can always present a stale
one — the password-database rollback attack of §4.3.2.  Figure 4's fix
binds a secure-counter value into every sealed object::

    Seal(d):                     Unseal(c):
      IncrementCounter()           d‖j′ ← TPM_Unseal(c)
      j ← ReadCounter()            j ← ReadCounter()
      c ← TPM_Seal(d‖j, PCRs)      if j′ ≠ j: ⊥ else d

:class:`ReplayProtectedStorage` implements the protocol over the TPM's
monotonic-counter facility, with the counter's use access-controlled by
the same PAL-identity PCR policy as the sealed data.  Creating the counter
requires the TPM owner authorization, which §4.3.2 notes can be delivered
to a PAL over a secure channel; the simulation passes it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import SealedStorageError
from repro.tpm.structures import SealedBlob

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.modules.tpm_utils import PALTPMInterface

#: Separator-free framing: an 8-byte big-endian counter value trails the data.
_COUNTER_BYTES = 8


@dataclass
class VersionedBlob:
    """A sealed blob plus the (public) counter id it is bound to."""

    blob: SealedBlob
    counter_id: int

    def encode(self) -> bytes:
        """Serialize for storage by the untrusted OS."""
        return self.counter_id.to_bytes(4, "big") + self.blob.encode()

    @classmethod
    def decode(cls, data: bytes) -> "VersionedBlob":
        """Inverse of :meth:`encode`."""
        if len(data) < 4:
            raise SealedStorageError("truncated versioned blob")
        return cls(
            counter_id=int.from_bytes(data[:4], "big"),
            blob=SealedBlob.decode(data[4:]),
        )


class NVReplayCounter:
    """A secure counter built on TPM non-volatile storage (§4.3.2's second
    realization option).

    The counter value lives in an NV space whose read *and* write are
    PCR-gated to the owning PAL's launch value: only that PAL, running
    under Flicker, can read or advance it.  Defining the space needs the
    TPM owner authorization, which §4.3.2 notes can be delivered to a PAL
    over a secure channel.
    """

    _WIDTH = 8  # bytes

    def __init__(self, tpm: "PALTPMInterface", nv_index: int) -> None:
        self._tpm = tpm
        self.nv_index = nv_index

    @classmethod
    def create(
        cls,
        tpm: "PALTPMInterface",
        owner_auth: bytes,
        nv_index: int,
        pal_pcr17_value: bytes,
    ) -> "NVReplayCounter":
        """Define the PCR-gated NV space and zero the counter."""
        policy = {17: pal_pcr17_value}
        tpm.define_nv_space(
            nv_index, cls._WIDTH, owner_auth,
            read_pcr_policy=policy, write_pcr_policy=policy,
        )
        counter = cls(tpm, nv_index)
        tpm.nv_write(nv_index, (0).to_bytes(cls._WIDTH, "big"))
        return counter

    def read(self) -> int:
        """Current counter value (PCR-gated by the TPM)."""
        return int.from_bytes(self._tpm.nv_read(self.nv_index), "big")

    def increment(self) -> int:
        """Advance the counter; returns the new value.

        Monotonicity is enforced here (NV storage itself is writable);
        the PCR gate ensures only the owning PAL reaches this code path
        with access.
        """
        value = self.read() + 1
        self._tpm.nv_write(self.nv_index, value.to_bytes(self._WIDTH, "big"))
        return value


class _TPMCounterBackend:
    """Adapter presenting the TPM's monotonic-counter commands with the
    same read/increment surface as :class:`NVReplayCounter`."""

    def __init__(self, tpm: "PALTPMInterface", counter_id: int) -> None:
        self._tpm = tpm
        self.counter_id = counter_id

    def read(self) -> int:
        return self._tpm.read_counter(self.counter_id)

    def increment(self) -> int:
        return self._tpm.increment_counter(self.counter_id)


class ReplayProtectedStorage:
    """Figure 4's Seal/Unseal protocol, usable from inside a PAL.

    Backed by either of §4.3.2's secure-counter options: the TPM's
    monotonic counters (:meth:`create`) or a PCR-gated NV space
    (:meth:`create_nv`).
    """

    def __init__(self, tpm: "PALTPMInterface", counter_id: Optional[int] = None,
                 backend=None) -> None:
        self._tpm = tpm
        self._counter_id = counter_id
        self._backend = backend
        if backend is None and counter_id is not None:
            self._backend = _TPMCounterBackend(tpm, counter_id)

    @classmethod
    def create(cls, tpm: "PALTPMInterface", owner_auth: bytes,
               label: bytes = b"flicker-replay") -> "ReplayProtectedStorage":
        """First-time setup: create the monotonic counter (owner-authorized)."""
        counter_id = tpm.create_counter(label, owner_auth)
        return cls(tpm, counter_id)

    @classmethod
    def create_nv(
        cls,
        tpm: "PALTPMInterface",
        owner_auth: bytes,
        nv_index: int,
        pal_pcr17_value: bytes,
    ) -> "ReplayProtectedStorage":
        """First-time setup over a PCR-gated NV space instead of a
        monotonic counter."""
        backend = NVReplayCounter.create(tpm, owner_auth, nv_index, pal_pcr17_value)
        storage = cls(tpm, counter_id=nv_index, backend=backend)
        return storage

    @classmethod
    def attach_nv(cls, tpm: "PALTPMInterface", nv_index: int) -> "ReplayProtectedStorage":
        """Re-attach to an existing NV-backed counter in a later session."""
        return cls(tpm, counter_id=nv_index, backend=NVReplayCounter(tpm, nv_index))

    @property
    def counter_id(self) -> int:
        """The TPM counter (or NV index) backing this store."""
        if self._counter_id is None:
            raise SealedStorageError("storage has no counter; use create()")
        return self._counter_id

    def seal(self, data: bytes, pal_pcr17_value: bytes) -> VersionedBlob:
        """Figure 4 Seal: bump the counter, then seal data‖counter."""
        self._backend.increment()
        j = self._backend.read()
        payload = data + j.to_bytes(_COUNTER_BYTES, "big")
        blob = self._tpm.seal_to_pal(payload, pal_pcr17_value)
        return VersionedBlob(blob=blob, counter_id=self.counter_id)

    def unseal(self, versioned: VersionedBlob) -> bytes:
        """Figure 4 Unseal: reject any blob whose embedded counter value
        is not the counter's *current* value.

        Raises :class:`SealedStorageError` on a stale (replayed) blob —
        "either the counter was tampered with, or the unsealed data object
        is a stale version and should be discarded."
        """
        if versioned.counter_id != self.counter_id:
            raise SealedStorageError("blob is bound to a different counter")
        payload = self._tpm.unseal(versioned.blob)
        if len(payload) < _COUNTER_BYTES:
            raise SealedStorageError("sealed payload too short for a counter")
        data, j_prime = payload[:-_COUNTER_BYTES], int.from_bytes(
            payload[-_COUNTER_BYTES:], "big"
        )
        j = self._backend.read()
        if j_prime != j:
            # Neither the embedded version nor the live counter may appear
            # in the exception text — error messages cross back into the
            # untrusted OS, and the live counter value lets an attacker
            # fast-forward a stale blob (fuzzer finding, corpus entry
            # seal-replay-message-leak.json).
            raise SealedStorageError(
                "replay detected: blob version does not match the counter"
            )
        return data
