"""Remote-party side of the §4.4.2 secure channel.

The PAL half (:mod:`repro.core.modules.secure_channel`) generates a
keypair under Flicker protection and outputs the public key; this module
implements the *client*: verify the attestation that the key came from the
intended PAL, then encrypt secrets to it.

The attestation covers the establish-session's outputs — which contain
the public key — so a man-in-the-middle OS cannot substitute its own key
without breaking the PCR-17 chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.attestation import Attestation, FlickerVerifier
from repro.core.modules.secure_channel import decode_channel_output
from repro.core.slb import SLBImage
from repro.crypto.pkcs1 import pkcs1_encrypt
from repro.crypto.rsa import RSAPublicKey
from repro.errors import SecureChannelError
from repro.sim.rng import DeterministicRNG
from repro.tpm.structures import SealedBlob

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.pal import PALContext


@dataclass(frozen=True)
class EstablishedChannel:
    """The client's view of a verified channel."""

    pal_public: RSAPublicKey
    #: The sealed private key: opaque to the client, but the client often
    #: stores/forwards it so the server need not (§6.3.1's optimization).
    sdata: SealedBlob


def generate_channel_keypair(ctx: "PALContext") -> bytes:
    """Convenience for PALs: run the establish step and stage the output.

    Equivalent to ``ctx.write_output(ctx.secure_channel.establish())`` but
    also returns the payload for callers that embed it in a larger output.
    """
    payload = ctx.secure_channel.establish()
    ctx.write_output(payload)
    return payload


class SecureChannelClient:
    """A remote party establishing a channel into a PAL."""

    def __init__(self, verifier: FlickerVerifier, rng: DeterministicRNG) -> None:
        self._verifier = verifier
        self._rng = rng

    def accept(
        self,
        attestation: Attestation,
        expected_image: SLBImage,
        expected_nonce: bytes,
    ) -> EstablishedChannel:
        """Verify the establish-session attestation and extract the key.

        Raises :class:`SecureChannelError` (wrapping the verification
        failure) if the attestation does not prove the key was generated
        by ``expected_image`` under Flicker protection.
        """
        report = self._verifier.verify(attestation, expected_image, expected_nonce)
        if not report.ok:
            raise SecureChannelError(
                "channel establishment rejected: " + "; ".join(report.failures)
            )
        public, sealed = decode_channel_output(attestation.outputs)
        return EstablishedChannel(pal_public=public, sdata=sealed)

    def encrypt(self, channel: EstablishedChannel, message: bytes) -> bytes:
        """Encrypt one message to the PAL (PKCS#1 v1.5, per §6.3.1)."""
        if len(message) > channel.pal_public.modulus_bytes - 11:
            raise SecureChannelError("message too long for the channel key")
        return pkcs1_encrypt(channel.pal_public, message, self._rng)
