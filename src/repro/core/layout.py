"""Memory layout of the Secure Loader Block (paper Figure 3).

The SLB proper is a 64-KB region: a 4-byte header (two 16-bit words:
length and entry point), the SLB Core, optional linked modules, the PAL's
code, heap space for the memory-management module, and a 4-KB stack at the
top.  Above the SLB sit the parameter pages:

* first page above the SLB — PAL inputs (written by the flicker-module
  before the session);
* second page — PAL outputs ("our convention is to use the second 4-KB
  page above the 64-KB SLB", §5.1.1);
* third page — saved kernel state (CR3, GDT pointer, session nonce),
  written by the flicker-module during Suspend OS and consumed by the SLB
  Core's Resume OS phase.

One deliberate deviation from the paper: the reproduction's SLB Core
derives its segment bases from the SLB base address that SKINIT provides
in EAX (the approach OSLO uses), instead of having the flicker-module
patch GDT entries into the image.  This keeps the SLB image — and hence
its measurement — position independent, which simplifies attestation
without weakening it: the verifier's expected measurement no longer
depends on where the kernel happened to allocate the SLB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SLBFormatError
from repro.hw.memory import PAGE_SIZE

#: Total size of the protected SLB region.
SLB_REGION_SIZE = 64 * 1024

#: Size of the stack at the top of the SLB (Figure 3).
SLB_STACK_SIZE = 4 * 1024

#: Maximum end of PAL code: "End of PAL (Start + 60KB)" in Figure 3.
SLB_MAX_CODE = SLB_REGION_SIZE - SLB_STACK_SIZE

#: Size of each parameter page.
PARAM_PAGE_SIZE = PAGE_SIZE

#: Maximum payload carried in the input/output pages (4-byte length header).
MAX_PARAM_BYTES = PARAM_PAGE_SIZE - 4

#: Size of the hash-then-extend bootstrap stub (paper §7.2: "We have
#: constructed such a PAL in 4736 bytes").
OPTIMIZED_STUB_BYTES = 4736


@dataclass(frozen=True)
class SLBLayout:
    """Concrete addresses for one installed SLB."""

    base: int

    def __post_init__(self) -> None:
        if self.base % PAGE_SIZE:
            raise SLBFormatError(f"SLB base {self.base:#x} must be page aligned")

    # -- the SLB region --------------------------------------------------------

    @property
    def end(self) -> int:
        """One past the SLB region (``base + 64 KB``)."""
        return self.base + SLB_REGION_SIZE

    @property
    def stack_base(self) -> int:
        """Bottom of the 4-KB stack at the top of the region."""
        return self.end - SLB_STACK_SIZE

    # -- parameter pages ----------------------------------------------------------

    @property
    def input_page(self) -> int:
        """First page above the SLB: PAL inputs."""
        return self.end

    @property
    def output_page(self) -> int:
        """Second page above the SLB: PAL outputs (``PAL_OUT``)."""
        return self.end + PARAM_PAGE_SIZE

    @property
    def saved_state_page(self) -> int:
        """Third page above the SLB: saved kernel state + session nonce."""
        return self.end + 2 * PARAM_PAGE_SIZE

    @property
    def total_footprint(self) -> int:
        """Bytes from ``base`` to the end of the saved-state page."""
        return SLB_REGION_SIZE + 3 * PARAM_PAGE_SIZE

    # -- PAL-visible window -----------------------------------------------------------

    @property
    def pal_window_start(self) -> int:
        """Start of the memory the OS-Protection module allows a PAL."""
        return self.base

    @property
    def pal_window_end(self) -> int:
        """End of the allowed PAL window: the SLB plus the input and output
        pages (the saved kernel state is off limits)."""
        return self.output_page + PARAM_PAGE_SIZE


def encode_param(data: bytes) -> bytes:
    """Length-prefix a parameter payload for an input/output page."""
    if len(data) > MAX_PARAM_BYTES:
        raise SLBFormatError(
            f"parameter of {len(data)} bytes exceeds the {MAX_PARAM_BYTES}-byte page payload"
        )
    return len(data).to_bytes(4, "big") + data


def decode_param(page: bytes) -> bytes:
    """Inverse of :func:`encode_param`; tolerates trailing page padding."""
    if len(page) < 4:
        raise SLBFormatError("parameter page too small")
    length = int.from_bytes(page[:4], "big")
    if length > len(page) - 4:
        raise SLBFormatError("parameter length exceeds page")
    return page[4 : 4 + length]
