"""Attestation: convincing a remote party a PAL ran under Flicker.

Implements §4.4.1.  The chain of PCR-17 extends over one session is:

1. hardware reset to 0 (SKINIT), then extend with H(measured SLB prefix);
2. if the image uses the §7.2 optimization: extend with H(full 64-KB
   region), performed by the bootstrap stub;
3. any extends the PAL itself performs (e.g. the rootkit detector extends
   the kernel hash; the SSH login PAL extends ⊥ to revoke key access);
4. the SLB Core's result-integrity extend over the session's inputs,
   outputs, and the verifier's nonce;
5. the SLB Core's closing extend of a fixed public constant (the
   *sentinel*), which both prevents later software from impersonating the
   PAL and revokes access to PAL-only sealed secrets.

A verifier that knows the PAL (and hence steps 1–3), the claimed inputs
and outputs, and its own nonce recomputes the chain and compares it with
the AIK-signed quote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.slb import SLBImage
from repro.crypto.rsa import RSAPublicKey
from repro.crypto.sha1 import sha1
from repro.errors import AttestationError
from repro.tpm.pcr import PCR_DYNAMIC_RESET_VALUE, simulate_extend_chain
from repro.tpm.privacy_ca import AIKCertificate
from repro.tpm.structures import Quote

#: The "fixed public constant" the SLB Core extends last (§4.4.1).
SENTINEL_MEASUREMENT = sha1(b"flicker: end of session")

#: The ⊥ value PALs extend to revoke sealed-secret access mid-session
#: (Figure 7's ``extend(PCR17, ⊥)``).
BOTTOM_MEASUREMENT = sha1(b"flicker: bottom")

#: PCR that records Flicker sessions.
FLICKER_PCR = 17


def io_measurement(inputs: bytes, outputs: bytes, nonce: bytes) -> bytes:
    """The result-integrity measurement over a session's parameters.

    Length-prefixed so no (inputs, outputs) pair can alias another.
    """
    return sha1(
        len(inputs).to_bytes(4, "big") + inputs
        + len(outputs).to_bytes(4, "big") + outputs
        + len(nonce).to_bytes(4, "big") + nonce
    )


def expected_pcr17(
    image: SLBImage,
    inputs: bytes,
    outputs: bytes,
    nonce: bytes,
    pal_extends: Sequence[bytes] = (),
) -> bytes:
    """Recompute the final PCR-17 value for a completed session.

    ``pal_extends`` are the measurements the PAL itself extended, in
    order, which the verifier knows from the PAL's published behaviour
    (e.g. the rootkit detector extends the kernel hash it outputs).
    """
    measurements = [digest for _, digest in image.launch_measurements()]
    measurements.extend(pal_extends)
    measurements.append(io_measurement(inputs, outputs, nonce))
    measurements.append(SENTINEL_MEASUREMENT)
    return simulate_extend_chain(PCR_DYNAMIC_RESET_VALUE, measurements)


def expected_txt_pcrs(
    image: SLBImage,
    acm_measurement: bytes,
    inputs: bytes,
    outputs: bytes,
    nonce: bytes,
    pal_extends: Sequence[bytes] = (),
) -> dict:
    """Expected PCR 17 and 18 values for a TXT-launched session.

    On Intel hardware the launch identity spans two registers: SENTER
    extends the SINIT ACM into PCR 17 and the MLE (the SLB) into PCR 18;
    the SLB Core's session record then accumulates in PCR 17 on top of the
    ACM measurement.
    """
    pcr17_chain = [acm_measurement]
    pcr17_chain.extend(pal_extends)
    pcr17_chain.append(io_measurement(inputs, outputs, nonce))
    pcr17_chain.append(SENTINEL_MEASUREMENT)
    return {
        17: simulate_extend_chain(PCR_DYNAMIC_RESET_VALUE, pcr17_chain),
        18: simulate_extend_chain(PCR_DYNAMIC_RESET_VALUE, [image.skinit_measurement]),
    }


@dataclass(frozen=True)
class Attestation:
    """Everything the challenged platform returns to a verifier."""

    quote: Quote
    aik_certificate: AIKCertificate
    #: Untrusted event log: (label, measurement) pairs claimed for PCR 17.
    event_log: Tuple[Tuple[str, bytes], ...]
    inputs: bytes
    outputs: bytes
    nonce: bytes


@dataclass
class VerificationReport:
    """Outcome of verifying an attestation."""

    ok: bool
    failures: List[str] = field(default_factory=list)

    def require(self) -> None:
        """Raise :class:`AttestationError` unless verification passed."""
        if not self.ok:
            raise AttestationError("; ".join(self.failures) or "attestation invalid")


class FlickerVerifier:
    """A remote party verifying Flicker attestations (§4.4.1).

    Trusts exactly two things: the Privacy CA's public key, and the
    measurement of the PAL it expects — *not* the platform's OS.
    """

    def __init__(self, privacy_ca_public: RSAPublicKey) -> None:
        self._ca_public = privacy_ca_public

    def verify(
        self,
        attestation: Attestation,
        expected_image: SLBImage,
        expected_nonce: bytes,
        pal_extends: Sequence[bytes] = (),
        expected_inputs: Optional[bytes] = None,
    ) -> VerificationReport:
        """Full §4.4.1 check: AIK certificate chain, quote signature, nonce
        freshness, and the recomputed PCR-17 chain (which covers the PAL
        identity, the inputs/outputs, and the sentinel)."""
        report = VerificationReport(ok=True)

        cert = attestation.aik_certificate
        if not cert.verify(self._ca_public):
            report.ok = False
            report.failures.append("AIK certificate does not verify against the Privacy CA")
        if cert.aik_public != attestation.quote.aik_public:
            report.ok = False
            report.failures.append("quote was signed by a key other than the certified AIK")

        if not attestation.quote.verify(cert.aik_public):
            report.ok = False
            report.failures.append("TPM quote signature invalid")

        if attestation.quote.nonce != expected_nonce:
            report.ok = False
            report.failures.append("quote nonce mismatch (replayed attestation?)")

        if expected_inputs is not None and attestation.inputs != expected_inputs:
            report.ok = False
            report.failures.append("attested inputs differ from the inputs sent")

        composite = attestation.quote.composite.as_dict()
        quoted_pcr17 = composite.get(FLICKER_PCR)
        if quoted_pcr17 is None:
            report.ok = False
            report.failures.append("quote does not cover PCR 17")
        else:
            expected = expected_pcr17(
                expected_image,
                attestation.inputs,
                attestation.outputs,
                attestation.nonce,
                pal_extends=pal_extends,
            )
            if quoted_pcr17 != expected:
                report.ok = False
                report.failures.append(
                    "PCR 17 does not match the expected PAL/input/output chain"
                )

        self._check_event_log(attestation, quoted_pcr17, report)
        return report

    def verify_txt(
        self,
        attestation: Attestation,
        expected_image: SLBImage,
        acm_measurement: bytes,
        expected_nonce: bytes,
        pal_extends: Sequence[bytes] = (),
    ) -> VerificationReport:
        """Verify an attestation from a TXT-launched session: the quote
        must cover PCRs 17 *and* 18, and both must match the two-register
        identity chain."""
        report = VerificationReport(ok=True)
        cert = attestation.aik_certificate
        if not cert.verify(self._ca_public):
            report.ok = False
            report.failures.append("AIK certificate does not verify against the Privacy CA")
        if not attestation.quote.verify(cert.aik_public):
            report.ok = False
            report.failures.append("TPM quote signature invalid")
        if attestation.quote.nonce != expected_nonce:
            report.ok = False
            report.failures.append("quote nonce mismatch (replayed attestation?)")

        composite = attestation.quote.composite.as_dict()
        expected = expected_txt_pcrs(
            expected_image, acm_measurement,
            attestation.inputs, attestation.outputs, attestation.nonce,
            pal_extends=pal_extends,
        )
        for pcr, value in expected.items():
            if composite.get(pcr) != value:
                report.ok = False
                report.failures.append(
                    f"PCR {pcr} does not match the expected TXT launch chain"
                )
        self._check_event_log(attestation, composite.get(17), report)
        return report

    @staticmethod
    def _check_event_log(attestation: Attestation, quoted_pcr17, report) -> None:
        """Cross-check the (untrusted) event log against the quoted PCR 17:
        a log that does not reproduce the register is evidence of
        tampering, though the quote alone carries the security argument."""
        if quoted_pcr17 is not None and attestation.event_log:
            replayed = simulate_extend_chain(
                PCR_DYNAMIC_RESET_VALUE,
                [digest for _, digest in attestation.event_log],
            )
            if replayed != quoted_pcr17:
                report.ok = False
                report.failures.append("event log does not reproduce the quoted PCR 17")
