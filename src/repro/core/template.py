"""Template-clone platform construction.

Building a :class:`~repro.core.session.FlickerPlatform` from scratch is
dominated by work that is either a pure function of the seed (RSA key
generation, the kernel image) or seed-independent altogether (the unity
page map, SLB images).  A :class:`PlatformTemplate` captures one platform
*configuration* and stamps out clones that share every amortizable piece:

* **Key state** — key generation is memoized on the RNG state that
  produces it (:mod:`repro.crypto.rsa`), and enrolment is lazy, so a
  clone re-derives its keys deterministically on first attestation and a
  re-clone of a seen seed reuses them outright.
* **Kernel image** — kernel text and the syscall table are memoized per
  seed, and the direct unity map is shared across all machines
  (:mod:`repro.osim.kernel`).
* **SLB images** — clones share the template's image cache, so a PAL is
  built once per fleet instead of once per machine.
* **TPM state** — :meth:`repro.tpm.tpm.TPM.export_state` /
  ``import_state`` snapshot PCR banks, NV, counters, and key state for
  same-seed cloning and migration.

A clone is **byte-identical** to a freshly constructed platform with the
same arguments (pinned by ``tests/core/test_template.py``); the template
only changes where the construction cost is paid.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.session import FlickerPlatform, RetryPolicy
from repro.core.slb import SLBImage
from repro.sim.timing import DEFAULT_PROFILE, TimingProfile


class PlatformTemplate:
    """One platform configuration, cloneable into many machines.

    Obtain one via :meth:`FlickerPlatform.template
    <repro.core.session.FlickerPlatform.template>`; call :meth:`clone`
    per machine.  The template is what a fleet shares: configuration,
    the SLB image cache, and (through the module-level caches noted
    above) every seed-keyed construction memo.
    """

    def __init__(
        self,
        profile: TimingProfile = DEFAULT_PROFILE,
        seed: int = 2008,
        functional_rsa_bits: int = 512,
        tpm_key_bits: int = 512,
        platform_label: str = "hp-dc5750",
        multicore_isolation: bool = False,
        launch: str = "svm",
        retry_policy: RetryPolicy = RetryPolicy(),
        observability: bool = False,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.functional_rsa_bits = functional_rsa_bits
        self.tpm_key_bits = tpm_key_bits
        self.platform_label = platform_label
        self.multicore_isolation = multicore_isolation
        self.launch = launch
        self.retry_policy = retry_policy
        self.observability = observability
        #: SLB images shared by every clone (an image is a pure function
        #: of the PAL, independent of the machine that runs it).
        self._image_cache: Dict[Tuple[int, bool], SLBImage] = {}
        #: Number of platforms cloned from this template so far.
        self.clones_made = 0

    def clone(
        self,
        seed: Optional[int] = None,
        machine_id: Optional[str] = None,
        clock=None,
        eager_identity: bool = False,
    ) -> FlickerPlatform:
        """Construct a platform byte-identical to a fresh build.

        ``seed`` defaults to the template's own seed.  ``clock`` attaches
        the machine to a shared event schedule (fleets pass a
        :class:`~repro.sim.sched.ScheduledClock`).  ``eager_identity``
        forces AIK enrolment at construction time — the pre-template
        behaviour, kept as the baseline the construction benchmark
        measures the template path against.
        """
        platform = FlickerPlatform(
            profile=self.profile,
            seed=self.seed if seed is None else seed,
            functional_rsa_bits=self.functional_rsa_bits,
            tpm_key_bits=self.tpm_key_bits,
            platform_label=self.platform_label,
            multicore_isolation=self.multicore_isolation,
            launch=self.launch,
            retry_policy=self.retry_policy,
            observability=self.observability,
            clock=clock,
            machine_id=machine_id,
        )
        platform._image_cache = self._image_cache
        if eager_identity:
            platform.tqd.aik_certificate  # noqa: B018 — forces enrolment
        self.clones_made += 1
        return platform
