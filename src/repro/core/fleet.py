"""Multi-machine Flicker deployments on one discrete-event schedule.

A :class:`FlickerFleet` assembles N independent
:class:`~repro.core.session.FlickerPlatform` machines — each with its own
TPM, AIK, Privacy CA, and per-machine :class:`~repro.sim.sched.ScheduledClock`
— plus one verifier/server host, all registered with a shared
:class:`~repro.sim.sched.EventScheduler`.  This is the deployment shape
the paper's §6.2/§7.5 distributed-computing application envisions: many
untrusted client machines compute inside Flicker sessions while a server
verifies attestations as they arrive over the network.

Concurrency model
-----------------
Machine-local work (a Flicker session, a TPM command burst) runs
synchronously on that machine's clock, exactly as in the single-machine
simulation — which is why one-machine fleet runs reproduce the legacy
Figure 2 timings bit-for-bit.  Machines interleave at *scheduling
points*: network deliveries, mailbox waits, and explicit yields inside
:class:`~repro.sim.sched.Process` generators.  All interleaving is
resolved by the scheduler's ``(time, seq)`` order, so a seeded fleet
scenario replays byte-identically.

Networking
----------
Each client has its own :class:`~repro.osim.network.NetworkLink` to the
server with the profile's one-way latency, optional seeded jitter, and
in-order delivery.  Messages land in :class:`~repro.sim.sched.Mailbox`\\ es
that wake the receiving process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterator, List, Optional, Sequence

from repro.core.attestation import FlickerVerifier
from repro.core.session import FlickerPlatform, RetryPolicy
from repro.osim.network import NetworkLink
from repro.sim.rng import DeterministicRNG
from repro.sim.sched import EventScheduler, Mailbox, Process, ScheduledClock
from repro.sim.timing import DEFAULT_PROFILE, TimingProfile

#: The server/verifier host's machine id.
SERVER_ID = "server"

#: The server's verification worker.  Attestation checks run on this
#: clock so a slow verify never stalls the dispatch loop (the server
#: host models two cores: one dispatching, one verifying).
VERIFIER_ID = "server-verify"


def derive_machine_seed(fleet_seed: int, index: int) -> int:
    """Deterministic per-machine platform seed (stable in ``index``:
    growing the fleet never reseeds existing machines)."""
    return DeterministicRNG(fleet_seed).fork(f"machine:{index}").randbits(48)


def derive_group_seed(fleet_seed: int, index_base: int) -> int:
    """Deterministic scheduler seed for a sharded machine group.

    Group 0 keeps the fleet seed itself, so an unsharded fleet — every
    committed baseline — is bit-for-bit unchanged; later groups get an
    independent stream for their network jitter and scheduling noise.
    """
    if index_base == 0:
        return fleet_seed
    return DeterministicRNG(fleet_seed).fork(f"group:{index_base}").randbits(48)


class _LazyHostSequence(Sequence):
    """``fleet.hosts``: a list-like view over lazily materialized hosts.

    ``len`` covers the whole fleet; indexing (or iterating, or zipping)
    materializes the touched machines from the fleet's platform template.
    Code that only touches a subset — a sparse workload on a 10k fleet —
    never pays for the idle machines.
    """

    def __init__(self, fleet: "FlickerFleet") -> None:
        self._fleet = fleet

    def __len__(self) -> int:
        return self._fleet.num_machines

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._fleet._materialize(i)
                    for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("fleet host index out of range")
        return self._fleet._materialize(index)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<fleet hosts: {self._fleet.materialized_count}"
                f"/{len(self)} materialized>")


@dataclass
class FleetHost:
    """One client machine: platform + clock + link + inbound mailbox."""

    machine_id: str
    platform: FlickerPlatform
    clock: ScheduledClock
    link: NetworkLink
    mailbox: Mailbox

    @property
    def machine(self):
        """The underlying simulated machine."""
        return self.platform.machine

    def sessions_run(self) -> int:
        """Flicker sessions this machine has executed (SKINIT count)."""
        return len(self.machine.trace.events(source="cpu", kind="skinit"))


@dataclass
class MachineReport:
    """Per-machine activity summary for one fleet run."""

    machine_id: str
    sessions: int
    busy_ms: float
    idle_ms: float
    utilization: float
    net_messages: int
    net_bytes: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly (and byte-deterministic, keys sorted by caller)."""
        return {
            "machine_id": self.machine_id,
            "sessions": self.sessions,
            "busy_ms": round(self.busy_ms, 6),
            "idle_ms": round(self.idle_ms, 6),
            "utilization": round(self.utilization, 6),
            "net_messages": self.net_messages,
            "net_bytes": self.net_bytes,
        }


class FlickerFleet:
    """N Flicker client machines plus one verifier/server host.

    One fleet run is a single discrete-event schedule and therefore runs
    on one core; *sweeps* over fleet shapes or seeds shard across worker
    processes via :func:`repro.tools.fleet_report.run_fleet_sweep` (built
    on :func:`repro.sim.parallel.map_seeded`), with merged reports
    byte-identical to a serial sweep.
    """

    def __init__(
        self,
        num_machines: int,
        seed: int = 2008,
        profile: TimingProfile = DEFAULT_PROFILE,
        jitter_ms: float = 0.0,
        observability: bool = False,
        machine_seeds: Optional[List[int]] = None,
        functional_rsa_bits: int = 512,
        tpm_key_bits: int = 512,
        retry_policy: RetryPolicy = RetryPolicy(),
        index_base: int = 0,
    ) -> None:
        if num_machines < 1:
            raise ValueError("a fleet needs at least one machine")
        if machine_seeds is not None and len(machine_seeds) != num_machines:
            raise ValueError("machine_seeds must list one seed per machine")
        if index_base < 0:
            raise ValueError("index_base must be non-negative")
        self.seed = seed
        self.profile = profile
        self.observability = observability
        self.num_machines = num_machines
        #: Global index of this fleet's first machine.  A sharded sweep
        #: (:func:`repro.sim.parallel.shard_groups`) runs machine group
        #: ``g`` as its own fleet with ``index_base = g * shard_size``;
        #: machine ids and derived seeds use global indices, so the
        #: union of the groups covers the same machines as one flat
        #: fleet of ``shards * shard_size``.
        self.index_base = index_base
        self.jitter_ms = jitter_ms
        self._machine_seeds = (list(machine_seeds)
                               if machine_seeds is not None else None)
        self.scheduler = EventScheduler(seed=derive_group_seed(seed, index_base))
        #: The verifier/server host's clock (it does no Flicker sessions,
        #: but verification work and dispatch decisions charge time here).
        self.server_clock = ScheduledClock(self.scheduler, machine_id=SERVER_ID)
        self.server_mailbox = Mailbox(self.scheduler, name=SERVER_ID)
        #: The verification worker's clock + inbound queue: attestation
        #: checks charge time here, in parallel with dispatch decisions
        #: on :attr:`server_clock` (see :meth:`spawn_verifier`).
        self.verify_clock = ScheduledClock(self.scheduler, machine_id=VERIFIER_ID)
        self.verify_mailbox = Mailbox(self.scheduler, name=VERIFIER_ID)
        self.server_hub = None
        self.verify_hub = None
        if observability:
            from repro.obs import ObservabilityHub

            self.server_hub = ObservabilityHub(self.server_clock, machine=SERVER_ID)
            self.server_clock.set_span_listener(self.server_hub)
            self.verify_hub = ObservabilityHub(self.verify_clock, machine=VERIFIER_ID)
            self.verify_clock.set_span_listener(self.verify_hub)
        #: The shared platform template all machines clone from (the
        #: template also owns the fleet-wide SLB image cache).
        self.template = FlickerPlatform.template(
            profile=profile,
            seed=seed,
            functional_rsa_bits=functional_rsa_bits,
            tpm_key_bits=tpm_key_bits,
            retry_policy=retry_policy,
            observability=observability,
        )
        self._slots: List[Optional[FleetHost]] = [None] * num_machines
        self._host_index: Dict[str, int] = {
            self.machine_id_at(i): i for i in range(num_machines)
        }
        self.hosts: Sequence[FleetHost] = _LazyHostSequence(self)
        self._verifiers: Dict[str, FlickerVerifier] = {}

    # -- lookup ----------------------------------------------------------------

    def __len__(self) -> int:
        return self.num_machines

    def machine_id_at(self, index: int) -> str:
        """Machine id of the host at local ``index`` (global numbering:
        a sharded group continues where the previous group stopped)."""
        return f"client-{self.index_base + index:02d}"

    @property
    def materialized_count(self) -> int:
        """How many machines have actually been constructed so far."""
        return sum(1 for slot in self._slots if slot is not None)

    def materialized_hosts(self) -> Iterator[FleetHost]:
        """The hosts constructed so far, in index order."""
        return (slot for slot in self._slots if slot is not None)

    def _materialize(self, index: int) -> FleetHost:
        """Construct (or return) the host at ``index``.

        Construction order does not affect byte-identity: each platform
        seeds its own RNG tree, ``scheduler.rng(label)`` is stateless per
        label, and the scheduler's clock registry carries no ordering.
        """
        host = self._slots[index]
        if host is not None:
            return host
        machine_id = self.machine_id_at(index)
        clock = ScheduledClock(self.scheduler, machine_id=machine_id)
        platform_seed = (
            self._machine_seeds[index] if self._machine_seeds is not None
            else derive_machine_seed(self.seed, self.index_base + index))
        platform = self.template.clone(
            seed=platform_seed, machine_id=machine_id, clock=clock)
        link = NetworkLink(
            clock,
            platform.machine.trace,
            one_way_ms=self.profile.host.network_one_way_ms,
            hops=self.profile.host.network_hops,
            scheduler=self.scheduler,
            jitter_ms=self.jitter_ms,
            rng=self.scheduler.rng(f"net:{machine_id}"),
            name=f"{machine_id}<->{SERVER_ID}",
        )
        host = FleetHost(
            machine_id=machine_id,
            platform=platform,
            clock=clock,
            link=link,
            mailbox=Mailbox(self.scheduler, name=machine_id),
        )
        self._slots[index] = host
        return host

    def host(self, machine_id: str) -> FleetHost:
        """The client host with the given machine id (O(1) lookup)."""
        try:
            index = self._host_index[machine_id]
        except KeyError:
            raise KeyError(f"no fleet machine {machine_id!r}") from None
        return self._materialize(index)

    def verifier_for(self, machine_id: str) -> FlickerVerifier:
        """The server's verifier trusting ``machine_id``'s Privacy CA.

        Each machine carries its own TPM/AIK certified by its own Privacy
        CA; the server-side verifier registry models the CA public keys a
        real project server would hold for its enrolled clients.
        """
        if machine_id not in self._verifiers:
            self._verifiers[machine_id] = self.host(machine_id).platform.verifier()
        return self._verifiers[machine_id]

    def migrate_tenant(self, source_id: str, destination_id: str,
                       name: str) -> None:
        """Move a vTPM tenant between two fleet machines mid-run.

        Export on the source, evict, import on the destination
        (:func:`repro.vtpm.mux.migrate_tenant`) — the tenant's next
        session and attestation happen on the destination's hardware
        with the same virtual state and key identity.
        """
        from repro.vtpm.mux import migrate_tenant

        migrate_tenant(self.host(source_id).platform,
                       self.host(destination_id).platform, name)

    # -- processes -------------------------------------------------------------

    def spawn_server(self, generator: Generator, name: str = SERVER_ID) -> Process:
        """Run ``generator`` as the server host's cooperative process."""
        return Process(self.scheduler, self.server_clock, generator, name=name)

    def spawn_verifier(self, generator: Generator,
                       name: str = VERIFIER_ID) -> Process:
        """Run ``generator`` as the server's verification worker.

        The worker has its own clock, so verification cost (RSA public
        ops per attestation) accrues in parallel with the dispatch
        process on :attr:`server_clock` — the server host never stalls
        its scheduling decisions behind a slow verify.
        """
        return Process(self.scheduler, self.verify_clock, generator, name=name)

    def spawn(self, host: FleetHost, generator: Generator,
              name: Optional[str] = None) -> Process:
        """Run ``generator`` as a cooperative process on ``host``."""
        return Process(self.scheduler, host.clock, generator,
                       name=name or host.machine_id)

    # -- messaging -------------------------------------------------------------

    def send_to_server(self, host: FleetHost, payload: Any):
        """Client → server message; arrives in the server mailbox."""
        return host.link.deliver(host.machine_id, SERVER_ID, payload,
                                 self.server_mailbox.put,
                                 now_ms=host.clock.now())

    def send_to_host(self, host: FleetHost, payload: Any):
        """Server → client message; arrives in the host's mailbox."""
        return host.link.deliver(SERVER_ID, host.machine_id, payload,
                                 host.mailbox.put,
                                 now_ms=self.server_clock.now())

    def post_local(self, clock: ScheduledClock, mailbox: Mailbox, payload: Any):
        """Same-host handoff between two server-side processes.

        Unlike a network ``deliver`` there is no latency, but causality
        still matters: the payload lands when the *sender's* local clock
        reaches now, not at the (possibly earlier) global time the
        sending process resumed at.
        """
        return self.scheduler.at(
            clock.now(), lambda: mailbox.put(payload),
            label=f"{clock.machine_id}:post",
        )

    # -- running ---------------------------------------------------------------

    def run(self, until_ms: Optional[float] = None) -> float:
        """Drive the schedule until idle (or ``until_ms``); returns the
        final global virtual time."""
        return self.scheduler.run(until_ms=until_ms)

    # -- reporting -------------------------------------------------------------

    def machine_reports(self) -> List[MachineReport]:
        """Per-machine activity summaries (clients, then the server).

        Every machine gets a row.  A machine that was never materialized
        never ran, so its row is all zeros — byte-identical to what its
        untouched :class:`~repro.sim.sched.ScheduledClock` and idle link
        would report, without paying to construct it.
        """
        reports = []
        for index, host in enumerate(self._slots):
            if host is None:
                reports.append(MachineReport(
                    machine_id=self.machine_id_at(index),
                    sessions=0,
                    busy_ms=0.0,
                    idle_ms=0.0,
                    utilization=0.0,
                    net_messages=0,
                    net_bytes=0,
                ))
                continue
            reports.append(MachineReport(
                machine_id=host.machine_id,
                sessions=host.sessions_run(),
                busy_ms=host.clock.busy_ms,
                idle_ms=host.clock.idle_ms,
                utilization=host.clock.utilization,
                net_messages=host.link.messages_carried,
                net_bytes=host.link.bytes_carried,
            ))
        # The server entry aggregates both server-side workers: the
        # dispatch loop and the verification worker (whose clock is
        # untouched — hence zero — when nothing spawns a verifier).
        busy = self.server_clock.busy_ms + self.verify_clock.busy_ms
        idle = self.server_clock.idle_ms + self.verify_clock.idle_ms
        horizon = max(self.server_clock.now(), self.verify_clock.now())
        reports.append(MachineReport(
            machine_id=SERVER_ID,
            sessions=0,
            busy_ms=busy,
            idle_ms=idle,
            utilization=busy / horizon if horizon > 0 else 0.0,
            net_messages=sum(h.link.messages_carried
                             for h in self.materialized_hosts()),
            net_bytes=sum(h.link.bytes_carried
                          for h in self.materialized_hosts()),
        ))
        return reports

    def hubs(self) -> Dict[str, Any]:
        """machine id → observability hub (for fleet Chrome export)."""
        out: Dict[str, Any] = {}
        for host in self.materialized_hosts():
            if host.platform.obs is not None:
                out[host.machine_id] = host.platform.obs
        if self.server_hub is not None:
            out[SERVER_ID] = self.server_hub
        if self.verify_hub is not None and self.verify_hub.spans:
            out[VERIFIER_ID] = self.verify_hub
        return out

    def traces(self) -> Dict[str, Any]:
        """machine id → raw event trace (materialized clients only; the
        server host is pure software and has no machine trace)."""
        return {host.machine_id: host.machine.trace
                for host in self.materialized_hosts()}
