"""One-call Flicker session orchestration.

:class:`FlickerPlatform` assembles a complete simulated deployment — the
machine, the untrusted kernel, the flicker-module, the TPM quote daemon,
and a Privacy CA — and exposes the API the applications in
:mod:`repro.apps` build on:

* :meth:`FlickerPlatform.execute_pal` — build (and cache) an SLB for a
  PAL, stage inputs, run a session, and return a :class:`SessionResult`
  with per-phase virtual timings (the Figure 2 timeline).
* :meth:`FlickerPlatform.attest` — have the tqd answer a challenge for the
  most recent session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.attestation import Attestation, FlickerVerifier
from repro.core.flicker_module import DEFAULT_NONCE, FlickerModule
from repro.core.pal import PAL
from repro.core.slb import SLBImage, build_slb
from repro.core.slb_core import SLBCoreResult
from repro.errors import (
    AttestationError,
    PALRuntimeError,
    SessionAbortedError,
    TPMTransientError,
)
from repro.hw.machine import Machine
from repro.osim.kernel import UntrustedKernel
from repro.osim.network import NetworkLink
from repro.osim.tpm_driver import TPMQuoteDaemon
from repro.sim.timing import DEFAULT_PROFILE, TimingProfile
from repro.tpm.privacy_ca import PrivacyCA

#: PCR indices a standard Flicker attestation covers.
ATTESTED_PCRS = (17,)


@dataclass(frozen=True)
class RetryPolicy:
    """How the platform responds to transient faults.

    A session that dies on a :class:`~repro.errors.TPMTransientError` is
    re-run after an exponential backoff on the *virtual* clock.  Anything
    else — a permanent TPM fault, a PAL bug — is never retried; the
    platform fails closed with :class:`~repro.errors.SessionAbortedError`
    (permanent fault) or the original :class:`PALRuntimeError`.
    """

    #: Total attempts including the first (1 disables retries).
    max_attempts: int = 3
    #: Virtual milliseconds before the first retry.
    backoff_ms: float = 8.0
    #: Backoff growth factor per retry.
    multiplier: float = 2.0


@dataclass
class SessionResult:
    """Everything an application learns from one Flicker session."""

    outputs: bytes
    image: SLBImage
    nonce: bytes
    inputs: bytes
    #: (label, measurement) extends that reached PCR 17, in order.
    event_log: Tuple[Tuple[str, bytes], ...]
    #: Virtual milliseconds attributed to each Figure 2 phase.
    phase_ms: Dict[str, float] = field(default_factory=dict)
    #: Virtual milliseconds for the whole session.
    total_ms: float = 0.0
    #: Per-TPM-operation breakdown within the session (Table 1/4/Fig 9 rows).
    tpm_ms: Dict[str, float] = field(default_factory=dict)
    #: Number of transient-fault retries this session needed (0 = first try).
    retries: int = 0
    #: vTPM tenant this session ran for (``None`` = the platform itself).
    tenant: Optional[str] = None

    def phase(self, name: str) -> float:
        """Convenience accessor for a phase timing (0.0 if absent)."""
        return self.phase_ms.get(name, 0.0)

    #: Canonical Figure 2 phase order for rendering.
    FIGURE2_PHASES = (
        "init-slb", "suspend-os", "skinit", "senter", "slb-init",
        "pal-exec", "cleanup", "extend-pcr", "resume-os", "restore-os",
    )

    def format_phases(self) -> str:
        """Human-readable Figure 2 timeline of this session."""
        lines = []
        for phase in self.FIGURE2_PHASES:
            if phase in self.phase_ms:
                lines.append(f"{phase:<12} {self.phase_ms[phase]:9.3f} ms")
        lines.append(f"{'TOTAL':<12} {self.total_ms:9.3f} ms")
        return "\n".join(lines)


class FlickerPlatform:
    """A fully assembled Flicker deployment on one simulated machine."""

    def __init__(
        self,
        profile: TimingProfile = DEFAULT_PROFILE,
        seed: int = 2008,
        functional_rsa_bits: int = 512,
        tpm_key_bits: int = 512,
        platform_label: str = "hp-dc5750",
        multicore_isolation: bool = False,
        launch: str = "svm",
        retry_policy: RetryPolicy = RetryPolicy(),
        observability: bool = False,
        clock=None,
        machine_id: Optional[str] = None,
    ) -> None:
        acm = None
        intel_authority = None
        if launch == "txt":
            from repro.hw.txt import IntelACMAuthority

            intel_authority = IntelACMAuthority(seed=seed)
            acm = intel_authority.sign_acm(b"flicker-sinit-acm" * 256)
        self.launch = launch
        self.acm = acm
        self.machine = Machine(
            profile=profile,
            seed=seed,
            tpm_key_bits=tpm_key_bits,
            multicore_isolation=multicore_isolation,
            intel_acm_authority=intel_authority,
            clock=clock,
            machine_id=machine_id,
        )
        self.kernel = UntrustedKernel(self.machine)
        self.flicker = FlickerModule(
            functional_rsa_bits=functional_rsa_bits, launch=launch, acm=acm
        )
        self.kernel.load_module(self.flicker)
        self.privacy_ca = PrivacyCA(self.machine.rng)
        self.platform_label = platform_label
        self.tqd = TPMQuoteDaemon(self.kernel, self.privacy_ca, platform_label)
        self.network = NetworkLink(
            self.machine.clock,
            self.machine.trace,
            one_way_ms=profile.host.network_one_way_ms,
            hops=profile.host.network_hops,
        )
        self.retry_policy = retry_policy
        if observability:
            import repro.obs  # noqa: F401  (registers the hub factory)

            self.machine.enable_observability()
        self._image_cache: Dict[Tuple[int, bool], SLBImage] = {}
        self._installed: Optional[SLBImage] = None
        self._last: Optional[SessionResult] = None
        self._vtpm = None

    @classmethod
    def template(cls, **config) -> "PlatformTemplate":
        """A :class:`~repro.core.template.PlatformTemplate` for stamping
        out many platforms of one configuration.

        ``template(**config).clone(seed=s)`` is byte-identical to
        ``FlickerPlatform(seed=s, **config)`` but amortizes key, kernel
        image, and SLB construction across the clones — the fleet's
        construction path.  Accepts the same keyword arguments as this
        constructor except the per-machine ``clock`` / ``machine_id``
        (those go to ``clone``).
        """
        from repro.core.template import PlatformTemplate

        return PlatformTemplate(**config)

    @property
    def obs(self):
        """The machine's observability hub, or ``None`` when disabled."""
        return self.machine.obs

    @property
    def vtpm(self):
        """The platform's vTPM multiplexer (:mod:`repro.vtpm`), created
        lazily on first use — single-tenant deployments never construct
        it, so their RNG streams and traces are untouched."""
        if self._vtpm is None:
            from repro.vtpm import VTPMMultiplexer

            self._vtpm = VTPMMultiplexer(self)
        return self._vtpm

    @property
    def machine_id(self) -> Optional[str]:
        """Fleet identity of this platform's machine (``None`` standalone)."""
        return self.machine.machine_id

    # -- building and installing SLBs -----------------------------------------------

    def build(self, pal: PAL, optimize: bool = True) -> SLBImage:
        """Build (and cache) the SLB image for a PAL."""
        key = (id(pal), optimize)
        if key not in self._image_cache:
            self._image_cache[key] = build_slb(pal, optimize=optimize)
        return self._image_cache[key]

    def install(self, image: SLBImage) -> None:
        """Install an SLB through the sysfs interface (as an application
        process would: ``open``/``write`` on ``flicker/slb``)."""
        self.kernel.sysfs.write("flicker/slb", image.image)
        self._installed = image

    # -- running sessions ----------------------------------------------------------------

    def execute_pal(
        self,
        pal: PAL,
        inputs: bytes = b"",
        nonce: bytes = DEFAULT_NONCE,
        optimize: bool = True,
        tenant: Optional[str] = None,
    ) -> SessionResult:
        """Run one Flicker session of ``pal`` and return its result.

        ``tenant`` runs the session on behalf of a vTPM tenant: the
        hardware session is identical, but its event log is mirrored
        into the tenant's virtual PCR 17 afterwards so the tenant can
        attest it (:meth:`attest` with the same ``tenant``).

        Raises :class:`~repro.errors.PALRuntimeError` if the PAL faulted
        (the OS is restored first).
        """
        if self.launch == "txt":
            optimize = False  # SENTER measures the full MLE itself
        image = self.build(pal, optimize=optimize)
        return self.execute_image(image, inputs=inputs, nonce=nonce,
                                  tenant=tenant)

    def execute_image(
        self,
        image: SLBImage,
        inputs: bytes = b"",
        nonce: bytes = DEFAULT_NONCE,
        tenant: Optional[str] = None,
    ) -> SessionResult:
        """Run one session of an already built SLB image.

        Sessions that die on a transient TPM fault are retried per the
        platform's :class:`RetryPolicy` (the whole session re-runs — PCR 17
        is re-established from scratch by the new SKINIT, so a retry is
        indistinguishable from a fresh session to the verifier).  Permanent
        faults and exhausted retries raise
        :class:`~repro.errors.SessionAbortedError`.
        """
        if self._installed is not image:
            self.install(image)
        clock = self.machine.clock
        policy = self.retry_policy
        obs = self.machine.obs
        start = clock.now()
        backoff_ms = policy.backoff_ms
        attempt = 1
        self.machine.fire_fault("session.begin", image=image, nonce=nonce)
        session_span = None
        if obs is not None:
            span_args = {"pal": image.pal.name}
            if tenant is not None:
                span_args["tenant"] = tenant
            session_span = obs.open_span(
                "session", category="session", **span_args
            )
        try:
            while True:
                try:
                    result = self._execute_attempt(image, inputs, nonce)
                    break
                except PALRuntimeError as exc:
                    if exc.error_type == "TPMPermanentError":
                        if obs is not None:
                            obs.registry.counter(
                                "session_aborts_total",
                                "Sessions that failed closed",
                            ).inc(pal=image.pal.name, reason="permanent-fault")
                        error = SessionAbortedError(
                            f"session failed closed on permanent fault: {exc}"
                        )
                        error.error_type = exc.error_type
                        raise error from exc
                    if not exc.transient:
                        raise
                    if attempt >= policy.max_attempts:
                        if obs is not None:
                            obs.registry.counter(
                                "session_aborts_total",
                                "Sessions that failed closed",
                            ).inc(pal=image.pal.name, reason="retries-exhausted")
                        error = SessionAbortedError(
                            f"session failed closed after {attempt} attempts: {exc}"
                        )
                        error.transient = True
                        error.error_type = exc.error_type
                        raise error from exc
                    clock.advance(backoff_ms)
                    self.machine.trace.emit(
                        clock.now(), "flicker", "session-retry",
                        attempt=attempt, backoff_ms=backoff_ms,
                    )
                    if obs is not None:
                        obs.registry.counter(
                            "session_retries_total",
                            "Transient-fault session retries",
                        ).inc(pal=image.pal.name)
                        obs.event("session.retry", category="session",
                                  attempt=attempt, backoff_ms=backoff_ms)
                    backoff_ms *= policy.multiplier
                    attempt += 1
        finally:
            self.machine.fire_fault("session.end", image=image)
            if session_span is not None:
                obs.close_span(session_span, attempts=attempt)
        result.retries = attempt - 1
        result.total_ms = clock.elapsed_since(start)
        result.tenant = tenant
        self._last = result
        if tenant is not None:
            self.vtpm.record_session(tenant, result)
        if obs is not None:
            self._record_session_metrics(obs, image, result)
        return result

    def _record_session_metrics(self, obs, image: SLBImage, result: "SessionResult") -> None:
        """Fold one completed session into the metrics registry (Figure 2 /
        Figure 8 aggregates: per-phase and per-module virtual timings)."""
        pal = image.pal.name
        obs.registry.counter("sessions_total", "Completed Flicker sessions").inc(pal=pal)
        obs.registry.histogram(
            "session_total_ms", "End-to-end session latency"
        ).observe(result.total_ms, pal=pal)
        for phase, ms in result.phase_ms.items():
            obs.registry.histogram(
                "session_phase_ms", "Virtual time per Figure 2 phase"
            ).observe(ms, phase=phase)
        for module in image.linked_modules:
            obs.registry.counter(
                "session_module_links_total", "Sessions linking each PAL module"
            ).inc(module=module)

    def _execute_attempt(
        self, image: SLBImage, inputs: bytes, nonce: bytes
    ) -> SessionResult:
        clock = self.machine.clock
        clock.reset_spans()
        self.kernel.sysfs.write("flicker/inputs", inputs)
        start = clock.now()
        tpm_before = self._tpm_op_totals()
        self.kernel.sysfs.write("flicker/control", b"go:" + nonce.hex().encode("ascii"))
        core_result: SLBCoreResult = self.flicker.last_result
        outputs = self.kernel.sysfs.read("flicker/outputs")
        spans = clock.span_totals()
        tpm_after = self._tpm_op_totals()
        return SessionResult(
            outputs=outputs,
            image=image,
            nonce=nonce,
            inputs=inputs,
            event_log=core_result.event_log,
            phase_ms={k: v for k, v in spans.items()},
            total_ms=clock.elapsed_since(start),
            tpm_ms={
                op: tpm_after.get(op, 0.0) - tpm_before.get(op, 0.0)
                for op in tpm_after
                if tpm_after.get(op, 0.0) - tpm_before.get(op, 0.0) > 0
            },
        )

    def _tpm_op_totals(self) -> Dict[str, float]:
        """Cumulative virtual time per TPM op, from the trace (approximate:
        attributes each op its profile cost)."""
        totals: Dict[str, float] = {}
        timings = self.machine.profile.tpm
        cost = {
            "pcr_extend": timings.extend_ms,
            "pcr_read": timings.pcr_read_ms,
            "quote": timings.quote_ms,
            "oiap_start": timings.session_ms,
            "osap_start": timings.session_ms,
        }
        for event in self.machine.trace.events(source="tpm"):
            if event.kind in cost:
                totals[event.kind] = totals.get(event.kind, 0.0) + cost[event.kind]
            elif event.kind == "seal":
                totals["seal"] = (totals.get("seal", 0.0)
                                  + timings.seal_ms(event.detail["nbytes"]))
            elif event.kind == "unseal":
                totals["unseal"] = (totals.get("unseal", 0.0)
                                    + timings.unseal_ms(event.detail["nbytes"]))
            elif event.kind == "get_random":
                totals["get_random"] = (totals.get("get_random", 0.0)
                                        + timings.getrandom_ms(event.detail["nbytes"]))
        return totals

    # -- attestation -----------------------------------------------------------------------

    def attest(self, nonce: bytes, session: Optional[SessionResult] = None,
               tenant: Optional[str] = None) -> Attestation:
        """Produce the attestation for a session (default: the most recent).

        Runs on the *untrusted* OS — the tqd loads the AIK and quotes PCR
        17 with the verifier's nonce (§4.4.1).  Transient TPM faults during
        the quote are retried under the platform's :class:`RetryPolicy`;
        exhausted retries raise :class:`~repro.errors.AttestationError`.

        With ``tenant``, the multiplexer answers instead: a quote over the
        tenant's *virtual* PCR 17, signed by the tenant AIK (whose
        certificate chains to the same Privacy CA, so :meth:`verifier`
        verifies it unchanged)."""
        if tenant is not None:
            return self.vtpm.attest(tenant, nonce, session)
        target = session or self._last
        if target is None:
            raise AttestationError("no session to attest")
        pcrs = (17, 18) if self.launch == "txt" else ATTESTED_PCRS
        policy = self.retry_policy
        obs = self.machine.obs
        backoff_ms = policy.backoff_ms
        attempt = 1
        while True:
            try:
                quote, cert = self.tqd.attest(nonce, pcrs)
                break
            except TPMTransientError as exc:
                if attempt >= policy.max_attempts:
                    if obs is not None:
                        obs.registry.counter(
                            "attest_failures_total",
                            "Attestations abandoned after exhausted retries",
                        ).inc()
                    raise AttestationError(
                        f"quote failed after {attempt} attempts: {exc}"
                    ) from exc
                self.machine.clock.advance(backoff_ms)
                self.machine.trace.emit(
                    self.machine.clock.now(), "flicker", "attest-retry",
                    attempt=attempt, backoff_ms=backoff_ms,
                )
                if obs is not None:
                    obs.registry.counter(
                        "attest_retries_total", "Transient-fault quote retries"
                    ).inc()
                backoff_ms *= policy.multiplier
                attempt += 1
        return Attestation(
            quote=quote,
            aik_certificate=cert,
            event_log=target.event_log,
            inputs=target.inputs,
            outputs=target.outputs,
            nonce=nonce,
        )

    def verifier(self) -> FlickerVerifier:
        """A verifier trusting this deployment's Privacy CA."""
        return FlickerVerifier(self.privacy_ca.public_key)

    @property
    def last_session(self) -> Optional[SessionResult]:
        """The most recent session result."""
        return self._last
