"""Project-wide call graph: call sites resolved to definitions.

The intra-procedural rule families (SEC001, the determinism lints) see
one function at a time; the properties PR 9's multi-tenant vTPM layer
introduced — tenant partitioning of hardware NV/counters, snapshot
confidentiality — only hold *across* functions.  This module gives the
interprocedural families (SEC002, ISO001/ISO002, RACE001) the structure
they need: every function and method definition in the project, and for
every call site the definition(s) it can reach.

Resolution is static and deliberately three-tiered, in decreasing
precision:

``local`` / ``import``
    The callee is named directly: a module-level function of the same
    module, or a name bound by an import (``from repro.crypto.sha1
    import sha1``; ``mux.migrate_tenant`` after ``import
    repro.vtpm.mux as mux``).  Class constructors resolve to
    ``__init__``; ``Class.method`` resolves through the class table.
``class``
    ``self.meth(...)`` / ``cls.meth(...)`` inside a class body resolves
    through the class's method table, walking base classes (bases are
    themselves resolved through the importing module's bindings).
``suffix``
    Anything else with an attribute callee (``host.platform.attest``)
    matches every definition whose bare name agrees.  A suffix edge
    with exactly one candidate is *unambiguous* and the rules treat it
    like a precise edge; multi-candidate edges are recorded (they count
    in the report) but no rule acts on them.

The committed ``ANALYSIS_callgraph.json`` summarises the graph per
module and is pinned exactly like ``ANALYSIS_tcb.json``: CG001 fails
the lint when the committed report no longer matches the source, and
regeneration (``--update-callgraph-report``) is byte-identical for
identical sources across Python 3.10–3.12 — the builder only uses
names and line numbers, never interpreter-variant AST details.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.astutil import dotted_name, resolve_relative
from repro.analysis.engine import Finding, Project, Rule, SourceFile, register

#: Report file name (committed at the repo root) and format tag.
CALLGRAPH_REPORT_NAME = "ANALYSIS_callgraph.json"
CALLGRAPH_REPORT_FORMAT = "repro-analysis-callgraph"
CALLGRAPH_REPORT_VERSION = 1

#: Resolution kinds a rule may trust without ambiguity checks.
PRECISE_RESOLUTIONS = ("local", "import", "class")


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # module.func or module.Class.method
    module: str
    relpath: str
    line: int
    name: str  # bare name
    class_name: Optional[str]  # bare enclosing class name, None if free
    is_generator: bool
    params: Tuple[str, ...]  # declared parameter names, in order
    has_vararg: bool
    has_kwarg: bool
    node: ast.AST = field(repr=False)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One class definition: its bases (as written) and method table."""

    qualname: str
    module: str
    name: str
    bases: Tuple[str, ...]
    methods: Dict[str, str]  # bare method name -> function qualname


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: ``caller`` may invoke ``callee``."""

    caller: str  # qualname; "<module>.<module>" for module-level code
    callee: str
    line: int
    resolution: str  # "local" | "import" | "class" | "suffix"
    #: True for a suffix edge whose site had several candidates.
    ambiguous: bool
    text: str  # the callee expression as written


@dataclass
class CallGraph:
    """The project's functions, classes, and resolved call edges."""

    functions: Dict[str, FunctionInfo]
    classes: Dict[str, ClassInfo]
    bindings: Dict[str, Dict[str, str]]  # module -> imported name -> target
    edges: List[CallEdge]
    call_sites: int
    unresolved_calls: int
    out_edges: Dict[str, List[CallEdge]] = field(default_factory=dict)
    by_name: Dict[str, List[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for edge in self.edges:
            self.out_edges.setdefault(edge.caller, []).append(edge)
        for qualname, info in self.functions.items():
            self.by_name.setdefault(info.name, []).append(qualname)
        for names in self.by_name.values():
            names.sort()

    def callees(
        self, qualname: str, precise_only: bool = False
    ) -> List[CallEdge]:
        """Outgoing edges a rule may act on: precise resolutions plus
        unambiguous suffix edges (or precise only)."""
        kept = []
        for edge in self.out_edges.get(qualname, ()):
            if edge.resolution in PRECISE_RESOLUTIONS:
                kept.append(edge)
            elif not precise_only and not edge.ambiguous:
                kept.append(edge)
        return kept

    def reachable(
        self, roots: Iterable[str], precise_only: bool = False
    ) -> Set[str]:
        """Functions reachable from ``roots`` over actionable edges
        (roots included when they are project functions)."""
        seen: Set[str] = set()
        frontier = [r for r in sorted(set(roots)) if r in self.functions]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self.callees(current, precise_only=precise_only):
                if edge.callee in self.functions and edge.callee not in seen:
                    frontier.append(edge.callee)
        return seen

    def method_on(
        self, class_qualname: str, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Resolve ``method`` on a class, walking base classes."""
        seen = _seen if _seen is not None else set()
        if class_qualname in seen:
            return None
        seen.add(class_qualname)
        info = self.classes.get(class_qualname)
        if info is None:
            return None
        if method in info.methods:
            return info.methods[method]
        module_bindings = self.bindings.get(info.module, {})
        for base in info.bases:
            base_qual = _resolve_dotted_target(
                base, info.module, module_bindings, self.classes
            )
            if base_qual is not None:
                found = self.method_on(base_qual, method, seen)
                if found is not None:
                    return found
        return None


def _function_params(node: ast.AST) -> Tuple[Tuple[str, ...], bool, bool]:
    args = node.args
    names = [a.arg for a in getattr(args, "posonlyargs", ())]
    names += [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    return tuple(names), args.vararg is not None, args.kwarg is not None


def _is_generator(node: ast.AST) -> bool:
    """Does the function's own body (not nested defs) yield?"""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(sub, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(sub))
    return False


def module_bindings(source: SourceFile) -> Dict[str, str]:
    """Imported-name bindings for one module: local name → dotted target."""
    bindings: Dict[str, str] = {}
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    bindings[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                base = resolve_relative(
                    source.module, node.level, base,
                    is_package=source.relpath.endswith("__init__.py"),
                )
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                bindings[alias.asname or alias.name] = target
    return bindings


def _resolve_dotted_target(
    name: str,
    module: str,
    bindings: Dict[str, str],
    classes: Dict[str, ClassInfo],
) -> Optional[str]:
    """Map a dotted class reference (as written) onto a class qualname."""
    if f"{module}.{name}" in classes:  # same-module class
        return f"{module}.{name}"
    root, _, rest = name.partition(".")
    if root in bindings:
        target = bindings[root] + ("." + rest if rest else "")
        if target in classes:
            return target
    if name in classes:
        return name
    return None


def build_callgraph(project: Project) -> CallGraph:
    """Index every definition, then resolve every call site."""
    functions: Dict[str, FunctionInfo] = {}
    classes: Dict[str, ClassInfo] = {}
    bindings: Dict[str, Dict[str, str]] = {}

    # Pass 1: definitions.  Only module-level functions and one level of
    # class methods are indexed — nested defs belong to their enclosing
    # definition for attribution and are not call targets.
    for source in project.files:
        if not source.module:
            continue
        bindings[source.module] = module_bindings(source)
        for node in source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _index_function(functions, source, node, None)
            elif isinstance(node, ast.ClassDef):
                qualname = f"{source.module}.{node.name}"
                methods: Dict[str, str] = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = _index_function(functions, source, item, node.name)
                        methods[item.name] = info.qualname
                classes[qualname] = ClassInfo(
                    qualname=qualname,
                    module=source.module,
                    name=node.name,
                    bases=tuple(
                        b for b in (dotted_name(base) for base in node.bases)
                        if b is not None
                    ),
                    methods=methods,
                )

    graph = CallGraph(
        functions=functions, classes=classes, bindings=bindings,
        edges=[], call_sites=0, unresolved_calls=0,
    )

    # Pass 2: call sites.
    edges: List[CallEdge] = []
    call_sites = 0
    unresolved = 0
    for source in project.files:
        if not source.module:
            continue
        for caller, class_name, call in _iter_call_sites(source):
            call_sites += 1
            resolved = resolve_call(graph, source, class_name, call)
            if not resolved:
                unresolved += 1
                continue
            text = dotted_name(call.func) or "<dynamic>"
            ambiguous = (
                len(resolved) > 1 and resolved[0][1] == "suffix"
            )
            for callee, resolution in resolved:
                edges.append(CallEdge(
                    caller=caller, callee=callee, line=call.lineno,
                    resolution=resolution, ambiguous=ambiguous, text=text,
                ))
    edges.sort(key=lambda e: (e.caller, e.line, e.callee, e.resolution))
    return CallGraph(
        functions=functions, classes=classes, bindings=bindings,
        edges=edges, call_sites=call_sites, unresolved_calls=unresolved,
    )


def _index_function(
    functions: Dict[str, FunctionInfo],
    source: SourceFile,
    node: ast.AST,
    class_name: Optional[str],
) -> FunctionInfo:
    qualname = (
        f"{source.module}.{class_name}.{node.name}"
        if class_name else f"{source.module}.{node.name}"
    )
    params, has_vararg, has_kwarg = _function_params(node)
    info = FunctionInfo(
        qualname=qualname, module=source.module, relpath=source.relpath,
        line=node.lineno, name=node.name, class_name=class_name,
        is_generator=_is_generator(node), params=params,
        has_vararg=has_vararg, has_kwarg=has_kwarg, node=node,
    )
    functions[qualname] = info
    return info


def _iter_call_sites(source: SourceFile):
    """Yield ``(caller qualname, enclosing class name, Call node)``.

    Calls inside nested defs/lambdas attribute to the nearest indexed
    enclosing definition; module-level calls attribute to
    ``module.<module>``.
    """

    def visit(node: ast.AST, caller: str, class_name: Optional[str]):
        for child in ast.iter_child_nodes(node):
            next_caller, next_class = caller, class_name
            if isinstance(child, ast.ClassDef):
                next_class = child.name
                next_caller = f"{source.module}.<module>"
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if caller.endswith(".<module>"):
                    next_caller = (
                        f"{source.module}.{class_name}.{child.name}"
                        if class_name else f"{source.module}.{child.name}"
                    )
                # nested def: keep attributing to the enclosing function
            if isinstance(child, ast.Call):
                yield caller, class_name, child
            yield from visit(child, next_caller, next_class)

    yield from visit(source.tree, f"{source.module}.<module>", None)


def resolve_call(
    graph: CallGraph,
    source: SourceFile,
    class_name: Optional[str],
    call: ast.Call,
) -> List[Tuple[str, str]]:
    """All (callee qualname, resolution) pairs for one call site."""
    name = dotted_name(call.func)
    if name is None:
        return []
    module = source.module
    bindings = graph.bindings.get(module, {})

    def as_callable(target: str, resolution: str) -> List[Tuple[str, str]]:
        if target in graph.functions:
            return [(target, resolution)]
        if target in graph.classes:  # constructor call
            init = graph.method_on(target, "__init__")
            return [(init, resolution)] if init else []
        # Class.method written with an explicit class prefix.
        prefix, _, attr = target.rpartition(".")
        if prefix in graph.classes and attr:
            found = graph.method_on(prefix, attr)
            if found is not None:
                return [(found, resolution)]
        return []

    if "." not in name:
        local = f"{module}.{name}"
        hit = as_callable(local, "local")
        if hit:
            return hit
        if name in bindings:
            hit = as_callable(bindings[name], "import")
            if hit:
                return hit
        return []

    parts = name.split(".")
    if parts[0] in ("self", "cls") and class_name is not None and len(parts) == 2:
        own = graph.method_on(f"{module}.{class_name}", parts[1])
        if own is not None:
            return [(own, "class")]
    elif parts[0] not in ("self", "cls"):
        root, rest = parts[0], ".".join(parts[1:])
        if root in bindings:
            hit = as_callable(f"{bindings[root]}.{rest}", "import")
            if hit:
                return hit
        hit = as_callable(f"{module}.{name}", "local")  # local Class.method
        if hit:
            return hit

    candidates = graph.by_name.get(parts[-1], [])
    return [(c, "suffix") for c in candidates]


def get_callgraph(project: Project) -> CallGraph:
    """The project's call graph, built once and cached on the project."""
    cached = getattr(project, "_callgraph", None)
    if cached is None:
        cached = build_callgraph(project)
        project._callgraph = cached
    return cached


# -- the committed report ------------------------------------------------------


def generate_callgraph_report(project: Project) -> str:
    """The canonical call-graph summary: byte-identical for identical
    sources, and stable across supported interpreter versions."""
    graph = get_callgraph(project)
    per_module: Dict[str, Dict[str, object]] = {}
    for source in project.files:
        if not source.module:
            continue
        per_module[source.module] = {
            "functions": 0, "classes": 0,
            "calls_out": {}, "ambiguous_calls": 0,
        }
    for info in graph.functions.values():
        per_module[info.module]["functions"] += 1
    for info in graph.classes.values():
        per_module[info.module]["classes"] += 1
    edge_totals = {"local": 0, "import": 0, "class": 0, "suffix": 0}
    for edge in graph.edges:
        if edge.caller.endswith(".<module>"):
            caller_module = edge.caller[: -len(".<module>")]
        elif edge.caller in graph.functions:
            caller_module = graph.functions[edge.caller].module
        else:
            continue
        entry = per_module.get(caller_module)
        if entry is None:
            continue
        edge_totals[edge.resolution] += 1
        if edge.ambiguous:
            entry["ambiguous_calls"] += 1
            continue
        callee_module = graph.functions[edge.callee].module
        calls_out = entry["calls_out"]
        calls_out[callee_module] = calls_out.get(callee_module, 0) + 1
    doc = {
        "format": CALLGRAPH_REPORT_FORMAT,
        "version": CALLGRAPH_REPORT_VERSION,
        "totals": {
            "functions": len(graph.functions),
            "classes": len(graph.classes),
            "call_sites": graph.call_sites,
            "unresolved_calls": graph.unresolved_calls,
            "edges": edge_totals,
        },
        "modules": per_module,
    }
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


@register
class CallGraphReportStaleRule(Rule):
    """The committed ``ANALYSIS_callgraph.json`` must match the source.

    The call graph is the foundation the interprocedural rules (SEC002,
    ISO001/ISO002, RACE001) stand on; its committed summary is pinned
    exactly like ``ANALYSIS_tcb.json`` so a PR that changes what those
    rules can see — new cross-module call paths, newly ambiguous edges —
    shows that shift in its diff.  Regenerate with ``python -m
    repro.tools.lint --update-callgraph-report``; generation is
    deterministic and version-stable across Python 3.10–3.12.
    """

    id = "CG001"
    title = "committed call-graph report is stale"
    severity = "error"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        report_path = project.root / CALLGRAPH_REPORT_NAME
        expected = generate_callgraph_report(project)
        if not report_path.exists():
            yield Finding(
                self.id, CALLGRAPH_REPORT_NAME, 1,
                f"{CALLGRAPH_REPORT_NAME} is missing; regenerate it with "
                "--update-callgraph-report", self.severity,
            )
            return
        if report_path.read_text(encoding="utf-8") != expected:
            yield Finding(
                self.id, CALLGRAPH_REPORT_NAME, 1,
                f"{CALLGRAPH_REPORT_NAME} does not match the source tree; "
                "regenerate it with --update-callgraph-report", self.severity,
            )
