"""Secret hygiene: unsealed material must never reach an output channel.

The simulation's security invariant (pinned dynamically by the fault
campaign's leak detector) is that secrets released by the TPM — unsealed
plaintext, GetRandom output, generated private keys — stay inside the
session.  This rule checks the same property statically, per function:
a value produced by a secret-bearing call must not flow into logging,
trace events, observability spans/events, exception messages or
``print`` — all of which end up in exporter payloads, reports, or the
terminal.

The taint tracking is intentionally simple (intra-procedural, name
based): assignments from a secret source taint the target names; any
expression mentioning a tainted name is tainted; passing taint through
a *measurement* function (``sha1``/``sha512``/``md5``/``hmac_sha1``/
``len``/``io_measurement``/``measure``) sanitizes it, because digests
and lengths are exactly what the paper's protocols make public.

Simple is the point: the PAL programming model keeps security-sensitive
functions small (everything in them is measured into PCR 17), so an
intra-procedural check covers the code that matters.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.astutil import dotted_name
from repro.analysis.engine import Finding, Rule, SourceFile, register

#: Call-name suffixes whose return value is secret.
SECRET_SOURCE_SUFFIXES = (
    "unseal",
    "get_random",
    "generate_rsa_keypair",
    "generate_keypair",
    "derive_key",
)

#: Call-name suffixes that publish their arguments.
SINK_SUFFIXES = (
    "print",
    "emit",          # trace events
    "event",         # observability instant events
    "span",          # observability spans (args land in exports)
    "record_metrics",
    "debug", "info", "warning", "error", "exception", "critical", "log",
)

#: Measurement/size functions whose output is public by design.  Note
#: ``.hex()`` is *not* here: hex is an encoding, not a digest — the hex
#: of a secret is the secret.
SANITIZER_NAMES = (
    "sha1", "sha512", "md5", "hmac_sha1", "sha1_cached",
    "len", "measure", "io_measurement", "type", "isinstance",
)


def _suffix_hit(name: Optional[str], suffixes: Iterable[str]) -> Optional[str]:
    if name is None:
        return None
    for suffix in suffixes:
        if name == suffix or name.endswith("." + suffix):
            return suffix
    return None


def _is_sanitizer_call(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is None:
            return False
        last = name.rsplit(".", 1)[-1]
        return last in SANITIZER_NAMES
    return False


def _names_in(node: ast.AST) -> Set[str]:
    """Names mentioned in an expression, not descending into sanitizer
    calls (a digest of a secret is not a secret)."""
    names: Set[str] = set()

    def visit(sub: ast.AST) -> None:
        if _is_sanitizer_call(sub):
            return
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        for child in ast.iter_child_nodes(sub):
            visit(child)

    visit(node)
    return names


def _contains_source_call(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _suffix_hit(
            dotted_name(sub.func), SECRET_SOURCE_SUFFIXES
        ):
            return True
    return False


def _assign_targets(node: ast.stmt) -> List[str]:
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) and getattr(node, "value", None):
        targets = [node.target]
    names: List[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    names.append(element.id)
    return names


@register
class SecretToSinkRule(Rule):
    """Values from Unseal/GetRandom/key generation must not be published.

    Within each function, names assigned from a secret-bearing call
    (``*.unseal(...)``, ``*.get_random(...)``,
    ``generate_rsa_keypair(...)``, …) are tainted, and taint follows
    assignments.  A finding fires when a tainted name — or a secret
    call's result directly — appears in the arguments of ``print``,
    ``logging`` methods, ``*.emit(...)`` trace events, ``*.event(...)``
    / ``*.span(...)`` observability calls, or in a raised exception's
    message.

    Publishing a *digest* or a *length* of a secret is fine (that is
    how the paper's protocols communicate): pass the value through
    ``sha1``/``len``/``io_measurement`` first.  If a site is a true
    false positive, suppress it with ``# repro: noqa[SEC001]`` plus a
    comment saying why the value is not secret.
    """

    id = "SEC001"
    title = "secret value flows into an output channel"
    severity = "error"

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(source, node)

    def _check_function(self, source: SourceFile, func: ast.AST) -> Iterable[Finding]:
        tainted: Set[str] = set()
        statements = [s for s in ast.walk(func) if isinstance(s, ast.stmt)]
        statements.sort(key=lambda s: (s.lineno, s.col_offset))

        # Pass 1: propagate taint through assignments to a fixpoint —
        # a single source-order sweep misses loops where the taint's
        # defining assignment sits *below* the use that re-binds it.
        changed = True
        while changed:
            changed = False
            for statement in statements:
                names = _assign_targets(statement)
                if not names or set(names) <= tainted:
                    continue
                value = getattr(statement, "value", None)
                if value is None:
                    continue
                if _contains_source_call(value) or (_names_in(value) & tainted):
                    tainted.update(names)
                    changed = True

        # Pass 2: flag sinks that mention tainted names or source calls.
        for statement in statements:
            for node in ast.walk(statement):
                if isinstance(node, ast.Call):
                    hit = _suffix_hit(dotted_name(node.func), SINK_SUFFIXES)
                    if not hit:
                        continue
                    for arg in list(node.args) + [k.value for k in node.keywords]:
                        if (_names_in(arg) & tainted) or _contains_source_call(arg):
                            yield self.finding(
                                source, node.lineno,
                                f"secret-derived value reaches '{hit}' "
                                "output; log a digest or length instead",
                            )
                            break
                elif isinstance(node, ast.Raise) and node.exc is not None:
                    exc = node.exc
                    args: List[ast.expr] = []
                    if isinstance(exc, ast.Call):
                        args = list(exc.args) + [k.value for k in exc.keywords]
                    # ``raise err`` where err was built from a tainted
                    # message (e.g. an f-string) leaks exactly like the
                    # inline ``raise Error(f"… {secret}")`` form.
                    raised_tainted_name = (
                        isinstance(exc, ast.Name) and exc.id in tainted
                    )
                    if raised_tainted_name or any(
                        (_names_in(a) & tainted) or _contains_source_call(a)
                        for a in args
                    ):
                        yield self.finding(
                            source, node.lineno,
                            "secret-derived value reaches an exception "
                            "message; exceptions cross the trust boundary",
                        )
