"""Scheduler-sharing lint: concurrent process bodies must not share
mutable state outside ``Mailbox`` mediation.

The simulation's determinism story (byte-identical replay of fleet
runs, fault campaigns and benchmarks) rests on the cooperative
scheduler in :mod:`repro.sim.sched`: processes interleave only at
``yield`` points, and the sanctioned communication channel is a
:class:`Mailbox`, whose FIFO order the scheduler controls.  State
shared *around* the mailboxes — a module-level dict two process bodies
both write, an attribute mutated by every instance of a per-host
client process — is exactly the state whose final value depends on
interleaving order.  Today's scheduler is deterministic, so such code
*happens* to replay; the first scheduling change turns it into a
heisenbug.  RACE001 is the static analogue of the replay checks: it
finds the sharing before the interleaving does.

Process bodies are found at spawn sites (``Process(body(...))`` and
the fleet's ``spawn``/``spawn_server``/``spawn_verifier``) whose
argument resolves — through the project call graph — to a generator
function.  From each body the rule walks the reachable call closure
and collects writes to module-level names and to ``self.*``
attributes; a location written from two different bodies, or from a
body spawned inside a loop (many instances of the same generator), is
a finding.  ``Mailbox.put`` is ordinary method-call syntax on a
dedicated object, so mailbox traffic is naturally outside the tracked
write set — mediate through it and the finding disappears.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.astutil import dotted_name
from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    get_callgraph,
    resolve_call,
)
from repro.analysis.engine import Finding, Project, Rule, register

#: Call-name terminals that start a scheduler process.
SPAWN_TERMINALS = ("Process", "spawn", "spawn_server", "spawn_verifier")

#: Method names that mutate their receiver in place.
MUTATING_METHODS = (
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "remove", "setdefault",
    "update",
)


@dataclass(frozen=True)
class SpawnedBody:
    """One process body: the generator a spawn site starts."""

    qualname: str
    #: True when the spawn site sits inside a loop — many instances of
    #: the same generator run concurrently.
    multi_instance: bool
    #: Enclosing ``if`` arms of every spawn site, for mutual-exclusion
    #: checks: each context is a tuple of ``(id(if_node), arm)`` pairs.
    contexts: Tuple[Tuple[Tuple[int, str], ...], ...] = ()


def _contexts_co_live(
    a: Tuple[Tuple[int, str], ...], b: Tuple[Tuple[int, str], ...]
) -> bool:
    """Can two spawn sites execute in the same run?  Not if they sit in
    different arms of a common ``if``."""
    arms = dict(a)
    return all(arms.get(if_id, arm) == arm for if_id, arm in b)


def bodies_co_live(a: SpawnedBody, b: SpawnedBody) -> bool:
    """Can these two bodies be scheduled together?"""
    return any(
        _contexts_co_live(ctx_a, ctx_b)
        for ctx_a in (a.contexts or ((),))
        for ctx_b in (b.contexts or ((),))
    )


@dataclass(frozen=True)
class SharedWrite:
    """One write to potentially shared state."""

    key: Tuple[str, str]  # ("module"|"attr", qualified location)
    relpath: str
    line: int
    writer: str  # function qualname performing the write


def _loop_contained_ids(tree: ast.AST) -> Set[int]:
    """ids of AST nodes that sit inside a ``for``/``while`` body."""
    contained: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            for child in node.body + node.orelse:
                for sub in ast.walk(child):
                    contained.add(id(sub))
    return contained


def find_spawned_bodies(project: Project) -> List[SpawnedBody]:
    """Every generator handed to a spawn site, project-wide."""
    graph = get_callgraph(project)
    # qualname -> [multi_instance, set of spawn contexts]
    bodies: Dict[str, list] = {}
    for source in project.files:
        if not source.module:
            continue
        in_loop = _loop_contained_ids(source.tree)
        for class_name, context, call in _calls_with_context(source.tree):
            name = dotted_name(call.func)
            if name is None or name.split(".")[-1] not in SPAWN_TERMINALS:
                continue
            for arg in call.args:
                if not isinstance(arg, ast.Call):
                    continue
                resolved = resolve_call(graph, source, class_name, arg)
                if len(resolved) > 1 and resolved[0][1] == "suffix":
                    continue
                for callee, _ in resolved:
                    info = graph.functions.get(callee)
                    if info is None or not info.is_generator:
                        continue
                    entry = bodies.setdefault(callee, [False, set()])
                    entry[0] = entry[0] or id(call) in in_loop
                    entry[1].add(context)
    return [
        SpawnedBody(qualname, multi, tuple(sorted(contexts)))
        for qualname, (multi, contexts) in sorted(bodies.items())
    ]


def _calls_with_context(tree: ast.AST):
    """``(enclosing class name, if-arm context, Call node)`` triples.

    The context lists the ``if`` arms a call sits under, so spawn sites
    in opposite arms of one ``if`` can be proven mutually exclusive.
    """

    def visit(node: ast.AST, class_name: Optional[str], context):
        if isinstance(node, ast.If):
            for child in node.body:
                yield from visit(
                    child, class_name, context + ((id(node), "body"),)
                )
            for child in node.orelse:
                yield from visit(
                    child, class_name, context + ((id(node), "orelse"),)
                )
            yield from visit(node.test, class_name, context)
            return
        for child in ast.iter_child_nodes(node):
            next_class = child.name if isinstance(child, ast.ClassDef) else class_name
            if isinstance(child, ast.Call):
                yield class_name, context, child
            yield from visit(child, next_class, context)

    yield from visit(tree, None, ())


def _module_level_names(source) -> Set[str]:
    names: Set[str] = set()
    for node in source.tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _local_names(func_node: ast.AST) -> Set[str]:
    """Names the function binds locally (params + non-global assigns)."""
    names: Set[str] = set()
    args = func_node.args
    for a in (
        list(getattr(args, "posonlyargs", ())) + list(args.args)
        + list(args.kwonlyargs)
    ):
        names.add(a.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    globals_declared: Set[str] = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names - globals_declared


def collect_shared_writes(
    project: Project, graph: CallGraph, info: FunctionInfo
) -> List[SharedWrite]:
    """Writes in one function that target module-level or ``self.*``
    state (the candidates for cross-process sharing)."""
    source = project.by_module.get(info.module)
    if source is None:
        return []
    if info.name in ("__init__", "__post_init__"):
        # Constructors write to an object no other process holds yet.
        return []
    module_names = _module_level_names(source)
    local_names = _local_names(info.node)
    writes: List[SharedWrite] = []

    def module_key(name: str) -> Optional[Tuple[str, str]]:
        if name in module_names and name not in local_names:
            return ("module", f"{info.module}.{name}")
        return None

    def attr_key(chain: str) -> Optional[Tuple[str, str]]:
        if chain.startswith("self.") and info.class_name is not None:
            return (
                "attr",
                f"{info.module}.{info.class_name}.{chain[len('self.'):]}",
            )
        return None

    def record(key: Optional[Tuple[str, str]], line: int) -> None:
        if key is not None:
            writes.append(SharedWrite(key, info.relpath, line, info.qualname))

    for node in ast.walk(info.node):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    # module_key() drops plain local rebinds; a name
                    # under ``global`` stays out of local_names.
                    record(module_key(target.id), node.lineno)
                    continue
                chain = dotted_name(target)
                if chain is not None:
                    record(attr_key(chain), node.lineno)
                    record(module_key(chain.split(".")[0])
                           if "." in chain else None, node.lineno)
                elif isinstance(target, ast.Subscript):
                    receiver = dotted_name(target.value)
                    if receiver is None:
                        continue
                    record(attr_key(receiver), node.lineno)
                    if "." not in receiver:
                        record(module_key(receiver), node.lineno)
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None or "." not in name:
                continue
            receiver, _, method = name.rpartition(".")
            if method not in MUTATING_METHODS:
                continue
            record(attr_key(receiver), node.lineno)
            if "." not in receiver:
                record(module_key(receiver), node.lineno)
    return writes


@register
class SchedulerSharedStateRule(Rule):
    """Concurrent process bodies must share state via mailboxes only.

    A spawn site (``Process(body(...))``, ``fleet.spawn(...)``,
    ``spawn_server``/``spawn_verifier``) marks its generator argument
    as a *process body*; the rule walks each body's reachable call
    closure and collects writes to module-level names and ``self.*``
    attributes.  A location written from two different bodies — or
    from a body spawned inside a loop, where many instances of one
    generator interleave — is a finding: its final value depends on
    scheduling order, which is exactly what the byte-identity replay
    checks exist to forbid.

    Fix by routing the shared value through a :class:`Mailbox` (the
    scheduler orders mailbox delivery deterministically) or by giving
    each process its own state and merging results in the owner.  If
    the sharing is genuinely single-writer (e.g. all writers run in
    one process by construction), suppress with
    ``# repro: noqa[RACE001]`` and say why.
    """

    id = "RACE001"
    title = "process bodies share mutable state without a mailbox"
    severity = "error"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = get_callgraph(project)
        bodies = find_spawned_bodies(project)
        if not bodies:
            return
        # key -> {body qualname: [writes]}; a write in a function
        # reachable from several bodies counts for each of them.
        by_key: Dict[Tuple[str, str], Dict[str, List[SharedWrite]]] = {}
        multi = {b.qualname for b in bodies if b.multi_instance}
        for body in bodies:
            for qualname in sorted(graph.reachable([body.qualname])):
                info = graph.functions[qualname]
                for write in collect_shared_writes(project, graph, info):
                    by_key.setdefault(write.key, {}).setdefault(
                        body.qualname, []
                    ).append(write)
        body_class = {
            b.qualname: (
                f"{graph.functions[b.qualname].module}."
                f"{graph.functions[b.qualname].class_name}"
            )
            for b in bodies
            if graph.functions[b.qualname].class_name is not None
        }
        body_by_name = {b.qualname: b for b in bodies}
        for key in sorted(by_key):
            writers = by_key[key]
            names = sorted(writers)
            # Spawn sites in opposite arms of one ``if`` never share a
            # schedule (e.g. alternate server modes) — only co-live
            # pairs, or a looped (multi-instance) body, conflict.
            conflicted = any(b in multi for b in writers) or any(
                bodies_co_live(body_by_name[x], body_by_name[y])
                for i, x in enumerate(names)
                for y in names[i + 1:]
            )
            if not conflicted:
                continue
            kind_of_key, location = key
            if kind_of_key == "attr":
                # The only object statically known to be shared between
                # bodies is the instance the spawns hang off: require
                # the attribute's class to be a conflicting body's own
                # class.  Attributes of other objects reached through
                # the closure (a per-client helper, a constructor-built
                # vTPM) have untrackable identity — skip them.
                attr_class = location.rsplit(".", 1)[0]
                if attr_class not in {
                    body_class.get(b) for b in writers
                }:
                    continue
            body_names = ", ".join(sorted(writers))
            kind, location = key
            what = (
                "module-level state" if kind == "module" else "shared attribute"
            )
            seen_sites = set()
            for body_writes in writers.values():
                for write in body_writes:
                    site = (write.relpath, write.line)
                    if site in seen_sites:
                        continue
                    seen_sites.add(site)
                    yield Finding(
                        self.id, write.relpath, write.line,
                        f"{what} '{location}' is written from process "
                        f"bod{'ies' if len(writers) > 1 else 'y'} "
                        f"{body_names}"
                        + ("" if len(writers) > 1 else " (spawned in a loop)")
                        + "; mediate through a Mailbox",
                        self.severity,
                    )
