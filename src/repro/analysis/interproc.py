"""Interprocedural taint: secrets tracked across function boundaries.

SEC001 is deliberately intra-procedural — inside one function, a value
from ``unseal``/``get_random``/key generation must not reach a sink.
What it structurally cannot see is the wrapper:

.. code-block:: python

    def load_key(ctx):
        return ctx.tpm.unseal(blob)      # fine on its own

    def report(ctx, log):
        log.info(load_key(ctx))          # the leak — two functions away

This module computes *function summaries* over the call graph
(:mod:`repro.analysis.callgraph`) and propagates taint through them:

``returns_secret``
    the function's return value carries secret material regardless of
    its arguments (it calls a source, or reads a secret attribute);
``param_to_return``
    parameters whose taint flows to the return value (decoder/wrapper
    functions);
``param_to_sink``
    parameters whose taint reaches a sink inside the function —
    passing a secret *into* such a function is itself a leak;
``secret attributes``
    ``self.attr = <secret>`` stores, so a method that stashes unsealed
    material and a sibling method that logs it are connected.

Summaries are iterated to a fixpoint (the project graph is finite and
labels only grow), then a detection pass re-walks every function and
fires on flows SEC001 cannot have reported.  Calls resolve through
precise call-graph edges plus *unambiguous* suffix matches only;
multi-candidate suffix edges are ignored, trading recall for a
zero-false-positive default.  The sanitizer vocabulary is shared with
SEC001: digests and lengths of secrets are public by design.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.astutil import dotted_name
from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    get_callgraph,
    resolve_call,
)
from repro.analysis.engine import Finding, Project, Rule, register
from repro.analysis.secret_flow import (
    SECRET_SOURCE_SUFFIXES,
    SINK_SUFFIXES,
    _assign_targets,
    _contains_source_call,
    _is_sanitizer_call,
    _names_in,
    _suffix_hit,
)

#: Attribute selections that *declassify*: reading the public half of a
#: keypair (``keys.public``, ``authority.public_key``) yields a value
#: the protocols publish by construction.  The private halves
#: (``.private``) keep their taint.
PUBLIC_ATTRS = ("public", "public_key")

#: Label meaning "directly from a base source call" — SEC001 territory.
SECRET = "secret"
#: Label meaning "secret via at least one function boundary".
XSECRET = "xsecret"

_SECRETISH = frozenset((SECRET, XSECRET))


@dataclass
class TaintConfig:
    """Vocabulary for one interprocedural taint analysis."""

    source_suffixes: Tuple[str, ...] = SECRET_SOURCE_SUFFIXES
    sink_suffixes: Tuple[str, ...] = SINK_SUFFIXES
    #: When False, flows SEC001 already reports (same-function source →
    #: sink) are skipped so each leak is reported exactly once.
    fire_intra: bool = False
    #: How findings name the tainted value (ISO002 overrides these).
    noun: str = "secret from another function"
    param_noun: str = "secret value"


@dataclass
class Summary:
    """What one function does with secrets and with its parameters."""

    returns_secret: bool = False
    param_to_return: Set[str] = field(default_factory=set)
    param_to_sink: Set[str] = field(default_factory=set)

    def snapshot(self) -> Tuple[bool, frozenset, frozenset]:
        return (
            self.returns_secret,
            frozenset(self.param_to_return),
            frozenset(self.param_to_sink),
        )


@dataclass(frozen=True)
class TaintFinding:
    """One interprocedural flow, pre-Rule packaging."""

    relpath: str
    line: int
    message: str


class TaintAnalysis:
    """Summary computation + detection for one :class:`TaintConfig`."""

    #: Fixpoint bounds: the label lattice is tiny, so these are never
    #: reached in practice — they are a defensive cap, not a tuning knob.
    MAX_GLOBAL_ROUNDS = 10
    MAX_LOCAL_ROUNDS = 20

    def __init__(self, project: Project, config: TaintConfig) -> None:
        self.project = project
        self.config = config
        self.graph: CallGraph = get_callgraph(project)
        self.summaries: Dict[str, Summary] = {
            q: Summary() for q in self.graph.functions
        }
        #: ``(class qualname, attr name)`` holding secret material.
        self.secret_attrs: Set[Tuple[str, str]] = set()
        self._resolution_cache: Dict[int, List[str]] = {}
        self._stmt_cache: Dict[str, List[ast.stmt]] = {}
        self._compute_summaries()

    # -- call resolution -------------------------------------------------------

    def _callees_at(self, info: FunctionInfo, call: ast.Call) -> List[str]:
        """Actionable callee qualnames for one call site (precise edges
        plus unambiguous suffix matches)."""
        key = id(call)
        if key not in self._resolution_cache:
            source = self.project.by_module.get(info.module)
            resolved = (
                resolve_call(self.graph, source, info.class_name, call)
                if source is not None else []
            )
            if len(resolved) > 1 and resolved[0][1] == "suffix":
                resolved = []  # ambiguous — do not act on it
            self._resolution_cache[key] = [
                callee for callee, _ in resolved
                if callee in self.graph.functions
            ]
        return self._resolution_cache[key]

    def _map_args(
        self, callee: FunctionInfo, call: ast.Call
    ) -> List[Tuple[str, ast.expr]]:
        """``(parameter name, argument expression)`` pairs for a call.

        Method calls written through a receiver (``obj.meth(x)``) bind
        the first declared parameter implicitly, so positionals shift
        by one.  Overflow into ``*args``/``**kwargs`` is dropped.
        """
        offset = (
            1 if callee.is_method and callee.params
            and callee.params[0] in ("self", "cls") else 0
        )
        pairs: List[Tuple[str, ast.expr]] = []
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            slot = index + offset
            if slot < len(callee.params):
                pairs.append((callee.params[slot], arg))
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in callee.params:
                pairs.append((keyword.arg, keyword.value))
        return pairs

    # -- label evaluation ------------------------------------------------------

    def _expr_labels(
        self,
        node: ast.AST,
        env: Dict[str, Set[str]],
        info: FunctionInfo,
    ) -> Set[str]:
        """Taint labels carried by an expression.

        Labels are ``secret`` (base source call), ``xsecret`` (crossed a
        function boundary), and ``param:<name>`` (depends on a caller
        argument — used only while computing summaries).
        """
        labels: Set[str] = set()

        def visit(sub: ast.AST) -> None:
            if _is_sanitizer_call(sub):
                return  # a digest/length of a secret is public
            if isinstance(sub, ast.Name):
                labels.update(env.get(sub.id, ()))
            elif isinstance(sub, ast.Attribute):
                if sub.attr in PUBLIC_ATTRS:
                    return  # the public half of a keypair is public
                chain = dotted_name(sub)
                if (
                    chain is not None
                    and chain.startswith(("self.", "cls."))
                    and chain.count(".") == 1
                    and info.class_name is not None
                ):
                    key = (f"{info.module}.{info.class_name}", sub.attr)
                    if key in self.secret_attrs:
                        labels.add(XSECRET)
            elif isinstance(sub, ast.Call):
                if self._call_labels(sub, env, info, labels):
                    # A source call, or one resolved to a project
                    # function: the summary decides what flows out, so
                    # a tainted *argument* does not taint the result
                    # (a constructor given a secret does not make the
                    # whole object secret).  Unresolved calls (str(),
                    # .hex(), joins) stay conservative below.
                    return
            for child in ast.iter_child_nodes(sub):
                visit(child)

        visit(node)
        return labels

    def _call_labels(
        self,
        call: ast.Call,
        env: Dict[str, Set[str]],
        info: FunctionInfo,
        labels: Set[str],
    ) -> bool:
        """Labels a call's result carries; True when the call was a
        source or resolved to project callees (summary is authoritative)."""
        if _suffix_hit(dotted_name(call.func), self.config.source_suffixes):
            labels.add(SECRET)
            return True
        callees = self._callees_at(info, call)
        for callee_qual in callees:
            summary = self.summaries[callee_qual]
            if summary.returns_secret:
                labels.add(XSECRET)
            if summary.param_to_return:
                callee = self.graph.functions[callee_qual]
                for pname, arg in self._map_args(callee, call):
                    if pname not in summary.param_to_return:
                        continue
                    arg_labels = self._expr_labels(arg, env, info)
                    if arg_labels & _SECRETISH:
                        labels.add(XSECRET)
                    labels.update(
                        label for label in arg_labels
                        if label.startswith("param:")
                    )
        return bool(callees)

    # -- per-function walk -----------------------------------------------------

    def _function_statements(self, info: FunctionInfo) -> List[ast.stmt]:
        statements = self._stmt_cache.get(info.qualname)
        if statements is None:
            statements = [
                s for s in ast.walk(info.node) if isinstance(s, ast.stmt)
            ]
            statements.sort(key=lambda s: (s.lineno, s.col_offset))
            self._stmt_cache[info.qualname] = statements
        return statements

    def _propagate(
        self,
        info: FunctionInfo,
        env: Dict[str, Set[str]],
        statements: List[ast.stmt],
        summary: Optional[Summary],
    ) -> None:
        """Run assignments to a local fixpoint; when ``summary`` is
        given, also record ``self.attr`` secret stores."""
        for _ in range(self.MAX_LOCAL_ROUNDS):
            changed = False
            for statement in statements:
                value = getattr(statement, "value", None)
                if isinstance(statement, ast.For):
                    value = statement.iter
                    targets = (
                        [statement.target.id]
                        if isinstance(statement.target, ast.Name) else []
                    )
                else:
                    targets = _assign_targets(statement)
                if value is None:
                    continue
                labels = self._expr_labels(value, env, info)
                if not labels:
                    continue
                for name in targets:
                    if not labels <= env.setdefault(name, set()):
                        env[name].update(labels)
                        changed = True
                if (
                    summary is not None
                    and isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign))
                    and labels & _SECRETISH
                    and info.class_name is not None
                ):
                    raw_targets = (
                        statement.targets
                        if isinstance(statement, ast.Assign)
                        else [statement.target]
                    )
                    for target in raw_targets:
                        chain = dotted_name(target)
                        if (
                            chain is not None
                            and chain.startswith(("self.", "cls."))
                            and chain.count(".") == 1
                        ):
                            key = (
                                f"{info.module}.{info.class_name}",
                                chain.split(".", 1)[1],
                            )
                            if key not in self.secret_attrs:
                                self.secret_attrs.add(key)
                                changed = True
            if not changed:
                return

    # -- summaries -------------------------------------------------------------

    def _compute_summaries(self) -> None:
        order = sorted(self.graph.functions)
        for _ in range(self.MAX_GLOBAL_ROUNDS):
            before = {
                q: self.summaries[q].snapshot() for q in order
            }
            attrs_before = set(self.secret_attrs)
            for qualname in order:
                self._summarize(self.graph.functions[qualname])
            if (
                all(self.summaries[q].snapshot() == before[q] for q in order)
                and self.secret_attrs == attrs_before
            ):
                return

    def _summarize(self, info: FunctionInfo) -> None:
        summary = self.summaries[info.qualname]
        env: Dict[str, Set[str]] = {
            p: {f"param:{p}"} for p in info.params if p not in ("self", "cls")
        }
        statements = self._function_statements(info)
        self._propagate(info, env, statements, summary)
        for statement in statements:
            if isinstance(statement, ast.Return) and statement.value is not None:
                labels = self._expr_labels(statement.value, env, info)
                if labels & _SECRETISH:
                    summary.returns_secret = True
                summary.param_to_return.update(
                    label.split(":", 1)[1] for label in labels
                    if label.startswith("param:")
                )
            for node in ast.walk(statement):
                if not isinstance(node, ast.Call):
                    continue
                sink_params = self._sink_arg_params(node, env, info)
                summary.param_to_sink.update(sink_params)
        # Generators publish through ``yield`` like a return.
        if info.is_generator:
            for statement in statements:
                for node in ast.walk(statement):
                    if isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value:
                        labels = self._expr_labels(node.value, env, info)
                        if labels & _SECRETISH:
                            summary.returns_secret = True
                        summary.param_to_return.update(
                            label.split(":", 1)[1] for label in labels
                            if label.startswith("param:")
                        )

    def _sink_arg_params(
        self, call: ast.Call, env: Dict[str, Set[str]], info: FunctionInfo
    ) -> Set[str]:
        """Parameters whose taint this call would publish: direct sink
        calls, plus calls into a callee with ``param_to_sink``."""
        params: Set[str] = set()
        if _suffix_hit(dotted_name(call.func), self.config.sink_suffixes):
            for arg in list(call.args) + [k.value for k in call.keywords]:
                params.update(
                    label.split(":", 1)[1]
                    for label in self._expr_labels(arg, env, info)
                    if label.startswith("param:")
                )
        for callee_qual in self._callees_at(info, call):
            callee_summary = self.summaries[callee_qual]
            if not callee_summary.param_to_sink:
                continue
            callee = self.graph.functions[callee_qual]
            for pname, arg in self._map_args(callee, call):
                if pname in callee_summary.param_to_sink:
                    params.update(
                        label.split(":", 1)[1]
                        for label in self._expr_labels(arg, env, info)
                        if label.startswith("param:")
                    )
        return params

    # -- detection -------------------------------------------------------------

    def findings(self) -> List[TaintFinding]:
        """Flows visible with *no* assumptions about caller arguments."""
        found: List[TaintFinding] = []
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            found.extend(self._detect(info))
        return found

    def _detect(self, info: FunctionInfo) -> Iterable[TaintFinding]:
        env: Dict[str, Set[str]] = {}
        statements = self._function_statements(info)
        self._propagate(info, env, statements, None)
        # SEC001's own intra-procedural taint, used to avoid reporting
        # the same leak twice when ``fire_intra`` is off.
        intra: Set[str] = {
            name for name, labels in env.items() if SECRET in labels
        }
        fire_on = (
            _SECRETISH if self.config.fire_intra else frozenset((XSECRET,))
        )
        for statement in statements:
            for node in ast.walk(statement):
                if isinstance(node, ast.Call):
                    yield from self._detect_call(node, env, info, intra, fire_on)
                elif isinstance(node, ast.Raise) and node.exc is not None:
                    yield from self._detect_raise(node, env, info, fire_on)

    def _already_sec001(
        self, arg: ast.expr, intra: Set[str]
    ) -> bool:
        """Would SEC001 flag this sink argument on its own?"""
        if self.config.fire_intra:
            return False
        return bool(_names_in(arg) & intra) or _contains_source_call(arg)

    def _detect_call(
        self,
        call: ast.Call,
        env: Dict[str, Set[str]],
        info: FunctionInfo,
        intra: Set[str],
        fire_on: frozenset,
    ) -> Iterable[TaintFinding]:
        hit = _suffix_hit(dotted_name(call.func), self.config.sink_suffixes)
        if hit:
            for arg in list(call.args) + [k.value for k in call.keywords]:
                labels = self._expr_labels(arg, env, info)
                if labels & fire_on and not self._already_sec001(arg, intra):
                    yield TaintFinding(
                        info.relpath, call.lineno,
                        f"{self.config.noun} reaches '{hit}' in "
                        f"{info.qualname}; publish a digest or length "
                        "instead",
                    )
                    break
        for callee_qual in self._callees_at(info, call):
            summary = self.summaries[callee_qual]
            if not summary.param_to_sink:
                continue
            callee = self.graph.functions[callee_qual]
            for pname, arg in self._map_args(callee, call):
                if pname not in summary.param_to_sink:
                    continue
                labels = self._expr_labels(arg, env, info)
                if labels & _SECRETISH:
                    yield TaintFinding(
                        info.relpath, call.lineno,
                        f"{self.config.param_noun} passed to "
                        f"{callee.qualname}() parameter '{pname}', "
                        "which publishes it",
                    )
                    break

    def _detect_raise(
        self,
        node: ast.Raise,
        env: Dict[str, Set[str]],
        info: FunctionInfo,
        fire_on: frozenset,
    ) -> Iterable[TaintFinding]:
        exc = node.exc
        exprs: List[ast.expr] = []
        if isinstance(exc, ast.Call):
            exprs = list(exc.args) + [k.value for k in exc.keywords]
        elif isinstance(exc, ast.Name):
            exprs = [exc]
        for expr in exprs:
            if self._expr_labels(expr, env, info) & fire_on:
                yield TaintFinding(
                    info.relpath, node.lineno,
                    f"{self.config.noun} reaches an exception message "
                    f"in {info.qualname}; exceptions cross the trust "
                    "boundary",
                )
                return


def run_taint(project: Project, config: TaintConfig) -> List[TaintFinding]:
    """One full analysis pass; convenience for rules and tests."""
    return TaintAnalysis(project, config).findings()


@register
class InterproceduralSecretFlowRule(Rule):
    """Secrets must not leak through wrapper functions into sinks.

    Where SEC001 checks one function at a time, SEC002 propagates taint
    from ``unseal``/``get_random``/key-generation calls through function
    summaries computed over the project call graph: a function that
    *returns* a secret, *forwards* a parameter to its return value,
    *publishes* a parameter to a sink, or *stores* a secret on ``self``
    extends the flow into every caller.  A finding fires when such a
    cross-function flow reaches the SEC001 sinks (logging, trace
    events, observability spans, ``print``, raised exception messages).

    The same sanitizers apply — route the value through ``sha1``/
    ``len``/``io_measurement`` to publish a digest or size.  Calls only
    propagate through precise call-graph edges and unambiguous
    name-suffix matches, so a finding always names a concrete callee;
    fix the flow, or suppress with ``# repro: noqa[SEC002]`` plus a
    justification.
    """

    id = "SEC002"
    title = "interprocedural secret flow reaches an output channel"
    severity = "error"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        for hit in run_taint(project, TaintConfig()):
            yield Finding(
                self.id, hit.relpath, hit.line, hit.message, self.severity
            )
