"""Tenant isolation: virtual-TPM code must stay inside tenant bounds.

PR 9's multiplexer partitions one hardware TPM among tenants: every
tenant's NV space, monotonic counters and sealed storage live behind a
*tenant-bound* session interface (``TPM.interface(locality,
tenant=...)``), which prefixes NV indices and counter ids so no tenant
can name another tenant's state.  That property is enforced at runtime
by the interface — but only if the multiplexer and the tenant-tagged
distribution layer actually *go through* the interface.  One direct
call into the chip (``machine.tpm._nv_write(...)``) or one untenanted
interface acquisition silently collapses the partition.

Two rules audit this over the project call graph
(:mod:`repro.analysis.callgraph`):

* **ISO001** — inside ``repro.vtpm*`` and ``repro.dist*``, every path
  to a TPM NV/counter/sealed-storage mutator must be tenant-bound: no
  direct chip-method calls, no ``*.interface(...)`` without a
  ``tenant=`` keyword, and no call into a helper that *returns* an
  untenanted interface (resolved through the call graph, so hiding the
  acquisition in ``repro.hw`` does not help).  The hardware-owner
  paths in ``repro.hw``/``repro.core`` are out of scope by design —
  the platform legitimately owns the chip.
* **ISO002** — tenant snapshot material (``export_tenant`` output
  carries a tenant's full sealed storage, keys and counters) must
  never reach shared logs, trace events, exception messages, or NV
  writes.  This is the interprocedural taint machinery of
  :mod:`repro.analysis.interproc` with snapshot vocabulary; the only
  legitimate consumers are ``import_tenant``/``remove_tenant`` on the
  migration path, which are not sinks.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from repro.analysis.astutil import dotted_name
from repro.analysis.callgraph import get_callgraph, resolve_call
from repro.analysis.engine import Finding, Project, Rule, SourceFile, register
from repro.analysis.interproc import TaintConfig, run_taint
from repro.analysis.secret_flow import SINK_SUFFIXES

#: Module prefixes whose TPM access must be tenant-bound.
TENANT_SCOPED_PREFIXES = ("repro.vtpm", "repro.dist")

#: TPM state mutators a tenant-scoped module must reach only through a
#: tenant-bound interface.
TPM_MUTATOR_NAMES = (
    "nv_define_space",
    "nv_write",
    "create_counter",
    "increment_counter",
    "seal",
)


def _in_scope(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in TENANT_SCOPED_PREFIXES
    )


def _is_direct_chip_call(name: str) -> bool:
    """``*.tpm.<mutator>`` / ``*.tpm._<mutator>``: the chip itself."""
    parts = name.split(".")
    if len(parts) < 2:
        return False
    terminal = parts[-1].lstrip("_")
    return terminal in TPM_MUTATOR_NAMES and "tpm" in parts[:-1]


def _untenanted_interface_call(call: ast.Call) -> bool:
    """An ``*.interface(...)`` acquisition with no usable tenant."""
    name = dotted_name(call.func)
    if name is None or name.split(".")[-1] != "interface":
        return False
    for keyword in call.keywords:
        if keyword.arg == "tenant":
            is_none = (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None
            )
            return is_none
    return True


def _untenanted_interface_returners(project: Project) -> Set[str]:
    """Functions whose return value is an untenanted TPM interface,
    directly or through another such function (small fixpoint)."""
    graph = get_callgraph(project)
    returners: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for qualname in sorted(graph.functions):
            if qualname in returners:
                continue
            info = graph.functions[qualname]
            source = project.by_module.get(info.module)
            if source is None:
                continue
            for node in ast.walk(info.node):
                if not (isinstance(node, ast.Return) and node.value is not None):
                    continue
                for sub in ast.walk(node.value):
                    if not isinstance(sub, ast.Call):
                        continue
                    if _untenanted_interface_call(sub):
                        returners.add(qualname)
                        changed = True
                        break
                    resolved = resolve_call(
                        graph, source, info.class_name, sub
                    )
                    if len(resolved) > 1 and resolved[0][1] == "suffix":
                        continue
                    if any(callee in returners for callee, _ in resolved):
                        returners.add(qualname)
                        changed = True
                        break
                if qualname in returners:
                    break
    return returners


@register
class TenantBoundAccessRule(Rule):
    """Tenant-scoped code must reach TPM state through tenant-bound
    interfaces.

    Within ``repro.vtpm`` and ``repro.dist``, three shapes defeat the
    tenant partition and are findings: (1) calling a chip mutator
    directly (``*.tpm.nv_write(...)``, ``*.tpm._seal(...)`` — the
    underscore entry points bypass even locality checks); (2) acquiring
    a session with ``*.interface(...)`` without a ``tenant=`` keyword
    (or with ``tenant=None``), which yields a hardware-owner session
    whose NV indices and counter ids are unprefixed; (3) calling a
    helper — anywhere in the project — that returns such an untenanted
    interface, resolved through the call graph.

    Fix by acquiring the session once with ``tenant=vt.tenant`` and
    passing it down.  Hardware-owner code (``repro.hw``, ``repro.core``
    platform construction) is exempt by scope, not by suppression.
    """

    id = "ISO001"
    title = "tenant-scoped TPM access is not tenant-bound"
    severity = "error"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = get_callgraph(project)
        returners = _untenanted_interface_returners(project)
        for source in project.files:
            if not source.module or not _in_scope(source.module):
                continue
            yield from self._check_scoped_file(project, graph, source, returners)

    def _check_scoped_file(
        self,
        project: Project,
        graph,
        source: SourceFile,
        returners: Set[str],
    ) -> Iterable[Finding]:
        class_stack: List[str] = []

        def visit(node: ast.AST, class_name):
            for child in ast.iter_child_nodes(node):
                next_class = class_name
                if isinstance(child, ast.ClassDef):
                    next_class = child.name
                if isinstance(child, ast.Call):
                    yield from check_call(child, class_name)
                yield from visit(child, next_class)

        def check_call(call: ast.Call, class_name):
            name = dotted_name(call.func)
            if name is None:
                return
            if _is_direct_chip_call(name):
                yield self.finding(
                    source, call.lineno,
                    f"direct hardware TPM call '{name}' bypasses the "
                    "tenant partition; go through a tenant-bound "
                    "interface",
                )
                return
            if _untenanted_interface_call(call):
                yield self.finding(
                    source, call.lineno,
                    f"'{name}' acquires a TPM session without tenant=; "
                    "tenant-scoped code must bind the session to its "
                    "tenant",
                )
                return
            resolved = resolve_call(graph, source, class_name, call)
            if len(resolved) > 1 and resolved[0][1] == "suffix":
                return
            for callee, _ in resolved:
                if callee in returners:
                    yield self.finding(
                        source, call.lineno,
                        f"'{name}' returns an untenanted TPM interface "
                        f"(via {callee}); tenant-scoped code must use a "
                        "tenant-bound session",
                    )
                    return

        yield from visit(source.tree, None)


@register
class TenantSnapshotLeakRule(Rule):
    """Tenant snapshot material must stay on the migration path.

    ``export_tenant`` serialises a tenant's entire virtual TPM — PCR
    bank, sealed storage, keys, counters — for live migration.  That
    snapshot is as secret as the tenant's secrets: flowing it into
    shared logs, trace events, observability spans, ``print``, raised
    exception messages, or NV writes (``nv_write``/``nv_define_space``
    — even a tenant-bound one persists it outside the migration
    channel) hands one tenant's state to whoever reads the shared
    medium.

    The rule reuses the interprocedural taint engine: snapshots stay
    tainted across function boundaries and attribute stores, and the
    ``sha1``/``len`` sanitizers apply — logging a snapshot digest for
    the attestation trail is fine.  The legitimate consumers,
    ``import_tenant`` and ``remove_tenant``, are not sinks and need no
    special-casing.
    """

    id = "ISO002"
    title = "tenant snapshot material reaches a shared channel"
    severity = "error"
    scope = "project"

    CONFIG = TaintConfig(
        source_suffixes=("export_tenant",),
        sink_suffixes=SINK_SUFFIXES + ("nv_write", "nv_define_space"),
        fire_intra=True,
        noun="tenant snapshot material",
        param_noun="tenant snapshot material",
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        for hit in run_taint(project, self.CONFIG):
            yield Finding(
                self.id, hit.relpath, hit.line, hit.message, self.severity
            )
